"""DC1 — the data channel (paper §3.3).

The CIFS-style share is how measurements reach the analysis host. This
bench measures write-at-ACL -> readable-at-K200 visibility latency (with
the polling-vs-interval ablation DESIGN.md calls out), sustained read
throughput, and the cost of parsing a fetched ``.mpt``.

Expected shape: visibility latency ~ poll interval / 2 + one listdir
round trip, so the interval dominates; throughput approaches the
modelled link bandwidth for large files; checksum verification adds a
fixed hashing cost.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.species import FERROCENE, ferrocene_solution
from repro.datachannel import MeasurementWatcher, write_mpt


@pytest.fixture(scope="module")
def mounted(ice, tmp_path_factory):
    mount = ice.mount(cache_dir=tmp_path_factory.mktemp("dgx-cache"))
    yield ice, mount
    mount.unmount()


@pytest.fixture(scope="module")
def big_file(ice):
    payload = np.random.default_rng(1).bytes(4 * 1024 * 1024)
    path = ice.measurement_dir / "large.bin"
    path.write_bytes(payload)
    return "large.bin", len(payload)


@pytest.fixture(scope="module")
def mpt_file(ice):
    solution = ferrocene_solution(2.0)
    engine = CVEngine(
        FERROCENE, solution.concentration(FERROCENE), 0.0707
    )
    trace = engine.run(CVParameters())
    write_mpt(ice.measurement_dir / "bench_cv.mpt", trace)
    return "bench_cv.mpt", len(trace)


def test_bench_listdir(benchmark, mounted):
    """Directory poll: the primitive the watcher spends its life in."""
    _ice, mount = mounted
    benchmark(mount.listdir)


def test_bench_read_throughput(benchmark, mounted, big_file):
    """Sustained bulk read of a 4 MiB file."""
    _ice, mount = mounted
    name, size = big_file
    data = benchmark(mount.read_bytes, name)
    assert len(data) == size


def test_bench_read_verified(benchmark, mounted, big_file):
    """Same read with end-to-end checksum verification."""
    _ice, mount = mounted
    name, size = big_file
    data = benchmark(mount.read_bytes, name, True)
    assert len(data) == size


def test_bench_fetch_and_parse_mpt(benchmark, mounted, mpt_file):
    """What the workflow's analysis step pays per measurement."""
    _ice, mount = mounted
    name, samples = mpt_file
    trace = benchmark(mount.read_voltammogram, name)
    assert len(trace) == samples


@pytest.mark.parametrize("interval_ms", [10, 50, 200])
def test_visibility_latency_vs_poll_interval(benchmark, mounted, interval_ms):
    """DESIGN.md ablation: polling cadence vs arrival-detection latency."""
    ice, mount = mounted
    watcher = MeasurementWatcher(
        mount, pattern="*.marker", interval_s=interval_ms / 1e3
    )
    watcher.snapshot()
    latencies = []

    def measure():
        for round_index in range(5):
            name = f"arrival_{interval_ms}_{round_index}.marker"

            def writer():
                time.sleep(0.02)
                (ice.measurement_dir / name).write_text("x")

            thread = threading.Thread(target=writer)
            start = time.perf_counter()
            thread.start()
            watcher.wait_for(name, timeout_s=10.0)
            latencies.append(time.perf_counter() - start - 0.02)
            thread.join()

    benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\npoll interval {interval_ms:>4} ms: median visibility latency "
        f"{np.median(latencies)*1e3:7.1f} ms"
    )
    # latency is bounded by roughly one interval plus transfer cost
    assert np.median(latencies) < interval_ms / 1e3 + 0.25
