"""Shared benchmark fixtures.

Benchmarks regenerate the paper's figures (5, 6, 7) and quantify the
design claims (channel separation, RPC cost, data-channel latency).
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
transcript/series output alongside the timing tables.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.facility.ice import ElectrochemistryICE, ICEConfig
from repro.ml.datasets import DatasetSpec, generate_dataset
from repro.ml.features import extract_features_batch
from repro.ml.normality import NormalityClassifier


@pytest.fixture(scope="module")
def ice():
    """One simulated ecosystem per benchmark module."""
    ecosystem = ElectrochemistryICE.build()
    yield ecosystem
    ecosystem.shutdown()


@pytest.fixture(scope="session")
def ml_bundle():
    """(train/test corpus, trained classifier) shared across ML benches."""
    import numpy as np

    traces, labels = generate_dataset(DatasetSpec(n_per_class=30, seed=11))
    features = extract_features_batch(traces)
    labels = np.asarray(labels)
    rng = np.random.default_rng(0)
    order = rng.permutation(len(labels))
    split = int(0.7 * len(labels))
    train_idx, test_idx = order[:split], order[split:]
    classifier = NormalityClassifier().fit_features(
        features[train_idx], labels[train_idx]
    )
    return {
        "traces": traces,
        "labels": labels,
        "features": features,
        "test_idx": test_idx,
        "classifier": classifier,
    }
