"""PROF1 — what continuous profiling + live streaming cost per span.

The profiler samples at every span transition and the telemetry bus
publishes every finished span to each subscriber ring — all inline with
the workflow. The design target is <5% added wall time on the paper's
five-task CV workflow with everything on (profiler + live stream with
an active subscriber + metric streaming).

The e2e workflow wall time is dominated by simulated instrument waits
with tens of milliseconds of scheduler jitter, so gating a 5% target on
raw e2e wall clock would measure noise. Instead this file prices the
per-span cost head-to-head in a tight loop (the same interleaved
best-of-batches method as OBS1/RES1), counts how many spans the real
workflow produces, and gates on the projected fraction of the measured
e2e wall time — the same projection style OBS1 uses for its RTT gate.

The run also emits ``BENCH_profile.json``: the ``repro-profile-1``
document from a profiled e2e run, the per-operation latency baselines
(``repro-baseline-1``) recorded from it, and the overhead numbers —
the artifact CI uploads so the perf trajectory is diffable release to
release.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.core.cv_workflow import CVWorkflowSettings
from repro.obs import (
    MetricsRegistry,
    SpanProfiler,
    TelemetryBus,
    Tracer,
)

SETTINGS = CVWorkflowSettings(e_step_v=0.01)
BATCHES, SPANS_PER_BATCH = 20, 400


def _per_span_cost(tracer: Tracer) -> float:
    """Best-of-batches seconds per open+close of one span."""
    best = float("inf")
    for _ in range(BATCHES):
        start = time.perf_counter()
        for _ in range(SPANS_PER_BATCH):
            with tracer.start_as_current_span("bench.op"):
                pass
        best = min(best, time.perf_counter() - start)
    return best / SPANS_PER_BATCH


def test_profiling_overhead_under_five_percent(capsys):
    # -- per-span price, bare vs fully observed --------------------------
    bare_tracer = Tracer("bare", max_spans=SPANS_PER_BATCH * 2)
    observed_tracer = Tracer("observed", max_spans=SPANS_PER_BATCH * 2)
    metrics = MetricsRegistry()
    bus = TelemetryBus("dgx-session", metrics=metrics)
    bus.attach_tracer(observed_tracer)
    bus.observe_metrics(metrics)
    profiler = SpanProfiler()
    assert profiler.attach(observed_tracer)
    subscription = bus.subscribe(capacity=SPANS_PER_BATCH * 2)

    timings = {"bare": float("inf"), "observed": float("inf")}
    for _ in range(2):  # interleave so clock drift hits both alike
        timings["bare"] = min(timings["bare"], _per_span_cost(bare_tracer))
        timings["observed"] = min(
            timings["observed"], _per_span_cost(observed_tracer)
        )
        subscription.poll()  # keep the ring from saturating
    delta_per_span = timings["observed"] - timings["bare"]
    profiler.detach()
    bus.detach()

    # the observed stack really did observe
    assert profiler.profile()["operations"]["bench.op"]["count"] > 0

    # -- e2e run: span volume, wall time, and the shipped artifact -------
    with repro.connect() as session:
        session.run_workflow(settings=SETTINGS)  # warm the stack
        drained = []
        start = time.perf_counter()
        with session.stream() as stream:
            result = session.run_workflow(settings=SETTINGS, profile=True)
            drained = stream.drain()
        observed_wall_s = time.perf_counter() - start
        assert result.succeeded and result.profile is not None
        assert drained, "the live feed saw nothing"
        store = session.record_baseline()
        baselines = store.to_dict()

    profile_doc = result.profile
    spans_in_run = sum(
        stats["count"] for stats in profile_doc["operations"].values()
    )
    projected_overhead = (
        max(0.0, delta_per_span) * spans_in_run / observed_wall_s
    )

    report = {
        "schema": "repro-bench-profile-1",
        "settings": {"e_step_v": SETTINGS.e_step_v},
        "per_span_bare_s": timings["bare"],
        "per_span_observed_s": timings["observed"],
        "per_span_delta_s": delta_per_span,
        "e2e_wall_s": observed_wall_s,
        "e2e_spans": spans_in_run,
        "projected_overhead_fraction": projected_overhead,
        "profile": profile_doc,
        "baselines": baselines,
    }
    Path("BENCH_profile.json").write_text(
        json.dumps(report, indent=2, sort_keys=True)
    )

    with capsys.disabled():
        print(
            f"\n[PROF1] bare={timings['bare'] * 1e6:.2f}us/span "
            f"observed={timings['observed'] * 1e6:.2f}us/span "
            f"delta={delta_per_span * 1e6:+.2f}us | e2e {spans_in_run} spans "
            f"in {observed_wall_s:.3f}s -> projected "
            f"{projected_overhead * 100:+.3f}% (target < 5%) "
            f"-> BENCH_profile.json"
        )
    # gates: the projection is the design target; the absolute per-span
    # cost bound catches egregious regressions even on noisy boxes
    assert projected_overhead < 0.05
    assert delta_per_span < 500e-6


def test_profile_document_covers_the_workflow():
    """The emitted document names the paper's tasks and layers."""
    with repro.connect() as session:
        result = session.run_workflow(settings=SETTINGS, profile=True)
    doc = result.profile
    assert doc["schema"] == "repro-profile-1"
    operations = set(doc["operations"])
    assert any(name.startswith("task.") for name in operations)
    assert any(name.startswith("rpc.call.") for name in operations)
    # self-time never exceeds total time for any operation
    for stats in doc["operations"].values():
        assert stats["self_s"] <= stats["total_s"] + 1e-9
