"""FIG6 — remote SP200 pipeline (paper Fig 6a/6b).

Regenerates the 8-step potentiostat lifecycle driven from the remote
host, printing the client confirmations (Fig 6a) and the control-agent
log (Fig 6b), then times each phase: configuration steps are cheap
control-channel round trips; the acquisition step carries the physics.

Paper-reported behaviour: each step confirms in order; the channel
disconnects automatically after acquisition. Expected here: the same
eight confirmations; configuration latency ~ control-channel RTT;
acquisition dominated by the CV solver.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def prepared(ice):
    """Client with a filled cell, ready for repeated pipeline runs."""
    client = ice.client()
    client.call_Set_Rate_SyringePump(1, 10.0)
    client.call_Set_Vial_FractionCollector(1, "BOTTOM")
    client.call_Set_Port_SyringePump(1, 1)
    client.call_Withdraw_SyringePump(1, 6.0)
    client.call_Set_Port_SyringePump(1, 8)
    client.call_Dispense_SyringePump(1, 6.0)
    yield client
    client.close()


def run_pipeline(client, e_step_v=0.002):
    client.call_Initialize_SP200_API({"channel": 1})              # (1)
    client.call_Connect_SP200()                                   # (2)
    client.call_Load_Firmware_SP200()                             # (3)
    client.call_Initialize_CV_Tech_SP200({"e_step_v": e_step_v})  # (4)
    client.call_Load_Technique_SP200()                            # (5)
    client.call_Start_Channel_SP200()                             # (6)
    result = client.call_Get_Tech_Path_Rslt()                     # (7)+(8)
    client.call_Disconnect_SP200()
    return result


def test_fig6_transcript(benchmark, ice, prepared):
    """Replay Fig 6a and print the confirmations plus the agent log."""
    client = prepared
    collected: list[dict] = []

    def replay():
        print("\n--- Fig 6a: notebook pipeline (client side) ---")
        print("(1)", client.call_Initialize_SP200_API({"channel": 1}))
        print("(2)", client.call_Connect_SP200())
        print("(3)", client.call_Load_Firmware_SP200())
        print("(4)", client.call_Initialize_CV_Tech_SP200({"e_step_v": 0.002}))
        print("(5)", client.call_Load_Technique_SP200())
        print("(6)", client.call_Start_Channel_SP200())
        collected.append(client.call_Get_Tech_Path_Rslt())
        print("(7) collected:", collected[-1])
        client.call_Disconnect_SP200()

    benchmark.pedantic(replay, rounds=1, iterations=1)
    result = collected[-1]

    print("\n--- Fig 6b: control agent / instrument log (server side) ---")
    for line in ice.workstation.event_log.messages(source="sp200"):
        print("  ", line)
    for line in ice.workstation.event_log.messages(source="sp200.api"):
        print("  ", line)

    assert result["n_samples"] == 600
    assert result["file"].endswith(".mpt")
    messages = ice.workstation.event_log.messages(source="sp200")
    assert "> Loading kernel4.bin ..." in messages
    assert any("channel disconnected" in m for m in messages)


def test_bench_full_pipeline(benchmark, prepared):
    """Steps 1-8 end to end (includes the CV physics)."""
    result = benchmark(run_pipeline, prepared)
    assert result["n_samples"] == 600


def test_bench_configuration_steps_only(benchmark, prepared):
    """Steps 1-5: pure control-channel cost, no acquisition."""

    def configure():
        prepared.call_Initialize_SP200_API({"channel": 1})
        prepared.call_Connect_SP200()
        prepared.call_Load_Firmware_SP200()
        prepared.call_Initialize_CV_Tech_SP200({"e_step_v": 0.002})
        prepared.call_Load_Technique_SP200()
        prepared.call_Disconnect_SP200()

    benchmark(configure)


def test_bench_status_probe(benchmark, prepared):
    """Step 7's polling primitive (Probe_Status_SP200)."""
    prepared.call_Initialize_SP200_API({"channel": 1})
    status = benchmark(prepared.call_Probe_Status_SP200)
    assert status["channel"] == 1
