"""RES1 — what the resilience layer costs when nothing goes wrong.

The retry/reconnect machinery must be cheap enough to leave on for every
cross-facility call: the target is <5% added latency on the no-fault
fast path (one idempotency key + one policy wrapper per call). Faults
are exercised in the chaos tests; this file only prices the happy path.
"""

from __future__ import annotations

import time

import pytest

from repro.resilience import CircuitBreaker, ResilientProxy, RetryPolicy
from repro.rpc import Daemon, Proxy, expose


@expose
class BenchService:
    def ping(self):
        return None

    def echo(self, value):
        return value


@pytest.fixture(scope="module")
def served():
    daemon = Daemon()
    uri = daemon.register(BenchService(), object_id="ResBench")
    daemon.start_background()
    yield uri, daemon
    daemon.shutdown()


@pytest.fixture(scope="module")
def bare(served):
    uri, _ = served
    with Proxy(uri) as proxy:
        yield proxy


@pytest.fixture(scope="module")
def resilient(served):
    uri, _ = served
    wrapped = ResilientProxy(
        Proxy(uri),
        policy=RetryPolicy(),
        breaker=CircuitBreaker(),
    )
    with wrapped:
        yield wrapped


def test_bench_bare_proxy_call(benchmark, bare):
    """Baseline: a small call on an unwrapped proxy."""
    benchmark(bare.echo, 1.0)


def test_bench_resilient_proxy_call(benchmark, resilient):
    """The same call through policy + breaker + idempotency key."""
    benchmark(resilient.echo, 1.0)


def test_no_fault_overhead_under_five_percent(served, capsys):
    """Head-to-head measurement of the no-fault overhead.

    Interleaves batches of bare and wrapped calls (so drift hits both
    alike), takes the best batch each (floor latency), and reports the
    relative overhead. The hard gate is deliberately loose — CI boxes
    are noisy — while the printed number tracks the <5% design target.
    """
    uri, _ = served
    batches, calls = 30, 50

    with Proxy(uri) as plain, ResilientProxy(
        Proxy(uri), policy=RetryPolicy(), breaker=CircuitBreaker()
    ) as wrapped:
        for proxy in (plain, wrapped):  # warm both connections
            for _ in range(calls):
                proxy.echo(1.0)

        def best_batch(proxy):
            best = float("inf")
            for _ in range(batches):
                start = time.perf_counter()
                for _ in range(calls):
                    proxy.echo(1.0)
                best = min(best, time.perf_counter() - start)
            return best / calls

        timings = {}
        for _ in range(2):  # interleave: bare, wrapped, bare, wrapped
            for name, proxy in (("bare", plain), ("resilient", wrapped)):
                timings[name] = min(
                    timings.get(name, float("inf")), best_batch(proxy)
                )

        assert wrapped.retry_count == 0  # the fast path really was fault-free

    overhead = timings["resilient"] / timings["bare"] - 1.0
    delta_s = timings["resilient"] - timings["bare"]
    # the added work is a fixed per-call cost, so its relative weight
    # shrinks with the round trip: loopback here is the worst case,
    # while on the paper's ACL<->ORNL path (~ms RTT) the same delta
    # is what the <5% design target is stated against
    wan_overhead = delta_s / (timings["bare"] + 1e-3)
    with capsys.disabled():
        print(
            f"\n[RES1] bare={timings['bare'] * 1e6:.1f}us/call "
            f"resilient={timings['resilient'] * 1e6:.1f}us/call "
            f"delta={delta_s * 1e6:+.1f}us "
            f"loopback overhead={overhead * 100:+.1f}% | "
            f"at 1ms RTT: {wan_overhead * 100:+.2f}% (target < 5%)"
        )
    # egregious-regression gate only; the design target is the report
    assert overhead < 0.5
    assert wan_overhead < 0.05
