"""FIG7 — the ferrocene I-V profile (paper Fig 7).

Regenerates the voltammogram of 2 mM ferrocene/MeCN over 0.2-0.8 V at
100 mV/s as measured through the full remote workflow, prints the series
summary the paper plots, and checks the shape:

- duck-shaped curve with the anodic peak near +0.43 V and the cathodic
  near +0.37 V (E1/2 ~ +0.40 V vs the cell reference);
- peak currents on the 1e-5 A scale (paper's y-axis);
- classified "normal" by the ML method (paper §4.3.3).

Also benchmarks the CV solver itself, including the grid-resolution
ablation called out in DESIGN.md (substeps sweep: accuracy against the
Randles-Sevcik analytic peak vs runtime).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import characterize, randles_sevcik_current
from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.species import FERROCENE, ferrocene_solution
from repro.core.cv_workflow import run_cv_workflow

CONC = ferrocene_solution(2.0).concentration(FERROCENE)
AREA = 0.0707


def test_fig7_series(benchmark, ice, ml_bundle):
    """The figure itself: run the workflow, print the I-V series summary."""
    result = benchmark.pedantic(
        lambda: run_cv_workflow(ice, classifier=ml_bundle["classifier"]),
        rounds=1,
        iterations=1,
    )
    assert result.succeeded
    trace = result.voltammogram
    metrics = result.metrics
    assert trace is not None and metrics is not None

    print("\n--- Fig 7: I-V profile of 2 mM ferrocene (workflow output) ---")
    print(f"{'E (V)':>8} {'I (A)':>12}")
    stride = max(1, len(trace) // 24)
    for index in range(0, len(trace), stride):
        print(f"{trace.potential_v[index]:>8.3f} {trace.current_a[index]:>12.3e}")
    print("\nsummary:", metrics.format_summary())
    print("verdict:", result.normality)

    # shape checks against the paper's plot
    assert 0.40 < metrics.anodic_peak_v < 0.47
    assert 0.33 < metrics.cathodic_peak_v < 0.40
    assert 1e-5 < metrics.anodic_peak_a < 1e-4  # the 1e-5 scale of Fig 7
    assert metrics.e_half_v == pytest.approx(0.40, abs=0.01)
    assert result.normality is not None and result.normality.normal


def test_bench_cv_solver_paper_settings(benchmark):
    """The physics kernel at the paper's acquisition settings."""
    engine = CVEngine(FERROCENE, CONC, AREA)
    trace = benchmark(engine.run, CVParameters())
    assert len(trace) == 1200


@pytest.mark.parametrize("substeps", [1, 2, 4, 8])
def test_bench_fd_resolution_ablation(benchmark, substeps):
    """DESIGN.md ablation: FD grid resolution vs Randles-Sevcik accuracy.

    The timing table gives the runtime side; this prints the accuracy
    side (relative peak-current error against the analytic value).
    """
    engine = CVEngine(
        FERROCENE, CONC, AREA, double_layer_f_cm2=0.0, substeps=substeps
    )
    trace = benchmark(engine.run, CVParameters())
    _, peak = trace.peak_anodic()
    analytic = randles_sevcik_current(1, AREA, CONC, FERROCENE.diffusion_cm2_s, 0.1)
    error = abs(peak - analytic) / analytic
    print(f"\nsubsteps={substeps}: ip error vs Randles-Sevcik = {error*100:.2f} %")
    assert error < 0.02


def test_scan_rate_shape_table(benchmark):
    """The sqrt(v) law across the instrument's scan-rate range."""

    def sweep():
        print("\n--- peak current vs scan rate (Randles-Sevcik shape) ---")
        print(f"{'v (V/s)':>8} {'ip_sim (A)':>12} {'ip_RS (A)':>12} {'ratio':>7}")
        for scan_rate in (0.02, 0.05, 0.1, 0.2, 0.5, 1.0):
            engine = CVEngine(
                FERROCENE, CONC, AREA, double_layer_f_cm2=0.0, substeps=1
            )
            trace = engine.run(
                CVParameters(scan_rate_v_s=scan_rate, e_step_v=0.002)
            )
            _, peak = trace.peak_anodic()
            analytic = randles_sevcik_current(
                1, AREA, CONC, FERROCENE.diffusion_cm2_s, scan_rate
            )
            print(f"{scan_rate:>8.2f} {peak:>12.3e} {analytic:>12.3e} "
                  f"{peak/analytic:>7.3f}")
            assert peak / analytic == pytest.approx(1.0, abs=0.03)

    benchmark.pedantic(sweep, rounds=1, iterations=1)


def test_bench_dpv_technique(benchmark):
    """Extension technique cost: DPV over the same window (many short
    pulse solves vs one long sweep)."""
    from repro.chemistry.cell import ElectrochemicalCell
    from repro.instruments.potentiostat.techniques import DPVTechnique

    cell = ElectrochemicalCell()
    cell.add_liquid(8.0, ferrocene_solution(2.0))
    technique = DPVTechnique()
    trace = benchmark(technique.execute, cell)
    assert len(trace) == technique.n_steps


def test_bench_nicholson_analysis(benchmark):
    """Kinetics post-analysis cost per trace (working-curve interpolation
    plus peak finding)."""
    from repro.analysis import estimate_k0_from_trace
    from repro.chemistry.species import RedoxSpecies

    sluggish = RedoxSpecies(
        name="slow", formal_potential_v=0.4, diffusion_cm2_s=1e-5, k0_cm_s=0.005
    )
    engine = CVEngine(sluggish, 2e-6, AREA, double_layer_f_cm2=0.0, substeps=1)
    trace = engine.run(
        CVParameters(e_begin_v=0.0, e_vertex_v=0.8, scan_rate_v_s=0.2, e_step_v=0.002)
    )
    estimate = benchmark(estimate_k0_from_trace, trace, 1e-5)
    assert estimate.k0_cm_s == pytest.approx(0.005, rel=0.2)


def test_bench_ec_mechanism_solver(benchmark):
    """Solver cost with the EC following-reaction term active."""
    engine = CVEngine(
        FERROCENE, CONC, AREA, double_layer_f_cm2=0.0,
        following_reaction_per_s=0.5,
    )
    trace = benchmark(engine.run, CVParameters(e_step_v=0.002))
    assert len(trace) == 600
