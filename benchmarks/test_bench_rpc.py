"""RPC1 — the control channel itself (paper §3.2.3 / Fig 3).

Cost model of the Pyro-style layer the whole ICE rides on: per-call
latency over real TCP, payload-size scaling, serialisation ablation
(tagged-JSON ndarray frames vs plain lists), and concurrent-client
throughput.

Expected shape: small calls are dominated by the round trip; beyond the
serialisation knee (~10 kB) time grows linearly with payload; ndarray
framing beats list-of-float framing by a wide factor at measurement
sizes (one base64 of a contiguous buffer vs per-element JSON).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.rpc import Daemon, Proxy, expose
from repro.rpc.serialization import deserialize, serialize


@expose
class BenchService:
    def ping(self):
        return None

    def echo(self, value):
        return value


@pytest.fixture(scope="module")
def served():
    daemon = Daemon()
    uri = daemon.register(BenchService(), object_id="Bench")
    daemon.start_background()
    proxy = Proxy(uri)
    yield proxy
    proxy.close()
    daemon.shutdown()


def test_bench_null_call(benchmark, served):
    """The floor: an argument-less remote call over loopback TCP."""
    benchmark(served.ping)


@pytest.mark.parametrize("samples", [100, 1_000, 10_000, 100_000])
def test_bench_payload_scaling(benchmark, served, samples):
    """Measurement-shaped payload (float64 array) round trip vs size."""
    payload = np.linspace(0.0, 1.0, samples)
    result = benchmark(served.echo, payload)
    assert len(result) == samples


def test_bench_serialisation_ndarray_vs_list(benchmark):
    """Ablation: the ndarray fast path against per-element JSON."""
    array = np.linspace(0.0, 1.0, 10_000)

    def array_round_trip():
        return deserialize(serialize(array))

    benchmark(array_round_trip)


def test_bench_serialisation_list_path(benchmark):
    """The slow path the ndarray tagging avoids."""
    values = list(np.linspace(0.0, 1.0, 10_000))

    def list_round_trip():
        return deserialize(serialize(values))

    benchmark(list_round_trip)


def test_bench_concurrent_clients(benchmark, served):
    """Aggregate throughput with 8 clients hammering one daemon."""
    uri = served.uri

    def storm():
        errors: list[Exception] = []

        def worker():
            try:
                with Proxy(uri) as proxy:
                    for _ in range(25):
                        proxy.ping()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    benchmark.pedantic(storm, rounds=3, iterations=1)


def test_bench_connection_setup(benchmark, served):
    """Dial + first call: what a fresh proxy pays."""
    uri = served.uri

    def dial_and_call():
        with Proxy(uri) as proxy:
            proxy.ping()

    benchmark(dial_and_call)


def test_bench_authenticated_call(benchmark):
    """Security ablation: per-call cost with the HMAC handshake enabled.

    The handshake is per *connection*, so steady-state calls should cost
    the same as the unauthenticated floor; only dials pay extra."""
    daemon = Daemon(secret=b"bench-secret")
    uri = daemon.register(BenchService(), object_id="Auth")
    daemon.start_background()
    proxy = Proxy(uri, secret=b"bench-secret")
    try:
        benchmark(proxy.ping)
    finally:
        proxy.close()
        daemon.shutdown()


def test_bench_authenticated_connection_setup(benchmark):
    """Dial + handshake + first call with authentication on."""
    daemon = Daemon(secret=b"bench-secret")
    uri = daemon.register(BenchService(), object_id="Auth2")
    daemon.start_background()

    def dial_and_call():
        with Proxy(uri, secret=b"bench-secret") as proxy:
            proxy.ping()

    try:
        benchmark(dial_and_call)
    finally:
        daemon.shutdown()
