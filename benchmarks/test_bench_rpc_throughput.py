"""RPC2 — the reactor + binary wire vs the threaded JSON baseline.

PR 7 rewrote the daemon's serving core (one selector thread, bounded
per-connection outboxes, reply coalescing) and added wire v2 (binary
bulk framing negotiated via HELLO). This file prices both claims
head-to-head against :class:`~repro.rpc.ThreadedDaemon`, which still
serves the PR 1 way — one thread per connection, JSON-only frames —
and acts as the stand-in for an old peer.

Two gates, both on the same host (loopback, so the deltas measure
syscall count and serialization, not the network):

- **aggregate RPS**: 8 concurrent clients each firing pipelined bursts
  of 32 KiB-ndarray echoes must clear >=2x the threaded baseline. The
  win comes from burst reads + coalesced reply writes (one syscall per
  burst instead of one per frame) and from skipping base64.
- **bulk bytes/s**: single-client reads of a 500k-sample trace must
  clear >=3x. The win is almost entirely wire v2 — the payload travels
  as one raw blob instead of base64-inside-JSON.

The run emits ``BENCH_rpc.json``: both sides' raw numbers, the ratios,
the threaded baseline frozen as a ``repro-baseline-1`` document, and
the reactor run judged against it with :meth:`BaselineStore.compare` —
the artifact CI uploads so the transport's perf trajectory is diffable
release to release.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.obs import BaselineStore
from repro.rpc import Daemon, Proxy, ThreadedDaemon, expose
from repro.rpc.protocol import BINARY_VERSION, VERSION

CLIENTS = 8
BURSTS = 8
BURST = 32
BEST_OF = 5
ECHO_SAMPLES = 4096  # 32 KiB of float64 per call: bulk enough to price base64
BULK_SAMPLES = 500_000
BULK_REPS = 4

RPS_GATE = 2.0
BULK_GATE = 3.0


@expose
class BenchService:
    def echo(self, value):
        return value

    def wave(self, n: int):
        return np.linspace(0.0, 1.0, n)


def _serve(cls):
    daemon = cls(host="127.0.0.1")
    daemon.register(BenchService(), object_id="Bench")
    daemon.start_background()
    host, port = daemon.address
    return daemon, f"PYRO:Bench@{host}:{port}"


def _rps_round(uri: str, binary) -> tuple[float, list[float]]:
    """One round: aggregate calls/s at CLIENTS pipelined clients.

    Also returns the per-call latency samples (burst wall / burst size)
    for the baseline document.
    """
    payload = np.linspace(0.0, 1.0, ECHO_SAMPLES)
    barrier = threading.Barrier(CLIENTS + 1)
    counts: list[int] = []
    samples: list[float] = []
    lock = threading.Lock()

    def worker():
        with Proxy(uri, max_inflight=BURST, binary=binary) as proxy:
            proxy.echo(0)  # connect + negotiate before the clock
            barrier.wait()
            done, local = 0, []
            for _ in range(BURSTS):
                burst_start = time.perf_counter()
                with proxy.pipeline() as pipe:
                    pending = [
                        pipe.call("echo", payload) for _ in range(BURST)
                    ]
                    for future in pending:
                        future.result()
                local.append((time.perf_counter() - burst_start) / BURST)
                done += BURST
            with lock:
                counts.append(done)
                samples.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    return sum(counts) / (time.perf_counter() - start), samples


def _bulk_round(uri: str, binary) -> tuple[float, list[float]]:
    """One round: best bytes/s reading one BULK_SAMPLES-float trace."""
    best, samples = 0.0, []
    with Proxy(uri, binary=binary) as proxy:
        proxy.wave(16)  # connect + negotiate + warm the solver-free path
        for _ in range(BULK_REPS):
            start = time.perf_counter()
            wave = proxy.wave(BULK_SAMPLES)
            elapsed = time.perf_counter() - start
            samples.append(elapsed)
            best = max(best, wave.nbytes / elapsed)
    return best, samples


def _interleaved_best(round_fn, threaded_uri: str, reactor_uri: str):
    """Alternate baseline/candidate rounds so machine-load drift hits
    both sides alike (the OBS1/PROF1 method), keeping each side's best
    round and its samples."""
    best = {"threaded": (0.0, []), "reactor": (0.0, [])}
    for _ in range(BEST_OF):
        for key, uri, binary in (
            ("threaded", threaded_uri, False),
            ("reactor", reactor_uri, "auto"),
        ):
            value, samples = round_fn(uri, binary)
            if value > best[key][0]:
                best[key] = (value, samples)
    return best["threaded"], best["reactor"]


def _stats(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=float)
    return {
        "mean_s": float(arr.mean()),
        "p95_s": float(np.percentile(arr, 95)),
        "count": int(arr.size),
    }


def test_reactor_binary_wire_beats_threaded_json(capsys):
    reactor, reactor_uri = _serve(Daemon)
    threaded, threaded_uri = _serve(ThreadedDaemon)
    try:
        assert reactor.serving_mode == "reactor"
        assert threaded.serving_mode == "threaded"
        # sanity: the matrix really is new-vs-old wire
        with Proxy(reactor_uri) as probe:
            probe.echo(0)
            assert probe.wire_version == BINARY_VERSION
        with Proxy(threaded_uri) as probe:
            probe.echo(0)
            assert probe.wire_version == VERSION

        (threaded_rps, threaded_echo), (reactor_rps, reactor_echo) = (
            _interleaved_best(_rps_round, threaded_uri, reactor_uri)
        )
        (threaded_bulk, threaded_reads), (reactor_bulk, reactor_reads) = (
            _interleaved_best(_bulk_round, threaded_uri, reactor_uri)
        )
    finally:
        reactor.shutdown()
        threaded.shutdown()

    rps_ratio = reactor_rps / threaded_rps
    bulk_ratio = reactor_bulk / threaded_bulk

    # freeze the old transport as the baseline, judge the new one
    # against it: every operation must come back "ok" (i.e. the rewrite
    # regressed nothing even by the HealthEngine's own yardstick)
    store = BaselineStore(min_floor_s=0.0)
    store.record_baseline(
        {
            "rpc.echo_32k": _stats(threaded_echo),
            "rpc.bulk_read": _stats(threaded_reads),
        }
    )
    verdicts = store.compare(
        {
            "rpc.echo_32k": _stats(reactor_echo),
            "rpc.bulk_read": _stats(reactor_reads),
        }
    )

    report = {
        "schema": "repro-bench-rpc-1",
        "workload": {
            "clients": CLIENTS,
            "bursts_per_client": BURSTS,
            "burst": BURST,
            "echo_samples": ECHO_SAMPLES,
            "bulk_samples": BULK_SAMPLES,
            "best_of": BEST_OF,
        },
        "aggregate_rps": {
            "reactor_v2": reactor_rps,
            "threaded_v1": threaded_rps,
            "ratio": rps_ratio,
            "gate": RPS_GATE,
        },
        "bulk_bytes_per_s": {
            "reactor_v2": reactor_bulk,
            "threaded_v1": threaded_bulk,
            "ratio": bulk_ratio,
            "gate": BULK_GATE,
        },
        "baselines": store.to_dict(),
        "verdicts": verdicts,
    }
    Path("BENCH_rpc.json").write_text(
        json.dumps(report, indent=2, sort_keys=True)
    )

    with capsys.disabled():
        print(
            f"\n[RPC2] rps reactor+v2={reactor_rps:,.0f}/s "
            f"threaded+v1={threaded_rps:,.0f}/s "
            f"ratio={rps_ratio:.2f}x (gate >={RPS_GATE}x) | "
            f"bulk reactor+v2={reactor_bulk / 1e6:.1f}MB/s "
            f"threaded+v1={threaded_bulk / 1e6:.1f}MB/s "
            f"ratio={bulk_ratio:.2f}x (gate >={BULK_GATE}x) "
            f"-> BENCH_rpc.json"
        )

    assert rps_ratio >= RPS_GATE, (
        f"aggregate RPS ratio {rps_ratio:.2f}x below the {RPS_GATE}x gate"
    )
    assert bulk_ratio >= BULK_GATE, (
        f"bulk bytes/s ratio {bulk_ratio:.2f}x below the {BULK_GATE}x gate"
    )
    assert not BaselineStore.regressions(verdicts), verdicts
