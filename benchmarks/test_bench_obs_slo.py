"""SLO1 — what the tenant-attributed ops plane costs, and that it pages.

Two claims are priced and gated here:

1. **Overhead.** Rollup rings + tenant attribution ride the metric
   write path and the SLO engine re-evaluates on demand, so the design
   target is <5% added wall time on the paper's e2e CV workflow with
   the whole plane on. Raw e2e wall clock is dominated by simulated
   instrument waits, so — like PROF1 — this file prices the per-write
   cost head-to-head in a tight loop, counts how many metric writes the
   real workflow produces, and gates on the projected fraction of the
   measured e2e wall time. A :class:`BaselineStore` pass (the
   HealthEngine's own yardstick) judges the with-plane workflow's
   per-operation latencies against a detached-plane baseline run.

2. **Alerting.** An injected per-tenant error burst must page: the
   fast-window burn-rate alert has to show up on the telemetry bus, in
   the health report (``slo`` subsystem degraded), in a merged
   two-facility aggregator scrape, and in the rendered ``top`` table —
   while an idle tenant in the same session stays healthy.

The run emits ``BENCH_obs_slo.json`` — timings, projections, baseline
verdicts and the alert evidence — the artifact CI uploads.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.core.cv_workflow import CVWorkflowSettings
from repro.obs import BaselineStore, MetricsRegistry, SLObjective, TimeSeriesStore
from repro.obs.stream import KIND_SLO
from repro.rpc.context import reset_current_tenant, set_current_tenant

SETTINGS = CVWorkflowSettings(e_step_v=0.01)
BATCHES, WRITES_PER_BATCH = 20, 2000
ARTIFACT = Path("BENCH_obs_slo.json")


def _per_write_cost(registry: MetricsRegistry) -> float:
    """Best-of-batches seconds per counter increment."""
    counter = registry.counter("bench.writes_total")
    best = float("inf")
    for _ in range(BATCHES):
        start = time.perf_counter()
        for _ in range(WRITES_PER_BATCH):
            counter.inc(status="ok")
        best = min(best, time.perf_counter() - start)
    return best / WRITES_PER_BATCH


def _update_artifact(section: str, payload: dict) -> None:
    report = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {
        "schema": "repro-bench-obs-slo-1"
    }
    report[section] = payload
    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True))


def test_rollup_slo_overhead_under_five_percent(capsys):
    # -- per-write price: bare registry vs full plane ---------------------
    # the "observed" variant pays tenant attribution (a bound tenant on
    # the context) AND the rollup listener on every write
    bare = MetricsRegistry()
    observed = MetricsRegistry()
    store = TimeSeriesStore()
    store.attach(observed)

    timings = {"bare": float("inf"), "observed": float("inf")}
    token = set_current_tenant("bench-tenant")
    try:
        for _ in range(2):  # interleave so clock drift hits both alike
            timings["bare"] = min(timings["bare"], _per_write_cost(bare))
            timings["observed"] = min(
                timings["observed"], _per_write_cost(observed)
            )
    finally:
        reset_current_tenant(token)
    store.close()
    delta_per_write = timings["observed"] - timings["bare"]

    # the observed side really did attribute and roll up
    assert store.window_stats(
        "bench.writes_total", {"tenant": "bench-tenant"}, window_s=3600
    )["count"] > 0

    # -- baseline run: ops plane detached ---------------------------------
    baseline_store = BaselineStore()
    with repro.connect() as session:
        session.timeseries.close()  # workflow pays for metrics only
        session.run_workflow(settings=SETTINGS)  # warm the stack
        session.run_workflow(settings=SETTINGS)
        baseline_store.record_baseline(session.tracer.summarize())

    # -- observed run: full plane + periodic SLO evaluation ----------------
    writes = 0
    with repro.connect() as session:
        session.run_workflow(settings=SETTINGS)  # warm the stack

        def count_writes(name, kind, labels, value):
            nonlocal writes
            writes += 1

        unsubscribe = session.metrics.add_update_listener(count_writes)
        start = time.perf_counter()
        result = session.run_workflow(settings=SETTINGS)
        evaluations = 0
        eval_start = time.perf_counter()
        session.slo()  # one evaluation per run is the deployment cadence
        evaluations += 1
        eval_cost_s = time.perf_counter() - eval_start
        observed_wall_s = time.perf_counter() - start
        unsubscribe()
        assert result.succeeded
        current_summary = session.tracer.summarize()

    verdicts = baseline_store.compare(current_summary)
    projected_overhead = (
        max(0.0, delta_per_write) * writes + eval_cost_s * evaluations
    ) / observed_wall_s

    payload = {
        "per_write_bare_s": timings["bare"],
        "per_write_observed_s": timings["observed"],
        "per_write_delta_s": delta_per_write,
        "slo_evaluate_s": eval_cost_s,
        "e2e_wall_s": observed_wall_s,
        "e2e_metric_writes": writes,
        "projected_overhead_fraction": projected_overhead,
        "baselines": baseline_store.to_dict(),
        "verdicts": verdicts,
    }
    _update_artifact("overhead", payload)

    with capsys.disabled():
        print(
            f"\n[SLO1] bare={timings['bare'] * 1e9:.0f}ns/write "
            f"observed={timings['observed'] * 1e9:.0f}ns/write "
            f"delta={delta_per_write * 1e9:+.0f}ns | e2e {writes} writes "
            f"in {observed_wall_s:.3f}s + evaluate {eval_cost_s * 1e3:.2f}ms "
            f"-> projected {projected_overhead * 100:+.3f}% (target < 5%) "
            f"-> {ARTIFACT.name}"
        )
    # gates: the projection is the design target; the per-operation
    # baseline pass catches regressions the projection can't see
    assert projected_overhead < 0.05
    assert not BaselineStore.regressions(verdicts), verdicts


def test_error_burst_pages_everywhere_idle_tenant_stays_healthy(capsys):
    """The paper's pitch, end to end: one tenant's burst pages on every
    surface; the quiet tenant shares the facility unbothered."""
    fast_window_s = 2.0
    with repro.connect() as session:
        # the bench objective uses a wall-clock-friendly window pair so
        # the healthy history can age out of the fast window in seconds
        session.slo_engine.add(
            SLObjective(
                name="bench-availability",
                metric="rpc.client.calls_total",
                objective=0.98,
                fast_window_s=fast_window_s,
                slow_window_s=120.0,
                min_events=5,
            )
        )

        def traffic(tenant: str, ok: int, errors: int = 0) -> None:
            tok = set_current_tenant(tenant)
            try:
                for _ in range(ok):
                    session.client.call_Status_JKem()
                for _ in range(errors):
                    try:
                        session.client.call_No_Such_Verb()
                    except Exception:
                        pass  # the point is the status=error sample
            finally:
                reset_current_tenant(tok)

        # long healthy history for both tenants, then let it age out of
        # the fast window so the burst dominates it alone
        traffic("lab-burst", ok=120)
        traffic("lab-idle", ok=120)
        time.sleep(fast_window_s + 0.5)
        traffic("lab-burst", ok=0, errors=10)

        statuses = session.slo()
        by_key = {(s["objective"], s["tenant"]): s for s in statuses}
        burst = by_key[("bench-availability", "lab-burst")]
        idle = by_key[("bench-availability", "lab-idle")]
        assert burst["alerts"] == ["fast"], burst
        assert burst["burn_fast"] > 14
        assert idle["alerts"] == [], idle

        # 1/4: the transition landed on the telemetry bus (drain every
        # page — metric-update events share the same ring)
        events, cursor = [], 0
        while True:
            page, cursor, _ = session.bus.read_since(cursor)
            if not page:
                break
            events.extend(page)
        alerts = [
            e for e in events if e.kind == KIND_SLO and e.name == "slo.alert"
        ]
        assert any(e.data["tenant"] == "lab-burst" for e in alerts)
        assert not any(e.data["tenant"] == "lab-idle" for e in alerts)

        # 2/4: the health report degrades the slo subsystem (fast-only
        # burn: degraded, not unhealthy — no objective fires both)
        report = session.health()
        assert report.subsystems["slo"].status == "degraded", report.subsystems[
            "slo"
        ]

        # 3/4: a merged two-facility scrape attributes the burst tenant
        # (drain the backlog — refresh pages at 512 rows per source)
        agg = session.aggregator()
        for _ in range(50):
            if agg.refresh() == 0:
                break
        view = agg.view()
        assert set(view["facilities"]) == {"dgx-session", "acl-daemon"}
        burst_metrics = view["tenants"]["lab-burst"]
        assert burst_metrics["rpc.client.calls_total"]["error_sum"] >= 10
        # the daemon half contributed too: only real dispatches land there
        assert "acl-daemon" in view["tenants"]["lab-burst"].get(
            "rpc.daemon.calls_total", {}
        ).get("facilities", [])

        # 4/4: the rendered top table pages the right row
        table = session.top()
        burst_row = next(
            line for line in table.splitlines() if line.startswith("lab-burst")
        )
        idle_row = next(
            line for line in table.splitlines() if line.startswith("lab-idle")
        )
        assert "ALERT" in burst_row and "fast" in burst_row
        assert "ALERT" not in idle_row

        payload = {
            "burst_status": {
                k: v for k, v in burst.items() if not isinstance(v, dict)
            },
            "idle_status": {
                k: v for k, v in idle.items() if not isinstance(v, dict)
            },
            "health_slo": report.subsystems["slo"].status,
            "bus_alerts": [e.data for e in alerts],
            "facilities": view["facilities"],
            "top": table,
        }
    _update_artifact("alerting", payload)

    with capsys.disabled():
        print(
            f"\n[SLO2] lab-burst burn_fast={burst['burn_fast']:.1f}x "
            f"(fast-only alert) health[slo]=degraded | lab-idle clean | "
            f"merged facilities={view['facilities']} -> {ARTIFACT.name}"
        )
