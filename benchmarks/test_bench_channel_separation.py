"""CH1 — the channel-separation design claim (paper §3.1).

"The separation of the network channels alleviates the delays of control
commands transferred over the shared ICE network."

Method: run control-command pings while a bulk measurement transfer
saturates the data path, on two ecosystems that differ only in
``separate_channels``. On the shared topology every control frame queues
behind 256 KiB data chunks on the same links; on the dedicated topology
it never does.

Expected shape: under bulk load, shared-channel control latency degrades
by a large factor (roughly the serialisation time of a data chunk on the
bottleneck link); separated channels hold their unloaded latency. This
is the crossover the paper's design buys.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.facility.ice import ElectrochemistryICE, ICEConfig
from repro.facility.workstation import WorkstationConfig
from repro.net.links import LinkSpec


def _slow_wan_config(mode: str) -> ICEConfig:
    # a modest cross-facility pipe makes contention visible on a laptop run
    return ICEConfig(
        workstation=WorkstationConfig(),
        channel_mode=mode,
        wan_link=LinkSpec(latency_s=0.002, bandwidth_bps=200e6),
    )


@pytest.fixture(
    scope="module",
    params=["separate", "shared", "priority"],
    ids=["separate", "shared", "priority"],
)
def ecosystem(request):
    ice = ElectrochemistryICE.build(_slow_wan_config(request.param))
    # stage a bulk file on the share (a long multi-cycle acquisition)
    payload = np.random.default_rng(0).bytes(6 * 1024 * 1024)
    (ice.measurement_dir / "bulk.bin").write_bytes(payload)
    yield request.param, ice
    ice.shutdown()


def _measure_control_latency(client, samples: int = 30) -> np.ndarray:
    latencies = np.empty(samples)
    for index in range(samples):
        start = time.perf_counter()
        client.ping()
        latencies[index] = time.perf_counter() - start
    return latencies


def test_ch1_contention_table(benchmark, ecosystem):
    """The headline table: control latency with and without bulk load,
    across three designs — shared FCFS, priority-queued shared (QoS), and
    physically separate channels (the paper's)."""
    mode, ice = ecosystem
    client = ice.client()
    mount = ice.mount()

    quiet = benchmark.pedantic(
        lambda: _measure_control_latency(client), rounds=1, iterations=1
    )

    stop = threading.Event()

    def bulk_reader():
        while not stop.is_set():
            mount.read_bytes("bulk.bin")

    thread = threading.Thread(target=bulk_reader, daemon=True)
    thread.start()
    time.sleep(0.05)  # let the transfer ramp up
    loaded = _measure_control_latency(client)
    stop.set()
    thread.join(timeout=30.0)

    print(f"\n--- CH1 ({mode} channels) control-command latency ---")
    print(f"{'condition':<18} {'p50 (ms)':>10} {'p95 (ms)':>10}")
    for name, values in (("quiet", quiet), ("under bulk load", loaded)):
        print(
            f"{name:<18} {np.percentile(values, 50)*1e3:>10.2f} "
            f"{np.percentile(values, 95)*1e3:>10.2f}"
        )
    degradation = np.percentile(loaded, 50) / np.percentile(quiet, 50)
    print(f"median degradation factor: {degradation:.1f}x")

    mount.unmount()
    client.close()

    if mode == "separate":
        # dedicated channels: bulk load must not blow up control latency
        assert degradation < 3.0
    elif mode == "priority":
        # QoS: control waits at most one in-flight data chunk per hop —
        # bounded degradation, cheaper than pulling new fibre
        assert degradation < 3.5
    else:
        # shared FCFS: control frames queue behind 256 KiB data chunks
        assert degradation > 3.0


def test_bench_control_ping_quiet(benchmark, ecosystem):
    """Baseline ping latency on each topology (no competing traffic)."""
    _mode, ice = ecosystem
    client = ice.client()
    benchmark(client.ping)
    client.close()
