"""Pipelining speedup gate at a simulated WAN round trip (ISSUE 3).

Runs the two RTT-bound hot paths — a 16-call RPC burst and a multi-chunk
``Mount`` file fetch — serially and pipelined over a loopback transport
with a real 10 ms round trip (5 ms propagation each way, delays
overlapping as on a physical link; see :mod:`repro.net.delay`). Each
pipelined path must beat its serial baseline by the gate ratio.

Expected shape of the numbers: a serial N-call path costs
``N × (RTT + proc)``; pipelined it costs ``RTT + N × proc``, so at 10 ms
RTT and 16 calls the ideal ratio approaches 16×. The gate is 3× to stay
robust on noisy CI runners.

Numbers are written to ``pipelining-report.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.datachannel.mount import Mount
from repro.datachannel.share import FileShareService
from repro.net.delay import delayed_loopback
from repro.rpc import Daemon, Proxy, expose

ONE_WAY_S = 0.005  # 10 ms RTT
BURST = 16
GATE_RATIO = 3.0
READ_SIZE = 16 * 1024  # both arms fetch with the same granularity
N_CHUNKS = 16


@expose
class BenchService:
    def ping2(self) -> str:
        return "pong"


@pytest.fixture()
def delayed_daemon():
    listener, factory = delayed_loopback(ONE_WAY_S)
    daemon = Daemon(listener=listener)
    uri = daemon.register(BenchService(), object_id="Bench")
    thread = threading.Thread(target=daemon.request_loop, daemon=True)
    thread.start()
    yield uri, factory
    daemon.shutdown()


@pytest.fixture()
def delayed_share(tmp_path):
    share_root = tmp_path / "share"
    share_root.mkdir()
    payload = bytes(range(256)) * (N_CHUNKS * READ_SIZE // 256)
    (share_root / "measurement.bin").write_bytes(payload)
    listener, factory = delayed_loopback(ONE_WAY_S)
    daemon = Daemon(listener=listener)
    uri = daemon.register(
        FileShareService(share_root, share_name="bench"), object_id="Share"
    )
    thread = threading.Thread(target=daemon.request_loop, daemon=True)
    thread.start()
    yield uri, factory, payload
    daemon.shutdown()


def _report(name: str, serial_s: float, pipelined_s: float) -> float:
    ratio = serial_s / pipelined_s
    path = Path("pipelining-report.json")
    report = json.loads(path.read_text()) if path.exists() else {}
    report[name] = {
        "rtt_ms": ONE_WAY_S * 2 * 1000,
        "serial_ms": round(serial_s * 1000, 2),
        "pipelined_ms": round(pipelined_s * 1000, 2),
        "speedup": round(ratio, 2),
        "gate": GATE_RATIO,
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(
        f"\n{name}: serial {serial_s * 1000:.1f} ms, "
        f"pipelined {pipelined_s * 1000:.1f} ms -> {ratio:.1f}x"
    )
    return ratio


def test_rpc_burst_speedup(delayed_daemon):
    """A 16-call burst must run >=3x faster pipelined at 10 ms RTT."""
    uri, factory = delayed_daemon

    with Proxy(uri, connection_factory=factory) as proxy:
        proxy.ping2()  # connect outside the timed region
        start = time.monotonic()
        for _ in range(BURST):
            proxy.ping2()
        serial_s = time.monotonic() - start

    with Proxy(uri, connection_factory=factory, max_inflight=BURST) as proxy:
        proxy.ping2()
        start = time.monotonic()
        with proxy.pipeline() as pipe:
            pending = [pipe.call("ping2") for _ in range(BURST)]
            replies = [p.result() for p in pending]
        pipelined_s = time.monotonic() - start

    assert replies == ["pong"] * BURST
    ratio = _report("rpc_burst_16", serial_s, pipelined_s)
    assert ratio >= GATE_RATIO, (
        f"pipelined burst only {ratio:.2f}x faster (gate {GATE_RATIO}x)"
    )


def test_mount_fetch_speedup(delayed_share):
    """A multi-chunk Mount fetch must run >=3x faster pipelined."""
    uri, factory, payload = delayed_share

    serial_proxy = Proxy(uri, connection_factory=factory, timeout=60.0)
    serial_mount = Mount(serial_proxy, read_size=READ_SIZE)
    serial_mount.exists("measurement.bin")  # connect outside timing
    start = time.monotonic()
    serial_data = serial_mount.read_bytes("measurement.bin", verify=True)
    serial_s = time.monotonic() - start
    serial_mount.unmount()

    piped_proxy = Proxy(
        uri, connection_factory=factory, timeout=60.0, max_inflight=N_CHUNKS + 2
    )
    piped_mount = Mount(piped_proxy, read_size=READ_SIZE)
    piped_mount.exists("measurement.bin")
    start = time.monotonic()
    piped_data = piped_mount.read_bytes("measurement.bin", verify=True)
    pipelined_s = time.monotonic() - start
    piped_mount.unmount()

    assert serial_data == payload
    assert piped_data == payload
    ratio = _report("mount_fetch_16_chunks", serial_s, pipelined_s)
    assert ratio >= GATE_RATIO, (
        f"pipelined fetch only {ratio:.2f}x faster (gate {GATE_RATIO}x)"
    )
