"""ML1 — the I-V normality method (paper §4.3.3, ref [11]).

The paper reports: normal runs flagged "normal"; disconnected-electrode
and low-analyte-volume runs flagged "abnormal". This bench trains the
GPR+EOT classifier on simulator data, prints the held-out confusion
matrix, and times the two halves of the method (feature extraction with
its GPR fit, and ensemble inference).

Expected shape: near-perfect recall on disconnected electrodes (the
signature is orders of magnitude), high accuracy overall; feature
extraction dominates inference cost (the GPR hyperparameter fit is the
expensive part).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.ensemble import EnsembleOfTreesClassifier
from repro.ml.features import extract_features


def test_ml1_confusion_matrix(benchmark, ml_bundle):
    """Held-out classification quality, printed as the paper would report."""
    labels = ml_bundle["labels"]
    features = ml_bundle["features"]
    test_idx = ml_bundle["test_idx"]
    classifier = ml_bundle["classifier"]

    predictions = benchmark.pedantic(
        lambda: classifier.ensemble.predict(features[test_idx]),
        rounds=1,
        iterations=1,
    )
    truth = labels[test_idx]
    classes = sorted(set(labels))

    print("\n--- ML1: held-out confusion matrix (rows = truth) ---")
    header = " " * 24 + "".join(f"{c[:12]:>14}" for c in classes)
    print(header)
    for actual in classes:
        row = [
            int(np.sum((truth == actual) & (predictions == predicted)))
            for predicted in classes
        ]
        print(f"{actual:<24}" + "".join(f"{n:>14d}" for n in row))

    accuracy = float(np.mean(predictions == truth))
    print(f"\naccuracy = {accuracy:.3f}   oob = {classifier.oob_score:.3f}")
    assert accuracy >= 0.85

    # the paper's headline: abnormal conditions are flagged abnormal
    abnormal_mask = truth != "normal"
    flagged = predictions[abnormal_mask] != "normal"
    print(f"abnormal runs flagged abnormal: {flagged.mean()*100:.0f} %")
    assert flagged.mean() >= 0.9


def test_bench_feature_extraction(benchmark, ml_bundle):
    """GPR feature extraction per trace (the expensive half)."""
    trace = ml_bundle["traces"][0]
    features = benchmark(extract_features, trace)
    assert np.all(np.isfinite(features))


def test_bench_ensemble_inference(benchmark, ml_bundle):
    """EOT inference per feature vector (the cheap half)."""
    classifier = ml_bundle["classifier"]
    row = ml_bundle["features"][:1]
    proba = benchmark(classifier.ensemble.predict_proba, row)
    assert proba.shape[1] >= 2


def test_bench_end_to_end_classify(benchmark, ml_bundle):
    """Full verdict for one fresh trace (what the workflow calls)."""
    classifier = ml_bundle["classifier"]
    trace = ml_bundle["traces"][1]
    report = benchmark(classifier.classify, trace)
    assert 0.0 <= report.confidence <= 1.0


def test_bench_ensemble_training(benchmark, ml_bundle):
    """EOT training on the full feature matrix."""
    features = ml_bundle["features"]
    labels = ml_bundle["labels"]

    def train():
        return EnsembleOfTreesClassifier(n_trees=60, random_state=1).fit(
            features, labels
        )

    model = benchmark(train)
    assert model.oob_score_ > 0.8


@pytest.mark.parametrize("n_trees", [10, 30, 60, 120])
def test_bench_ensemble_size_ablation(benchmark, ml_bundle, n_trees):
    """Ablation: ensemble size vs OOB accuracy (printed) and fit time."""
    features = ml_bundle["features"]
    labels = ml_bundle["labels"]

    def train():
        return EnsembleOfTreesClassifier(n_trees=n_trees, random_state=1).fit(
            features, labels
        )

    model = benchmark.pedantic(train, rounds=1, iterations=1)
    print(f"\nn_trees={n_trees}: oob accuracy = {model.oob_score_:.3f}")
