"""OBS1 — what tracing + metrics cost on the RPC fast path.

The observability layer must be cheap enough to leave on for every
cross-facility call: the design target is <5% added latency per call
over the PR-1 resilience baseline (one span + two metric updates per
call on each side of the wire). This file prices the happy path the
same way RES1 does — interleaved best-of-batches so clock drift hits
both variants alike.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.rpc import Daemon, Proxy, expose


@expose
class BenchService:
    def ping(self):
        return None

    def echo(self, value):
        return value


@pytest.fixture(scope="module")
def served():
    # one daemon serves both variants; tracing engages per-request only
    # when the client sent a span context, so bare calls stay untouched
    daemon = Daemon()
    uri = daemon.register(BenchService(), object_id="ObsBench")
    daemon.start_background()
    yield uri, daemon
    daemon.shutdown()


@pytest.fixture(scope="module")
def observed(served):
    uri, daemon = served
    tracer = Tracer("bench")
    metrics = MetricsRegistry()
    daemon.tracer = tracer
    daemon.metrics = metrics
    with Proxy(uri, tracer=tracer, metrics=metrics) as proxy:
        yield proxy
    daemon.tracer = None
    daemon.metrics = None


def test_bench_traced_proxy_call(benchmark, observed):
    """A small call with client span + daemon span + metrics per call."""
    benchmark(observed.echo, 1.0)


def test_tracing_overhead_under_five_percent(served, capsys):
    """Head-to-head: bare proxy vs fully-observed proxy.

    Mirrors RES1's method: interleaved batches, best batch per variant
    (floor latency), a loose loopback gate for noisy CI boxes, and the
    <5% design target stated against a 1 ms cross-facility RTT.
    """
    uri, daemon = served
    batches, calls = 30, 50

    tracer = Tracer("bench", max_spans=200_000)
    metrics = MetricsRegistry()
    daemon.tracer = tracer
    daemon.metrics = metrics
    try:
        with Proxy(uri) as plain, Proxy(
            uri, tracer=tracer, metrics=metrics
        ) as traced:
            for proxy in (plain, traced):  # warm both connections
                for _ in range(calls):
                    proxy.echo(1.0)

            def best_batch(proxy):
                best = float("inf")
                for _ in range(batches):
                    start = time.perf_counter()
                    for _ in range(calls):
                        proxy.echo(1.0)
                    best = min(best, time.perf_counter() - start)
                return best / calls

            timings = {}
            for _ in range(2):  # interleave: bare, traced, bare, traced
                for name, proxy in (("bare", plain), ("traced", traced)):
                    timings[name] = min(
                        timings.get(name, float("inf")), best_batch(proxy)
                    )

        # the observed side really did record everything
        assert len(tracer) > 0
        assert (
            metrics.counter("rpc.client.calls_total", "").total() > 0
        )
    finally:
        daemon.tracer = None
        daemon.metrics = None

    overhead = timings["traced"] / timings["bare"] - 1.0
    delta_s = timings["traced"] - timings["bare"]
    # per-call tracing cost is fixed, so its relative weight shrinks
    # with the round trip; loopback is the worst case and the 5% gate
    # is stated against the paper's ~1ms cross-facility RTT
    wan_overhead = delta_s / (timings["bare"] + 1e-3)
    with capsys.disabled():
        print(
            f"\n[OBS1] bare={timings['bare'] * 1e6:.1f}us/call "
            f"traced={timings['traced'] * 1e6:.1f}us/call "
            f"delta={delta_s * 1e6:+.1f}us "
            f"loopback overhead={overhead * 100:+.1f}% | "
            f"at 1ms RTT: {wan_overhead * 100:+.2f}% (target < 5%)"
        )
    # egregious-regression gate only; the design target is the report
    assert overhead < 0.5
    assert wan_overhead < 0.05
