"""WF1 — the end-to-end workflow (paper §4.2).

Times the five-task CV workflow and prints the per-task breakdown, which
is the operational answer to "what does cross-facility automation cost
per experiment": the acquisition dominates, the orchestration overhead
(Pyro calls + file fetch) is marginal — exactly the trade the paper's
human-in-the-loop comparison motivates.

Also benches the multi-round campaign to show per-round marginal cost
once the cell is filled and the SP200 session is warm.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import Campaign, scan_rate_strategy
from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow

FAST = CVWorkflowSettings(e_step_v=0.002)


def test_wf1_per_task_breakdown(benchmark, ice, ml_bundle):
    """One workflow run with the task table the paper's demo implies."""
    result = benchmark.pedantic(
        lambda: run_cv_workflow(ice, classifier=ml_bundle["classifier"]),
        rounds=1,
        iterations=1,
    )
    assert result.succeeded

    print("\n--- WF1: per-task wall time ---")
    print(f"{'task':<30} {'state':<10} {'ms':>9} {'attempts':>9}")
    total = 0.0
    for name, task in result.workflow.tasks.items():
        total += task.duration_s
        print(
            f"{name:<30} {task.state.value:<10} "
            f"{task.duration_s*1e3:>9.1f} {task.attempts:>9d}"
        )
    print(f"{'TOTAL':<30} {'':<10} {total*1e3:>9.1f}")
    acquisition = result.workflow.tasks["D_run_cv"].duration_s
    assert acquisition > 0.0
    ice.workstation.cell.drain()


def test_bench_full_workflow(benchmark, ice):
    """Tasks A-E + analysis end to end."""

    def run():
        result = run_cv_workflow(ice, settings=FAST)
        assert result.succeeded
        ice.workstation.cell.drain()
        return result

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_bench_campaign_three_rounds(benchmark, ice):
    """Three-round scan-rate campaign on one cell fill."""

    def run():
        rounds = Campaign(
            ice, scan_rate_strategy((0.1, 0.2, 0.4), base=FAST)
        ).run()
        assert len(rounds) == 3
        assert all(record.result.succeeded for record in rounds)
        ice.workstation.cell.drain()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_workflow_orchestration_overhead(benchmark, ice):
    """Everything except the acquisition: tasks A, B, E plus teardown.

    The difference between this and the full workflow is the physics,
    isolating what the ICE machinery itself costs per experiment."""

    def overhead_only():
        client = ice.client()
        client.ping()
        client.call_Connect_JKem_API()
        client.call_Status_JKem()
        client.call_Set_Rate_SyringePump(1, 5.0)
        client.call_Exit_JKem_API()
        client.close()

    benchmark(overhead_only)
