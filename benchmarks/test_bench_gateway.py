"""GATEWAY1 — fairness, quota enforcement, and crash-restart integrity.

PR 8 put a multi-tenant gateway in front of the instrument cells: a
journal-backed job queue, weighted stride scheduling, per-tenant quotas
and rate limits. This benchmark prices the scheduler's *contracts*, not
raw speed — with four tenants of very unequal load sharing two cells:

- **no tenant starves**: while tenant *t* has queued work, at most
  ``sum(ceil(w_u / w_t))`` other placements separate two of its
  services (the stride bound), no matter how deep the heavy tenants'
  backlogs are;
- **weighted shares hold**: while every tenant is backlogged, each
  window of placements splits in weight proportion, exactly;
- **quotas enforce**: a tenant over its active-job cap is rejected with
  the stable ``GATEWAY_QUOTA_EXCEEDED`` code, and the rejection is
  metered;
- **a crashed gateway restarts whole**: jobs queued at the moment of
  death are all still queued after reopening the journal, and across
  the whole run every job executes exactly once — zero duplicates.

The run emits ``BENCH_gateway.json``: placement shares, starvation
gaps, scheduling throughput, the pre-crash step-latency distribution
frozen as a ``repro-baseline-1`` document and the post-restart drain
judged against it — the artifact CI uploads so scheduler behaviour is
diffable release to release.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.errors import QuotaExceededError
from repro.gateway import Cell, Gateway, SUCCEEDED, TenantSpec
from repro.obs import BaselineStore, MetricsRegistry

#: Four tenants, unequal weights AND unequal load.
TENANTS = (
    TenantSpec("phys", "key-phys", weight=1.0, max_active=8),
    TenantSpec("chem", "key-chem", weight=1.0, max_active=64),
    TenantSpec("bio", "key-bio", weight=2.0, max_active=64),
    TenantSpec("ml", "key-ml", weight=4.0, max_active=64),
)
LOADS = {"phys": 8, "chem": 12, "bio": 20, "ml": 36}
WEIGHTS = {s.tenant_id: s.weight for s in TENANTS}
WEIGHT_TOTAL = sum(WEIGHTS.values())
CELLS = 2

#: Window where every tenant is still backlogged; shares are exact there.
SHARE_WINDOW = 24

QUOTA_ATTEMPTS = 12  # against phys's max_active of 8
RESTART_PER_TENANT = 6
RESTART_RUN_BEFORE_CRASH = 10

SPEC = {
    "strategy": {"kind": "scan-rate", "scan_rates_v_s": [0.1], "base": {}},
    "max_rounds": 1,
}


def _stats(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=float)
    return {
        "mean_s": float(arr.mean()),
        "p95_s": float(np.percentile(arr, 95)),
        "count": int(arr.size),
    }


def _build(tmp_path, executions, metrics=None):
    def runner(job, cell, ctx):
        executions.setdefault(job.job_id, []).append(ctx.resume)
        return {"state": SUCCEEDED, "rounds": 1}

    return Gateway(
        [Cell(f"cell-{i}") for i in range(CELLS)],
        tmp_path / "gw",
        tenants=TENANTS,
        runner=runner,
        metrics=metrics,
        fsync=False,  # benchmark: price the scheduler, not the disk
    )


def _drain(gateway, placements, step_samples):
    """Step the queue dry, recording placement order and step latency."""
    drained = 0
    while True:
        start = time.perf_counter()
        view = gateway.step()
        if view is None:
            return drained
        step_samples.append(time.perf_counter() - start)
        placements.append(view["tenant"])
        drained += 1


def _max_gaps(order: list[str]) -> dict[str, int]:
    """Per tenant: the longest placement-to-placement gap while queued."""
    gaps: dict[str, int] = {}
    last: dict[str, int] = {t: -1 for t in LOADS}
    remaining = dict(LOADS)
    for i, tenant in enumerate(order):
        gaps[tenant] = max(gaps.get(tenant, 0), i - last[tenant])
        last[tenant] = i
        remaining[tenant] -= 1
    return gaps


def test_gateway_fairness_quota_and_restart(tmp_path, capsys):
    executions: dict[str, list[bool]] = {}
    metrics = MetricsRegistry()

    # -- phase 1: fairness under unequal backlog ---------------------------
    gateway = _build(tmp_path, executions, metrics=metrics)
    for spec in TENANTS:
        for _ in range(LOADS[spec.tenant_id]):
            gateway.submit(spec.tenant_id, spec.api_key, SPEC)
    placements: list[str] = []
    fair_steps: list[float] = []
    wall_start = time.perf_counter()
    drained = _drain(gateway, placements, fair_steps)
    fair_wall = time.perf_counter() - wall_start
    assert drained == sum(LOADS.values())

    # exact weighted shares while everyone is backlogged
    window = placements[:SHARE_WINDOW]
    shares = {t: window.count(t) for t in LOADS}
    expected = {
        t: round(SHARE_WINDOW * WEIGHTS[t] / WEIGHT_TOTAL) for t in LOADS
    }
    assert shares == expected, (shares, expected)

    # the starvation bound, per tenant, over the whole drain: between two
    # services of t, each other tenant u fits at most ceil(w_u / w_t)
    # placements into t's stride interval
    gaps = _max_gaps(placements)
    bounds = {
        t: 1
        + sum(
            math.ceil(WEIGHTS[u] / WEIGHTS[t]) for u in LOADS if u != t
        )
        for t in LOADS
    }
    for tenant, gap in gaps.items():
        assert gap <= bounds[tenant], (
            f"{tenant} went {gap} placements without service "
            f"(bound {bounds[tenant]})"
        )

    # -- phase 2: quota enforcement ----------------------------------------
    accepted, rejected, codes = 0, 0, set()
    for _ in range(QUOTA_ATTEMPTS):
        try:
            gateway.submit("phys", "key-phys", SPEC)
            accepted += 1
        except QuotaExceededError as exc:
            rejected += 1
            codes.add(exc.code)
    assert accepted == 8 and rejected == QUOTA_ATTEMPTS - 8
    assert codes == {"GATEWAY_QUOTA_EXCEEDED"}
    assert (
        metrics.counter("gateway.rejects_total").value(reason="quota")
        == rejected
    )
    gateway.run_until_idle()

    # -- phase 3: crash mid-queue, restart, drain --------------------------
    for spec in TENANTS:
        for _ in range(RESTART_PER_TENANT):
            gateway.submit(spec.tenant_id, spec.api_key, SPEC)
    gateway.run_until_idle(max_jobs=RESTART_RUN_BEFORE_CRASH)
    queued_at_crash = gateway.queue_depth()
    assert queued_at_crash == len(TENANTS) * RESTART_PER_TENANT - (
        RESTART_RUN_BEFORE_CRASH
    )
    gateway.store.close()  # the crash: no orderly shutdown, journal only

    reopened = _build(tmp_path, executions)
    assert reopened.queue_depth() == queued_at_crash
    restart_placements: list[str] = []
    restart_steps: list[float] = []
    assert _drain(reopened, restart_placements, restart_steps) == (
        queued_at_crash
    )
    reopened.close()

    # ZERO duplicate executions across the entire run: every job ran
    # exactly once (nothing was mid-flight at the crash, so nothing may
    # have been re-executed either)
    double_runs = {j: r for j, r in executions.items() if len(r) != 1}
    assert not double_runs, double_runs
    total_jobs = sum(LOADS.values()) + accepted + len(TENANTS) * (
        RESTART_PER_TENANT
    )
    assert len(executions) == total_jobs

    # -- artifact: pre-crash step latency frozen, restart drain judged -----
    store = BaselineStore()
    store.record_baseline({"gateway.step": _stats(fair_steps)})
    verdicts = store.compare({"gateway.step": _stats(restart_steps)})

    throughput = drained / fair_wall
    report = {
        "schema": "repro-bench-gateway-1",
        "workload": {
            "tenants": {
                s.tenant_id: {
                    "weight": s.weight,
                    "load": LOADS[s.tenant_id],
                    "max_active": s.max_active,
                }
                for s in TENANTS
            },
            "cells": CELLS,
            "share_window": SHARE_WINDOW,
        },
        "fairness": {
            "placements_first_window": shares,
            "expected_first_window": expected,
            "max_gap": gaps,
            "starvation_bound": bounds,
        },
        "throughput_jobs_per_s": throughput,
        "quota": {
            "attempted": QUOTA_ATTEMPTS,
            "accepted": accepted,
            "rejected": rejected,
            "code": "GATEWAY_QUOTA_EXCEEDED",
        },
        "restart": {
            "queued_at_crash": queued_at_crash,
            "queued_after_reopen": queued_at_crash,
            "duplicate_executions": len(double_runs),
            "jobs_total": total_jobs,
        },
        "baselines": store.to_dict(),
        "verdicts": verdicts,
    }
    Path("BENCH_gateway.json").write_text(
        json.dumps(report, indent=2, sort_keys=True)
    )

    with capsys.disabled():
        worst = max(gaps[t] / bounds[t] for t in gaps)
        print(
            f"\n[GATEWAY1] {drained} jobs, 4 tenants / {CELLS} cells "
            f"@ {throughput:,.0f} jobs/s | shares {shares} "
            f"(exact) | worst gap {worst:.0%} of bound | quota "
            f"{rejected}/{QUOTA_ATTEMPTS} rejected "
            f"| restart kept {queued_at_crash} queued, 0 duplicates "
            f"-> BENCH_gateway.json"
        )

    assert not BaselineStore.regressions(verdicts), verdicts
