"""TRACE1 — the diagnosis plane earns its keep (and stays cheap).

Three gates, one artifact:

1. **Blame accounting** — the critical path of the pipelined
   cross-facility CV workflow must attribute >=90% of the root's wall
   time to concrete operations, and the top contributor must be an
   instrument-side op (the paper's bottleneck: the potentiostat wait).
2. **Tail sampling fidelity** — at a 10% per-tenant budget, injected
   slow and error traces are kept 100% while normal traffic lands in a
   [5%, 15%] keep band per tenant (the deterministic counters pin it at
   exactly 10%; the band allows for counter-phase effects at small N).
3. **Overhead** — indexing + sampling priced per span head-to-head in a
   tight loop (interleaved best-of-batches, the PROF1/OBS1 method) and
   projected over the e2e run's real span volume must stay under the 5%
   observability budget.

The run emits ``BENCH_trace.json`` — blame table, per-tenant sampling
stats, overhead numbers, and ``BaselineStore`` verdicts comparing a
second e2e run against the first — the artifact CI uploads so the
trajectory is diffable release to release.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.clock import VirtualClock
from repro.core.config import SessionConfig
from repro.obs import TraceIndex, TraceSampler, Tracer
from repro.obs.baseline import BaselineStore

BATCHES, SPANS_PER_BATCH = 20, 400
BUDGET = 0.10


# ---------------------------------------------------------------------------
# gate 1 + 3 + artifact: e2e workflow with the full diagnosis plane on
# ---------------------------------------------------------------------------


def _per_span_cost(tracer: Tracer) -> float:
    """Best-of-batches seconds per open+close of one root span."""
    best = float("inf")
    for _ in range(BATCHES):
        start = time.perf_counter()
        for _ in range(SPANS_PER_BATCH):
            with tracer.start_as_current_span("bench.op"):
                pass
        best = min(best, time.perf_counter() - start)
    return best / SPANS_PER_BATCH


def test_blame_and_overhead_on_e2e_workflow(capsys):
    # -- per-span price, bare vs indexed+sampled -------------------------
    bare = Tracer("bare", max_spans=SPANS_PER_BATCH * 2)
    analyzed = Tracer("analyzed", max_spans=SPANS_PER_BATCH * 2)
    TraceSampler(budget=BUDGET).attach(analyzed)
    TraceIndex().attach(analyzed)

    timings = {"bare": float("inf"), "analyzed": float("inf")}
    for _ in range(2):  # interleave so clock drift hits both alike
        timings["bare"] = min(timings["bare"], _per_span_cost(bare))
        timings["analyzed"] = min(
            timings["analyzed"], _per_span_cost(analyzed)
        )
    delta_per_span = timings["analyzed"] - timings["bare"]

    # -- e2e run with the diagnosis plane wired through the facade -------
    config = SessionConfig(trace_sample_budget=BUDGET)
    with repro.connect(session=config) as session:
        session.run_workflow()  # warm the stack
        start = time.perf_counter()
        result = session.run_workflow(profile=True)
        wall_s = time.perf_counter() - start
        assert result.succeeded and result.profile is not None
        store = BaselineStore(clock=session.tracer.clock)
        store.record_baseline(session.tracer.summarize())

        # -- gate 1: blame table over the measured run's trace -----------
        # newest-first workflow-rooted query so neither the warm-up run
        # (cold connection establishment dominates it) nor stray
        # post-run RPC traces are the one judged
        summaries = session.traces(op="workflow", limit=1)
        assert summaries, "the index saw no traces"
        blame = session.explain(summaries[0]["trace_id"])
        assert blame is not None

        # -- second run for baseline verdicts ----------------------------
        session.run_workflow()
        verdicts = store.compare(session.tracer.summarize())

    spans_in_run = sum(
        stats["count"] for stats in result.profile["operations"].values()
    )
    projected = max(0.0, delta_per_span) * spans_in_run / wall_s

    top = blame["blame"][0]
    report = {
        "schema": "repro-bench-trace-1",
        "settings": {"budget": BUDGET},
        "blame": {
            "trace_id": blame["trace_id"],
            "root": blame["root"],
            "root_duration_s": blame["root_duration_s"],
            "coverage": blame["coverage"],
            "span_count": blame["span_count"],
            "top": blame["blame"][:10],
        },
        "overhead": {
            "per_span_bare_s": timings["bare"],
            "per_span_analyzed_s": timings["analyzed"],
            "per_span_delta_s": delta_per_span,
            "e2e_wall_s": wall_s,
            "e2e_spans": spans_in_run,
            "projected_overhead_fraction": projected,
        },
        "baseline_verdicts": verdicts,
    }
    path = Path("BENCH_trace.json")
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing.update(report)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True))

    with capsys.disabled():
        print(
            f"\n[TRACE1] blame coverage={blame['coverage'] * 100:.1f}% "
            f"top={top['op']} ({top['pct']:.1f}%) | "
            f"bare={timings['bare'] * 1e6:.2f}us/span "
            f"analyzed={timings['analyzed'] * 1e6:.2f}us/span "
            f"delta={delta_per_span * 1e6:+.2f}us | e2e {spans_in_run} "
            f"spans in {wall_s:.3f}s -> projected {projected * 100:+.3f}% "
            f"(target < 5%) -> BENCH_trace.json"
        )

    # gate 1: the blame table accounts for the root's wall time and
    # points at the instrument — the paper's actual bottleneck
    assert blame["coverage"] >= 0.90
    assert top["op"].startswith("instrument.")
    # gate 3: projection is the design target; the absolute bound
    # catches egregious regressions even on noisy boxes
    assert projected < 0.05
    assert delta_per_span < 500e-6
    # no regression verdicts between back-to-back identical runs
    regressed = [
        name
        for name, verdict in verdicts.items()
        if verdict["status"] == "regressed"
        and verdict.get("severity") == "unhealthy"
    ]
    assert not regressed, f"unhealthy regressions: {regressed}"


# ---------------------------------------------------------------------------
# gate 2: sampling fidelity under a mixed burst
# ---------------------------------------------------------------------------


def _end_trace(tracer, clock, *, duration, tenant, status=None):
    root = tracer.start_span(
        "workflow.run", parent=None, attributes={"tenant": tenant}
    )
    clock.advance(duration)
    root.end(status)
    return root.trace_id


def test_tail_sampling_keeps_signal_within_budget(capsys):
    clock = VirtualClock()
    tracer = Tracer("dgx-session", clock=clock, max_spans=4096)
    tracer.exporter = lambda span: None
    sampler = TraceSampler(
        budget=BUDGET, slow_threshold_s=30.0, max_kept_ids=4096
    )
    sampler.attach(tracer)

    tenants = ("lab-a", "lab-b")
    normal: dict[str, list[str]] = {t: [] for t in tenants}
    signal: list[str] = []
    # interleave normal traffic with a slow+error burst per tenant
    for i in range(100):
        for tenant in tenants:
            normal[tenant].append(
                _end_trace(tracer, clock, duration=0.05, tenant=tenant)
            )
        if i % 10 == 5:
            for tenant in tenants:
                signal.append(
                    _end_trace(tracer, clock, duration=31.0, tenant=tenant)
                )
                signal.append(
                    _end_trace(
                        tracer,
                        clock,
                        duration=0.05,
                        tenant=tenant,
                        status="ERROR",
                    )
                )

    kept_signal = sum(1 for tid in signal if sampler.is_kept(tid))
    rates = {
        tenant: sum(1 for tid in ids if sampler.is_kept(tid)) / len(ids)
        for tenant, ids in normal.items()
    }

    report = {
        "sampling": {
            "budget": BUDGET,
            "signal_traces": len(signal),
            "signal_kept": kept_signal,
            "normal_keep_rate": rates,
            "stats": sampler.stats(),
        }
    }
    path = Path("BENCH_trace.json")
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing.update(report)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True))

    with capsys.disabled():
        rendered = ", ".join(
            f"{tenant}={rate * 100:.1f}%" for tenant, rate in rates.items()
        )
        print(
            f"\n[TRACE1] sampling: signal kept {kept_signal}/{len(signal)} "
            f"(gate 100%) | normal keep {rendered} (gate 5%..15%)"
        )

    # every slow/error trace survives; normal traffic stays on budget
    assert kept_signal == len(signal)
    for tenant, rate in rates.items():
        assert 0.05 <= rate <= 0.15, f"{tenant} keep-rate {rate:.3f}"
