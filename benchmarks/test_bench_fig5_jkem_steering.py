"""FIG5 — remote J-Kem steering (paper Fig 5a/5b).

Regenerates the demonstration: the notebook-side command sequence with
its OK confirmations (Fig 5a) and the single-board computer's console
echo (Fig 5b), then times the remote command round trip — the number
that makes or breaks interactive steering.

Paper-reported behaviour: every remote command returns "OK" and appears
on the SBC console as ``VERB(args) OK``. Expected here: identical
transcript; per-command latency dominated by the modelled cross-facility
network (a few ms), far below human/instrument timescales.
"""

from __future__ import annotations

import pytest

FILL_SEQUENCE = [
    ("Set_Rate_SyringePump", (1, 5.0)),
    ("Set_Port_SyringePump", (1, 1)),
    ("Set_Vial_FractionCollector", (1, "BOTTOM")),
    ("Withdraw_SyringePump", (1, 0.5)),
    ("Set_Port_SyringePump", (1, 8)),
    ("Dispense_SyringePump", (1, 0.5)),
]


@pytest.fixture(scope="module")
def client(ice):
    handle = ice.client()
    yield handle
    handle.close()


def test_fig5_transcript(benchmark, ice, client):
    """Replay Fig 5a exactly and print both sides of the exchange."""

    def replay():
        print("\n--- Fig 5a: notebook cells (client side) ---")
        for method, args in FILL_SEQUENCE:
            reply = getattr(client, f"call_{method}")(*args)
            print(f"{method:<28} {reply}")
            assert reply == "OK"

    benchmark.pedantic(replay, rounds=1, iterations=1)

    print("\n--- Fig 5b: J-Kem SBC console (server side) ---")
    echoes = ice.workstation.sbc.log.messages(source="jkem.sbc", kind="command")
    for line in echoes[-len(FILL_SEQUENCE):]:
        print(f"  {line}")
    assert any("SYRINGEPUMP_RATE(1,5.000000) OK" in line for line in echoes)
    assert any("FRACTIONCOLLECTOR_VIAL(1,BOTTOM) OK" in line for line in echoes)


def test_bench_remote_jkem_command(benchmark, client):
    """Latency of one remote J-Kem command (Set_Rate, cheapest op)."""
    result = benchmark(client.call_Set_Rate_SyringePump, 1, 5.0)
    assert result == "OK"


def test_bench_fill_cell_sequence(benchmark, ice, client):
    """The whole Fig 5a fill sequence as one unit of work."""

    def fill():
        for method, args in FILL_SEQUENCE:
            getattr(client, f"call_{method}")(*args)
        ice.workstation.cell.drain()
        ice.workstation.stock.fill(0.5)  # keep the stock level steady

    benchmark(fill)


def test_bench_local_vs_remote_overhead(benchmark, ice):
    """Ablation: the same command issued locally on the control agent.

    The difference to ``test_bench_remote_jkem_command`` is the price of
    crossing the ICE (RPC + modelled network)."""
    api = ice.workstation.jkem_api
    result = benchmark(api.set_rate_syringe_pump, 1, 5.0)
    assert result == "OK"
