"""Noise models and fault injection."""

import numpy as np
import pytest

from repro.chemistry.faults import FaultKind, apply_fault
from repro.chemistry.noise import BENCH_NOISE, NOISY_LAB, NoiseModel


@pytest.fixture(scope="module")
def clean_trace(reference_voltammogram):
    return reference_voltammogram


class TestNoise:
    def test_white_noise_added(self, clean_trace):
        noisy = NoiseModel(white_sigma_a=1e-7, seed=1).apply(clean_trace)
        residual = noisy.current_a - clean_trace.current_a
        assert residual.std() == pytest.approx(1e-7, rel=0.15)
        assert abs(residual.mean()) < 3e-8

    def test_deterministic_given_seed(self, clean_trace):
        a = NoiseModel(seed=3).apply(clean_trace)
        b = NoiseModel(seed=3).apply(clean_trace)
        np.testing.assert_array_equal(a.current_a, b.current_a)

    def test_different_seeds_differ(self, clean_trace):
        a = NoiseModel(seed=1).apply(clean_trace)
        b = NoiseModel(seed=2).apply(clean_trace)
        assert not np.array_equal(a.current_a, b.current_a)

    def test_original_untouched(self, clean_trace):
        before = clean_trace.current_a.copy()
        NoiseModel(seed=1).apply(clean_trace)
        np.testing.assert_array_equal(clean_trace.current_a, before)

    def test_drift_is_linear_in_time(self, clean_trace):
        drifted = NoiseModel(white_sigma_a=0.0, drift_a_per_s=1e-8).apply(
            clean_trace
        )
        residual = drifted.current_a - clean_trace.current_a
        np.testing.assert_allclose(residual, 1e-8 * clean_trace.time_s)

    def test_mains_pickup_periodic(self, clean_trace):
        humming = NoiseModel(
            white_sigma_a=0.0, mains_amplitude_a=1e-7, mains_hz=60.0
        ).apply(clean_trace)
        residual = humming.current_a - clean_trace.current_a
        assert np.abs(residual).max() == pytest.approx(1e-7, rel=0.05)

    def test_quantization(self, clean_trace):
        quantized = NoiseModel(white_sigma_a=0.0, quantization_a=1e-6).apply(
            clean_trace
        )
        steps = quantized.current_a / 1e-6
        np.testing.assert_allclose(steps, np.round(steps), atol=1e-9)

    def test_metadata_records_noise(self, clean_trace):
        noisy = BENCH_NOISE.apply(clean_trace)
        assert "noise" in noisy.metadata

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"white_sigma_a": -1.0},
            {"mains_amplitude_a": -1.0},
            {"quantization_a": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NoiseModel(**kwargs)

    def test_presets_exist(self):
        assert NOISY_LAB.white_sigma_a > BENCH_NOISE.white_sigma_a


class TestFaults:
    def test_none_fault_is_identity_with_metadata(self, clean_trace):
        result = apply_fault(clean_trace, FaultKind.NONE)
        np.testing.assert_array_equal(result.current_a, clean_trace.current_a)
        assert result.metadata["fault"] == "normal"
        assert result.metadata["fault_severity"] == 0.0

    def test_disconnected_kills_signal(self, clean_trace):
        result = apply_fault(
            clean_trace, FaultKind.DISCONNECTED_ELECTRODE, severity=0.8
        )
        # orders of magnitude below the healthy peak
        assert np.abs(result.current_a).max() < 0.01 * np.abs(
            clean_trace.current_a
        ).max()

    def test_low_volume_scales_current(self, clean_trace):
        result = apply_fault(clean_trace, FaultKind.LOW_VOLUME, severity=0.5)
        ratio = np.abs(result.current_a).max() / np.abs(clean_trace.current_a).max()
        assert 0.35 <= ratio <= 0.65

    def test_low_volume_without_scaling(self, clean_trace):
        result = apply_fault(
            clean_trace, FaultKind.LOW_VOLUME, severity=0.5, scale_current=False
        )
        ratio = np.abs(result.current_a).max() / np.abs(clean_trace.current_a).max()
        assert 0.8 <= ratio <= 1.25  # only flutter, no shrink

    def test_bubble_creates_local_dip(self, clean_trace):
        result = apply_fault(clean_trace, FaultKind.BUBBLE, severity=0.9, seed=4)
        ratio = np.abs(result.current_a) / (np.abs(clean_trace.current_a) + 1e-15)
        assert ratio.min() < 0.6  # some samples heavily suppressed
        assert ratio.max() > 0.95  # others untouched

    def test_severity_bounds(self, clean_trace):
        with pytest.raises(ValueError):
            apply_fault(clean_trace, FaultKind.LOW_VOLUME, severity=1.5)
        with pytest.raises(ValueError):
            apply_fault(clean_trace, FaultKind.LOW_VOLUME, severity=-0.1)

    def test_metadata_labels(self, clean_trace):
        for fault in FaultKind:
            result = apply_fault(clean_trace, fault, severity=0.5)
            assert result.metadata["fault"] == fault.value

    def test_deterministic_given_seed(self, clean_trace):
        a = apply_fault(clean_trace, FaultKind.BUBBLE, seed=9)
        b = apply_fault(clean_trace, FaultKind.BUBBLE, seed=9)
        np.testing.assert_array_equal(a.current_a, b.current_a)
