"""Decision tree and ensemble classifiers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLError, NotFittedError
from repro.ml.ensemble import EnsembleOfTreesClassifier
from repro.ml.tree import DecisionTreeClassifier, _gini


def blobs(n_per_class=40, separation=4.0, seed=0, n_features=4):
    """Two well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 1.0, (n_per_class, n_features))
    b = rng.normal(separation, 1.0, (n_per_class, n_features))
    x = np.vstack([a, b])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    return x, y


class TestGini:
    def test_pure_node_zero(self):
        assert _gini(np.array([10.0, 0.0])) == pytest.approx(0.0)

    def test_even_split_half(self):
        assert _gini(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_vectorised(self):
        counts = np.array([[10.0, 0.0], [5.0, 5.0]])
        np.testing.assert_allclose(_gini(counts), [0.0, 0.5])

    def test_empty_counts(self):
        assert _gini(np.array([0.0, 0.0])) == pytest.approx(1.0)


class TestDecisionTree:
    def test_separable_data_perfect_train_accuracy(self):
        x, y = blobs()
        tree = DecisionTreeClassifier().fit(x, y)
        assert np.mean(tree.predict(x) == y) == 1.0

    def test_generalises_to_test_blob(self):
        x, y = blobs(seed=0)
        x_test, y_test = blobs(seed=1)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert np.mean(tree.predict(x_test) == y_test) > 0.95

    def test_max_depth_respected(self):
        x, y = blobs(separation=1.0)  # overlapping: wants deep tree
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        x, y = blobs(n_per_class=10)
        tree = DecisionTreeClassifier(min_samples_leaf=5).fit(x, y)
        # no leaf can have fewer than 5 samples; tree must be shallow
        assert tree.depth <= 3

    def test_single_class(self):
        x = np.random.default_rng(0).normal(size=(20, 3))
        y = np.zeros(20, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert np.all(tree.predict(x) == 0)
        assert tree.depth == 0

    def test_string_labels(self):
        x, y_int = blobs()
        labels = np.array(["normal", "abnormal"])[y_int]
        tree = DecisionTreeClassifier().fit(x, labels)
        assert set(tree.predict(x)) <= {"normal", "abnormal"}

    def test_predict_proba_sums_to_one(self):
        x, y = blobs(separation=1.5)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        proba = tree.predict_proba(x)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_single_row_prediction(self):
        x, y = blobs()
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.predict(x[0]) in (0, 1)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_feature_count_checked(self):
        x, y = blobs(n_features=4)
        tree = DecisionTreeClassifier().fit(x, y)
        with pytest.raises(MLError):
            tree.predict(np.zeros((1, 7)))

    @pytest.mark.parametrize(
        "kwargs", [{"max_depth": 0}, {"min_samples_leaf": 0}]
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(MLError):
            DecisionTreeClassifier(**kwargs)

    def test_input_validation(self):
        with pytest.raises(MLError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))  # 1-D x
        with pytest.raises(MLError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(MLError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_constant_features_yield_leaf(self):
        x = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.depth == 0  # nothing to split on

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_train_accuracy_beats_majority(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(30, 3))
        y = (x[:, 0] + 0.3 * rng.normal(size=30) > 0).astype(int)
        if len(np.unique(y)) < 2:
            return
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        accuracy = float(np.mean(tree.predict(x) == y))
        majority = max(np.mean(y == 0), np.mean(y == 1))
        assert accuracy >= majority


class TestEnsemble:
    def test_separable_data(self):
        x, y = blobs()
        ensemble = EnsembleOfTreesClassifier(n_trees=20, random_state=0).fit(x, y)
        assert ensemble.score(x, y) == 1.0

    def test_oob_score_populated(self):
        x, y = blobs()
        ensemble = EnsembleOfTreesClassifier(n_trees=25, random_state=0).fit(x, y)
        assert 0.8 <= ensemble.oob_score_ <= 1.0

    def test_better_than_stump_on_noisy_data(self):
        x, y = blobs(separation=1.2, n_per_class=80)
        x_test, y_test = blobs(separation=1.2, n_per_class=80, seed=9)
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        ensemble = EnsembleOfTreesClassifier(n_trees=40, random_state=0).fit(x, y)
        assert ensemble.score(x_test, y_test) >= np.mean(
            stump.predict(x_test) == y_test
        )

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        x = np.vstack(
            [rng.normal(c * 4.0, 1.0, (30, 3)) for c in range(3)]
        )
        y = np.repeat(["a", "b", "c"], 30)
        ensemble = EnsembleOfTreesClassifier(n_trees=20, random_state=1).fit(x, y)
        assert ensemble.score(x, y) > 0.95
        proba = ensemble.predict_proba(x)
        assert proba.shape == (90, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self):
        x, y = blobs(separation=1.0)
        a = EnsembleOfTreesClassifier(n_trees=10, random_state=5).fit(x, y)
        b = EnsembleOfTreesClassifier(n_trees=10, random_state=5).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            EnsembleOfTreesClassifier().predict(np.zeros((1, 2)))

    def test_constructor_validation(self):
        with pytest.raises(MLError):
            EnsembleOfTreesClassifier(n_trees=0)

    def test_input_validation(self):
        with pytest.raises(MLError):
            EnsembleOfTreesClassifier().fit(np.zeros(5), np.zeros(5))
