"""Provenance records and the measurement catalog."""

import json

import numpy as np
import pytest

from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow
from repro.core.provenance import (
    capture_provenance,
    verify_artifacts,
    write_provenance,
)
from repro.datachannel.catalog import CATALOG_NAME, MeasurementCatalog
from repro.datachannel.formats import write_mpt
from repro.errors import DataChannelError

FAST = CVWorkflowSettings(e_step_v=0.002)


class TestProvenance:
    def test_capture_from_workflow(self, ice):
        result = run_cv_workflow(ice, settings=FAST)
        artifact = ice.measurement_dir / result.measurement_file
        record = capture_provenance(
            result.workflow,
            workflow_name="cv-workflow",
            settings=FAST,
            artifacts=[artifact],
        )
        assert record["schema"] == "repro-provenance-1"
        assert record["succeeded"] is True
        names = [t["name"] for t in record["tasks"]]
        assert "D_run_cv" in names
        assert record["settings"]["e_step_v"] == 0.002
        assert record["artifacts"][0]["path"] == result.measurement_file
        assert len(record["artifacts"][0]["sha256"]) == 64
        assert record["environment"]["repro_version"]

    def test_failure_recorded(self, ice):
        ice.workstation.syringe_pump.inject_fault("jam")
        result = run_cv_workflow(ice, settings=FAST)
        record = capture_provenance(result.workflow, "cv-workflow")
        assert record["succeeded"] is False
        failed = [t for t in record["tasks"] if t["state"] == "failed"]
        assert failed and failed[0]["error"]

    def test_write_and_verify(self, ice, tmp_path):
        result = run_cv_workflow(ice, settings=FAST)
        artifact = ice.measurement_dir / result.measurement_file
        record = capture_provenance(
            result.workflow, "cv-workflow", artifacts=[artifact]
        )
        path = write_provenance(record, tmp_path)
        assert json.loads(path.read_text())["workflow"] == "cv-workflow"
        # artifacts verify in place...
        assert verify_artifacts(record, ice.measurement_dir) == {
            result.measurement_file: True
        }
        # ... and tampering is detected
        artifact.write_text("tampered")
        assert verify_artifacts(record, ice.measurement_dir) == {
            result.measurement_file: False
        }

    def test_missing_artifact_flagged(self, ice, tmp_path):
        result = run_cv_workflow(ice, settings=FAST)
        artifact = ice.measurement_dir / result.measurement_file
        record = capture_provenance(
            result.workflow, "cv-workflow", artifacts=[artifact]
        )
        artifact.unlink()
        assert verify_artifacts(record, ice.measurement_dir)[
            result.measurement_file
        ] is False


@pytest.fixture
def measurement_dir(tmp_path, reference_voltammogram):
    directory = tmp_path / "measurements"
    directory.mkdir()
    for index, rate in enumerate((0.05, 0.1, 0.2)):
        trace = reference_voltammogram
        scaled = trace.to_dict()
        scaled["metadata"] = dict(trace.metadata)
        scaled["metadata"]["scan_rate_v_s"] = rate
        scaled["metadata"]["technique"] = "CV"
        scaled["current_a"] = trace.current_a * np.sqrt(rate / 0.1)
        from repro.chemistry.voltammogram import Voltammogram

        write_mpt(directory / f"cv_{index}.mpt", Voltammogram.from_dict(scaled))
    return directory


class TestCatalog:
    def test_rebuild_and_query(self, measurement_dir):
        catalog = MeasurementCatalog(measurement_dir)
        assert catalog.rebuild() == 3
        assert len(catalog.query(technique="CV")) == 3
        fast = catalog.query(min_scan_rate=0.1)
        assert {entry.scan_rate_v_s for entry in fast} == {0.1, 0.2}
        assert catalog.query(technique="DPV") == []

    def test_entries_carry_summaries(self, measurement_dir):
        catalog = MeasurementCatalog(measurement_dir)
        catalog.rebuild()
        entry = catalog.get("cv_1.mpt")
        assert entry is not None
        assert entry.n_samples == 1200
        assert entry.peak_anodic_a == pytest.approx(5.87e-5, rel=0.05)
        assert entry.e_half_v == pytest.approx(0.40, abs=0.01)

    def test_save_load_round_trip(self, measurement_dir):
        catalog = MeasurementCatalog(measurement_dir)
        catalog.rebuild()
        path = catalog.save()
        assert path.name == CATALOG_NAME
        loaded = MeasurementCatalog.load(measurement_dir)
        assert len(loaded) == 3
        assert loaded.get("cv_0.mpt").technique == "CV"

    def test_corrupt_file_skipped(self, measurement_dir):
        (measurement_dir / "broken.mpt").write_text("garbage")
        catalog = MeasurementCatalog(measurement_dir)
        assert catalog.rebuild() == 3
        assert catalog.skipped_ == 1

    def test_add_single(self, measurement_dir, reference_voltammogram):
        catalog = MeasurementCatalog(measurement_dir)
        catalog.rebuild()
        write_mpt(measurement_dir / "new.mpt", reference_voltammogram)
        entry = catalog.add("new.mpt")
        assert entry.path == "new.mpt"
        assert len(catalog) == 4

    def test_scan_rate_series_feeds_randles_sevcik(self, measurement_dir):
        from repro.analysis import estimate_diffusion_coefficient

        catalog = MeasurementCatalog(measurement_dir)
        catalog.rebuild()
        rates, peaks = catalog.scan_rate_series()
        assert list(rates) == [0.05, 0.1, 0.2]
        diffusion, r_squared = estimate_diffusion_coefficient(
            rates, peaks, 1, 0.0707, 2e-6
        )
        assert r_squared > 0.999

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DataChannelError):
            MeasurementCatalog(tmp_path / "nope")

    def test_load_without_catalog_file(self, measurement_dir):
        with pytest.raises(DataChannelError):
            MeasurementCatalog.load(measurement_dir)

    def test_workflow_output_indexable(self, ice):
        result = run_cv_workflow(ice, settings=FAST)
        catalog = MeasurementCatalog(ice.measurement_dir)
        assert catalog.rebuild() == 1
        entry = catalog.get(result.measurement_file)
        assert entry is not None and entry.technique == "CV"


class TestECMechanism:
    """The following-reaction knob added for electrolyte-stability studies."""

    def test_peak_ratio_degrades_with_decay_rate(self):
        from repro.chemistry.cv_engine import CVEngine, CVParameters
        from repro.chemistry.species import FERROCENE
        from repro.analysis import characterize

        ratios = []
        for k in (0.0, 0.3, 1.0):
            engine = CVEngine(
                FERROCENE,
                2e-6,
                0.0707,
                double_layer_f_cm2=0.0,
                following_reaction_per_s=k,
            )
            metrics = characterize(engine.run(CVParameters(e_step_v=0.002)))
            ratios.append(metrics.peak_ratio)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_fast_scan_outruns_decay(self):
        from repro.chemistry.cv_engine import CVEngine, CVParameters
        from repro.chemistry.species import FERROCENE
        from repro.analysis import characterize

        def ratio(scan_rate):
            engine = CVEngine(
                FERROCENE,
                2e-6,
                0.0707,
                double_layer_f_cm2=0.0,
                following_reaction_per_s=0.5,
            )
            return characterize(
                engine.run(
                    CVParameters(scan_rate_v_s=scan_rate, e_step_v=0.002)
                )
            ).peak_ratio

        # the classic EC diagnostic: faster sweeps recover the return wave
        assert ratio(1.0) < ratio(0.05)

    def test_negative_rate_rejected(self):
        from repro.chemistry.cv_engine import CVEngine
        from repro.chemistry.species import FERROCENE
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            CVEngine(FERROCENE, 2e-6, 0.0707, following_reaction_per_s=-1.0)
