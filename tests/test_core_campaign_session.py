"""Adaptive campaigns and the notebook-style session."""

import numpy as np
import pytest

from repro.analysis import estimate_diffusion_coefficient
from repro.chemistry.species import FERROCENE
from repro.core.campaign import (
    Campaign,
    scan_rate_strategy,
    window_centering_strategy,
)
from repro.core.cv_workflow import CVWorkflowSettings
from repro.errors import WorkflowError

import repro


FAST = CVWorkflowSettings(e_step_v=0.002)


class TestScanRateCampaign:
    def test_sweeps_all_rates(self, ice):
        rates = (0.05, 0.1, 0.2)
        campaign = Campaign(ice, scan_rate_strategy(rates, base=FAST))
        rounds = campaign.run()
        assert len(rounds) == 3
        assert all(r.result.succeeded for r in rounds)
        assert [r.settings.scan_rate_v_s for r in rounds] == list(rates)

    def test_only_first_round_fills(self, ice):
        campaign = Campaign(ice, scan_rate_strategy((0.05, 0.1), base=FAST))
        rounds = campaign.run()
        assert rounds[0].settings.fill_volume_ml > 0
        assert rounds[1].settings.fill_volume_ml == 0.0

    def test_randles_sevcik_from_campaign(self, ice):
        rates = (0.05, 0.1, 0.2, 0.4)
        campaign = Campaign(ice, scan_rate_strategy(rates, base=FAST))
        rounds = campaign.run()
        peaks = np.array([r.result.metrics.anodic_peak_a for r in rounds])
        diffusion, r_squared = estimate_diffusion_coefficient(
            np.array(rates), peaks, 1, 0.0707, 2e-6
        )
        # the simulated bench has Ru and noise; 20% on D is the right bar
        assert diffusion == pytest.approx(FERROCENE.diffusion_cm2_s, rel=0.2)
        assert r_squared > 0.99

    def test_max_rounds_bound(self, ice):
        campaign = Campaign(
            ice, scan_rate_strategy((0.05,) * 10, base=FAST), max_rounds=2
        )
        assert len(campaign.run()) == 2

    def test_bad_max_rounds(self, ice):
        campaign = Campaign(ice, scan_rate_strategy((0.1,)), max_rounds=0)
        with pytest.raises(WorkflowError):
            campaign.run()


class TestWindowCenteringCampaign:
    def test_converges_onto_e_half(self, ice):
        # start with a badly off-centre window
        base = CVWorkflowSettings(
            e_begin_v=0.25, e_vertex_v=0.95, e_step_v=0.002
        )
        campaign = Campaign(
            ice, window_centering_strategy(base=base, half_window_v=0.25)
        )
        rounds = campaign.run()
        assert 2 <= len(rounds) <= 5
        last = rounds[-1]
        centre = 0.5 * (last.settings.e_begin_v + last.settings.e_vertex_v)
        assert centre == pytest.approx(0.40, abs=0.03)

    def test_campaign_stops_on_abnormal(self, ice, trained_classifier):
        ice.workstation.cell.set_electrode_connected("working", False)
        campaign = Campaign(
            ice,
            scan_rate_strategy((0.05, 0.1, 0.2), base=FAST),
            classifier=trained_classifier,
            abort_on_abnormal=True,
        )
        rounds = campaign.run()
        assert len(rounds) == 1  # stopped after the first abnormal verdict
        assert not campaign.all_normal


class TestSessionNotebookFlow:
    def test_notebook_flow(self, ice):
        with repro.connect(ice) as session:
            status = session.fill_cell(5.0, purge_sccm=25.0)
            assert status["volume_ml"] == pytest.approx(5.0)
            assert status["purge_sccm"] == 25.0
            trace = session.run_cv(e_step_v=0.002)
            metrics = session.analyze(trace)
            assert metrics.e_half_v == pytest.approx(0.40, abs=0.01)

    def test_session_normality_with_injected_classifier(
        self, ice, trained_classifier
    ):
        with repro.connect(ice, classifier=trained_classifier) as session:
            session.fill_cell(5.0)
            trace = session.run_cv(e_step_v=0.002)
            report = session.check_normality(trace)
            assert report.normal

    def test_multiple_runs_reuse_sp200_session(self, ice):
        with repro.connect(ice) as session:
            session.fill_cell(5.0)
            first = session.run_cv(e_step_v=0.002, save_as="one")
            second = session.run_cv(e_step_v=0.002, scan_rate_v_s=0.2, save_as="two")
            assert first.metadata["scan_rate_v_s"] == 0.1
            assert second.metadata["scan_rate_v_s"] == 0.2

    def test_cell_status_passthrough(self, ice):
        with repro.connect(ice) as session:
            assert session.cell_status()["volume_ml"] == 0.0


class TestKineticsTargetingCampaign:
    def _install_sluggish_analyte(self, ice, k0=0.02):
        from repro.chemistry.species import (
            ACETONITRILE,
            RedoxSpecies,
            Solution,
            TBA_TRIFLATE,
        )

        slow = RedoxSpecies(
            name="sluggish",
            formal_potential_v=0.40,
            diffusion_cm2_s=1e-5,
            k0_cm_s=k0,
        )
        ice.workstation.stock.solution = Solution(
            solvent=ACETONITRILE,
            species={slow: 2e-6},
            supporting_electrolyte=TBA_TRIFLATE,
            label="2 mM sluggish / MeCN",
        )
        return slow

    def test_converges_into_informative_window(self, ice):
        from repro.core.campaign import kinetics_targeting_strategy

        self._install_sluggish_analyte(ice)
        base = CVWorkflowSettings(
            e_begin_v=0.0, e_vertex_v=0.8, scan_rate_v_s=0.05, e_step_v=0.002
        )
        campaign = Campaign(ice, kinetics_targeting_strategy(base=base))
        rounds = campaign.run()
        final = rounds[-1].result.metrics
        assert final is not None
        assert 0.080 <= final.peak_separation_v <= 0.160
        # scan rate was actively raised: steering happened
        assert rounds[-1].settings.scan_rate_v_s > base.scan_rate_v_s

    def test_k0_recoverable_from_converged_round(self, ice):
        from repro.analysis import estimate_k0_from_trace
        from repro.core.campaign import kinetics_targeting_strategy

        self._install_sluggish_analyte(ice, k0=0.01)
        base = CVWorkflowSettings(
            e_begin_v=0.0, e_vertex_v=0.8, scan_rate_v_s=0.05, e_step_v=0.002
        )
        rounds = Campaign(ice, kinetics_targeting_strategy(base=base)).run()
        trace = rounds[-1].result.voltammogram
        estimate = estimate_k0_from_trace(trace, diffusion_cm2_s=1e-5)
        assert estimate.k0_cm_s == pytest.approx(0.01, rel=0.35)

    def test_fast_couple_stops_at_rate_bound(self, ice):
        from repro.core.campaign import kinetics_targeting_strategy

        # default ferrocene stock: k0 = 1 cm/s is unreachable within the
        # rate bounds, so the strategy must give up at the upper bound
        base = CVWorkflowSettings(e_step_v=0.002)
        strategy = kinetics_targeting_strategy(
            base=base, rate_bounds_v_s=(0.01, 0.4), max_rounds=8
        )
        rounds = Campaign(ice, strategy).run()
        assert rounds[-1].settings.scan_rate_v_s <= 0.4
        assert len(rounds) <= 8


class TestSessionExtendedTechniques:
    def test_run_lsv(self, ice):
        with repro.connect(ice) as session:
            session.fill_cell(5.0)
            trace = session.run_lsv(e_step_v=0.002)
            assert trace.metadata["technique"] == "LSV"
            _, peak = trace.peak_anodic()
            assert peak > 1e-5

    def test_run_dpv(self, ice):
        import numpy as np

        with repro.connect(ice) as session:
            session.fill_cell(5.0)
            trace = session.run_dpv()
            assert trace.metadata["technique"] == "DPV"
            index = int(np.argmax(trace.current_a))
            assert trace.potential_v[index] == pytest.approx(0.375, abs=0.02)

    def test_mixed_technique_sequence(self, ice):
        with repro.connect(ice) as session:
            session.fill_cell(5.0)
            cv = session.run_cv(e_step_v=0.002)
            lsv = session.run_lsv(e_step_v=0.002)
            dpv = session.run_dpv()
            assert {t.metadata["technique"] for t in (cv, lsv, dpv)} == {
                "CV",
                "LSV",
                "DPV",
            }


class TestSessionCharacterization:
    def test_fraction_to_chromatogram(self, ice):
        with repro.connect(ice) as session:
            session.fill_cell(6.0)
            # electrolyze briefly so the fraction contains product
            session._ensure_sp200(1)
            session.client.call_Initialize_CA_Tech_SP200(
                {"e_step_to_v": 0.8, "duration": 60.0, "dt_s": 0.05}
            )
            session.client.call_Load_Technique_SP200()
            session.client.call_Start_Channel_SP200()
            session.client.call_Get_Tech_Path_Rslt()
            reply = session.collect_fraction(volume_ml=1.0)
            assert reply.startswith("OK fraction-")
            chromatogram = session.analyze_fraction()
            assert chromatogram.peak_for("ferrocene") is not None
            assert chromatogram.peak_for("ferrocenium") is not None

    def test_robot_state_visible(self, ice):
        with repro.connect(ice) as session:
            status = session.characterization.call_Robot_Status()
            assert status["location"] == "electrochemistry"
