"""Exposure rules: what a remote peer may call."""

import pytest

from repro.rpc.expose import expose, exposed_methods, is_exposed, is_oneway, oneway


@expose
class WholeClass:
    def visible(self):
        return 1

    def also_visible(self):
        return 2

    def _private(self):
        return 3

    @oneway
    def fire(self):
        pass


class PerMethod:
    @expose
    def only_this(self):
        return 1

    def not_this(self):
        return 2


class Nothing:
    def method(self):
        return 1


def test_class_exposure_covers_public_methods():
    obj = WholeClass()
    assert is_exposed(obj, "visible")
    assert is_exposed(obj, "also_visible")


def test_underscore_never_exposed():
    assert not is_exposed(WholeClass(), "_private")
    assert not is_exposed(WholeClass(), "__class__")
    assert not is_exposed(WholeClass(), "__init__")


def test_per_method_exposure():
    obj = PerMethod()
    assert is_exposed(obj, "only_this")
    assert not is_exposed(obj, "not_this")


def test_unexposed_class():
    assert not is_exposed(Nothing(), "method")


def test_nonexistent_method():
    assert not is_exposed(WholeClass(), "ghost")


def test_non_callable_attribute_not_exposed():
    @expose
    class WithAttr:
        data = 42

        def method(self):
            return 0

    assert not is_exposed(WithAttr(), "data")


def test_exposed_methods_listing():
    names = exposed_methods(WholeClass())
    assert names == ["also_visible", "fire", "visible"]


def test_oneway_marker():
    obj = WholeClass()
    assert is_oneway(obj, "fire")
    assert not is_oneway(obj, "visible")


def test_expose_rejects_non_callable():
    with pytest.raises(TypeError):
        expose(42)  # type: ignore[arg-type]
