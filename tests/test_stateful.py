"""Hypothesis stateful tests: liquid accounting and the robot.

These model-based tests throw random operation sequences at the stateful
components and check the conservation laws a lab cares about:

- **liquid is conserved**: stock + syringe + cell + waste volumes always
  sum to the initial inventory, whatever order of withdraw/dispense/
  drain operations occurs (or fails);
- **vials are conserved**: the robot never duplicates or loses a vial
  across any pick/move/place sequence, legal or rejected.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.species import ferrocene_solution
from repro.errors import ReproError
from repro.instruments.jkem.devices import SyringePump
from repro.instruments.jkem.plumbing import PortMap, Reservoir
from repro.instruments.robot import MobileRobot

INITIAL_STOCK = 40.0


class LiquidAccounting(RuleBasedStateMachine):
    """Random pump operations; total liquid volume is invariant."""

    def __init__(self):
        super().__init__()
        self.cell = ElectrochemicalCell(capacity_ml=15.0)
        self.stock = Reservoir("stock", ferrocene_solution(2.0), INITIAL_STOCK)
        self.waste = Reservoir("local-waste", ferrocene_solution(0.0), 0.0)
        ports = PortMap()
        ports.connect(1, self.stock)
        ports.connect(2, self.cell)
        ports.connect(3, self.waste)
        self.pump = SyringePump(syringe_volume_ml=10.0, ports=ports)

    volumes = st.floats(min_value=0.1, max_value=12.0)
    ports = st.sampled_from([1, 2, 3])

    @rule(port=ports)
    def select_port(self, port):
        self.pump.set_port(port)

    @rule(volume=volumes)
    def withdraw(self, volume):
        try:
            self.pump.withdraw(volume)
        except ReproError:
            pass  # rejected operations must not move liquid

    @rule(volume=volumes)
    def dispense(self, volume):
        try:
            self.pump.dispense(volume)
        except ReproError:
            pass

    @rule()
    def drain_cell_to_nowhere_is_not_allowed(self):
        # drain() is a deliberate disposal; route it to waste to keep
        # the books balanced, as the lab procedure would
        removed = self.cell.drain()
        self.waste.fill(removed)

    @invariant()
    def total_volume_conserved(self):
        total = (
            self.stock.volume_ml
            + self.waste.volume_ml
            + self.cell.volume_ml
            + self.pump.held_volume_ml
        )
        assert total == pytest.approx(INITIAL_STOCK, abs=1e-6)

    @invariant()
    def nothing_negative(self):
        assert self.stock.volume_ml >= -1e-9
        assert self.cell.volume_ml >= -1e-9
        assert self.pump.held_volume_ml >= -1e-9

    @invariant()
    def syringe_within_capacity(self):
        assert self.pump.held_volume_ml <= self.pump.syringe_volume_ml + 1e-9


class RobotVialConservation(RuleBasedStateMachine):
    """Random robot commands; the set of vials is invariant."""

    def __init__(self):
        super().__init__()
        self.robot = MobileRobot()
        self.vials = {
            f"vial-{i}": Reservoir(f"vial-{i}", ferrocene_solution(), 1.0)
            for i in range(2)
        }
        self.robot.stage_vial("electrochemistry", self.vials["vial-0"])
        self.robot.stage_vial("storage", self.vials["vial-1"])

    stations = st.sampled_from(["electrochemistry", "hplc", "storage"])

    @rule(station=stations)
    def move(self, station):
        self.robot.move_to(station)

    @rule()
    def pick(self):
        try:
            self.robot.pick()
        except ReproError:
            pass

    @rule()
    def place(self):
        try:
            self.robot.place()
        except ReproError:
            pass

    @invariant()
    def vials_conserved(self):
        visible = [
            self.robot.vial_at(name)
            for name in ("electrochemistry", "hplc", "storage")
        ]
        held = [self.robot.holding] if self.robot.holding else []
        everywhere = [v for v in visible if v is not None] + held
        names = sorted(v.name for v in everywhere)
        assert names == sorted(self.vials)
        # no duplication: each object appears exactly once
        assert len({id(v) for v in everywhere}) == len(everywhere)

    @invariant()
    def at_most_one_in_gripper(self):
        assert self.robot.holding is None or hasattr(self.robot.holding, "name")


TestLiquidAccounting = LiquidAccounting.TestCase
TestLiquidAccounting.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestRobotVialConservation = RobotVialConservation.TestCase
TestRobotVialConservation.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
