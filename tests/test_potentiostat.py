"""SP200 device, firmware, techniques."""

import numpy as np
import pytest

from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.species import ferrocene_solution
from repro.errors import (
    ChannelBusyError,
    FirmwareError,
    InstrumentStateError,
    TechniqueError,
)
from repro.instruments.potentiostat import (
    CATechnique,
    CVTechnique,
    ChannelState,
    KERNEL4,
    OCVTechnique,
    SP200,
)
from repro.instruments.potentiostat.firmware import (
    CV_TECHNIQUE_ECC,
    FirmwareImage,
    technique_firmware,
)


@pytest.fixture
def filled_cell():
    cell = ElectrochemicalCell()
    cell.add_liquid(10.0, ferrocene_solution(2.0))
    return cell


@pytest.fixture
def device(filled_cell):
    return SP200(cell=filled_cell, noise=None)


def run_cv(device, channel=1, **params):
    device.connect()
    device.load_kernel(KERNEL4)
    device.connect_channel(channel)
    device.load_technique(channel, CVTechnique(**params))
    device.start_channel(channel)
    assert device.channel(channel).wait(timeout=30.0)
    return device.channel(channel).result


class TestFirmware:
    def test_kernel_identity(self):
        assert KERNEL4.name == "kernel4.bin"
        assert KERNEL4.kind == "kernel"
        KERNEL4.verify()

    def test_corrupt_image_detected(self):
        with pytest.raises(FirmwareError, match="checksum"):
            FirmwareImage(
                name="bad.bin",
                kind="kernel",
                payload=b"payload",
                checksum="0" * 64,
            )

    def test_unknown_kind(self):
        with pytest.raises(FirmwareError):
            FirmwareImage(name="x", kind="bootloader", payload=b"p")

    def test_technique_firmware_lookup(self):
        assert technique_firmware("CV") is CV_TECHNIQUE_ECC
        with pytest.raises(FirmwareError):
            technique_firmware("EIS")

    def test_technique_firmware_must_name_technique(self):
        with pytest.raises(FirmwareError):
            FirmwareImage(name="x.ecc", kind="technique", payload=b"p")


class TestLifecycleOrdering:
    def test_full_pipeline(self, device):
        trace = run_cv(device)
        assert trace is not None
        assert len(trace) == 1200
        assert device.channel(1).state is ChannelState.FINISHED

    def test_kernel_requires_connection(self, device):
        with pytest.raises(InstrumentStateError):
            device.load_kernel(KERNEL4)

    def test_channel_requires_kernel(self, device):
        device.connect()
        with pytest.raises(FirmwareError):
            device.connect_channel(1)

    def test_technique_requires_channel_connected(self, device):
        device.connect()
        device.load_kernel(KERNEL4)
        with pytest.raises(InstrumentStateError):
            device.load_technique(1, CVTechnique())

    def test_start_requires_technique(self, device):
        device.connect()
        device.load_kernel(KERNEL4)
        device.connect_channel(1)
        with pytest.raises(TechniqueError):
            device.start_channel(1)

    def test_double_connect_rejected(self, device):
        device.connect()
        with pytest.raises(InstrumentStateError):
            device.connect()

    def test_wrong_firmware_kind(self, device):
        device.connect()
        with pytest.raises(FirmwareError):
            device.load_kernel(CV_TECHNIQUE_ECC)

    def test_unknown_channel(self, device):
        device.connect()
        device.load_kernel(KERNEL4)
        with pytest.raises(InstrumentStateError):
            device.connect_channel(99)

    def test_busy_channel_rejects_restart(self, filled_cell):
        device = SP200(cell=filled_cell, noise=None, time_scale=0.02)
        device.connect()
        device.load_kernel(KERNEL4)
        device.connect_channel(1)
        device.load_technique(1, CVTechnique())
        device.start_channel(1)
        with pytest.raises(ChannelBusyError):
            device.start_channel(1)
        device.channel(1).wait(timeout=30.0)

    def test_channel_auto_disconnects_after_acquisition(self, device):
        run_cv(device)
        status = device.channel_status(1)
        assert status["state"] == "finished"
        assert status["samples_acquired"] == 1200

    def test_start_without_cell(self):
        device = SP200(cell=None)
        device.connect()
        device.load_kernel(KERNEL4)
        device.connect_channel(1)
        device.load_technique(1, CVTechnique())
        with pytest.raises(InstrumentStateError):
            device.start_channel(1)

    def test_disconnect_resets_state(self, device):
        run_cv(device)
        device.disconnect()
        assert not device.usb_connected
        assert device.channel(1).state is ChannelState.DISCONNECTED
        # full pipeline works again after reconnect
        trace = run_cv(device)
        assert trace is not None

    def test_progressive_visibility(self, filled_cell):
        device = SP200(
            cell=filled_cell, noise=None, time_scale=0.01, reveal_chunks=5
        )
        device.connect()
        device.load_kernel(KERNEL4)
        device.connect_channel(1)
        device.load_technique(1, CVTechnique())
        device.start_channel(1)
        partial = device.channel(1).visible_data()
        device.channel(1).wait(timeout=30.0)
        final = device.channel(1).visible_data()
        assert partial is None or len(partial) <= len(final)
        assert len(final) == 1200


class TestTechniques:
    def test_cv_respects_cell_area(self, device, filled_cell):
        full = run_cv(device)
        device.disconnect()
        # drain to 1 mL: quarter immersion, quarter the current
        filled_cell.withdraw_liquid(9.0)
        partial = run_cv(device)
        ratio = partial.peak_anodic()[1] / full.peak_anodic()[1]
        assert ratio == pytest.approx(0.25, rel=0.15)

    def test_cv_open_circuit_gives_noise_trace(self, device, filled_cell):
        filled_cell.set_electrode_connected("working", False)
        trace = run_cv(device)
        assert np.abs(trace.current_a).max() < 1e-6

    def test_cv_parameter_validation(self):
        with pytest.raises(TechniqueError):
            CVTechnique(scan_rate_v_s=-1.0)
        with pytest.raises(TechniqueError):
            CVTechnique(e_begin_v=50.0)

    def test_cv_ecc_params(self):
        params = CVTechnique(scan_rate_v_s=0.2).ecc_params()
        assert params["technique"] == "CV"
        assert params["scan_rate"] == 0.2

    def test_ca_cottrell_decay(self, filled_cell):
        technique = CATechnique(e_step_to_v=0.8, duration=5.0, dt_s=0.01)
        trace = technique.execute(filled_cell)
        # Cottrell: i ~ t^-1/2, so i(t) * sqrt(t) constant in the tail
        tail = slice(200, 500)
        product = trace.current_a[tail] * np.sqrt(trace.time_s[tail])
        assert product.std() / product.mean() < 0.05

    def test_ca_validation(self):
        with pytest.raises(TechniqueError):
            CATechnique(duration=-1.0)
        with pytest.raises(TechniqueError):
            CATechnique(duration=1.0, dt_s=2.0)

    def test_ocv_zero_current_near_rest(self, filled_cell):
        technique = OCVTechnique(duration=5.0, dt_s=0.1)
        trace = technique.execute(filled_cell)
        assert np.all(trace.current_a == 0.0)
        # rest potential below E0 for an all-reduced analyte
        assert trace.potential_v.mean() < 0.40

    def test_ocv_blank_cell_drifts(self):
        cell = ElectrochemicalCell()
        trace = OCVTechnique(duration=2.0, dt_s=0.1).execute(cell)
        assert len(trace) == 20

    def test_durations(self):
        assert CVTechnique().duration_s() == pytest.approx(12.0)
        assert CATechnique(duration=7.0).duration_s() == 7.0
        assert OCVTechnique(duration=3.0).duration_s() == 3.0
