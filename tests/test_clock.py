"""Clock abstraction: wall vs virtual time."""

import threading

import pytest

from repro.clock import VirtualClock, WallClock


def test_wall_clock_monotonic():
    clock = WallClock()
    t1 = clock.now()
    t2 = clock.now()
    assert t2 >= t1


def test_wall_clock_sleep_zero_and_negative_are_noops():
    clock = WallClock()
    clock.sleep(0.0)
    clock.sleep(-1.0)  # must not raise or sleep


def test_virtual_clock_starts_where_told():
    assert VirtualClock(start=100.0).now() == pytest.approx(100.0)


def test_virtual_clock_advances_only_on_sleep():
    clock = VirtualClock()
    before = clock.now()
    assert clock.now() == before
    clock.sleep(5.0)
    assert clock.now() == pytest.approx(before + 5.0)


def test_virtual_clock_rejects_negative_sleep():
    with pytest.raises(ValueError):
        VirtualClock().sleep(-0.1)


def test_virtual_clock_advance_alias():
    clock = VirtualClock()
    clock.advance(2.5)
    assert clock.now() == pytest.approx(2.5)


def test_virtual_clock_thread_safety():
    clock = VirtualClock()
    n_threads, n_sleeps = 8, 200

    def worker():
        for _ in range(n_sleeps):
            clock.sleep(0.001)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert clock.now() == pytest.approx(n_threads * n_sleeps * 0.001)
