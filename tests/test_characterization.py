"""HPLC-MS, chromatograms, the robot, and the extended workflow."""

import numpy as np
import pytest

from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.species import (
    FERROCENE,
    FERROCENIUM,
    Solution,
    ACETONITRILE,
    ferrocene_solution,
)
from repro.errors import (
    FeatureExtractionError,
    InstrumentCommandError,
    InstrumentStateError,
)
from repro.instruments.characterization import (
    COMPOUND_LIBRARY,
    Chromatogram,
    CompoundSignature,
    HPLCMS,
)
from repro.instruments.jkem.plumbing import Reservoir
from repro.instruments.robot import MobileRobot


class TestCompounds:
    def test_library_has_the_analyte_system(self):
        assert "ferrocene" in COMPOUND_LIBRARY
        assert "ferrocenium" in COMPOUND_LIBRARY
        # same molecular ion, different retention (charge changes elution)
        assert COMPOUND_LIBRARY["ferrocene"].mz == COMPOUND_LIBRARY[
            "ferrocenium"
        ].mz
        assert (
            COMPOUND_LIBRARY["ferrocene"].retention_min
            != COMPOUND_LIBRARY["ferrocenium"].retention_min
        )

    def test_signature_validation(self):
        with pytest.raises(InstrumentCommandError):
            CompoundSignature(name="x", retention_min=0.0, mz=100.0)
        with pytest.raises(InstrumentCommandError):
            CompoundSignature(name="x", retention_min=1.0, mz=-5.0)


class TestHPLC:
    def test_inject_identifies_ferrocene(self):
        hplc = HPLCMS()
        chromatogram = hplc.inject(ferrocene_solution(2.0), 0.5)
        peak = chromatogram.peak_for("ferrocene")
        assert peak is not None
        assert peak.retention_min == pytest.approx(6.8)
        assert peak.area > 0
        assert hplc.injections_run == 1

    def test_peak_area_proportional_to_amount(self):
        hplc = HPLCMS()
        small = hplc.inject(ferrocene_solution(1.0), 0.5).peak_for("ferrocene")
        large = hplc.inject(ferrocene_solution(4.0), 0.5).peak_for("ferrocene")
        assert large.area / small.area == pytest.approx(4.0, rel=1e-6)

    def test_unknown_compound_elutes_unidentified(self):
        from repro.chemistry.species import RedoxSpecies

        mystery = RedoxSpecies(name="mystery", formal_potential_v=0.1)
        sample = Solution(solvent=ACETONITRILE, species={mystery: 1e-6})
        chromatogram = HPLCMS().inject(sample, 0.5)
        unknown = [p for p in chromatogram.peaks if p.compound is None]
        assert len(unknown) == 1
        assert unknown[0].retention_min == HPLCMS.UNKNOWN_RETENTION_MIN

    def test_inject_from_vial_consumes_sample(self):
        vial = Reservoir("v", ferrocene_solution(2.0), 1.0)
        HPLCMS().inject_vial(vial, 0.4)
        assert vial.volume_ml == pytest.approx(0.6)

    def test_bad_injection_volume(self):
        with pytest.raises(InstrumentCommandError):
            HPLCMS().inject(ferrocene_solution(), 0.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(InstrumentStateError):
            HPLCMS().inject(None, 0.5)

    def test_signal_has_peak_at_retention_time(self):
        chromatogram = HPLCMS(noise_counts=0.0).inject(
            ferrocene_solution(2.0), 0.5
        )
        index = int(np.argmax(chromatogram.signal * (chromatogram.time_min > 2)))
        assert chromatogram.time_min[index] == pytest.approx(6.8, abs=0.2)


class TestChromatogram:
    def test_dict_round_trip(self):
        chromatogram = HPLCMS().inject(ferrocene_solution(2.0), 0.5)
        rebuilt = Chromatogram.from_dict(chromatogram.to_dict())
        assert len(rebuilt) == len(chromatogram)
        assert rebuilt.peak_for("ferrocene").area == pytest.approx(
            chromatogram.peak_for("ferrocene").area
        )

    def test_amount_ratio(self):
        sample = Solution(
            solvent=ACETONITRILE,
            species={FERROCENE: 2e-6, FERROCENIUM: 1e-6},
        )
        chromatogram = HPLCMS().inject(sample, 0.5)
        # response-corrected ratio recovers the true mole ratio
        assert chromatogram.amount_ratio(
            "ferrocenium", "ferrocene"
        ) == pytest.approx(0.5, rel=1e-6)

    def test_amount_ratio_missing_compound(self):
        chromatogram = HPLCMS().inject(ferrocene_solution(2.0), 0.5)
        with pytest.raises(FeatureExtractionError):
            chromatogram.amount_ratio("ferrocenium", "ferrocene")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Chromatogram(time_min=np.arange(5.0), signal=np.arange(4.0))


class TestRobot:
    def test_transfer_moves_vial(self):
        robot = MobileRobot()
        vial = Reservoir("f1", ferrocene_solution(), 1.0)
        robot.stage_vial("electrochemistry", vial)
        robot.transfer("electrochemistry", "hplc")
        assert robot.vial_at("hplc") is vial
        assert robot.vial_at("electrochemistry") is None
        assert robot.holding is None

    def test_pick_requires_vial(self):
        robot = MobileRobot()
        with pytest.raises(InstrumentStateError, match="no vial"):
            robot.pick()

    def test_pick_requires_empty_gripper(self):
        robot = MobileRobot()
        robot.stage_vial("electrochemistry", Reservoir("a", ferrocene_solution(), 1.0))
        robot.pick()
        with pytest.raises(InstrumentStateError, match="already holds"):
            robot.pick()

    def test_place_requires_held_vial(self):
        robot = MobileRobot()
        with pytest.raises(InstrumentStateError, match="empty"):
            robot.place()

    def test_place_requires_free_slot(self):
        robot = MobileRobot()
        robot.stage_vial("electrochemistry", Reservoir("a", ferrocene_solution(), 1.0))
        robot.stage_vial("hplc", Reservoir("b", ferrocene_solution(), 1.0))
        robot.pick()
        robot.move_to("hplc")
        with pytest.raises(InstrumentStateError, match="already holds"):
            robot.place()

    def test_unknown_station(self):
        robot = MobileRobot()
        with pytest.raises(InstrumentCommandError):
            robot.move_to("moon")

    def test_travel_time_charged(self):
        from repro.clock import VirtualClock

        clock = VirtualClock()
        robot = MobileRobot(travel_s=30.0, time_scale=1.0, clock=clock)
        robot.move_to("hplc")
        assert clock.now() == pytest.approx(30.0)
        robot.move_to("hplc")  # already there: no travel
        assert clock.now() == pytest.approx(30.0)

    def test_status_summary(self):
        robot = MobileRobot()
        summary = robot.status_summary()
        assert summary["location"] == "electrochemistry"
        assert summary["holding"] is None


class TestBulkElectrolysis:
    def test_cell_conversion(self):
        cell = ElectrochemicalCell()
        cell.add_liquid(5.0, ferrocene_solution(2.0))
        before = cell.contents.concentration(FERROCENE)
        cell.apply_electrolysis(FERROCENE, FERROCENIUM, 1e-6)
        after = cell.contents
        assert after.concentration(FERROCENE) == pytest.approx(
            before - 1e-6 / 5.0
        )
        assert after.concentration(FERROCENIUM) == pytest.approx(1e-6 / 5.0)

    def test_conversion_capped_at_available(self):
        cell = ElectrochemicalCell()
        cell.add_liquid(5.0, ferrocene_solution(2.0))
        cell.apply_electrolysis(FERROCENE, FERROCENIUM, 1.0)  # way too much
        assert cell.contents.concentration(FERROCENE) == 0.0
        assert cell.contents.concentration(FERROCENIUM) == pytest.approx(2e-6)

    def test_acquisition_converts_analyte(self, workstation):
        api = workstation.jkem_api
        api.set_vial_fraction_collector(1, "BOTTOM")
        api.set_port_syringe_pump(1, 1)
        api.withdraw_syringe_pump(1, 6.0)
        api.set_port_syringe_pump(1, 8)
        api.dispense_syringe_pump(1, 6.0)
        eclab = workstation.eclab
        eclab.initialize()
        eclab.connect()
        eclab.load_firmware()
        eclab.init_ca_technique({"e_step_to_v": 0.8, "duration": 30.0})
        eclab.load_technique()
        eclab.start_channel()
        eclab.get_measurements()
        contents = workstation.cell.contents
        assert contents.concentration(FERROCENIUM) > 0.0


class TestCharacterizationWorkflow:
    def test_end_to_end(self, ice):
        from repro.core.characterization_workflow import (
            run_characterization_workflow,
        )

        result = run_characterization_workflow(ice)
        assert result.succeeded, result.summary()
        assert result.chromatogram is not None
        assert result.chromatogram.peak_for("ferrocene") is not None
        assert result.chromatogram.peak_for("ferrocenium") is not None
        assert result.conversion_ratio is not None
        assert 0.0 < result.conversion_ratio < 0.1
        assert "ferrocenium/ferrocene" in result.summary()

    def test_robot_fault_fails_transfer_task(self, ice):
        from repro.core.characterization_workflow import (
            run_characterization_workflow,
        )
        from repro.core.workflow import TaskState

        ice.characterization.robot.inject_fault("drive stalled")
        result = run_characterization_workflow(ice)
        assert not result.succeeded
        assert (
            result.workflow.tasks["G_transfer_and_inject"].state
            is TaskState.FAILED
        )
