"""The cross-facility scrape surface: ACL_Observability, the
aggregator, and the ``repro-ice top`` session plumbing."""

from __future__ import annotations

import pytest

import repro
from repro.clock import VirtualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.scrape import (
    ObsAggregator,
    ObservabilityServer,
    UNTAGGED,
    VIEW_SCHEMA,
    format_top,
)
from repro.obs.timeseries import SCHEMA as TSDB_SCHEMA, TimeSeriesStore
from repro.rpc.context import reset_current_tenant, set_current_tenant


def _store_with_traffic(tenants=("lab-a",), errors=0):
    clock = VirtualClock()
    reg = MetricsRegistry()
    store = TimeSeriesStore(clock=clock)
    store.attach(reg)
    counter = reg.counter("rpc.client.calls_total")
    for tenant in tenants:
        for _ in range(10):
            counter.inc(status="ok", tenant=tenant)
        for _ in range(errors):
            counter.inc(status="error", tenant=tenant)
    clock.advance(1.0)
    return clock, reg, store


class TestObservabilityServer:
    def test_scrape_reply_shape(self):
        _, _, store = _store_with_traffic()
        server = ObservabilityServer(store, service="unit")
        reply = server.Obs_Scrape()
        assert reply["schema"] == TSDB_SCHEMA
        assert reply["service"] == "unit"
        assert reply["gap"] == 0
        assert reply["cursor"] > 0
        assert all(r["name"] == "rpc.client.calls_total" for r in reply["rows"])

    def test_scrape_over_the_wire(self, ice):
        """The registered ACL_Observability object answers via a real
        proxy with the same cursor/gap contract."""
        from repro.obs import MetricsRegistry as Registry, Tracer

        metrics = Registry()
        ice.attach_observability(Tracer("t"), metrics)
        client = ice.client(metrics=metrics)
        try:
            client.call_Status_JKem()
        finally:
            client.close()
        obs = ice.obs_client()
        try:
            reply = obs.Obs_Scrape(cursor=0)
            assert reply["schema"] == TSDB_SCHEMA
            assert reply["service"] == "acl-daemon"
            names = {r["name"] for r in reply["rows"]}
            # the daemon-side store only carries daemon-half metrics
            assert any(n.startswith("rpc.daemon.") for n in names)
            assert not any(n.startswith("rpc.client.") for n in names)
            # cursor paging: second scrape from the cursor is empty-ish
            reply2 = obs.Obs_Scrape(cursor=reply["cursor"])
            assert reply2["gap"] == 0
        finally:
            obs.close()


class TestObsAggregator:
    def test_merges_stores_into_tenant_view(self):
        _, _, store_a = _store_with_traffic(tenants=("t1",))
        _, _, store_b = _store_with_traffic(tenants=("t1", "t2"), errors=2)
        agg = ObsAggregator()
        agg.add_store("fac-a", store_a)
        agg.add_store("fac-b", store_b)
        agg.refresh()
        view = agg.view()
        assert view["schema"] == VIEW_SCHEMA
        assert view["facilities"] == ["fac-a", "fac-b"]
        t1 = view["tenants"]["t1"]["rpc.client.calls_total"]
        assert t1["sum"] == 22  # 10 + 12
        assert sorted(t1["facilities"]) == ["fac-a", "fac-b"]
        assert t1["error_sum"] == 2
        t2 = view["tenants"]["t2"]["rpc.client.calls_total"]
        assert t2["sum"] == 12

    def test_untagged_rows_bucket_separately(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        store = TimeSeriesStore(clock=clock)
        store.attach(reg)
        reg.counter("workflow.tasks_total").inc(state="done")
        clock.advance(1.0)
        agg = ObsAggregator()
        agg.add_store("f", store)
        agg.refresh()
        assert "workflow.tasks_total" in agg.view()["tenants"][UNTAGGED]

    def test_incremental_refresh_uses_cursors(self):
        clock, reg, store = _store_with_traffic()
        agg = ObsAggregator()
        agg.add_store("f", store)
        agg.refresh()
        before = agg.view()["tenants"]["lab-a"]["rpc.client.calls_total"]["sum"]
        reg.counter("rpc.client.calls_total").inc(status="ok", tenant="lab-a")
        clock.advance(1.0)
        agg.refresh()
        after = agg.view()["tenants"]["lab-a"]["rpc.client.calls_total"]["sum"]
        assert after == before + 1  # delta only: no re-count of old rows

    def test_failed_source_is_skipped_and_counted(self):
        class Boom:
            def Obs_Scrape(self, **kwargs):
                raise ConnectionError("facility offline")

        _, _, store = _store_with_traffic()
        agg = ObsAggregator()
        agg.add_store("good", store)
        agg.add_remote("bad", Boom())
        agg.refresh()
        view = agg.view()
        assert view["failures"]["bad"] == 1
        assert view["failures"]["good"] == 0
        assert view["tenants"]["lab-a"]  # the healthy source still merged

    def test_gap_is_surfaced_per_source(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        store = TimeSeriesStore(clock=clock, export_capacity=4)
        store.attach(reg)
        agg = ObsAggregator()
        agg.add_store("f", store)
        agg.refresh()
        counter = reg.counter("c")
        for _ in range(10):
            counter.inc()
            clock.advance(1.0)
        agg.refresh()
        assert agg.view()["gaps"]["f"] > 0


class TestFormatTop:
    def _view(self):
        _, _, store = _store_with_traffic(tenants=("lab-a", "lab-b"), errors=3)
        agg = ObsAggregator()
        agg.add_store("fac", store)
        agg.refresh()
        return agg.view()

    def test_renders_tenant_rows(self):
        out = format_top(self._view())
        assert "TENANT" in out and "BURN" in out
        assert "lab-a" in out and "lab-b" in out
        assert "fac" in out  # facility listed in the header

    def test_renders_slo_alert_cell(self):
        statuses = [
            {
                "objective": "rpc-availability",
                "tenant": "lab-a",
                "alerts": ["fast"],
                "burn_fast": 20.0,
                "burn_slow": 1.0,
                "status": "alerting",
            },
            {
                "objective": "rpc-availability",
                "tenant": "lab-b",
                "alerts": [],
                "burn_fast": 0.0,
                "burn_slow": 0.0,
                "status": "ok",
            },
        ]
        out = format_top(self._view(), statuses)
        a_row = next(l for l in out.splitlines() if l.startswith("lab-a"))
        b_row = next(l for l in out.splitlines() if l.startswith("lab-b"))
        assert "ALERT[fast]" in a_row and "rpc-availability" in a_row
        assert "ok" in b_row and "ALERT" not in b_row


class TestSessionSurface:
    def test_session_scrape_and_slo(self, ice):
        with repro.connect(ice) as session:
            token = set_current_tenant("lab-x")
            try:
                session.client.call_Status_JKem()
            finally:
                reset_current_tenant(token)
            reply = session.scrape()
            assert reply["schema"] == TSDB_SCHEMA
            assert reply["service"] == "dgx-session"
            names = {r["name"] for r in reply["rows"]}
            assert any(n.startswith("rpc.client.") for n in names)
            statuses = session.slo()
            assert {s["objective"] for s in statuses} >= {"rpc-availability"}

    def test_session_top_merges_both_facilities(self, ice):
        with repro.connect(ice) as session:
            token = set_current_tenant("lab-x")
            try:
                for _ in range(3):
                    session.client.call_Status_JKem()
            finally:
                reset_current_tenant(token)
            out = session.top()
            assert "dgx-session" in out and "acl-daemon" in out
            assert "lab-x" in out

    def test_slo_subsystem_in_session_health(self, ice):
        with repro.connect(ice) as session:
            session.client.call_Status_JKem()
            report = session.health()
            assert "slo" in report.subsystems
            assert report.subsystems["slo"].status == "healthy"
