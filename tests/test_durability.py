"""Unit tests for the durability layer: journal, checkpoints, leases,
atomic writes, dedup journal, and the daemon-side restart/fencing hooks."""

import json
import threading

import pytest

from repro.durability import (
    CheckpointStore,
    DedupJournal,
    Journal,
    LeaseRegistry,
    atomic_write_json,
    atomic_write_text,
)
from repro.errors import JournalCorruptError, LeaseFencedError
from repro.rpc.daemon import DedupCache
from repro.rpc.protocol import MessageType


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("started", run="a")
            journal.append("progress", step=1)
            journal.append("finished", ok=True)
        replay = Journal.replay_file(path)
        assert not replay.torn_tail
        assert [r.kind for r in replay.records] == [
            "started",
            "progress",
            "finished",
        ]
        assert [r.seq for r in replay.records] == [0, 1, 2]
        assert replay.records[1].data == {"step": 1}

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("one")
        with Journal(path) as journal:
            assert journal.next_seq == 1
            record = journal.append("two")
        assert record.seq == 1
        assert [r.seq for r in Journal.iter_records(path)] == [0, 1]

    def test_torn_tail_detected_and_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("one")
            journal.append("two")
        # simulate a crash mid-append: an unterminated JSON fragment
        with open(path, "a") as handle:
            handle.write('{"schema": "repro-journal-1", "seq"')
        replay = Journal.replay_file(path)
        assert replay.torn_tail
        assert [r.kind for r in replay.records] == ["one", "two"]

    def test_checksum_damage_on_tail_is_torn(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("one")
            journal.append("two", value=42)
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace("42", "43")  # bit-flip the tail
        path.write_text("\n".join(lines) + "\n")
        replay = Journal.replay_file(path)
        assert replay.torn_tail
        assert [r.kind for r in replay.records] == ["one"]

    def test_midfile_damage_refuses_to_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("one", value=1)
            journal.append("two")
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"value":1', '"value":2')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError):
            Journal.replay_file(path)

    def test_reopen_truncates_torn_tail_then_appends_cleanly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("one")
        with open(path, "a") as handle:
            handle.write('{"torn')
        with Journal(path) as journal:
            assert journal.initial_replay.torn_tail
            journal.append("two")
        replay = Journal.replay_file(path)
        assert not replay.torn_tail
        assert [r.kind for r in replay.records] == ["one", "two"]

    def test_concurrent_appends_keep_seq_dense(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path, fsync=False)
        threads = [
            threading.Thread(
                target=lambda i=i: [
                    journal.append("tick", worker=i) for _ in range(20)
                ]
            )
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        journal.close()
        records = list(Journal.iter_records(path))
        assert [r.seq for r in records] == list(range(80))


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        payload = {"index": 3, "metrics": {"e_half_v": 0.4}}
        store.save("round-003", payload)
        assert store.load("round-003") == payload
        assert store.names() == ["round-003"]

    def test_missing_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.load("nope") is None

    def test_damage_detected(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("r", {"a": 1})
        path = tmp_path / "ckpt" / "r.json"
        doc = json.loads(path.read_text())
        doc["payload"]["a"] = 2  # payload no longer matches sha256
        path.write_text(json.dumps(doc))
        with pytest.raises(JournalCorruptError):
            store.load("r")

    def test_rejects_path_escapes(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        with pytest.raises(ValueError):
            store.save("../escape", {})


class TestAtomicWrites:
    def test_replaces_content_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_json_helper(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}


class TestLeaseRegistry:
    def test_epochs_monotonic_and_fencing(self, tmp_path):
        registry = LeaseRegistry(tmp_path / "leases.json")
        first = registry.acquire("cell", holder="s1")
        second = registry.acquire("cell", holder="s2")
        assert second == first + 1
        registry.check("cell", second)  # current holder passes
        with pytest.raises(LeaseFencedError):
            registry.check("cell", first)  # predecessor is fenced
        with pytest.raises(LeaseFencedError):
            registry.check("cell", second + 7)  # forged future epoch too

    def test_epochs_survive_reload(self, tmp_path):
        path = tmp_path / "leases.json"
        registry = LeaseRegistry(path)
        registry.acquire("cell", holder="s1")
        registry.acquire("cell", holder="s2")
        reloaded = LeaseRegistry(path)
        assert reloaded.current("cell") == 2
        assert reloaded.holder("cell") == "s2"
        assert reloaded.acquire("cell", holder="s3") == 3


class TestDedupJournal:
    def test_record_replay_roundtrip(self, tmp_path):
        journal = DedupJournal(tmp_path / "dedup.jsonl")
        journal.record("k:0", MessageType.RESPONSE, {"ok": True})
        journal.record("k:1", MessageType.ERROR, {"error_type": "Boom"})
        journal.close()
        replayed = DedupJournal(tmp_path / "dedup.jsonl").replay()
        assert replayed["k:0"] == (MessageType.RESPONSE, {"ok": True})
        assert replayed["k:1"][0] == MessageType.ERROR

    def test_preload_into_dedup_cache(self, tmp_path):
        journal = DedupJournal(tmp_path / "dedup.jsonl")
        for i in range(3):
            journal.record(f"k:{i}", MessageType.RESPONSE, i)
        journal.close()
        cache = DedupCache(capacity=8)
        assert cache.preload(
            DedupJournal(tmp_path / "dedup.jsonl").replay()
        ) == 3
        # a preloaded key replays without executing
        assert cache.claim("k:1") == (MessageType.RESPONSE, 1)
        # an unknown key is owned by the caller
        assert cache.claim("fresh:0") is None


class TestDaemonDurabilityHooks:
    def test_shutdown_reaches_quiescence(self):
        from repro.facility.ice import ElectrochemistryICE

        ice = ElectrochemistryICE.build()
        try:
            client = ice.client()
            client.call_Cell_Status()
            client.close()
        finally:
            ice.shutdown()
        assert ice.control_daemon.quiescent

    def test_crash_then_restart_preloads_dedup_journal(self):
        from repro.facility.ice import ElectrochemistryICE
        from repro.resilience import RetryPolicy

        ice = ElectrochemistryICE.build()
        try:
            client = ice.client(
                resilient=True,
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
                idem_prefix="restartcase",
            )
            client.call_Initialize_SP200_API({"channel": 1})
            client.call_Cell_Status()
            client.close()
            ice.crash_control_daemon(keep_disk=True)
            daemon = ice.restart_control_daemon()
            assert daemon.dedup_preloaded >= 2
            # the same prefix re-issues identical keys: pure replay
            replays_before = daemon.replay_count
            again = ice.client(
                resilient=True,
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
                idem_prefix="restartcase",
            )
            again.call_Initialize_SP200_API({"channel": 1})
            again.call_Cell_Status()
            again.close()
            assert daemon.replay_count - replays_before == 2
        finally:
            ice.shutdown()

    def test_crash_discarding_disk_forgets_outcomes(self):
        from repro.facility.ice import ElectrochemistryICE
        from repro.resilience import RetryPolicy

        ice = ElectrochemistryICE.build()
        try:
            client = ice.client(
                resilient=True,
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
                idem_prefix="wipedcase",
            )
            client.call_Cell_Status()
            client.close()
            ice.crash_control_daemon(keep_disk=False)
            daemon = ice.restart_control_daemon()
            assert daemon.dedup_preloaded == 0
        finally:
            ice.shutdown()
