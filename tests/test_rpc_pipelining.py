"""Request pipelining: demuxed replies, bursts, pools (PROTOCOLS §1.4).

Covers the ISSUE-3 tentpole and its proxy satellites:

- seq-correlated demultiplexing with multiple REQUEST frames in flight;
- multi-threaded use of one shared proxy, with and without pipelining
  (interleaved calls, correct reply correlation, no error cross-talk);
- the in-flight window as backpressure, including single-thread bursts
  deeper than the window;
- `Pipeline` semantics (drain on exit, error isolation, idempotency
  keys, span parenting) and `ProxyPool` (blocking acquire, shared
  breaker, close);
- the `_pyro_metadata` copy fix and the byte-counter capture fix;
- the `rpc.client.inflight` gauge.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import CallTimeoutError, CommunicationError, ReproError
from repro.net.delay import delayed_loopback
from repro.obs import MetricsRegistry, Tracer
from repro.rpc import Daemon, PendingReply, Pipeline, Proxy, ProxyPool, expose


@expose
class EchoService:
    def __init__(self):
        self.lock = threading.Lock()
        self.calls = 0

    def echo(self, value):
        with self.lock:
            self.calls += 1
        return value

    def add(self, a, b):
        return a + b

    def fail(self, message):
        raise ValueError(message)

    def payload(self, size):
        return b"x" * size


@pytest.fixture()
def service_daemon():
    daemon = Daemon(host="127.0.0.1", port=0)
    service = EchoService()
    uri = daemon.register(service, object_id="Echo")
    daemon.start_background()
    yield uri, service, daemon
    daemon.shutdown()


class TestPipelinedProxy:
    def test_max_inflight_validation(self):
        with pytest.raises(ValueError):
            Proxy("PYRO:X@127.0.0.1:1", max_inflight=0)

    def test_default_is_serial(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with Proxy(uri) as proxy:
            assert proxy.max_inflight == 1
            with pytest.raises(ValueError):
                proxy.pipeline()

    def test_single_thread_burst_deeper_than_window(self, service_daemon):
        """Issuing more calls than the window drains replies inline."""
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=3) as proxy:
            with proxy.pipeline() as pipe:
                pending = [pipe.call("add", i, 100) for i in range(20)]
                assert [p.result() for p in pending] == [
                    i + 100 for i in range(20)
                ]

    def test_results_collectable_out_of_order(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=8) as proxy:
            with proxy.pipeline() as pipe:
                pending = [pipe.call("echo", i) for i in range(8)]
                assert [p.result() for p in reversed(pending)] == list(
                    reversed(range(8))
                )

    def test_result_is_idempotent(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=2) as proxy:
            with proxy.pipeline() as pipe:
                reply = pipe.call("echo", "x")
                assert reply.result() == "x"
                assert reply.result() == "x"
                assert reply.done

    def test_remote_error_isolated_to_its_call(self, service_daemon):
        """One failing call in a burst must not poison its neighbours."""
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=4) as proxy:
            with proxy.pipeline() as pipe:
                before = pipe.call("echo", "before")
                bad = pipe.call("fail", "kapow")
                after = pipe.call("echo", "after")
                assert before.result() == "before"
                with pytest.raises(ReproError, match="kapow"):
                    bad.result()
                with pytest.raises(ReproError, match="kapow"):
                    bad.result()  # cached error, same outcome
                assert after.result() == "after"
            # proxy remains usable after a remote error
            assert proxy.echo("still alive") == "still alive"

    def test_uncollected_error_raises_at_exit(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=4) as proxy:
            with pytest.raises(ReproError, match="kapow"):
                with proxy.pipeline() as pipe:
                    pipe.call("fail", "kapow")
            # an error already handled by the caller is not re-raised
            with proxy.pipeline() as pipe:
                bad = pipe.call("fail", "kapow")
                with pytest.raises(ReproError):
                    bad.result()

    def test_pipelined_ping_and_metadata(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=4) as proxy:
            proxy._pyro_ping()
            assert "echo" in proxy._pyro_metadata()["methods"]

    def test_plain_calls_on_pipelined_proxy(self, service_daemon):
        """Ordinary attribute calls work on a pipelined proxy too."""
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=4) as proxy:
            assert proxy.add(2, 3) == 5
            assert proxy.echo("plain") == "plain"


class TestSharedProxyThreads:
    @pytest.mark.parametrize("max_inflight", [1, 8])
    def test_interleaved_calls_correlate(self, service_daemon, max_inflight):
        """Many threads on one proxy: every reply matches its request."""
        uri, _service, _daemon = service_daemon
        proxy = Proxy(uri, max_inflight=max_inflight)
        results: dict[int, list] = {}
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def worker(worker_id: int) -> None:
            try:
                barrier.wait()
                results[worker_id] = [
                    proxy.add(worker_id * 1000, j) for j in range(40)
                ]
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        proxy.close()
        assert not errors
        for worker_id in range(8):
            assert results[worker_id] == [
                worker_id * 1000 + j for j in range(40)
            ]

    @pytest.mark.parametrize("max_inflight", [1, 8])
    def test_no_error_cross_talk(self, service_daemon, max_inflight):
        """A thread's remote error never leaks into another thread."""
        uri, _service, _daemon = service_daemon
        proxy = Proxy(uri, max_inflight=max_inflight)
        outcomes: dict[int, object] = {}
        barrier = threading.Barrier(6)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for iteration in range(20):
                if worker_id % 2 == 0:
                    try:
                        proxy.fail(f"w{worker_id}-i{iteration}")
                        outcomes[worker_id] = "no-error"
                        return
                    except ReproError as exc:
                        if f"w{worker_id}-" not in str(exc):
                            outcomes[worker_id] = f"wrong error: {exc}"
                            return
                else:
                    value = proxy.echo((worker_id, iteration))
                    if tuple(value) != (worker_id, iteration):
                        outcomes[worker_id] = f"wrong reply: {value}"
                        return
            outcomes[worker_id] = "ok"

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        proxy.close()
        assert all(v == "ok" for v in outcomes.values()), outcomes

    def test_threads_overlap_round_trips_when_pipelined(self):
        """At 10 ms RTT, 4 threads sharing a pipelined proxy finish in
        far less than 4x the serial time (their RTTs overlap)."""
        import time

        listener, factory = delayed_loopback(0.005)
        daemon = Daemon(listener=listener)
        uri = daemon.register(EchoService(), object_id="Echo")
        daemon.start_background()
        try:
            proxy = Proxy(uri, connection_factory=factory, max_inflight=8)
            proxy.echo("warm")  # connect before timing
            barrier = threading.Barrier(4)

            def worker() -> None:
                barrier.wait()
                for _ in range(4):
                    proxy.echo("x")

            threads = [threading.Thread(target=worker) for _ in range(4)]
            start = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.monotonic() - start
            proxy.close()
            # serial would be 16 calls x 10 ms = 160 ms; overlapped
            # threads need roughly 4 rounds of 10 ms
            assert elapsed < 0.120, f"no overlap: {elapsed * 1000:.0f} ms"
        finally:
            daemon.shutdown()


class TestSatelliteFixes:
    def test_metadata_returns_a_copy(self, service_daemon):
        """Mutating the returned metadata must not poison the cache."""
        uri, _service, _daemon = service_daemon
        for max_inflight in (1, 4):
            with Proxy(uri, max_inflight=max_inflight) as proxy:
                first = proxy._pyro_metadata()
                first["methods"].append("injected")
                first["poison"] = True
                second = proxy._pyro_metadata()
                assert "injected" not in second["methods"]
                assert "poison" not in second

    def test_byte_counters_attributed_per_method(self, service_daemon):
        """Concurrent calls attribute wire bytes to the right method and
        drop nothing: per-method counters sum to the connection totals."""
        uri, _service, _daemon = service_daemon
        metrics = MetricsRegistry()
        listener, factory = delayed_loopback(0.0)
        daemon = Daemon(listener=listener)
        uri = daemon.register(EchoService(), object_id="Echo")
        daemon.start_background()
        try:
            # binary=False: the HELLO handshake would add connection bytes
            # that belong to no method, and this test asserts exact
            # per-method attribution of every byte on the wire
            proxy = Proxy(
                uri, connection_factory=factory, metrics=metrics, binary=False
            )
            barrier = threading.Barrier(4)

            def worker(worker_id: int) -> None:
                barrier.wait()
                for _ in range(10):
                    if worker_id % 2 == 0:
                        proxy.payload(2048)
                    else:
                        proxy.echo("tiny")

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            conn = proxy._conn
            sent = metrics.counter("rpc.client.bytes_sent_total")
            received = metrics.counter("rpc.client.bytes_received_total")
            total_sent = sent.value(method="payload") + sent.value(
                method="echo"
            )
            total_received = received.value(method="payload") + received.value(
                method="echo"
            )
            assert total_sent == conn.bytes_sent
            assert total_received == conn.bytes_received
            # the big replies belong to payload, not echo
            assert received.value(method="payload") > 20 * 2048
            assert received.value(method="echo") < received.value(
                method="payload"
            )
            proxy.close()
        finally:
            daemon.shutdown()


class TestObservability:
    def test_inflight_gauge_returns_to_zero(self, service_daemon):
        uri, _service, _daemon = service_daemon
        for max_inflight in (1, 4):
            metrics = MetricsRegistry()
            with Proxy(uri, metrics=metrics, max_inflight=max_inflight) as proxy:
                proxy.echo("x")
                if max_inflight > 1:
                    with proxy.pipeline() as pipe:
                        pending = [pipe.call("echo", i) for i in range(6)]
                        for reply in pending:
                            reply.result()
                gauge = metrics.gauge("rpc.client.inflight")
                assert gauge.value() == 0

    def test_burst_spans_share_parent(self, service_daemon):
        """Every pipelined call's span parents under the span current at
        issue time, not under the previous call in the burst."""
        uri, _service, _daemon = service_daemon
        tracer = Tracer()
        with Proxy(uri, tracer=tracer, max_inflight=4) as proxy:
            with tracer.start_as_current_span("burst-root") as root:
                with proxy.pipeline() as pipe:
                    pending = [pipe.call("echo", i) for i in range(5)]
                    for reply in pending:
                        reply.result()
        spans = tracer.find("rpc.call.echo")
        assert len(spans) == 5
        assert {span.parent_id for span in spans} == {root.context.span_id}
        assert all(span.attributes.get("rpc.pipelined") for span in spans)

    def test_burst_metrics_status_labels(self, service_daemon):
        uri, _service, _daemon = service_daemon
        metrics = MetricsRegistry()
        with Proxy(uri, metrics=metrics, max_inflight=4) as proxy:
            with proxy.pipeline() as pipe:
                good = [pipe.call("echo", i) for i in range(3)]
                bad = pipe.call("fail", "nope")
                for reply in good:
                    reply.result()
                with pytest.raises(ReproError):
                    bad.result()
        calls = metrics.counter("rpc.client.calls_total")
        assert calls.value(method="echo", status="ok") == 3
        assert calls.value(method="fail", status="error") == 1


class TestIdempotentPipeline:
    def test_keys_attached_and_deduplicated_by_daemon(self, service_daemon):
        """idempotent=True bursts carry per-call keys the daemon dedups."""
        uri, service, daemon = service_daemon
        with Proxy(uri, max_inflight=4) as proxy:
            pipe = proxy.pipeline(idempotent=True)
            reply = pipe.call("echo", "first", _idempotency_key="fixed-key")
            assert reply.result() == "first"
            calls_before = service.calls
            # same key again: daemon replays the recorded outcome
            replay = pipe.call("echo", "second", _idempotency_key="fixed-key")
            assert replay.result() == "first"
            assert service.calls == calls_before
            assert daemon.replay_count >= 1
            pipe.drain()

    def test_auto_keys_are_unique(self, service_daemon):
        uri, service, _daemon = service_daemon
        with Proxy(uri, max_inflight=4) as proxy:
            with proxy.pipeline(idempotent=True) as pipe:
                pending = [pipe.call("echo", i) for i in range(5)]
                assert [p.result() for p in pending] == list(range(5))
            assert service.calls >= 5  # nothing was wrongly deduplicated


class TestProxyPool:
    def test_members_are_independent_connections(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with ProxyPool(uri, size=2) as pool:
            with pool.acquire() as first, pool.acquire() as second:
                assert first is not second
                assert first.echo(1) == 1
                assert second.echo(2) == 2
            assert len(pool) == 2
            assert pool.in_use == 0

    def test_acquire_blocks_until_checkin(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with ProxyPool(uri, size=1) as pool:
            lease = pool.acquire()
            proxy = lease.__enter__()
            assert proxy.echo("held") == "held"
            with pytest.raises(CallTimeoutError):
                pool.acquire(timeout=0.05).__enter__()
            lease.__exit__(None, None, None)
            # freed member is reused, not rebuilt
            with pool.acquire(timeout=1.0) as again:
                assert again is proxy

    def test_call_convenience(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with ProxyPool(uri, size=3) as pool:
            assert pool.call("add", 20, 22) == 42

    def test_resilient_members_share_one_breaker(self, service_daemon):
        uri, _service, _daemon = service_daemon
        from repro.resilience import ResilientProxy, RetryPolicy

        policy = RetryPolicy(max_attempts=2, base_delay_s=0.001)
        with ProxyPool(uri, size=3, retry_policy=policy) as pool:
            assert pool.breaker is not None
            members = []
            with pool.acquire() as a, pool.acquire() as b:
                assert isinstance(a, ResilientProxy)
                assert a.echo("via-resilient") == "via-resilient"
                members = [a, b]
            assert all(m._breaker is pool.breaker for m in members)

    def test_closed_pool_refuses_checkout(self, service_daemon):
        uri, _service, _daemon = service_daemon
        pool = ProxyPool(uri, size=2)
        assert pool.call("echo", "x") == "x"
        pool.close()
        with pytest.raises(CommunicationError):
            pool.acquire()

    def test_pool_size_validation(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with pytest.raises(ValueError):
            ProxyPool(uri, size=0)

    def test_concurrent_pool_traffic(self, service_daemon):
        uri, _service, _daemon = service_daemon
        with ProxyPool(uri, size=3) as pool:
            errors: list[Exception] = []

            def worker(worker_id: int) -> None:
                try:
                    for j in range(15):
                        assert pool.call("add", worker_id, j) == worker_id + j
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert len(pool) <= 3


class TestTransportFailure:
    def test_inflight_calls_fail_and_proxy_recovers(self, service_daemon):
        """Killing the connection fails pending calls with per-waiter
        errors; the proxy reconnects on the next call."""
        uri, _service, _daemon = service_daemon
        with Proxy(uri, max_inflight=4) as proxy:
            assert proxy.echo("up") == "up"
            # sabotage: close the socket under the proxy
            proxy._conn.close()
            with pytest.raises(ReproError):
                proxy.echo("down")
            assert proxy.echo("back") == "back"

    def test_exports(self):
        import repro.rpc as rpc

        assert rpc.ProxyPool is ProxyPool
        assert rpc.Pipeline is Pipeline
        assert rpc.PendingReply is PendingReply
