"""Adversarial input on the control channel: the daemon must not die.

The control agent faces a facility network; a scanning host or a buggy
client will throw garbage at the Pyro port. These tests verify the
daemon survives malformed frames, remains serving for legitimate
clients, and never executes anything from a bad frame.
"""

import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rpc import Daemon, Proxy, expose
from repro.rpc.protocol import HEADER, MAGIC


@expose
class Counter:
    def __init__(self):
        self.calls = 0

    def bump(self):
        self.calls += 1
        return self.calls


@pytest.fixture
def served():
    service = Counter()
    daemon = Daemon()
    uri = daemon.register(service, object_id="C")
    daemon.start_background()
    yield service, daemon, uri
    daemon.shutdown()


def raw_send(daemon, payload: bytes) -> None:
    host, port = daemon.address
    with socket.create_connection((host, port), timeout=2.0) as sock:
        sock.sendall(payload)
        sock.settimeout(0.5)
        try:
            while sock.recv(4096):
                pass
        except (socket.timeout, OSError):
            pass


class TestGarbageFrames:
    def test_http_request_rejected(self, served):
        _service, daemon, uri = served
        raw_send(daemon, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        with Proxy(uri) as proxy:
            assert proxy.bump() == 1  # daemon still serving

    def test_wrong_magic(self, served):
        _service, daemon, uri = served
        frame = HEADER.pack(b"EVIL", 1, 1, 0, 1, 4) + b"null"
        raw_send(daemon, frame)
        with Proxy(uri) as proxy:
            assert proxy.bump() >= 1

    def test_huge_declared_payload(self, served):
        _service, daemon, uri = served
        frame = HEADER.pack(MAGIC, 1, 1, 0, 1, 2**31 - 1)
        raw_send(daemon, frame)
        with Proxy(uri) as proxy:
            assert proxy.bump() >= 1

    def test_truncated_frame_then_disconnect(self, served):
        _service, daemon, uri = served
        frame = HEADER.pack(MAGIC, 1, 1, 0, 1, 100) + b"short"
        raw_send(daemon, frame)
        with Proxy(uri) as proxy:
            assert proxy.bump() >= 1

    def test_invalid_json_payload(self, served):
        _service, daemon, uri = served
        body = b"{definitely not json"
        frame = HEADER.pack(MAGIC, 1, 1, 0, 7, len(body)) + body
        raw_send(daemon, frame)
        with Proxy(uri) as proxy:
            assert proxy.bump() >= 1

    def test_request_for_dunder_never_executes(self, served):
        service, daemon, uri = served
        body = (
            b'{"object":"C","method":"__init__","args":[],"kwargs":{}}'
        )
        frame = HEADER.pack(MAGIC, 1, 1, 0, 9, len(body)) + body
        raw_send(daemon, frame)
        with Proxy(uri) as proxy:
            first = proxy.bump()
        assert first >= 1  # and __init__ did not reset the counter below 1

    @given(st.binary(min_size=1, max_size=256))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_bytes_never_kill_the_daemon(self, served, blob):
        _service, daemon, uri = served
        raw_send(daemon, blob)
        with Proxy(uri) as proxy:
            assert proxy.bump() >= 1

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=64),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_typed_frames(self, served, version, msg_type, body):
        _service, daemon, uri = served
        frame = HEADER.pack(MAGIC, version, msg_type, 0, 1, len(body)) + body
        raw_send(daemon, frame)
        with Proxy(uri) as proxy:
            assert proxy.bump() >= 1
