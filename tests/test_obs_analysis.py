"""Trace analytics: the index, critical-path blame, tail sampling,
histogram exemplars, and SLO alert exemplar resolution."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.obs.analysis import (
    INDEX_EVICTED_METRIC,
    SAMPLER_DROPPED_METRIC,
    SAMPLER_KEPT_METRIC,
    SCHEMA,
    TraceIndex,
    TraceSampler,
    critical_path,
    format_blame,
)
from repro.obs.metrics import OVERFLOW_VALUE, MetricsRegistry
from repro.obs.slo import SLOEngine, SLObjective
from repro.obs.stream import KIND_SLO, TelemetryBus
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.trace import SpanStatus, Tracer, extract_context


def span_dict(
    name,
    trace_id="t" * 32,
    span_id="root",
    parent_id=None,
    start=0.0,
    end=None,
    status=SpanStatus.OK,
    **attrs,
):
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_time": start,
        "end_time": end,
        "duration_s": (end - start) if end is not None else 0.0,
        "status": status,
        "attributes": attrs,
        "events": [],
    }


class TestCriticalPath:
    def test_segments_partition_root_interval(self):
        """Nested tree: every instant of root wall time is attributed
        exactly once, so blame sums to the root duration."""
        spans = [
            span_dict("root", span_id="r", start=0.0, end=10.0),
            span_dict("a", span_id="a", parent_id="r", start=1.0, end=4.0),
            span_dict("b", span_id="b", parent_id="r", start=5.0, end=9.0),
            span_dict("g", span_id="g", parent_id="b", start=6.0, end=8.0),
        ]
        result = critical_path(spans)
        assert result["schema"] == SCHEMA
        assert result["root"] == "root"
        assert result["root_duration_s"] == pytest.approx(10.0)
        assert result["coverage"] == pytest.approx(1.0)
        self_by_op = {row["op"]: row["self_s"] for row in result["blame"]}
        # root: [0,1] + [4,5] + [9,10]; a: [1,4]; b: [5,6]+[8,9]; g: [6,8]
        assert self_by_op["root"] == pytest.approx(3.0)
        assert self_by_op["a"] == pytest.approx(3.0)
        assert self_by_op["b"] == pytest.approx(2.0)
        assert self_by_op["g"] == pytest.approx(2.0)
        assert sum(self_by_op.values()) == pytest.approx(10.0)
        pcts = [row["pct"] for row in result["blame"]]
        assert sum(pcts) == pytest.approx(100.0)

    def test_last_finishing_child_wins_overlap(self):
        """Two overlapping children: the later-finishing one owns the
        overlap — that is who the parent was blocked on at each instant."""
        spans = [
            span_dict("root", span_id="r", start=0.0, end=10.0),
            span_dict("a", span_id="a", parent_id="r", start=1.0, end=6.0),
            span_dict("b", span_id="b", parent_id="r", start=4.0, end=8.0),
        ]
        result = critical_path(spans)
        self_by_op = {row["op"]: row["self_s"] for row in result["blame"]}
        assert self_by_op["b"] == pytest.approx(4.0)  # [4, 8]
        assert self_by_op["a"] == pytest.approx(3.0)  # [1, 4] only
        assert self_by_op["root"] == pytest.approx(3.0)  # [0,1] + [8,10]
        assert result["coverage"] == pytest.approx(1.0)

    def test_blame_sorted_worst_first(self):
        spans = [
            span_dict("root", span_id="r", start=0.0, end=10.0),
            span_dict("big", span_id="a", parent_id="r", start=1.0, end=9.0),
        ]
        result = critical_path(spans)
        assert result["blame"][0]["op"] == "big"

    def test_orphan_parent_tolerated_widest_subtree_wins(self):
        """The daemon half arrived without the client root: the orphan
        with the longest duration becomes the root of the analysis."""
        spans = [
            span_dict(
                "dispatch",
                span_id="d",
                parent_id="never-arrived",
                start=1.0,
                end=9.0,
            ),
            span_dict(
                "instrument", span_id="i", parent_id="d", start=2.0, end=8.0
            ),
            span_dict(
                "stray", span_id="s", parent_id="also-missing", start=0.0, end=2.0
            ),
        ]
        result = critical_path(spans)
        assert result["root"] == "dispatch"
        assert result["root_duration_s"] == pytest.approx(8.0)

    def test_clock_skew_child_clamped_to_parent(self):
        """A child whose stamps leak past the parent (cross-process
        skew) cannot push coverage over 100%."""
        spans = [
            span_dict("root", span_id="r", start=0.0, end=10.0),
            span_dict("c", span_id="c", parent_id="r", start=-1.0, end=11.0),
        ]
        result = critical_path(spans)
        assert result["coverage"] == pytest.approx(1.0)
        self_by_op = {row["op"]: row["self_s"] for row in result["blame"]}
        assert self_by_op["c"] == pytest.approx(10.0)

    def test_no_ended_root_returns_none(self):
        assert critical_path([]) is None
        assert critical_path([span_dict("open", end=None)]) is None

    def test_accepts_live_span_objects(self):
        clock = VirtualClock()
        tracer = Tracer("svc", clock=clock)
        root = tracer.start_span("root", parent=None)
        clock.advance(1.0)
        child = tracer.start_span("child", parent=root)
        clock.advance(2.0)
        child.end()
        clock.advance(1.0)
        root.end()
        result = critical_path([root, child])
        self_by_op = {row["op"]: row["self_s"] for row in result["blame"]}
        assert self_by_op == {
            "root": pytest.approx(2.0),
            "child": pytest.approx(2.0),
        }

    def test_format_blame_renders_rows(self):
        spans = [
            span_dict("root", span_id="r", start=0.0, end=10.0),
            span_dict(
                "slow-op",
                span_id="a",
                parent_id="r",
                start=1.0,
                end=9.0,
                service="acl",
            ),
        ]
        text = format_blame(critical_path(spans))
        assert "slow-op" in text
        assert "acl" in text
        assert "coverage=100.0%" in text


class TestTraceIndex:
    def _tracer(self):
        clock = VirtualClock()
        return clock, Tracer("svc", clock=clock)

    def test_attach_chains_previous_exporter_first(self):
        clock, tracer = self._tracer()
        seen = []
        tracer.exporter = seen.append
        index = TraceIndex(clock=clock)
        index.attach(tracer)
        with tracer.start_as_current_span("op"):
            clock.advance(1.0)
        assert len(seen) == 1  # the chained exporter still ran
        assert len(index) == 1

    def test_get_returns_schema_document(self):
        clock, tracer = self._tracer()
        index = TraceIndex(clock=clock)
        index.attach(tracer)
        root = tracer.start_span("root", parent=None)
        clock.advance(2.0)
        root.end()
        doc = index.get(root.trace_id)
        assert doc["schema"] == SCHEMA
        assert doc["root"] == "root"
        assert doc["duration_s"] == pytest.approx(2.0)
        assert doc["span_count"] == 1
        assert index.get("no-such-trace") is None

    def test_query_filters(self):
        clock, tracer = self._tracer()
        index = TraceIndex(clock=clock)
        index.attach(tracer)
        fast = tracer.start_span("rpc.call.A", parent=None)
        fast.set_attribute("tenant", "lab-a")
        clock.advance(0.5)
        fast.end()
        slow = tracer.start_span("rpc.call.B", parent=None)
        slow.set_attribute("tenant", "lab-b")
        clock.advance(5.0)
        slow.end(SpanStatus.ERROR)

        assert {s["trace_id"] for s in index.query(op="rpc.call.")} == {
            fast.trace_id,
            slow.trace_id,
        }
        assert [s["trace_id"] for s in index.query(tenant="lab-b")] == [
            slow.trace_id
        ]
        assert [s["trace_id"] for s in index.query(min_duration_s=1.0)] == [
            slow.trace_id
        ]
        assert [s["trace_id"] for s in index.query(error=True)] == [
            slow.trace_id
        ]
        assert index.query(op="nope") == []

    def test_query_newest_first_and_limit(self):
        clock, tracer = self._tracer()
        index = TraceIndex(clock=clock)
        index.attach(tracer)
        ids = []
        for _ in range(3):
            span = tracer.start_span("op", parent=None)
            clock.advance(1.0)
            span.end()
            ids.append(span.trace_id)
        summaries = index.query(limit=2)
        assert [s["trace_id"] for s in summaries] == [ids[2], ids[1]]

    def test_eviction_oldest_first_counted(self):
        clock, tracer = self._tracer()
        reg = MetricsRegistry()
        index = TraceIndex(max_traces=2, clock=clock, metrics=reg)
        index.attach(tracer)
        ids = []
        for _ in range(3):
            span = tracer.start_span("op", parent=None)
            span.end()
            ids.append(span.trace_id)
        assert len(index) == 2
        assert ids[0] not in index.trace_ids()
        assert reg.counter(INDEX_EVICTED_METRIC).value() == 1

    def test_ingest_stamps_capturing_service(self):
        index = TraceIndex()
        count = index.ingest(
            [span_dict("dispatch", span_id="d", start=0.0, end=1.0)],
            service="acl-daemon",
        )
        assert count == 1
        (doc,) = index.spans("t" * 32)
        assert doc["attributes"]["service"] == "acl-daemon"

    def test_ingest_keeps_existing_service(self):
        index = TraceIndex()
        index.ingest(
            [span_dict("d", span_id="d", start=0.0, end=1.0, service="orig")],
            service="other",
        )
        (doc,) = index.spans("t" * 32)
        assert doc["attributes"]["service"] == "orig"

    def test_explain_merges_both_halves(self):
        """Client root + daemon dispatch ingested separately still
        produce one blame table under the shared trace id."""
        index = TraceIndex()
        index.add_span(span_dict("rpc.call.X", span_id="c", start=0.0, end=4.0))
        index.ingest(
            [
                span_dict(
                    "rpc.dispatch.X",
                    span_id="d",
                    parent_id="c",
                    start=0.5,
                    end=3.5,
                )
            ],
            service="acl-daemon",
        )
        result = index.explain("t" * 32)
        self_by_op = {row["op"]: row["self_s"] for row in result["blame"]}
        assert self_by_op["rpc.dispatch.X"] == pytest.approx(3.0)
        assert self_by_op["rpc.call.X"] == pytest.approx(1.0)
        assert index.explain("unknown") is None


def _end_trace(tracer, clock, duration=0.1, status=None, tenant=None, spans=1):
    """One root trace with optional children; returns its trace id."""
    root = tracer.start_span("root", parent=None)
    if tenant is not None:
        root.set_attribute("tenant", tenant)
    for _ in range(spans - 1):
        child = tracer.start_span("child", parent=root)
        clock.advance(duration / max(spans, 1))
        child.end()
    clock.advance(duration)
    root.end(status)
    return root.trace_id


class TestTraceSampler:
    def _rig(self, **kwargs):
        clock = VirtualClock()
        tracer = Tracer("svc", clock=clock)
        released = []
        tracer.exporter = released.append
        reg = MetricsRegistry()
        sampler = TraceSampler(metrics=reg, **kwargs)
        sampler.attach(tracer)
        return clock, tracer, sampler, released, reg

    def test_error_trace_always_kept(self):
        clock, tracer, sampler, released, reg = self._rig(budget=0.0)
        tid = _end_trace(tracer, clock, status=SpanStatus.ERROR, spans=2)
        assert sampler.is_kept(tid)
        assert {s.trace_id for s in released} == {tid}
        assert reg.counter(SAMPLER_KEPT_METRIC).value(reason="error") == 1

    def test_slow_trace_always_kept(self):
        clock, tracer, sampler, released, reg = self._rig(
            budget=0.0, slow_threshold_s=1.0
        )
        tid = _end_trace(tracer, clock, duration=2.0)
        assert sampler.is_kept(tid)
        assert reg.counter(SAMPLER_KEPT_METRIC).value(reason="slow") == 1

    def test_breach_hook_keeps_trace(self):
        clock, tracer, sampler, released, reg = self._rig(budget=0.0)
        sampler.breach = lambda root: True
        tid = _end_trace(tracer, clock)
        assert sampler.is_kept(tid)
        assert reg.counter(SAMPLER_KEPT_METRIC).value(reason="breach") == 1

    def test_budget_counters_are_deterministic(self):
        """At a 10% budget exactly every 10th normal trace is kept —
        the keep rate is exact, not a coin flip."""
        clock, tracer, sampler, released, _ = self._rig(
            budget=0.1, slow_threshold_s=None
        )
        kept = [
            sampler.is_kept(_end_trace(tracer, clock, duration=0.01))
            for _ in range(100)
        ]
        assert sum(kept) == 10
        assert kept[9] and kept[19]  # the 10th, 20th, ...
        assert not any(kept[:9])

    def test_budgets_are_per_tenant(self):
        clock, tracer, sampler, _, _ = self._rig(
            budget=0.5, slow_threshold_s=None
        )
        for tenant in ("a", "b"):
            for _ in range(4):
                _end_trace(tracer, clock, duration=0.01, tenant=tenant)
        stats = sampler.stats()
        assert stats["tenants"]["a"] == {"seen": 4, "kept": 2}
        assert stats["tenants"]["b"] == {"seen": 4, "kept": 2}

    def test_dropped_trace_never_reaches_downstream(self):
        clock, tracer, sampler, released, reg = self._rig(
            budget=0.0, slow_threshold_s=None
        )
        _end_trace(tracer, clock, spans=3)
        assert released == []
        assert (
            reg.counter(SAMPLER_DROPPED_METRIC).value(reason="budget") == 1
        )

    def test_kept_trace_released_in_end_order(self):
        clock, tracer, sampler, released, _ = self._rig(budget=1.0)
        tid = _end_trace(tracer, clock, spans=3)
        names = [s.name for s in released]
        assert names == ["child", "child", "root"]
        assert all(s.trace_id == tid for s in released)

    def test_late_span_follows_kept_verdict(self):
        clock, tracer, sampler, released, _ = self._rig(budget=1.0)
        root = tracer.start_span("root", parent=None)
        straggler = tracer.start_span("straggler", parent=root)
        clock.advance(0.1)
        root.end()
        assert sampler.is_kept(root.trace_id)
        straggler.end()  # ends after its root: must still flow through
        assert [s.name for s in released] == ["root", "straggler"]

    def test_late_span_follows_dropped_verdict(self):
        clock, tracer, sampler, released, _ = self._rig(
            budget=0.0, slow_threshold_s=None
        )
        root = tracer.start_span("root", parent=None)
        straggler = tracer.start_span("straggler", parent=root)
        root.end()
        straggler.end()
        assert released == []

    def test_tenant_table_folds_into_overflow(self):
        clock, tracer, sampler, _, _ = self._rig(
            budget=1.0, slow_threshold_s=None, max_tenants=2
        )
        for tenant in ("a", "b", "c", "d"):
            _end_trace(tracer, clock, duration=0.01, tenant=tenant)
        stats = sampler.stats()
        assert set(stats["tenants"]) == {"a", "b", OVERFLOW_VALUE}
        assert stats["tenants"][OVERFLOW_VALUE]["seen"] == 2

    def test_buffer_overflow_evicts_oldest_counted(self):
        clock, tracer, sampler, _, reg = self._rig(
            budget=1.0, max_buffered=2
        )
        # three traces whose roots never end: the oldest is evicted
        for _ in range(3):
            root = tracer.start_span("root", parent=None)
            tracer.start_span("child", parent=root).end()
        assert (
            reg.counter(SAMPLER_DROPPED_METRIC).value(reason="overflow") == 1
        )

    def test_kept_trace_ids_most_recent_first_per_tenant(self):
        clock, tracer, sampler, _, _ = self._rig(budget=1.0)
        t1 = _end_trace(tracer, clock, tenant="lab-a")
        t2 = _end_trace(tracer, clock, tenant="lab-b")
        t3 = _end_trace(tracer, clock, tenant="lab-a")
        assert sampler.kept_trace_ids() == [t3, t2, t1]
        assert sampler.kept_trace_ids(tenant="lab-a") == [t3, t1]
        assert sampler.kept_trace_ids(limit=1) == [t3]

    def test_flush_drops_unfinished_buffers(self):
        clock, tracer, sampler, _, _ = self._rig(budget=1.0)
        root = tracer.start_span("root", parent=None)
        tracer.start_span("child", parent=root).end()
        assert sampler.flush() == 1
        assert sampler.stats()["buffered_traces"] == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            TraceSampler(budget=1.5)


class TestHistogramExemplars:
    def test_observe_records_bucket_exemplar(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_s", buckets=(0.1, 1.0))
        hist.observe(0.05, exemplar="trace-fast", method="A")
        hist.observe(5.0, exemplar="trace-slow", method="A")
        rows = hist.exemplars(method="A")
        by_bucket = {r["bucket"]: r["trace_id"] for r in rows}
        assert by_bucket["0.1"] == "trace-fast"
        assert by_bucket["+Inf"] == "trace-slow"

    def test_last_observation_wins_per_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_s", buckets=(1.0,))
        hist.observe(0.2, exemplar="first")
        hist.observe(0.3, exemplar="second")
        (row,) = hist.exemplars()
        assert row["trace_id"] == "second"
        assert row["value"] == pytest.approx(0.3)

    def test_no_exemplar_records_nothing(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_s", buckets=(1.0,))
        hist.observe(0.2)
        assert hist.exemplars() == []

    def test_snapshot_carries_exemplars(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_s", buckets=(1.0,))
        hist.observe(0.2, exemplar="tid")
        snap = hist.snapshot()
        assert snap["exemplars"]["1.0"]["trace_id"] == "tid"

    def test_exemplars_filter_by_labels(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_s", buckets=(1.0,))
        hist.observe(0.2, exemplar="a-trace", tenant="a")
        hist.observe(0.2, exemplar="b-trace", tenant="b")
        rows = hist.exemplars(tenant="a")
        assert {r["trace_id"] for r in rows} == {"a-trace"}


class TestExtractContextTolerance:
    """Satellite: the tolerant-parse contract, exhaustively."""

    @pytest.mark.parametrize(
        "carrier",
        [
            None,
            "junk",
            42,
            3.14,
            True,
            ["trace_id", "span_id"],
            {},
            {"trace_id": "t" * 32},  # span_id missing
            {"span_id": "s" * 16},  # trace_id missing
            {"trace_id": "", "span_id": "s" * 16},  # empty id
            {"trace_id": "t" * 32, "span_id": ""},
            {"trace_id": 123, "span_id": "s" * 16},  # wrong types
            {"trace_id": "t" * 32, "span_id": 456},
            {"trace_id": None, "span_id": None},
            {"trace_id": ["t"], "span_id": {"s": 1}},
        ],
    )
    def test_malformed_carrier_yields_none_without_raising(self, carrier):
        assert extract_context(carrier) is None

    def test_well_formed_carrier_round_trips(self):
        ctx = extract_context({"trace_id": "t" * 32, "span_id": "s" * 16})
        assert ctx is not None
        assert ctx.trace_id == "t" * 32
        assert ctx.span_id == "s" * 16

    def test_extra_fields_ignored(self):
        ctx = extract_context(
            {"trace_id": "t" * 32, "span_id": "s" * 16, "future": {"x": 1}}
        )
        assert ctx is not None


class TestSLOAlertExemplars:
    def _rig(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        store = TimeSeriesStore(clock=clock)
        store.attach(reg)
        bus = TelemetryBus("test", clock=clock)
        engine = SLOEngine(store, clock=clock, bus=bus, metrics=reg)
        engine.add(
            SLObjective(name="avail", metric="calls_total", min_events=5)
        )
        return clock, reg, bus, engine

    def _fire(self, reg, engine):
        counter = reg.counter("calls_total")
        for _ in range(20):
            counter.inc(status="error", tenant="lab-a")
        return engine.evaluate()

    def test_alert_without_sampler_carries_empty_list(self):
        clock, reg, bus, engine = self._rig()
        with bus.subscribe() as sub:
            statuses = self._fire(reg, engine)
            assert any(s["alerts"] for s in statuses)
            (event,) = [e for e in sub.poll() if e.kind == KIND_SLO]
        assert event.data["exemplar_trace_ids"] == []

    def test_alert_names_sampler_kept_traces(self):
        clock, reg, bus, engine = self._rig()
        tracer = Tracer("svc", clock=clock)
        sampler = TraceSampler(budget=1.0, metrics=reg)
        sampler.attach(tracer)
        engine.attach_sampler(sampler)
        kept = [
            _end_trace(tracer, clock, tenant="lab-a") for _ in range(5)
        ]
        with bus.subscribe() as sub:
            self._fire(reg, engine)
            (event,) = [e for e in sub.poll() if e.kind == KIND_SLO]
        ids = event.data["exemplar_trace_ids"]
        assert 0 < len(ids) <= 3
        assert set(ids) <= set(kept)
        # most recent kept traces first
        assert ids[0] == kept[-1]

    def test_alert_prefers_metric_bucket_exemplars(self):
        clock, reg, bus, engine = self._rig()
        engine.add(
            SLObjective(
                name="lat",
                metric="lat_s",
                kind="latency",
                threshold_s=1.0,
                objective=0.9,
                min_events=5,
                fast_burn=2.0,
            )
        )
        tracer = Tracer("svc", clock=clock)
        sampler = TraceSampler(budget=1.0, metrics=reg)
        sampler.attach(tracer)
        engine.attach_sampler(sampler)
        slow_tid = _end_trace(tracer, clock, tenant="lab-a")
        for _ in range(3):
            _end_trace(tracer, clock, tenant="lab-a")  # newer kept traces
        hist = reg.histogram("lat_s", buckets=(1.0,))
        for _ in range(10):
            hist.observe(5.0, exemplar=slow_tid, tenant="lab-a")
        with bus.subscribe() as sub:
            engine.evaluate()
            events = [e for e in sub.poll() if e.kind == KIND_SLO]
        (event,) = [e for e in events if e.data["objective"] == "lat"]
        # the observation that breached the objective leads the list,
        # even though newer kept traces exist
        assert event.data["exemplar_trace_ids"][0] == slow_tid

    def test_resolve_event_carries_empty_list(self):
        clock, reg, bus, engine = self._rig()
        counter = reg.counter("calls_total")
        for _ in range(20):
            counter.inc(status="error", tenant="lab-a")
        engine.evaluate()
        clock.advance(3600.0)  # burst ages out of both windows
        for _ in range(20):
            counter.inc(status="ok", tenant="lab-a")
        with bus.subscribe() as sub:
            engine.evaluate()
            (event,) = [e for e in sub.poll() if e.kind == KIND_SLO]
        assert event.name == "slo.resolved"
        assert event.data["exemplar_trace_ids"] == []
