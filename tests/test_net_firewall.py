"""Firewall rules: ordering, matching, default policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FirewallDeniedError
from repro.net.firewall import Action, Firewall, FirewallRule


class TestFirewallRule:
    def test_exact_match(self):
        rule = FirewallRule(Action.ALLOW, src_host="dgx", port_range=(9690, 9690))
        assert rule.matches("dgx", "K200", 9690)
        assert not rule.matches("dgx", "K200", 9691)
        assert not rule.matches("other", "K200", 9690)

    def test_glob_matching(self):
        rule = FirewallRule(Action.ALLOW, src_host="k200-*", src_facility="K2*")
        assert rule.matches("k200-dgx", "K200", 80)
        assert not rule.matches("acl-agent", "K200", 80)

    def test_port_range(self):
        rule = FirewallRule(Action.ALLOW, port_range=(9000, 9999))
        assert rule.matches("h", "f", 9000)
        assert rule.matches("h", "f", 9999)
        assert not rule.matches("h", "f", 8999)

    @pytest.mark.parametrize("bad", [(0, 10), (10, 5), (1, 70000)])
    def test_invalid_ranges(self, bad):
        with pytest.raises(ValueError):
            FirewallRule(Action.ALLOW, port_range=bad)


class TestFirewall:
    def test_default_deny(self):
        firewall = Firewall()
        assert firewall.evaluate("h", "f", 80) is Action.DENY

    def test_default_allow_policy(self):
        firewall = Firewall(default=Action.ALLOW)
        assert firewall.evaluate("h", "f", 80) is Action.ALLOW

    def test_allow_port_convenience(self):
        firewall = Firewall()
        firewall.allow_port(9690, src_facility="K200")
        assert firewall.evaluate("dgx", "K200", 9690) is Action.ALLOW
        assert firewall.evaluate("dgx", "OTHER", 9690) is Action.DENY

    def test_first_match_wins(self):
        firewall = Firewall()
        firewall.add_rule(FirewallRule(Action.DENY, src_host="evil-*"))
        firewall.add_rule(FirewallRule(Action.ALLOW))
        assert firewall.evaluate("evil-box", "f", 80) is Action.DENY
        assert firewall.evaluate("good-box", "f", 80) is Action.ALLOW

    def test_check_raises_on_deny(self):
        firewall = Firewall()
        with pytest.raises(FirewallDeniedError):
            firewall.check("h", "f", 80)

    def test_check_passes_on_allow(self):
        firewall = Firewall()
        firewall.allow_port(80)
        firewall.check("h", "f", 80)

    def test_counters(self):
        firewall = Firewall()
        firewall.allow_port(80)
        firewall.evaluate("h", "f", 80)
        firewall.evaluate("h", "f", 81)
        assert firewall.evaluations == 2
        assert firewall.denials == 1

    def test_rules_copy(self):
        firewall = Firewall()
        firewall.allow_port(80)
        rules = firewall.rules
        rules.clear()
        assert len(firewall.rules) == 1

    @given(
        st.integers(min_value=1, max_value=65535),
        st.integers(min_value=1, max_value=65535),
        st.integers(min_value=1, max_value=65535),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_single_allow_rule_is_exact(self, low, high, probe):
        low, high = min(low, high), max(low, high)
        firewall = Firewall()
        firewall.add_rule(FirewallRule(Action.ALLOW, port_range=(low, high)))
        expected = Action.ALLOW if low <= probe <= high else Action.DENY
        assert firewall.evaluate("h", "f", probe) is expected

    @given(st.lists(st.sampled_from([Action.ALLOW, Action.DENY]), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_property_first_rule_decides_when_all_match(self, actions):
        firewall = Firewall()
        for action in actions:
            firewall.add_rule(FirewallRule(action))
        expected = actions[0] if actions else Action.DENY
        assert firewall.evaluate("h", "f", 80) is expected
