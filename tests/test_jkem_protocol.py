"""J-Kem command grammar: parse/format inverses, strictness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InstrumentCommandError
from repro.instruments.jkem.protocol import (
    Command,
    Response,
    format_command,
    format_response,
    parse_command,
    parse_response,
)


class TestCommandFormat:
    def test_fig5b_lines(self):
        # the exact console lines of paper Fig 5b
        assert (
            format_command(Command("SYRINGEPUMP_RATE", (1, 5.0)))
            == "SYRINGEPUMP_RATE(1,5.000000)"
        )
        assert format_command(Command("SYRINGEPUMP_PORT", (1, 8))) == "SYRINGEPUMP_PORT(1,8)"
        assert (
            format_command(Command("FRACTIONCOLLECTOR_VIAL", (1, "BOTTOM")))
            == "FRACTIONCOLLECTOR_VIAL(1,BOTTOM)"
        )

    def test_no_args(self):
        assert format_command(Command("STATUS")) == "STATUS()"

    def test_bool_rejected(self):
        with pytest.raises(InstrumentCommandError):
            format_command(Command("X", (True,)))

    def test_non_bareword_string_rejected(self):
        with pytest.raises(InstrumentCommandError):
            format_command(Command("X", ("has space",)))

    def test_bad_verb_rejected(self):
        with pytest.raises(InstrumentCommandError):
            Command("lower_case")


class TestCommandParse:
    def test_parse_types(self):
        command = parse_command("MIX(1,2.5,BOTTOM,-3)")
        assert command.verb == "MIX"
        assert command.args == (1, 2.5, "BOTTOM", -3)

    def test_whitespace_tolerated(self):
        assert parse_command("  CMD( 1 , 2 )  ").args == (1, 2)

    def test_scientific_notation(self):
        assert parse_command("X(1.5e-3)").args == (1.5e-3,)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "CMD",
            "CMD(",
            "CMD)",
            "cmd()",
            "CMD(())",
            "CMD(1,)",
            "CMD(,)",
            "CMD(1)(2)",
            "CMD(a b)",
            "1CMD()",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(InstrumentCommandError):
            parse_command(bad)

    number = st.one_of(
        st.integers(min_value=-(10**6), max_value=10**6),
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ).map(lambda x: round(x, 6)),
    )
    word = st.from_regex(r"[A-Za-z_][A-Za-z0-9_\-]{0,10}", fullmatch=True)

    @given(
        st.from_regex(r"[A-Z][A-Z0-9_]{0,15}", fullmatch=True),
        st.lists(st.one_of(number, word), max_size=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_format_parse_inverse(self, verb, args):
        command = Command(verb, tuple(args))
        parsed = parse_command(format_command(command))
        assert parsed.verb == verb
        assert len(parsed.args) == len(args)
        for original, recovered in zip(args, parsed.args):
            if isinstance(original, float):
                assert recovered == pytest.approx(original, abs=1e-6)
            else:
                assert recovered == original


class TestResponse:
    def test_plain_ok(self):
        assert format_response(Response(ok=True)) == "OK"
        assert parse_response("OK") == Response(ok=True)

    def test_ok_with_value(self):
        line = format_response(Response(ok=True, value="25.001"))
        assert line == "OK 25.001"
        assert parse_response(line).value == "25.001"

    def test_error_round_trip(self):
        line = format_response(
            Response(ok=False, error_code=400, error_message="bad volume")
        )
        parsed = parse_response(line)
        assert not parsed.ok
        assert parsed.error_code == 400
        assert parsed.error_message == "bad volume"

    def test_error_message_sanitised(self):
        line = format_response(
            Response(ok=False, error_code=1, error_message="a,b(c)\nd")
        )
        parsed = parse_response(line)
        assert parsed.error_code == 1
        assert "," not in parsed.error_message

    def test_unparseable_response(self):
        with pytest.raises(InstrumentCommandError):
            parse_response("GARBAGE")
