"""Per-path error-streak escalation in the measurement watcher.

Regression tests for the historical bug where the watcher kept ONE
global failure streak: a healthy poll of any directory reset the
counter for every watched path, so a share subtree failing for minutes
never crossed the escalation threshold as long as one sibling stayed
up. Streaks (and their pages) are now tracked per watched directory.
"""

from __future__ import annotations

import time

from repro.datachannel import MeasurementWatcher
from repro.datachannel.share import FileStat
from repro.errors import DataChannelError
from repro.obs import MetricsRegistry


class FakeMount:
    """Just enough of a Mount for the watcher: per-directory listings
    with switchable failures."""

    def __init__(self, listings):
        self.listings = dict(listings)
        self.failing: set[str] = set()

    def listdir(self, directory=""):
        if directory in self.failing:
            raise DataChannelError(f"subtree {directory!r} unreachable")
        return list(self.listings.get(directory, []))

    def exists(self, path):
        return False


def _stat(path, size=10, mtime=1.0):
    return FileStat(path=path, size=size, mtime=mtime, is_dir=False)


def make_watcher(**kwargs):
    mount = FakeMount(
        {
            "good": [_stat("good/a.mpt")],
            "bad": [_stat("bad/b.mpt")],
        }
    )
    watcher = MeasurementWatcher(
        mount, directory=("good", "bad"), interval_s=0.01, **kwargs
    )
    return mount, watcher


class TestPerPathStreaks:
    def test_one_failing_directory_does_not_fail_the_pass(self):
        mount, watcher = make_watcher()
        mount.failing = {"bad"}
        changed = watcher.poll()  # must not raise: "good" still served
        assert [s.path for s in changed] == ["good/a.mpt"]
        assert watcher.failure_streaks == {"good": 0, "bad": 1}
        assert watcher.failure_streak == 1  # worst streak across paths

    def test_all_directories_failing_raises(self):
        mount, watcher = make_watcher()
        mount.failing = {"good", "bad"}
        for expected in (1, 2):
            try:
                watcher.poll()
            except DataChannelError:
                pass
            else:  # pragma: no cover - the pass must raise
                raise AssertionError("poll() should raise when all dirs fail")
            assert watcher.failure_streaks == {
                "good": expected,
                "bad": expected,
            }

    def test_healthy_directory_does_not_reset_siblings_streak(self):
        """The historical bug: one success reset EVERY path's streak."""
        mount, watcher = make_watcher()
        mount.failing = {"bad"}
        for expected in (1, 2, 3):
            watcher.poll()
            assert watcher.failure_streaks["bad"] == expected
            assert watcher.failure_streaks["good"] == 0

    def test_recovery_resets_only_that_directory(self):
        mount, watcher = make_watcher()
        mount.failing = {"good", "bad"}
        for _ in range(3):
            try:
                watcher.poll()
            except DataChannelError:
                pass
        mount.failing = {"bad"}  # "good" comes back
        watcher.poll()
        assert watcher.failure_streaks == {"good": 0, "bad": 4}
        assert watcher.last_errors["bad"] is not None

    def test_failure_metrics_labeled_per_directory(self):
        metrics = MetricsRegistry()
        mount, watcher = make_watcher(metrics=metrics)
        mount.failing = {"bad"}
        watcher.poll()
        watcher.poll()
        failures = metrics.counter("datachannel.watcher.poll_failures_total")
        assert failures.value(directory="bad") == 2
        assert failures.value(directory="good") == 0
        assert metrics.counter("datachannel.watcher.polls_total").total() == 2


class TestBackgroundEscalation:
    def _wait_until(self, predicate, timeout_s=5.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.01)
        raise AssertionError("condition not reached in time")

    def test_failing_subtree_pages_despite_healthy_sibling(self):
        """End-to-end escalation: the bad directory crosses the threshold
        and pages exactly once per streak, while the good directory keeps
        delivering files the whole time."""
        mount, watcher = make_watcher()
        mount.failing = {"bad"}
        pages: list[DataChannelError] = []
        arrivals: list[str] = []
        watcher.start(
            lambda stat: arrivals.append(stat.path),
            on_error=pages.append,
            error_threshold=3,
        )
        try:
            self._wait_until(lambda: pages)
            # one page per streak, not one per failing tick
            self._wait_until(
                lambda: watcher.failure_streaks["bad"] >= 6
            )
            assert len(pages) == 1
            assert "bad" in str(pages[0])
            assert watcher.failure_streaks["good"] == 0
            assert arrivals and set(arrivals) == {"good/a.mpt"}

            # recovery re-arms the notification for the next streak
            mount.failing = set()
            self._wait_until(
                lambda: watcher.failure_streaks["bad"] == 0
            )
            mount.failing = {"bad"}
            self._wait_until(lambda: len(pages) == 2)
        finally:
            watcher.stop()
