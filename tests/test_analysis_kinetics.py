"""Nicholson kinetics analysis validated against the FD simulator."""

import numpy as np
import pytest

from repro.analysis import estimate_k0, estimate_k0_from_trace, psi_from_separation
from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.species import FERROCENE, RedoxSpecies

D = 1e-5


def simulate(k0: float, scan_rate: float = 0.2):
    species = RedoxSpecies(
        name="x", formal_potential_v=0.4, diffusion_cm2_s=D, k0_cm_s=k0
    )
    engine = CVEngine(species, 2e-6, 0.0707, double_layer_f_cm2=0.0, substeps=2)
    return engine.run(
        CVParameters(e_begin_v=0.0, e_vertex_v=0.8, scan_rate_v_s=scan_rate)
    )


class TestWorkingCurve:
    def test_reversible_limit(self):
        psi, at_limit = psi_from_separation(0.058)
        assert at_limit
        assert psi == pytest.approx(20.0)

    def test_monotone_decreasing(self):
        separations = np.linspace(0.063, 0.25, 30)
        psis = [psi_from_separation(s)[0] for s in separations]
        assert all(a > b for a, b in zip(psis, psis[1:]))

    def test_table_point(self):
        psi, _ = psi_from_separation(0.084)
        assert psi == pytest.approx(1.0, rel=0.02)

    def test_irreversible_tail_extrapolates(self):
        psi, at_limit = psi_from_separation(0.300)
        assert not at_limit
        assert 0.0 < psi < 0.10


class TestEstimateK0:
    @pytest.mark.parametrize("true_k0", [0.01, 0.005, 0.002])
    def test_recovers_simulator_k0(self, true_k0):
        trace = simulate(true_k0)
        estimate = estimate_k0_from_trace(trace, diffusion_cm2_s=D)
        assert estimate.k0_cm_s == pytest.approx(true_k0, rel=0.15)
        assert not estimate.reversible

    def test_fast_couple_reports_lower_bound(self):
        trace = simulate(1.0)  # ferrocene-fast: reversible at 0.2 V/s
        estimate = estimate_k0_from_trace(trace, diffusion_cm2_s=D)
        assert estimate.reversible

    def test_estimate_consistent_across_scan_rates(self):
        # same k0 measured at two scan rates must agree
        estimates = [
            estimate_k0_from_trace(simulate(0.005, v), diffusion_cm2_s=D).k0_cm_s
            for v in (0.1, 0.4)
        ]
        assert estimates[0] == pytest.approx(estimates[1], rel=0.25)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            estimate_k0(0.08, scan_rate_v_s=0.0, diffusion_cm2_s=D)
        with pytest.raises(ValueError):
            estimate_k0(0.08, scan_rate_v_s=0.1, diffusion_cm2_s=-1.0)

    def test_trace_without_wave_rejected(self):
        from repro.chemistry.cv_engine import CVEngine

        blank = CVEngine(FERROCENE, 0.0, 0.0707).run(CVParameters())
        with pytest.raises(ValueError, match="no complete"):
            estimate_k0_from_trace(blank, diffusion_cm2_s=D)

    def test_trace_without_scan_rate_metadata(self):
        trace = simulate(0.005)
        del trace.metadata["scan_rate_v_s"]
        with pytest.raises(ValueError, match="scan_rate"):
            estimate_k0_from_trace(trace, diffusion_cm2_s=D)
