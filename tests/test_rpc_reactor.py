"""The selector-reactor serving core: concurrency, backpressure, workers.

The daemon's TCP path now runs on one event-loop thread with
per-connection buffers and bounded outboxes. These tests pin the
properties the rewrite must preserve (dispatch semantics, auth,
quiescent shutdown, crash behaviour) and the ones it adds
(backpressure accounting, worker-pool dispatch with per-connection
ordering).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.rpc import Daemon, Proxy, ProxyPool, expose


@expose
class Service:
    def __init__(self):
        self.seen: list[int] = []
        self._lock = threading.Lock()

    def echo(self, value):
        return value

    def bulk(self, n: int) -> bytes:
        return b"\x5a" * n

    def record(self, i: int) -> int:
        with self._lock:
            self.seen.append(i)
        return i


def _serve(**kwargs):
    daemon = Daemon(host="127.0.0.1", **kwargs)
    service = Service()
    uri = daemon.register(service, object_id="Svc")
    daemon.start_background()
    return daemon, service, uri


class TestReactorServing:
    def test_tcp_daemon_serves_on_reactor(self):
        daemon, _, uri = _serve()
        try:
            assert daemon.serving_mode == "reactor"
            with Proxy(uri) as proxy:
                assert proxy.echo(41) == 41
        finally:
            daemon.shutdown()
        assert daemon.quiescent

    def test_many_concurrent_clients(self):
        daemon, _, uri = _serve()
        errors: list[Exception] = []

        def storm(worker: int):
            try:
                with Proxy(uri) as proxy:
                    for i in range(25):
                        assert proxy.echo((worker, i)) == (worker, i)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=storm, args=(w,)) for w in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert daemon.call_count == 8 * 25
        finally:
            daemon.shutdown()

    def test_auth_and_binary_negotiation_compose(self):
        daemon, _, uri = _serve(secret=b"s3cret")
        try:
            with Proxy(uri, secret=b"s3cret") as proxy:
                trace = proxy.echo(np.arange(100.0))
                assert trace.shape == (100,)
                assert proxy.wire_version == 2
        finally:
            daemon.shutdown()

    def test_shutdown_is_quiescent_with_open_clients(self):
        daemon, _, uri = _serve()
        proxy = Proxy(uri)
        try:
            assert proxy.echo(1) == 1
        finally:
            daemon.shutdown()
            proxy.close()
        assert daemon.quiescent
        assert not daemon.crashed

    def test_crash_frees_the_port_for_a_successor(self):
        daemon, _, uri = _serve()
        host, port = daemon.address
        with Proxy(uri) as proxy:
            proxy.echo(1)
            daemon.crash()
        assert daemon.crashed
        successor = Daemon(host=host, port=port)
        successor.register(Service(), object_id="Svc")
        successor.start_background()
        try:
            with Proxy(uri) as proxy:
                assert proxy.echo(2) == 2
        finally:
            successor.shutdown()


class TestBackpressure:
    def test_oversized_replies_count_backpressure(self):
        metrics = MetricsRegistry()
        # any reply bigger than the bound must pause the connection's
        # reads until the client drains it
        daemon, _, uri = _serve(max_outbox_bytes=4096)
        daemon.metrics = metrics
        try:
            with Proxy(uri, max_inflight=8) as proxy:
                with proxy.pipeline() as pipe:
                    pending = [pipe.call("bulk", 64 * 1024) for _ in range(6)]
                    results = [p.result() for p in pending]
            assert all(len(r) == 64 * 1024 for r in results)
            assert daemon.backpressure_total >= 1
            assert (
                metrics.counter("rpc.server.backpressure_total").total() >= 1
            )
        finally:
            daemon.shutdown()

    def test_connections_gauge_returns_to_zero(self):
        import time

        metrics = MetricsRegistry()
        daemon, _, uri = _serve()
        daemon.metrics = metrics
        try:
            with Proxy(uri) as proxy:
                proxy.echo(1)
                assert (
                    metrics.gauge("rpc.server.connections_active").value() >= 1
                )
            # the reactor notices the disconnect on its next loop pass
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if metrics.gauge("rpc.server.connections_active").value() == 0:
                    break
                time.sleep(0.01)
            assert metrics.gauge("rpc.server.connections_active").value() == 0
        finally:
            daemon.shutdown()


class TestWorkerPool:
    def test_workers_preserve_per_connection_order(self):
        daemon, service, uri = _serve(workers=4)
        try:
            with Proxy(uri, max_inflight=16) as proxy:
                with proxy.pipeline() as pipe:
                    pending = [pipe.call("record", i) for i in range(50)]
                    results = [p.result() for p in pending]
            assert results == list(range(50))
            # one connection: execution order must match issue order even
            # though four workers share the dispatch queue
            assert service.seen == list(range(50))
        finally:
            daemon.shutdown()

    def test_client_death_mid_burst_does_not_wedge_workers(self):
        # a client that dies with a pipelined burst in flight (requests
        # dispatched, replies undeliverable) must not leak its reply
        # drain into the worker pool's health: other clients keep
        # getting served afterwards
        daemon, _, uri = _serve(workers=2)
        try:
            victim = Proxy(uri, max_inflight=16)
            pipe = victim.pipeline()
            for _ in range(12):
                pipe.call("bulk", 256 * 1024)
            # abrupt death: the socket closes with every reply pending
            victim._conn.close()
            victim._conn = None

            with Proxy(uri) as survivor:
                for i in range(20):
                    assert survivor.echo(i) == i
        finally:
            daemon.shutdown()

    def test_workers_across_independent_connections(self):
        daemon, _, uri = _serve(workers=2)
        try:
            pool = ProxyPool(uri, size=4)
            results = []
            lock = threading.Lock()

            def work(i: int):
                value = pool.call("echo", i)
                with lock:
                    results.append(value)

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(20)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            pool.close()
            assert sorted(results) == list(range(20))
        finally:
            daemon.shutdown()
