"""The CV physics engine: waveform, validation against theory, stability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chemistry.cv_engine import (
    CVEngine,
    CVParameters,
    MESH_RATIO,
    potential_waveform,
)
from repro.chemistry.species import FERROCENE, RedoxSpecies, ferrocene_solution
from repro.errors import SimulationError
from repro.units import FARADAY, GAS_CONSTANT, celsius_to_kelvin

AREA = 0.0707
CONC = ferrocene_solution(2.0).concentration(FERROCENE)


def randles_sevcik(scan_rate: float, concentration: float = CONC) -> float:
    f_term = FARADAY / (GAS_CONSTANT * celsius_to_kelvin(25.0))
    return (
        0.4463
        * FARADAY
        * AREA
        * concentration
        * np.sqrt(f_term * scan_rate * FERROCENE.diffusion_cm2_s)
    )


class TestCVParameters:
    def test_defaults_match_paper(self):
        params = CVParameters()
        assert params.e_begin_v == 0.2
        assert params.e_vertex_v == 0.8
        assert params.scan_rate_v_s == 0.1

    def test_derived_quantities(self):
        params = CVParameters(e_begin_v=0.0, e_vertex_v=0.5, e_step_v=0.001)
        assert params.window_v == pytest.approx(0.5)
        assert params.samples_per_cycle == 1000
        assert params.dt_s == pytest.approx(0.01)
        assert params.duration_s == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scan_rate_v_s": 0.0},
            {"scan_rate_v_s": -0.1},
            {"n_cycles": 0},
            {"e_step_v": 0.0},
            {"e_begin_v": 0.4, "e_vertex_v": 0.4},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CVParameters(**kwargs)


class TestWaveform:
    def test_triangular_shape(self):
        time, potential, cycles = potential_waveform(CVParameters())
        assert len(time) == len(potential) == len(cycles) == 1200
        assert potential.max() == pytest.approx(0.8)
        # returns one step above e_begin at the end of the cycle
        assert potential[-1] == pytest.approx(0.2, abs=1e-9)
        assert np.argmax(potential) == 599

    def test_time_monotone(self):
        time, _, _ = potential_waveform(CVParameters())
        assert np.all(np.diff(time) > 0)

    def test_downward_sweep(self):
        params = CVParameters(e_begin_v=0.8, e_vertex_v=0.2)
        _, potential, _ = potential_waveform(params)
        assert potential.min() == pytest.approx(0.2)
        assert potential[0] < 0.8

    def test_multi_cycle_index(self):
        _, _, cycles = potential_waveform(CVParameters(n_cycles=3))
        assert set(cycles) == {0, 1, 2}
        assert np.all(np.diff(cycles) >= 0)


class TestPhysicsValidation:
    def test_randles_sevcik_peak_current(self):
        engine = CVEngine(FERROCENE, CONC, AREA, double_layer_f_cm2=0.0)
        trace = engine.run(CVParameters())
        _, peak = trace.peak_anodic()
        assert peak == pytest.approx(randles_sevcik(0.1), rel=0.02)

    def test_reversible_peak_separation(self):
        engine = CVEngine(FERROCENE, CONC, AREA, double_layer_f_cm2=0.0)
        trace = engine.run(CVParameters())
        e_anodic, _ = trace.peak_anodic()
        e_cathodic, _ = trace.peak_cathodic()
        # theory: 2.218 RT/F = 57 mV; accept 55-62 at this resolution
        assert 0.055 <= e_anodic - e_cathodic <= 0.062

    def test_e_half_matches_formal_potential(self):
        engine = CVEngine(FERROCENE, CONC, AREA, double_layer_f_cm2=0.0)
        trace = engine.run(CVParameters())
        e_anodic, _ = trace.peak_anodic()
        e_cathodic, _ = trace.peak_cathodic()
        assert 0.5 * (e_anodic + e_cathodic) == pytest.approx(0.40, abs=0.003)

    def test_sqrt_scan_rate_scaling(self):
        peaks = []
        for scan_rate in (0.05, 0.2):
            engine = CVEngine(FERROCENE, CONC, AREA, double_layer_f_cm2=0.0)
            trace = engine.run(CVParameters(scan_rate_v_s=scan_rate))
            peaks.append(trace.peak_anodic()[1])
        assert peaks[1] / peaks[0] == pytest.approx(2.0, rel=0.03)

    def test_peak_scales_linearly_with_concentration(self):
        peaks = []
        for factor in (1.0, 2.0):
            engine = CVEngine(FERROCENE, CONC * factor, AREA, double_layer_f_cm2=0.0)
            peaks.append(engine.run(CVParameters()).peak_anodic()[1])
        assert peaks[1] / peaks[0] == pytest.approx(2.0, rel=0.02)

    def test_peak_scales_linearly_with_area(self):
        peaks = []
        for factor in (1.0, 0.5):
            engine = CVEngine(
                FERROCENE, CONC, AREA * factor, double_layer_f_cm2=0.0
            )
            peaks.append(engine.run(CVParameters()).peak_anodic()[1])
        assert peaks[1] / peaks[0] == pytest.approx(0.5, rel=0.02)

    def test_zero_concentration_gives_capacitive_only(self):
        engine = CVEngine(FERROCENE, 0.0, AREA, double_layer_f_cm2=20e-6)
        trace = engine.run(CVParameters())
        # pure double-layer: |i| = Cdl * A * v
        expected = 20e-6 * AREA * 0.1
        assert np.abs(trace.current_a).max() == pytest.approx(expected, rel=0.1)

    def test_slow_kinetics_widen_separation(self):
        sluggish = RedoxSpecies(
            name="slow",
            formal_potential_v=0.40,
            diffusion_cm2_s=2.4e-5,
            k0_cm_s=1e-4,
        )
        engine = CVEngine(sluggish, CONC, AREA, double_layer_f_cm2=0.0)
        trace = engine.run(CVParameters())
        e_anodic, _ = trace.peak_anodic()
        e_cathodic, _ = trace.peak_cathodic()
        assert e_anodic - e_cathodic > 0.1  # quasi-reversible

    def test_ohmic_drop_widens_separation(self):
        no_ru = CVEngine(FERROCENE, CONC, AREA, double_layer_f_cm2=0.0)
        with_ru = CVEngine(
            FERROCENE, CONC, AREA, double_layer_f_cm2=0.0, resistance_ohm=200.0
        )
        sep_free = np.subtract(
            no_ru.run(CVParameters()).peak_anodic()[0],
            no_ru.run(CVParameters()).peak_cathodic()[0],
        )
        trace = with_ru.run(CVParameters())
        sep_ru = trace.peak_anodic()[0] - trace.peak_cathodic()[0]
        assert sep_ru > sep_free + 0.005

    def test_oxidised_initial_condition_sweeps_cathodic_first(self):
        engine = CVEngine(
            FERROCENE, CONC, AREA, double_layer_f_cm2=0.0, reduced_initially=False
        )
        params = CVParameters(e_begin_v=0.8, e_vertex_v=0.2)
        trace = engine.run(params)
        # reduction first: the cathodic peak precedes the anodic one
        _, i_cathodic = trace.peak_cathodic()
        assert i_cathodic < 0
        idx_cath = int(np.argmin(trace.current_a))
        idx_anod = int(np.argmax(trace.current_a))
        assert idx_cath < idx_anod


class TestNumericalBehaviour:
    def test_stability_across_scan_rates_with_ru(self):
        for scan_rate in (0.02, 0.1, 0.5, 1.0):
            engine = CVEngine(FERROCENE, CONC, AREA, resistance_ohm=100.0)
            trace = engine.run(CVParameters(scan_rate_v_s=scan_rate))
            assert np.all(np.isfinite(trace.current_a))
            # bounded by ~3x the theoretical peak
            assert np.abs(trace.current_a).max() < 3 * randles_sevcik(scan_rate)

    def test_substep_refinement_converges(self):
        results = []
        for substeps in (1, 4):
            engine = CVEngine(
                FERROCENE, CONC, AREA, double_layer_f_cm2=0.0, substeps=substeps
            )
            results.append(engine.run(CVParameters()).peak_anodic()[1])
        # refinement changes the answer by well under a percent
        assert results[1] == pytest.approx(results[0], rel=0.01)

    def test_charge_balance_physics(self):
        # A single CV cycle is NOT charge balanced: diffusion carries part
        # of the oxidised product away before the return sweep. The
        # correct invariants: net charge is positive (net oxidation of the
        # initially reduced analyte), smaller than the forward charge
        # (some product IS recovered), and it shrinks as more cycles
        # deplete the diffusion layer towards a pseudo-steady state.
        engine = CVEngine(FERROCENE, CONC, AREA, double_layer_f_cm2=0.0)
        one = engine.run(CVParameters())
        dt = np.diff(one.time_s, prepend=0.0)
        net_one = float(np.sum(one.current_a * dt))
        forward_charge = float(
            np.sum(np.clip(one.current_a, 0.0, None) * dt)
        )
        assert 0.0 < net_one < forward_charge

        three = engine.run(CVParameters(n_cycles=3))
        dt3 = np.diff(three.time_s, prepend=0.0)
        per_cycle_net = [
            float(
                np.sum(
                    three.current_a[three.cycle_index == c]
                    * dt3[three.cycle_index == c]
                )
            )
            for c in range(3)
        ]
        assert per_cycle_net[2] < per_cycle_net[0]

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            CVEngine(FERROCENE, -1.0, AREA)
        with pytest.raises(SimulationError):
            CVEngine(FERROCENE, CONC, -1.0)
        with pytest.raises(SimulationError):
            CVEngine(FERROCENE, CONC, AREA, substeps=0)

    def test_mesh_ratio_is_stable_choice(self):
        assert MESH_RATIO < 0.5

    @given(
        st.floats(min_value=0.02, max_value=0.5),
        st.floats(min_value=0.5, max_value=5.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_finite_and_peak_ordering(self, scan_rate, conc_mm):
        concentration = conc_mm * 1e-6
        engine = CVEngine(
            FERROCENE,
            concentration,
            AREA,
            double_layer_f_cm2=0.0,
            substeps=1,
        )
        trace = engine.run(
            CVParameters(scan_rate_v_s=scan_rate, e_step_v=0.002)
        )
        assert np.all(np.isfinite(trace.current_a))
        e_anodic, i_anodic = trace.peak_anodic()
        e_cathodic, i_cathodic = trace.peak_cathodic()
        assert i_anodic > 0 > i_cathodic
        assert e_anodic > e_cathodic


class TestFromCellConditions:
    def test_blank_cell_zero_concentration(self):
        from repro.chemistry.cell import ElectrochemicalCell

        cell = ElectrochemicalCell()
        engine = CVEngine.from_cell_conditions(cell.measurement_conditions())
        assert engine.bulk_concentration == 0.0
        assert engine.area_cm2 == 0.0

    def test_filled_cell_passes_through(self):
        from repro.chemistry.cell import ElectrochemicalCell

        cell = ElectrochemicalCell()
        cell.add_liquid(10.0, ferrocene_solution(2.0))
        engine = CVEngine.from_cell_conditions(cell.measurement_conditions())
        assert engine.bulk_concentration == pytest.approx(2e-6)
        assert engine.area_cm2 == pytest.approx(cell.working.area_cm2)
        assert engine.resistance_ohm > 0
