"""The task engine: DAGs, retries, skips, parallelism."""

import threading
import time

import pytest

from repro.core.workflow import Context, TaskState, Workflow
from repro.errors import DependencyError, TaskFailedError


class TestContext:
    def test_attribute_sugar(self):
        ctx = Context()
        ctx.value = 42
        assert ctx["value"] == 42
        assert ctx.value == 42
        with pytest.raises(AttributeError):
            _ = ctx.missing


class TestConstruction:
    def test_duplicate_name(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: None)
        with pytest.raises(DependencyError):
            flow.add_task("a", lambda ctx: None)

    def test_unknown_dependency(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: None, depends=("ghost",))
        with pytest.raises(DependencyError, match="unknown task"):
            flow.run()

    def test_cycle_detected(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: None, depends=("b",))
        flow.add_task("b", lambda ctx: None, depends=("a",))
        with pytest.raises(DependencyError, match="cycle"):
            flow.run()

    def test_decorator_sugar(self):
        flow = Workflow("w")

        @flow.task("a")
        def task_a(ctx):
            return 1

        assert flow.task_names == ["a"]

    def test_bad_max_workers(self):
        with pytest.raises(DependencyError):
            Workflow("w", max_workers=0)


class TestExecution:
    def test_linear_chain_order_and_context(self):
        flow = Workflow("w")
        order = []

        flow.add_task("a", lambda ctx: order.append("a") or ctx.update(x=1))
        flow.add_task(
            "b", lambda ctx: order.append("b") or ctx["x"] + 1, depends=("a",)
        )
        result = flow.run()
        assert order == ["a", "b"]
        assert result.succeeded
        assert result.tasks["b"].result == 2

    def test_initial_context_passed(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: ctx["seed"] * 2)
        result = flow.run({"seed": 21})
        assert result.tasks["a"].result == 42

    def test_failure_skips_downstream(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: 1 / 0)
        flow.add_task("b", lambda ctx: "never", depends=("a",))
        flow.add_task("c", lambda ctx: "independent")
        result = flow.run()
        assert result.tasks["a"].state is TaskState.FAILED
        assert result.tasks["b"].state is TaskState.SKIPPED
        assert not result.succeeded
        assert isinstance(result.tasks["a"].error, ZeroDivisionError)

    def test_abort_on_failure_false_continues_independents(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: 1 / 0)
        flow.add_task("b", lambda ctx: "ok")
        result = flow.run(abort_on_failure=False)
        assert result.tasks["b"].state is TaskState.SUCCEEDED

    def test_raise_on_failure(self):
        flow = Workflow("w")
        flow.add_task("boom", lambda ctx: 1 / 0)
        result = flow.run()
        with pytest.raises(TaskFailedError) as excinfo:
            result.raise_on_failure()
        assert excinfo.value.task_name == "boom"

    def test_retries_eventually_succeed(self):
        attempts = []

        def flaky(ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        flow = Workflow("w")
        flow.add_task("flaky", flaky, retries=3)
        result = flow.run()
        assert result.succeeded
        assert result.tasks["flaky"].attempts == 3

    def test_retries_exhausted(self):
        flow = Workflow("w")
        flow.add_task("flaky", lambda ctx: 1 / 0, retries=2)
        result = flow.run()
        assert result.tasks["flaky"].state is TaskState.FAILED
        assert result.tasks["flaky"].attempts == 3

    def test_diamond_dependencies(self):
        flow = Workflow("w")
        seen = []
        flow.add_task("top", lambda ctx: seen.append("top"))
        flow.add_task("left", lambda ctx: seen.append("left"), depends=("top",))
        flow.add_task("right", lambda ctx: seen.append("right"), depends=("top",))
        flow.add_task(
            "bottom",
            lambda ctx: seen.append("bottom"),
            depends=("left", "right"),
        )
        result = flow.run()
        assert result.succeeded
        assert seen[0] == "top"
        assert seen[-1] == "bottom"

    def test_durations_recorded(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: time.sleep(0.02))
        result = flow.run()
        assert result.tasks["a"].duration_s >= 0.015

    def test_transcript_logged(self):
        flow = Workflow("paper-flow")
        flow.add_task("a", lambda ctx: None)
        flow.run()
        messages = flow.log.messages(source="paper-flow")
        assert any("a succeeded" in m for m in messages)


class TestParallel:
    def test_independent_tasks_overlap(self):
        flow = Workflow("w", max_workers=4)
        barrier = threading.Barrier(3, timeout=5.0)

        def task(ctx):
            barrier.wait()  # deadlocks unless all 3 run concurrently
            return True

        for name in ("a", "b", "c"):
            flow.add_task(name, task)
        result = flow.run()
        assert result.succeeded

    def test_parallel_respects_dependencies(self):
        flow = Workflow("w", max_workers=4)
        order = []
        lock = threading.Lock()

        def record(name):
            def fn(ctx):
                with lock:
                    order.append(name)

            return fn

        flow.add_task("first", record("first"))
        flow.add_task("second", record("second"), depends=("first",))
        result = flow.run()
        assert result.succeeded
        assert order == ["first", "second"]

    def test_parallel_failure_skips(self):
        flow = Workflow("w", max_workers=2)
        flow.add_task("bad", lambda ctx: 1 / 0)
        flow.add_task("child", lambda ctx: None, depends=("bad",))
        result = flow.run()
        assert result.tasks["child"].state is TaskState.SKIPPED


class TestClockDrivenRetries:
    def test_retry_delay_charged_on_injected_clock(self):
        from repro.clock import VirtualClock

        clock = VirtualClock()
        flow = Workflow("w", clock=clock)
        attempts = []

        def flaky(ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        flow.add_task("flaky", flaky, retries=3, retry_delay_s=10.0)
        start = time.monotonic()
        result = flow.run()
        elapsed = time.monotonic() - start
        assert result.succeeded
        # two 10 s pauses went to the virtual clock, not time.sleep
        assert clock.now() == pytest.approx(20.0)
        assert elapsed < 5.0

    def test_policy_backoff_governs_attempts_and_delays(self):
        from repro.clock import VirtualClock
        from repro.errors import CommunicationError
        from repro.resilience import RetryPolicy

        clock = VirtualClock()
        flow = Workflow("w", clock=clock)
        calls = []

        def flaky(ctx):
            calls.append(1)
            raise CommunicationError("link down")

        flow.add_task(
            "flaky",
            flaky,
            policy=RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter="none"),
        )
        result = flow.run()
        assert result.tasks["flaky"].state is TaskState.FAILED
        assert result.tasks["flaky"].attempts == 3
        assert len(calls) == 3
        # backoff 1 s then 2 s, on the injected clock
        assert clock.now() == pytest.approx(3.0)

    def test_policy_fails_fast_on_non_retryable_error(self):
        from repro.clock import VirtualClock
        from repro.resilience import RetryPolicy

        flow = Workflow("w", clock=VirtualClock())
        calls = []

        def broken(ctx):
            calls.append(1)
            raise ValueError("bad arguments")  # not transient

        flow.add_task(
            "broken", broken, policy=RetryPolicy(max_attempts=5, jitter="none")
        )
        result = flow.run()
        assert result.tasks["broken"].state is TaskState.FAILED
        assert len(calls) == 1


class TestTaskTimeouts:
    def test_attempt_past_deadline_fails_with_timeout(self):
        from repro.errors import TaskTimeoutError

        flow = Workflow("w")
        flow.add_task("slow", lambda ctx: time.sleep(5.0), timeout_s=0.05)
        result = flow.run()
        record = result.tasks["slow"]
        assert record.state is TaskState.FAILED
        assert isinstance(record.error, TaskTimeoutError)

    def test_timeout_is_retried_under_policy(self):
        from repro.clock import VirtualClock
        from repro.resilience import RetryPolicy

        flow = Workflow("w", clock=VirtualClock())
        calls = []

        def slow_then_fast(ctx):
            calls.append(1)
            if len(calls) == 1:
                time.sleep(5.0)  # first attempt blows the deadline
            return "done"

        flow.add_task(
            "flaky",
            slow_then_fast,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter="none"),
            timeout_s=0.05,
        )
        result = flow.run()
        assert result.succeeded
        assert result.tasks["flaky"].attempts == 2

    def test_fast_task_unaffected_by_timeout(self):
        flow = Workflow("w")
        flow.add_task("quick", lambda ctx: "ok", timeout_s=5.0)
        result = flow.run()
        assert result.succeeded
        assert result.tasks["quick"].result == "ok"


class TestTeardowns:
    def test_teardowns_run_on_failed_run(self):
        flow = Workflow("w")
        fired = []
        flow.add_task("boom", lambda ctx: 1 / 0)
        flow.add_teardown(lambda ctx: fired.append("first"))
        flow.add_teardown(lambda ctx: fired.append("second"))
        flow.run()
        assert fired == ["first", "second"]

    def test_teardowns_skipped_on_healthy_run(self):
        flow = Workflow("w")
        fired = []
        flow.add_task("fine", lambda ctx: "ok")
        flow.add_teardown(lambda ctx: fired.append("never"))
        result = flow.run()
        assert result.succeeded
        assert fired == []

    def test_teardown_sees_context(self):
        flow = Workflow("w")
        seen = {}
        flow.add_task("setup", lambda ctx: ctx.update(handle="H"))
        flow.add_task("boom", lambda ctx: 1 / 0, depends=("setup",))
        flow.add_teardown(lambda ctx: seen.update(handle=ctx.get("handle")))
        flow.run()
        assert seen["handle"] == "H"

    def test_failing_teardown_does_not_stop_the_rest(self):
        flow = Workflow("w")
        fired = []

        def bad_teardown(ctx):
            raise RuntimeError("control link dead")

        flow.add_task("boom", lambda ctx: 1 / 0)
        flow.add_teardown(bad_teardown, name="safe-state")
        flow.add_teardown(lambda ctx: fired.append("local-cleanup"))
        flow.run()
        assert fired == ["local-cleanup"]
        messages = flow.log.messages(kind="teardown")
        assert any("safe-state raised" in m for m in messages)
