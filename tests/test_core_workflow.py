"""The task engine: DAGs, retries, skips, parallelism."""

import threading
import time

import pytest

from repro.core.workflow import Context, TaskState, Workflow
from repro.errors import DependencyError, TaskFailedError


class TestContext:
    def test_attribute_sugar(self):
        ctx = Context()
        ctx.value = 42
        assert ctx["value"] == 42
        assert ctx.value == 42
        with pytest.raises(AttributeError):
            _ = ctx.missing


class TestConstruction:
    def test_duplicate_name(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: None)
        with pytest.raises(DependencyError):
            flow.add_task("a", lambda ctx: None)

    def test_unknown_dependency(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: None, depends=("ghost",))
        with pytest.raises(DependencyError, match="unknown task"):
            flow.run()

    def test_cycle_detected(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: None, depends=("b",))
        flow.add_task("b", lambda ctx: None, depends=("a",))
        with pytest.raises(DependencyError, match="cycle"):
            flow.run()

    def test_decorator_sugar(self):
        flow = Workflow("w")

        @flow.task("a")
        def task_a(ctx):
            return 1

        assert flow.task_names == ["a"]

    def test_bad_max_workers(self):
        with pytest.raises(DependencyError):
            Workflow("w", max_workers=0)


class TestExecution:
    def test_linear_chain_order_and_context(self):
        flow = Workflow("w")
        order = []

        flow.add_task("a", lambda ctx: order.append("a") or ctx.update(x=1))
        flow.add_task(
            "b", lambda ctx: order.append("b") or ctx["x"] + 1, depends=("a",)
        )
        result = flow.run()
        assert order == ["a", "b"]
        assert result.succeeded
        assert result.tasks["b"].result == 2

    def test_initial_context_passed(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: ctx["seed"] * 2)
        result = flow.run({"seed": 21})
        assert result.tasks["a"].result == 42

    def test_failure_skips_downstream(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: 1 / 0)
        flow.add_task("b", lambda ctx: "never", depends=("a",))
        flow.add_task("c", lambda ctx: "independent")
        result = flow.run()
        assert result.tasks["a"].state is TaskState.FAILED
        assert result.tasks["b"].state is TaskState.SKIPPED
        assert not result.succeeded
        assert isinstance(result.tasks["a"].error, ZeroDivisionError)

    def test_abort_on_failure_false_continues_independents(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: 1 / 0)
        flow.add_task("b", lambda ctx: "ok")
        result = flow.run(abort_on_failure=False)
        assert result.tasks["b"].state is TaskState.SUCCEEDED

    def test_raise_on_failure(self):
        flow = Workflow("w")
        flow.add_task("boom", lambda ctx: 1 / 0)
        result = flow.run()
        with pytest.raises(TaskFailedError) as excinfo:
            result.raise_on_failure()
        assert excinfo.value.task_name == "boom"

    def test_retries_eventually_succeed(self):
        attempts = []

        def flaky(ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        flow = Workflow("w")
        flow.add_task("flaky", flaky, retries=3)
        result = flow.run()
        assert result.succeeded
        assert result.tasks["flaky"].attempts == 3

    def test_retries_exhausted(self):
        flow = Workflow("w")
        flow.add_task("flaky", lambda ctx: 1 / 0, retries=2)
        result = flow.run()
        assert result.tasks["flaky"].state is TaskState.FAILED
        assert result.tasks["flaky"].attempts == 3

    def test_diamond_dependencies(self):
        flow = Workflow("w")
        seen = []
        flow.add_task("top", lambda ctx: seen.append("top"))
        flow.add_task("left", lambda ctx: seen.append("left"), depends=("top",))
        flow.add_task("right", lambda ctx: seen.append("right"), depends=("top",))
        flow.add_task(
            "bottom",
            lambda ctx: seen.append("bottom"),
            depends=("left", "right"),
        )
        result = flow.run()
        assert result.succeeded
        assert seen[0] == "top"
        assert seen[-1] == "bottom"

    def test_durations_recorded(self):
        flow = Workflow("w")
        flow.add_task("a", lambda ctx: time.sleep(0.02))
        result = flow.run()
        assert result.tasks["a"].duration_s >= 0.015

    def test_transcript_logged(self):
        flow = Workflow("paper-flow")
        flow.add_task("a", lambda ctx: None)
        flow.run()
        messages = flow.log.messages(source="paper-flow")
        assert any("a succeeded" in m for m in messages)


class TestParallel:
    def test_independent_tasks_overlap(self):
        flow = Workflow("w", max_workers=4)
        barrier = threading.Barrier(3, timeout=5.0)

        def task(ctx):
            barrier.wait()  # deadlocks unless all 3 run concurrently
            return True

        for name in ("a", "b", "c"):
            flow.add_task(name, task)
        result = flow.run()
        assert result.succeeded

    def test_parallel_respects_dependencies(self):
        flow = Workflow("w", max_workers=4)
        order = []
        lock = threading.Lock()

        def record(name):
            def fn(ctx):
                with lock:
                    order.append(name)

            return fn

        flow.add_task("first", record("first"))
        flow.add_task("second", record("second"), depends=("first",))
        result = flow.run()
        assert result.succeeded
        assert order == ["first", "second"]

    def test_parallel_failure_skips(self):
        flow = Workflow("w", max_workers=2)
        flow.add_task("bad", lambda ctx: 1 / 0)
        flow.add_task("child", lambda ctx: None, depends=("bad",))
        result = flow.run()
        assert result.tasks["child"].state is TaskState.SKIPPED
