"""File share service + mount, over real RPC."""

import threading
import time

import numpy as np
import pytest

from repro.datachannel import (
    FileShareService,
    MeasurementWatcher,
    Mount,
    write_mpt,
)
from repro.errors import (
    AccessDeniedError,
    DataChannelError,
    RemoteFileNotFoundError,
    ShareNotMountedError,
)
from repro.rpc import Daemon, Proxy


@pytest.fixture
def share_setup(tmp_path):
    root = tmp_path / "export"
    root.mkdir()
    (root / "hello.txt").write_text("hello world")
    (root / "sub").mkdir()
    (root / "sub" / "nested.txt").write_text("nested")
    service = FileShareService(root)
    daemon = Daemon()
    uri = daemon.register(service, object_id="Share")
    daemon.start_background()
    cache = tmp_path / "cache"
    mount = Mount(Proxy(uri), cache_dir=cache)
    yield root, service, mount
    mount.unmount()
    daemon.shutdown()


class TestService:
    def test_info(self, share_setup):
        _, _, mount = share_setup
        assert mount.info()["share_name"] == "measurements"

    def test_listdir(self, share_setup):
        _, _, mount = share_setup
        names = {stat.path for stat in mount.listdir()}
        assert names == {"hello.txt", "sub"}

    def test_listdir_subdirectory(self, share_setup):
        _, _, mount = share_setup
        stats = mount.listdir("sub")
        assert [s.path for s in stats] == ["sub/nested.txt"]

    def test_stat(self, share_setup):
        _, _, mount = share_setup
        stat = mount.stat("hello.txt")
        assert stat.size == len("hello world")
        assert not stat.is_dir

    def test_exists(self, share_setup):
        _, _, mount = share_setup
        assert mount.exists("hello.txt")
        assert not mount.exists("ghost.txt")

    def test_missing_file(self, share_setup):
        _, _, mount = share_setup
        with pytest.raises(RemoteFileNotFoundError):
            mount.stat("ghost.txt")
        with pytest.raises(RemoteFileNotFoundError):
            mount.read_bytes("ghost.txt")

    @pytest.mark.parametrize(
        "path", ["../secret", "..", "/etc/passwd", "sub/../../x", "c:evil"]
    )
    def test_traversal_blocked(self, share_setup, path):
        _, _, mount = share_setup
        with pytest.raises(AccessDeniedError):
            mount.read_bytes(path)

    def test_negative_offset_rejected(self, share_setup):
        root, service, _ = share_setup
        with pytest.raises(AccessDeniedError):
            service.read_chunk("hello.txt", -1, 10)

    def test_export_root_must_exist(self, tmp_path):
        with pytest.raises(AccessDeniedError):
            FileShareService(tmp_path / "nope")

    def test_counters(self, share_setup):
        _, service, mount = share_setup
        mount.read_bytes("hello.txt")
        assert service.reads_served >= 1
        assert service.bytes_served >= len("hello world")


class TestMount:
    def test_read_text(self, share_setup):
        _, _, mount = share_setup
        assert mount.read_text("hello.txt") == "hello world"

    def test_read_with_verify(self, share_setup):
        _, _, mount = share_setup
        assert mount.read_bytes("hello.txt", verify=True) == b"hello world"

    def test_large_file_chunked(self, share_setup):
        root, _, mount = share_setup
        blob = bytes(range(256)) * 4096  # 1 MiB, > chunk size
        (root / "big.bin").write_bytes(blob)
        assert mount.read_bytes("big.bin", verify=True) == blob

    def test_fetch_caches_locally(self, share_setup):
        _, _, mount = share_setup
        local = mount.fetch("sub/nested.txt")
        assert local.read_text() == "nested"
        assert "cache" in str(local)

    def test_fetch_without_cache_dir(self, share_setup):
        _, _, mount = share_setup
        bare = Mount(mount._proxy, cache_dir=None)
        with pytest.raises(DataChannelError):
            bare.fetch("hello.txt")

    def test_unmounted_access_raises(self, share_setup):
        _, _, mount = share_setup
        mount.unmount()
        with pytest.raises(ShareNotMountedError):
            mount.listdir()
        assert not mount.mounted

    def test_read_voltammogram(self, share_setup, reference_voltammogram):
        root, _, mount = share_setup
        write_mpt(root / "cv.mpt", reference_voltammogram)
        loaded = mount.read_voltammogram("cv.mpt")
        np.testing.assert_allclose(
            loaded.current_a, reference_voltammogram.current_a, rtol=1e-5
        )

    def test_bytes_fetched_accounting(self, share_setup):
        _, _, mount = share_setup
        before = mount.bytes_fetched
        mount.read_bytes("hello.txt")
        assert mount.bytes_fetched == before + len("hello world")


class TestWatcher:
    def test_poll_detects_new_file(self, share_setup, reference_voltammogram):
        root, _, mount = share_setup
        watcher = MeasurementWatcher(mount, pattern="*.mpt", interval_s=0.02)
        watcher.snapshot()
        assert watcher.poll() == []
        write_mpt(root / "new.mpt", reference_voltammogram)
        changed = watcher.poll()
        assert [s.path for s in changed] == ["new.mpt"]
        # unchanged on the next poll
        assert watcher.poll() == []

    def test_poll_detects_modification(self, share_setup):
        root, _, mount = share_setup
        (root / "grow.mpt").write_text("v1")
        watcher = MeasurementWatcher(mount, pattern="*.mpt", interval_s=0.02)
        watcher.snapshot()
        (root / "grow.mpt").write_text("v2 longer")
        assert [s.path for s in watcher.poll()] == ["grow.mpt"]

    def test_pattern_filters(self, share_setup):
        root, _, mount = share_setup
        watcher = MeasurementWatcher(mount, pattern="*.mpt", interval_s=0.02)
        watcher.snapshot()
        (root / "note.txt").write_text("not a measurement")
        assert watcher.poll() == []

    def test_wait_for_appearing_file(self, share_setup, reference_voltammogram):
        root, _, mount = share_setup
        watcher = MeasurementWatcher(mount, pattern="*.mpt", interval_s=0.02)

        def writer():
            import time

            time.sleep(0.1)
            write_mpt(root / "later.mpt", reference_voltammogram)

        thread = threading.Thread(target=writer)
        thread.start()
        stat = watcher.wait_for("later.mpt", timeout_s=5.0)
        thread.join()
        assert stat.path == "later.mpt"

    def test_wait_for_timeout(self, share_setup):
        _, _, mount = share_setup
        watcher = MeasurementWatcher(mount, interval_s=0.02)
        with pytest.raises(DataChannelError, match="did not appear"):
            watcher.wait_for("never.mpt", timeout_s=0.1)

    def test_background_callback(self, share_setup, reference_voltammogram):
        root, _, mount = share_setup
        watcher = MeasurementWatcher(mount, pattern="*.mpt", interval_s=0.02)
        watcher.snapshot()
        seen: list[str] = []
        event = threading.Event()

        def callback(stat):
            seen.append(stat.path)
            event.set()

        watcher.start(callback)
        try:
            write_mpt(root / "bg.mpt", reference_voltammogram)
            assert event.wait(timeout=5.0)
        finally:
            watcher.stop()
        assert "bg.mpt" in seen

    def test_double_start_rejected(self, share_setup):
        _, _, mount = share_setup
        watcher = MeasurementWatcher(mount, interval_s=0.05)
        watcher.start(lambda s: None)
        try:
            with pytest.raises(DataChannelError):
                watcher.start(lambda s: None)
        finally:
            watcher.stop()

    def test_bad_interval(self, share_setup):
        _, _, mount = share_setup
        with pytest.raises(DataChannelError):
            MeasurementWatcher(mount, interval_s=0.0)


class TestWatcherErrorEscalation:
    def test_on_error_fires_once_after_consecutive_failures(self, share_setup):
        _, _, mount = share_setup
        watcher = MeasurementWatcher(mount, interval_s=0.01)
        failures: list[Exception] = []
        notified = threading.Event()

        def broken_poll():
            raise DataChannelError("share went away")

        watcher.poll = broken_poll

        def on_error(exc):
            failures.append(exc)
            notified.set()

        watcher.start(lambda s: None, on_error=on_error, error_threshold=3)
        try:
            assert notified.wait(timeout=5.0)
            time.sleep(0.1)  # more failing ticks must not re-notify
        finally:
            watcher.stop()
        assert len(failures) == 1
        assert watcher.failure_streak >= 3

    def test_clean_poll_resets_streak_and_rearms(self, share_setup):
        _, _, mount = share_setup
        watcher = MeasurementWatcher(mount, interval_s=0.01)
        notifications = []
        second_streak = threading.Event()
        state = {"mode": "fail", "polls": 0}

        def scripted_poll():
            state["polls"] += 1
            if state["mode"] == "fail":
                raise DataChannelError("flaky share")
            return []

        watcher.poll = scripted_poll

        def on_error(exc):
            notifications.append(exc)
            if len(notifications) == 2:
                second_streak.set()

        watcher.start(lambda s: None, on_error=on_error, error_threshold=2)
        try:
            # first streak notifies; a clean stretch resets; second streak
            # notifies again
            while len(notifications) < 1:
                time.sleep(0.005)
            state["mode"] = "ok"
            while watcher.failure_streak != 0:
                time.sleep(0.005)
            state["mode"] = "fail"
            assert second_streak.wait(timeout=5.0)
        finally:
            watcher.stop()
        assert len(notifications) == 2

    def test_bad_threshold_rejected(self, share_setup):
        _, _, mount = share_setup
        watcher = MeasurementWatcher(mount, interval_s=0.01)
        with pytest.raises(DataChannelError):
            watcher.start(lambda s: None, error_threshold=0)

    def test_on_error_exception_does_not_kill_the_loop(self, share_setup):
        _, _, mount = share_setup
        watcher = MeasurementWatcher(mount, interval_s=0.01)

        def broken_poll():
            raise DataChannelError("down")

        watcher.poll = broken_poll

        def bad_on_error(exc):
            raise RuntimeError("pager is broken too")

        watcher.start(lambda s: None, on_error=bad_on_error, error_threshold=1)
        try:
            time.sleep(0.1)
            assert watcher._thread.is_alive()
        finally:
            watcher.stop()
