"""Tenant attribution and cardinality guard on the metrics registry.

PR 8 made the platform multi-tenant; these tests pin the observability
side of that: every metric written while a tenant is bound on the
calling context carries a ``tenant`` label automatically, and a hostile
or buggy label stream (unbounded tenant ids) folds into one
``__overflow__`` series instead of growing without bound. Plus the
listener-concurrency contract: notifications always run outside the
instrument lock and none are lost.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    LABEL_OVERFLOW_METRIC,
    MetricsRegistry,
    OVERFLOW_VALUE,
)
from repro.rpc.context import reset_current_tenant, set_current_tenant


@pytest.fixture
def tenant():
    token = set_current_tenant("lab-a")
    yield "lab-a"
    reset_current_tenant(token)


class TestTenantAttribution:
    def test_ambient_tenant_labels_counter_writes(self, tenant):
        reg = MetricsRegistry()
        counter = reg.counter("rpc.client.calls_total")
        counter.inc(method="ping", status="ok")
        assert counter.value(method="ping", status="ok", tenant="lab-a") == 1
        assert counter.value(method="ping", status="ok") == 0

    def test_gauge_and_histogram_writes_are_attributed(self, tenant):
        reg = MetricsRegistry()
        reg.gauge("gateway.queue_depth").set(3)
        reg.histogram("rpc.client.call_latency_s").observe(0.01)
        assert reg.gauge("gateway.queue_depth").value(tenant="lab-a") == 3
        assert (
            reg.histogram("rpc.client.call_latency_s").count(tenant="lab-a") == 1
        )

    def test_no_tenant_bound_means_no_label(self):
        reg = MetricsRegistry()
        counter = reg.counter("rpc.client.calls_total")
        counter.inc(status="ok")
        assert counter.labels_seen() == [{"status": "ok"}]

    def test_explicit_tenant_label_wins(self, tenant):
        reg = MetricsRegistry()
        counter = reg.counter("gateway.jobs_submitted_total")
        counter.inc(tenant="lab-b")
        assert counter.value(tenant="lab-b") == 1
        assert counter.value(tenant="lab-a") == 0

    def test_internal_metrics_skip_attribution(self, tenant):
        reg = MetricsRegistry()
        counter = reg.counter("obs.metrics.label_overflow_total")
        counter.inc(metric="x")
        assert counter.labels_seen() == [{"metric": "x"}]

    def test_registry_can_disable_attribution(self, tenant):
        reg = MetricsRegistry(tenant_labels=False)
        counter = reg.counter("rpc.client.calls_total")
        counter.inc(status="ok")
        assert counter.labels_seen() == [{"status": "ok"}]

    def test_daemon_dispatch_attributes_hot_path_metrics(self, ice):
        """e2e: a tenant-stamped request lands tenant-labelled
        rpc.daemon.* metrics without any instrumented code changing."""
        from repro.obs import MetricsRegistry as Registry, Tracer

        metrics = Registry()
        ice.attach_observability(Tracer("t"), metrics)
        client = ice.client(metrics=metrics)
        try:
            proxy = getattr(client, "_proxy")
            proxy.tenant = "lab-42"
            client.call_Status_JKem()
        finally:
            client.close()
        assert (
            metrics.counter("rpc.daemon.calls_total").value(
                method="Status_JKem", status="ok", tenant="lab-42"
            )
            == 1
        )


class TestCardinalityCap:
    def test_unbounded_tenant_stream_stabilises_at_cap(self):
        """The regression the guard exists for: 10k distinct tenant ids
        must end as cap + 1 series, with every excess write folded."""
        cap = 32
        reg = MetricsRegistry(max_label_sets=cap)
        counter = reg.counter("rpc.client.calls_total")
        for i in range(10_000):
            counter.inc(tenant=f"tenant-{i}", status="ok")
        seen = counter.labels_seen()
        assert len(seen) == cap + 1
        folded = [s for s in seen if s.get("tenant") == OVERFLOW_VALUE]
        assert folded == [{"tenant": OVERFLOW_VALUE, "status": OVERFLOW_VALUE}]
        # the folded series accumulated every excess write
        assert (
            counter.value(tenant=OVERFLOW_VALUE, status=OVERFLOW_VALUE)
            == 10_000 - cap
        )
        assert (
            reg.counter(LABEL_OVERFLOW_METRIC).value(
                metric="rpc.client.calls_total"
            )
            == 10_000 - cap
        )

    def test_admitted_series_keep_exact_values_after_cap(self):
        reg = MetricsRegistry(max_label_sets=2)
        counter = reg.counter("c")
        counter.inc(t="a")
        counter.inc(t="b")
        counter.inc(t="c")  # folded
        counter.inc(t="a")  # still exact
        assert counter.value(t="a") == 2
        assert counter.value(t=OVERFLOW_VALUE) == 1

    def test_cap_disabled_with_none(self):
        reg = MetricsRegistry(max_label_sets=None)
        counter = reg.counter("c")
        for i in range(500):
            counter.inc(t=f"t{i}")
        assert len(counter.labels_seen()) == 500

    def test_overflow_counter_itself_is_exempt(self):
        """The guard must not recurse: the bookkeeping counter can grow
        one series per capped metric even past the cap."""
        reg = MetricsRegistry(max_label_sets=1)
        for i in range(5):
            reg.counter(f"m{i}").inc(t="x")
            reg.counter(f"m{i}").inc(t="y")  # folds, counts overflow
        overflow = reg.counter(LABEL_OVERFLOW_METRIC)
        assert len(overflow.labels_seen()) == 5


class TestListenerConcurrency:
    def test_hammer_with_subscribe_churn(self):
        """8 writer threads on one counter while a listener churns:
        no deadlock, no notification delivered under the instrument
        lock, and the stable listener misses nothing."""
        reg = MetricsRegistry()
        counter = reg.counter("hammered_total")
        received = []
        received_lock = threading.Lock()

        def stable_listener(name, kind, labels, value):
            # would deadlock if notifications ran inside the instrument
            # lock (Counter.value re-acquires it, non-reentrant)
            counter.value(**labels)
            with received_lock:
                received.append(value)

        unsubscribe_stable = reg.add_update_listener(stable_listener)
        stop_churn = threading.Event()

        def churn():
            while not stop_churn.is_set():
                unsub = reg.add_update_listener(lambda *a: None)
                unsub()

        per_thread = 500
        n_threads = 8

        def writer(idx: int):
            for _ in range(per_thread):
                counter.inc(worker=str(idx))

        churner = threading.Thread(target=churn, daemon=True)
        churner.start()
        writers = [
            threading.Thread(target=writer, args=(i,)) for i in range(n_threads)
        ]
        for t in writers:
            t.start()
        for t in writers:
            t.join(timeout=30)
            assert not t.is_alive(), "writer deadlocked"
        stop_churn.set()
        churner.join(timeout=10)
        assert not churner.is_alive(), "churn thread deadlocked"
        unsubscribe_stable()

        assert counter.total() == per_thread * n_threads
        # the stable listener saw every write (listeners are snapshotted
        # per notification, so churn cannot evict it)
        assert len(received) == per_thread * n_threads
        # per-series readings are monotone, so the last-seen value per
        # series must equal the final count
        for labels in counter.labels_seen():
            assert counter.value(**labels) == per_thread
