"""The .mpt measurement file format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chemistry.voltammogram import Voltammogram
from repro.datachannel.formats import read_mpt, write_mpt
from repro.errors import FileFormatError


def make_trace(n=50, metadata=None):
    rng = np.random.default_rng(0)
    return Voltammogram(
        time_s=np.linspace(0.01, 1.0, n),
        potential_v=np.linspace(0.2, 0.8, n),
        current_a=rng.normal(0, 1e-5, n),
        cycle_index=np.zeros(n, dtype=np.int64),
        metadata=metadata or {"technique": "CV", "scan_rate_v_s": 0.1},
    )


class TestRoundTrip:
    def test_arrays_survive(self, tmp_path):
        trace = make_trace()
        path = write_mpt(tmp_path / "t.mpt", trace)
        loaded = read_mpt(path)
        np.testing.assert_allclose(loaded.time_s, trace.time_s, rtol=1e-5)
        np.testing.assert_allclose(loaded.current_a, trace.current_a, rtol=1e-5)
        np.testing.assert_array_equal(loaded.cycle_index, trace.cycle_index)

    def test_metadata_survives(self, tmp_path):
        metadata = {
            "technique": "CV",
            "scan_rate_v_s": 0.25,
            "n_cycles": 3,
            "label": "2 mM ferrocene",
            "flag": True,
            "nested": {"a": 1},
        }
        path = write_mpt(tmp_path / "t.mpt", make_trace(metadata=metadata))
        assert read_mpt(path).metadata == metadata

    def test_non_json_metadata_stringified(self, tmp_path):
        path = write_mpt(
            tmp_path / "t.mpt", make_trace(metadata={"obj": object()})
        )
        loaded = read_mpt(path)
        assert isinstance(loaded.metadata["obj"], str)

    def test_empty_trace(self, tmp_path):
        trace = Voltammogram(
            time_s=np.array([]),
            potential_v=np.array([]),
            current_a=np.array([]),
            cycle_index=np.array([], dtype=np.int64),
            metadata={"technique": "CV"},
        )
        path = write_mpt(tmp_path / "empty.mpt", trace)
        assert len(read_mpt(path)) == 0

    def test_header_looks_like_eclab(self, tmp_path):
        path = write_mpt(tmp_path / "t.mpt", make_trace())
        text = path.read_text()
        assert text.startswith("EC-Lab ASCII FILE")
        assert "Nb header lines :" in text
        assert "time/s\tEwe/V\t<I>/A\tcycle number" in text

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(self, tmp_path_factory, n, seed):
        rng = np.random.default_rng(seed)
        trace = Voltammogram(
            time_s=np.sort(rng.uniform(0, 100, n)),
            potential_v=rng.uniform(-2, 2, n),
            current_a=rng.normal(0, 1e-4, n),
            cycle_index=rng.integers(0, 3, n),
            metadata={"technique": "CV", "seed": seed},
        )
        path = tmp_path_factory.mktemp("mpt") / "t.mpt"
        write_mpt(path, trace)
        loaded = read_mpt(path)
        np.testing.assert_allclose(loaded.current_a, trace.current_a, rtol=1e-5)
        np.testing.assert_array_equal(loaded.cycle_index, trace.cycle_index)


class TestRejections:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileFormatError):
            read_mpt(tmp_path / "ghost.mpt")

    def test_wrong_signature(self, tmp_path):
        path = tmp_path / "x.mpt"
        path.write_text("NOT EC-LAB\nstuff\n")
        with pytest.raises(FileFormatError, match="not an EC-Lab"):
            read_mpt(path)

    def test_missing_count_line(self, tmp_path):
        path = tmp_path / "x.mpt"
        path.write_text("EC-Lab ASCII FILE\nsomething else\n")
        with pytest.raises(FileFormatError, match="header-count"):
            read_mpt(path)

    def test_bad_count_value(self, tmp_path):
        path = tmp_path / "x.mpt"
        path.write_text("EC-Lab ASCII FILE\nNb header lines : many\n")
        with pytest.raises(FileFormatError):
            read_mpt(path)

    def test_count_out_of_range(self, tmp_path):
        path = tmp_path / "x.mpt"
        path.write_text("EC-Lab ASCII FILE\nNb header lines : 999\n")
        with pytest.raises(FileFormatError, match="out of range"):
            read_mpt(path)

    def test_corrupt_body(self, tmp_path):
        path = write_mpt(tmp_path / "t.mpt", make_trace(5))
        content = path.read_text().replace("e-0", "x-0")
        path.write_text(content)
        with pytest.raises(FileFormatError):
            read_mpt(path)

    def test_corrupt_metadata(self, tmp_path):
        path = write_mpt(tmp_path / "t.mpt", make_trace(5))
        content = path.read_text().replace('meta.technique : "CV"', "meta.technique : {broken")
        path.write_text(content)
        with pytest.raises(FileFormatError):
            read_mpt(path)
