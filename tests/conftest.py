"""Shared fixtures.

Conventions:

- anything that stands up threads or daemons is function-scoped and torn
  down explicitly;
- expensive artefacts that are read-only (the trained classifier, the
  reference voltammogram, the ML dataset) are session-scoped;
- CV runs in tests use a coarse ``e_step_v`` so the whole suite stays
  fast — resolution-sensitive assertions live in dedicated tests that
  set their own step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.species import FERROCENE, ferrocene_solution
from repro.facility.ice import ElectrochemistryICE, ICEConfig
from repro.facility.workstation import (
    ElectrochemistryWorkstation,
    WorkstationConfig,
)
from repro.ml.datasets import DatasetSpec, generate_dataset
from repro.ml.features import extract_features_batch
from repro.ml.normality import NormalityClassifier


@pytest.fixture
def workstation(tmp_path):
    """A fully wired bench with instant device operations."""
    ws = ElectrochemistryWorkstation.build(
        WorkstationConfig(measurement_dir=tmp_path / "measurements")
    )
    yield ws
    ws.shutdown()


@pytest.fixture
def ice():
    """A running simulated ICE (separate channels, default bench)."""
    ecosystem = ElectrochemistryICE.build()
    yield ecosystem
    ecosystem.shutdown()


@pytest.fixture
def ice_tcp():
    """The same ecosystem over real loopback TCP."""
    ecosystem = ElectrochemistryICE.build(ICEConfig(transport="tcp"))
    yield ecosystem
    ecosystem.shutdown()


@pytest.fixture(scope="session")
def reference_voltammogram():
    """A clean 2 mM ferrocene CV at the paper's settings (no noise)."""
    solution = ferrocene_solution(2.0)
    engine = CVEngine(
        species=FERROCENE,
        bulk_concentration=solution.concentration(FERROCENE),
        area_cm2=0.0707,
        double_layer_f_cm2=0.0,
    )
    return engine.run(CVParameters())


@pytest.fixture(scope="session")
def ml_corpus():
    """A small labelled dataset plus its feature matrix."""
    traces, labels = generate_dataset(DatasetSpec(n_per_class=14, seed=7))
    features = extract_features_batch(traces)
    return traces, np.asarray(labels), features


@pytest.fixture(scope="session")
def trained_classifier(ml_corpus):
    """A normality classifier fitted on the session corpus."""
    _traces, labels, features = ml_corpus
    return NormalityClassifier().fit_features(features, labels)
