"""The full ecosystem: control/data channels, firewall, name server."""

import numpy as np
import pytest

from repro.errors import FirewallDeniedError, NetworkError
from repro.facility.ice import (
    CONTROL_PORT,
    DATA_PORT,
    HOST_AGENT,
    HOST_DGX,
    ElectrochemistryICE,
    ICEConfig,
)


class TestBuild:
    def test_uris_have_paper_port(self, ice):
        assert f":{CONTROL_PORT}" in ice.control_uri
        assert "ACL_Workstation" in ice.control_uri
        assert f":{DATA_PORT}" in ice.share_uri

    def test_topology_shape(self, ice):
        topology = ice.topology
        assert topology.host(HOST_AGENT).platform == "windows"
        assert topology.host("acl-gateway").is_gateway
        hosts = topology.path_hosts(HOST_DGX, HOST_AGENT)
        assert hosts == [HOST_DGX, "acl-gateway", HOST_AGENT]

    def test_separate_channels_have_distinct_networks(self, ice):
        assert ice.control_networks != ice.data_networks
        assert ice.data_networks == {"acl-hub-data", "ornl-wan-data"}

    def test_shared_channel_mode(self):
        ecosystem = ElectrochemistryICE.build(
            ICEConfig(separate_channels=False)
        )
        try:
            assert ecosystem.control_networks == ecosystem.data_networks
        finally:
            ecosystem.shutdown()

    def test_bad_transport_rejected(self):
        with pytest.raises(NetworkError):
            ICEConfig(transport="carrier-pigeon")


class TestControlChannel:
    def test_ping_and_commands(self, ice):
        client = ice.client()
        client.ping()
        assert client.call_Set_Rate_SyringePump(1, 5.0) == "OK"
        assert "Initialize_SP200_API" in client.available_commands()
        client.close()

    def test_firewall_blocks_unopened_port(self, ice):
        # dialing the control port is allowed; any other port is not
        with pytest.raises(FirewallDeniedError):
            ice.simnet.connect(HOST_DGX, HOST_AGENT, 12345)

    def test_cell_status_roundtrip(self, ice):
        client = ice.client()
        status = client.call_Cell_Status()
        assert status["volume_ml"] == 0.0
        assert status["circuit_closed"] is True
        client.close()


class TestDataChannel:
    def test_measurement_file_flows_across(self, ice, tmp_path):
        client = ice.client()
        client.call_Set_Vial_FractionCollector(1, "BOTTOM")
        client.call_Set_Port_SyringePump(1, 1)
        client.call_Withdraw_SyringePump(1, 5.0)
        client.call_Set_Port_SyringePump(1, 8)
        client.call_Dispense_SyringePump(1, 5.0)
        client.call_Initialize_SP200_API({"channel": 1})
        client.call_Connect_SP200()
        client.call_Load_Firmware_SP200()
        client.call_Initialize_CV_Tech_SP200({"e_step_v": 0.002})
        client.call_Load_Technique_SP200()
        client.call_Start_Channel_SP200()
        result = client.call_Get_Tech_Path_Rslt()
        mount = ice.mount(cache_dir=tmp_path / "cache")
        trace = mount.read_voltammogram(result["file"])
        assert len(trace) == result["n_samples"]
        assert np.abs(trace.current_a).max() > 1e-5
        mount.unmount()
        client.close()

    def test_mount_listing(self, ice):
        mount = ice.mount()
        assert mount.info()["share_name"] == "acl-measurements"
        assert mount.listdir() == []
        mount.unmount()


class TestNameServer:
    def test_lookup(self, ice):
        assert ice.lookup("acl.workstation") == ice.control_uri
        assert ice.lookup("acl.share") == ice.share_uri

    def test_built_without_ns(self):
        ecosystem = ElectrochemistryICE.build(ICEConfig(with_name_server=False))
        try:
            with pytest.raises(NetworkError):
                ecosystem.lookup("acl.workstation")
        finally:
            ecosystem.shutdown()


class TestTCPTransport:
    def test_same_workflow_over_loopback(self, ice_tcp):
        client = ice_tcp.client()
        client.ping()
        assert client.call_Set_Rate_SyringePump(1, 5.0) == "OK"
        mount = ice_tcp.mount()
        assert mount.listdir() == []
        mount.unmount()
        client.close()


class TestLifecycle:
    def test_context_manager(self):
        with ElectrochemistryICE.build() as ecosystem:
            ecosystem.client().ping()

    def test_shutdown_idempotent_temp_cleanup(self):
        ecosystem = ElectrochemistryICE.build()
        measurement_dir = ecosystem.measurement_dir
        assert measurement_dir.exists()
        ecosystem.shutdown()
        assert not measurement_dir.exists()
