"""Crash-recovery e2e: the durability acceptance scenario.

The control daemon is killed abruptly in the middle of a journaled
campaign round (after the instrument started acquiring, before the
result call returned). The test then restarts the daemon — which
preloads its fsync'd dedup journal and lease epochs — and calls
:meth:`Campaign.resume`, asserting:

- a flight-recorder black box was dumped at the moment of death;
- completed rounds are restored from checkpoints, the torn round is
  re-issued under its journaled idempotency prefix, and the campaign
  finishes;
- **zero duplicated instrument executions**: every call the dead
  process already made replays from the dedup journal instead of
  re-running (counted at the instrument server itself);
- merged provenance marks the restored rounds as resumed;
- a client holding a pre-takeover lease epoch is fenced with
  ``LEASE_FENCED`` — even across the daemon restart;
- a journal whose tail was torn by the crash is detected via checksum
  and resume re-runs only the torn round.
"""

import json

import pytest

from repro.core.campaign import (
    Campaign,
    FleetCampaign,
    FleetCellResult,
    campaign_journal_status,
    scan_rate_strategy,
)
from repro.core.cv_workflow import CVWorkflowSettings
from repro.errors import LeaseFencedError
from repro.net.chaos import ChaosController
from repro.obs import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.resilience import RetryPolicy

FAST_POLICY = RetryPolicy(max_attempts=8, base_delay_s=0.01, jitter="none")
BASE = CVWorkflowSettings(client_retry_policy=FAST_POLICY)
RATES = (0.05, 0.1, 0.2)


def _count_calls(server, method_name):
    """Count actual executions of an instrument method, through patching."""
    original = getattr(server, method_name)
    counter = {"n": 0}

    def wrapper(*args, **kwargs):
        counter["n"] += 1
        return original(*args, **kwargs)

    setattr(server, method_name, wrapper)
    return counter


@pytest.mark.chaos
class TestCrashRecovery:
    def test_daemon_killed_mid_round_then_resume(self, ice, tmp_path):
        journal_dir = tmp_path / "campaign"
        flight_dir = tmp_path / "flight"
        ice.attach_observability(metrics=MetricsRegistry())
        chaos = ChaosController(
            ice.simnet, event_log=ice.event_log, metrics=ice.metrics
        )
        recorder = FlightRecorder("e2e")
        server = ice._ws_server
        starts = _count_calls(server, "Start_Channel_SP200")

        # kill the daemon on the SECOND round's result fetch: round 1 has
        # filled, loaded and started acquiring when its controller dies
        original_fetch = server.Get_Tech_Path_Rslt
        fetches = {"n": 0}

        def dying_fetch(*args, **kwargs):
            fetches["n"] += 1
            if fetches["n"] == 2:
                chaos.crash_daemon(
                    ice,
                    keep_disk=True,
                    flight_recorder=recorder,
                    flight_dir=flight_dir,
                )
                raise RuntimeError("daemon process died")
            return original_fetch(*args, **kwargs)

        server.Get_Tech_Path_Rslt = dying_fetch

        campaign = Campaign(
            ice,
            scan_rate_strategy(RATES, base=BASE),
            journal_dir=journal_dir,
            max_rounds=5,
        )
        rounds = campaign.run()

        # the campaign stopped at the dead round, with round 0 checkpointed
        assert len(rounds) == 2
        assert rounds[0].result.succeeded
        assert not rounds[1].result.succeeded
        assert chaos.fired("daemon-crash")
        dumps = list(flight_dir.glob("flightrec-*.json"))
        assert dumps, "daemon death must leave a black box"

        status = campaign_journal_status(journal_dir)
        assert status["resumable"]
        assert status["completed_rounds"] == [0]
        assert 1 in status["in_flight_rounds"]

        # restart: the daemon preloads every outcome the dead round fsync'd
        server.Get_Tech_Path_Rslt = original_fetch
        chaos.restart_daemon(ice)
        daemon = ice.control_daemon
        assert daemon.dedup_preloaded > 0
        assert chaos.fired("daemon-restart")

        starts_before_resume = starts["n"]
        campaign2 = Campaign(
            ice,
            scan_rate_strategy(RATES, base=BASE),
            journal_dir=journal_dir,
            max_rounds=5,
        )
        rounds2 = campaign2.resume()
        report = campaign2.resume_report

        # round 0 restored from checkpoint, round 1 re-issued, round 2 fresh
        assert report["skipped_rounds"] == [0]
        assert report["rerun_rounds"] == [1]
        assert len(rounds2) == len(RATES)
        assert [r.resumed for r in rounds2] == [True, False, False]
        assert all(r.result.succeeded for r in rounds2)
        assert rounds2[0].result.metrics is not None  # from the checkpoint

        # ZERO duplicated instrument executions: round 1's pre-crash
        # Start_Channel replayed from the dedup journal; only round 2's ran
        assert starts["n"] - starts_before_resume == 1
        assert starts["n"] == len(RATES)
        assert daemon.replay_count > 0

        # exactly one fill ever reached the cell
        client = ice.client()
        try:
            assert client.call_Cell_Status()["volume_ml"] == pytest.approx(
                BASE.fill_volume_ml
            )
        finally:
            client.close()

        # recovery observability landed
        assert ice.metrics.get("recovery.daemon_restarts_total") is not None
        assert ice.metrics.get("recovery.resumes_total") is not None

        # merged provenance marks the restored round
        fleet = FleetCampaign({"cell": campaign2})
        fleet.results["cell"] = FleetCellResult(cell="cell", rounds=rounds2)
        doc = fleet.merged_provenance()
        flags = [r["resumed"] for r in doc["cells"]["cell"]["rounds"]]
        assert flags == [True, False, False]

        chaos.stop()

    def test_stale_lease_epoch_fenced_across_restart(self, ice):
        lease = ice.lease_client()
        try:
            old_epoch = lease.Lease_Acquire("acl-workstation", "ghost")
            new_epoch = lease.Lease_Acquire("acl-workstation", "successor")
        finally:
            lease.close()
        assert new_epoch == old_epoch + 1

        ghost = ice.client()
        ghost.set_lease("acl-workstation", old_epoch)
        with pytest.raises(LeaseFencedError):
            ghost.call_Cell_Status()
        ghost.close()

        # epochs are persisted: the ghost stays fenced after a restart
        ice.crash_control_daemon(keep_disk=True)
        ice.restart_control_daemon()
        ghost = ice.client()
        ghost.set_lease("acl-workstation", old_epoch)
        with pytest.raises(LeaseFencedError):
            ghost.call_Cell_Status()
        ghost.close()

        successor = ice.client()
        successor.set_lease("acl-workstation", new_epoch)
        try:
            assert "volume_ml" in successor.call_Cell_Status()
        finally:
            successor.close()
        assert ice.control_daemon.fenced_count >= 1

    def test_torn_journal_tail_reruns_only_torn_round(self, ice, tmp_path):
        journal_dir = tmp_path / "campaign"
        campaign = Campaign(
            ice,
            scan_rate_strategy(RATES, base=BASE),
            journal_dir=journal_dir,
            max_rounds=5,
        )
        rounds = campaign.run()
        assert len(rounds) == len(RATES)

        # forge the crash signature: drop the final round's completion
        # record and leave a half-written line at the tail
        path = journal_dir / "campaign.jsonl"
        kept = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            if record["kind"] == "campaign-finished":
                continue
            if (
                record["kind"] == "round-completed"
                and record["data"]["index"] == 2
            ):
                continue
            kept.append(line)
        path.write_text(
            "\n".join(kept) + "\n" + '{"schema": "repro-journal-1", "seq'
        )

        status = campaign_journal_status(journal_dir)
        assert status["torn_tail"]
        assert status["resumable"]
        assert status["completed_rounds"] == [0, 1]
        assert status["in_flight_rounds"] == [2]

        campaign2 = Campaign(
            ice,
            scan_rate_strategy(RATES, base=BASE),
            journal_dir=journal_dir,
            max_rounds=5,
        )
        rounds2 = campaign2.resume()
        report = campaign2.resume_report
        assert report["torn_tail"]
        assert report["skipped_rounds"] == [0, 1]
        assert report["rerun_rounds"] == [2]
        assert len(rounds2) == len(RATES)
        assert all(r.result.succeeded for r in rounds2)

        # the journal healed: finished, no torn tail left behind
        status = campaign_journal_status(journal_dir)
        assert status["finished"]
        assert not status["torn_tail"]
