"""The diagnosis loop end to end: job→trace linkage through the
gateway journal, ``repro-ice explain`` / ``top --json``, and the SLO
alert → exemplar trace → blame-table round trip."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import main
from repro.clock import VirtualClock
from repro.core.config import SessionConfig
from repro.gateway import Cell, Gateway, SUCCEEDED, TenantSpec
from repro.obs import JsonlSpanExporter, Tracer
from repro.obs.stream import KIND_SLO
from repro.obs.trace import current_span
from repro.rpc.context import reset_current_tenant, set_current_tenant

SPEC = {
    "strategy": {"kind": "scan-rate", "scan_rates_v_s": [0.1], "base": {}},
    "max_rounds": 1,
}
A = TenantSpec("lab-a", "key-a")


def _ok_runner(job, cell, ctx):
    return {"state": SUCCEEDED, "rounds": 1}


class TestJobTraceLinkage:
    def test_trace_id_null_until_first_run(self, tmp_path):
        with Gateway([Cell("c1")], tmp_path / "gw", tenants=[A]) as gw:
            view = gw.submit("lab-a", "key-a", SPEC)
            assert view["trace_id"] is None

    def test_execution_stamps_trace_id_in_status_view(self, tmp_path):
        with Gateway(
            [Cell("c1")], tmp_path / "gw", tenants=[A], runner=_ok_runner
        ) as gw:
            job_id = gw.submit("lab-a", "key-a", SPEC)["job_id"]
            gw.run_until_idle()
            view = gw.status("lab-a", "key-a", job_id)
        assert view["state"] == SUCCEEDED
        assert isinstance(view["trace_id"], str) and len(view["trace_id"]) == 32

    def test_trace_id_survives_gateway_restart(self, tmp_path):
        with Gateway(
            [Cell("c1")], tmp_path / "gw", tenants=[A], runner=_ok_runner
        ) as gw:
            job_id = gw.submit("lab-a", "key-a", SPEC)["job_id"]
            gw.run_until_idle()
            before = gw.status("lab-a", "key-a", job_id)["trace_id"]
        with Gateway(
            [Cell("c1")], tmp_path / "gw", tenants=[A], runner=_ok_runner
        ) as gw2:
            after = gw2.status("lab-a", "key-a", job_id)["trace_id"]
        assert after == before

    def test_trace_journalled_before_runner_starts(self, tmp_path):
        """Journal-first: the job-trace record must be durable before
        the runner touches anything — the linkage has to survive a
        crash *during* the run."""
        seen = {}

        def checking_runner(job, cell, ctx):
            from repro.durability.journal import Journal

            replay = Journal.replay_file(tmp_path / "gw" / "gateway.jsonl")
            seen["records"] = [
                r.data
                for r in replay.records
                if r.kind == "job-trace" and r.data.get("job_id") == job.job_id
            ]
            return {"state": SUCCEEDED, "rounds": 1}

        with Gateway(
            [Cell("c1")], tmp_path / "gw", tenants=[A], runner=checking_runner
        ) as gw:
            job_id = gw.submit("lab-a", "key-a", SPEC)["job_id"]
            gw.run_until_idle()
            view = gw.status("lab-a", "key-a", job_id)
        assert seen["records"], "no job-trace record on disk during the run"
        assert seen["records"][-1]["trace_id"] == view["trace_id"]

    def test_gateway_tracer_parents_runner_spans(self, tmp_path):
        """With a tracer the job runs under a ``gateway.job`` root span
        installed current, so everything the runner does joins one
        trace."""
        clock = VirtualClock()
        tracer = Tracer("gateway", clock=clock)
        observed = {}

        def observing_runner(job, cell, ctx):
            observed["current"] = current_span()
            return {"state": SUCCEEDED, "rounds": 1}

        with Gateway(
            [Cell("c1")],
            tmp_path / "gw",
            tenants=[A],
            runner=observing_runner,
            tracer=tracer,
        ) as gw:
            job_id = gw.submit("lab-a", "key-a", SPEC)["job_id"]
            gw.run_until_idle()
            view = gw.status("lab-a", "key-a", job_id)
        span = observed["current"]
        assert span is not None and span.name == "gateway.job"
        assert span.trace_id == view["trace_id"]
        (root,) = [
            s for s in tracer.finished_spans() if s.name == "gateway.job"
        ]
        assert root.parent_id is None
        assert root.attributes["tenant"] == "lab-a"

    def test_without_tracer_a_bare_trace_id_is_minted(self, tmp_path):
        with Gateway(
            [Cell("c1")], tmp_path / "gw", tenants=[A], runner=_ok_runner
        ) as gw:
            job_id = gw.submit("lab-a", "key-a", SPEC)["job_id"]
            gw.run_until_idle()
            assert gw.status("lab-a", "key-a", job_id)["trace_id"]

    def test_jobs_status_line_prints_trace(self):
        from repro.cli import _format_job_line

        line = _format_job_line(
            {
                "job_id": "j-1",
                "state": "SUCCEEDED",
                "tenant": "lab-a",
                "trace_id": "abc123",
            }
        )
        assert "trace=abc123" in line

    def test_jobs_status_line_omits_missing_trace(self):
        from repro.cli import _format_job_line

        line = _format_job_line(
            {"job_id": "j-1", "state": "QUEUED", "tenant": "lab-a",
             "trace_id": None}
        )
        assert "trace=" not in line


class TestCliTopJson:
    def test_top_json_is_machine_readable(self, capsys):
        code = main(["top", "--json", "--calls", "5", "--rounds", "1"])
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert code == 0
        assert set(doc) == {"view", "slo"}
        assert doc["view"]["schema"] == "repro-obsview-1"
        assert isinstance(doc["slo"], list)
        tenants = set(doc["view"]["tenants"])
        assert {"lab-a", "lab-b"} <= tenants

    def test_top_json_burst_exits_nonzero(self, capsys):
        code = main(
            [
                "top",
                "--json",
                "--calls",
                "5",
                "--rounds",
                "1",
                "--burst-tenant",
                "lab-a",
            ]
        )
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert code == 1
        assert any(s["alerts"] for s in doc["slo"])


def _write_trace_jsonl(path, tracer):
    with JsonlSpanExporter(path) as export:
        for span in tracer.finished_spans():
            export(span)


@pytest.fixture()
def trace_file(tmp_path):
    """A two-trace JSONL export: a slow instrument-bound trace and a
    second trace whose id shares no prefix with the first."""
    clock = VirtualClock()
    tracer = Tracer("dgx-session", clock=clock)
    root = tracer.start_span("workflow.run", parent=None)
    clock.advance(0.2)
    call = tracer.start_span("rpc.call.Start", parent=root)
    clock.advance(0.1)
    instrument = tracer.start_span("instrument.Start", parent=call)
    clock.advance(2.0)
    instrument.end()
    call.end()
    clock.advance(0.1)
    root.end()
    other = tracer.start_span("other.op", parent=None)
    clock.advance(0.5)
    other.end()
    path = tmp_path / "trace.jsonl"
    _write_trace_jsonl(path, tracer)
    return path, root.trace_id, other.trace_id


class TestCliExplain:
    def test_explain_renders_blame_table(self, trace_file, capsys):
        path, trace_id, _ = trace_file
        code = main(["explain", trace_id, "--trace-jsonl", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "instrument.Start" in captured.out
        assert "coverage=100.0%" in captured.out
        # the instrument wait dominates: it is the top blame row
        first_row = captured.out.splitlines()[2]
        assert "instrument.Start" in first_row

    def test_explain_accepts_unique_prefix(self, trace_file, capsys):
        path, trace_id, _ = trace_file
        code = main(["explain", trace_id[:12], "--trace-jsonl", str(path)])
        assert code == 0

    def test_explain_json_document(self, trace_file, capsys):
        path, trace_id, _ = trace_file
        code = main(
            ["explain", trace_id, "--trace-jsonl", str(path), "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["schema"] == "repro-traceidx-1"
        assert doc["trace_id"] == trace_id

    def test_explain_unknown_trace_fails(self, trace_file, capsys):
        path, _, _ = trace_file
        code = main(["explain", "f" * 32, "--trace-jsonl", str(path)])
        assert code == 1
        assert "no spans" in capsys.readouterr().err

    def test_explain_ambiguous_prefix_fails(self, trace_file, capsys):
        path, _, _ = trace_file
        code = main(["explain", "", "--trace-jsonl", str(path)])
        assert code == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_explain_resolves_job_id_via_state_dir(self, tmp_path, capsys):
        clock = VirtualClock()
        tracer = Tracer("gateway", clock=clock)

        def slow_runner(job, cell, ctx):
            span = current_span()
            child = tracer.start_span("campaign.round", parent=span)
            clock.advance(3.0)
            child.end()
            return {"state": SUCCEEDED, "rounds": 1}

        state_dir = tmp_path / "gw"
        with Gateway(
            [Cell("c1")],
            state_dir,
            tenants=[A],
            runner=slow_runner,
            tracer=tracer,
        ) as gw:
            job_id = gw.submit("lab-a", "key-a", SPEC)["job_id"]
            gw.run_until_idle()
        path = tmp_path / "trace.jsonl"
        _write_trace_jsonl(path, tracer)
        code = main(
            [
                "explain",
                job_id,
                "--trace-jsonl",
                str(path),
                "--state-dir",
                str(state_dir),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "gateway.job" in captured.out
        assert "campaign.round" in captured.out


class TestExemplarRoundTrip:
    def test_alert_exemplar_explains_to_the_blamed_op(self):
        """The full loop: an induced SLO breach produces an alert event
        carrying a kept exemplar trace id, and explaining that id blames
        an RPC op — aggregate alarm to per-request diagnosis without
        leaving the session."""
        with repro.connect(
            session=SessionConfig(trace_sample_budget=1.0)
        ) as session:
            with session.bus.subscribe(capacity=2048) as sub:
                token = set_current_tenant("lab-a")
                try:
                    for _ in range(10):
                        session.client.call_Status_JKem()
                    for _ in range(15):
                        try:
                            session.client.call_No_Such_Verb()
                        except Exception:  # noqa: BLE001 - burst is the point
                            pass
                finally:
                    reset_current_tenant(token)
                statuses = session.slo()
                assert any(s["alerts"] for s in statuses)
                alerts = [
                    e
                    for e in sub.poll()
                    if e.kind == KIND_SLO and e.name == "slo.alert"
                ]
            assert alerts, "no slo.alert event on the bus"
            exemplar_ids = [
                tid
                for e in alerts
                for tid in e.data["exemplar_trace_ids"]
            ]
            assert exemplar_ids, "alert carried no exemplar trace ids"
            trace_id = exemplar_ids[0]
            assert session.sampler.is_kept(trace_id)
            result = session.explain(trace_id)
            assert result is not None
            assert result["blame"], "exemplar trace produced no blame rows"
            ops = {row["op"] for row in result["blame"]}
            assert any(op.startswith("rpc.") for op in ops)

    def test_sampling_off_keeps_exemplar_field_empty(self):
        with repro.connect() as session:  # no trace_sample_budget
            assert session.sampler is None
            with session.bus.subscribe(capacity=2048) as sub:
                token = set_current_tenant("lab-a")
                try:
                    for _ in range(15):
                        try:
                            session.client.call_No_Such_Verb()
                        except Exception:  # noqa: BLE001
                            pass
                finally:
                    reset_current_tenant(token)
                session.slo()
                alerts = [e for e in sub.poll() if e.kind == KIND_SLO]
            assert alerts
            assert all(e.data["exemplar_trace_ids"] == [] for e in alerts)
