"""Remaining server-surface behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.errors import InstrumentStateError, TechniqueError


class TestInlineMeasurements:
    """Get_Measurements_Inline: the control-channel data path that the
    LiveMonitor's compliance guard and quick-look reads use."""

    def test_inline_matches_file(self, ice):
        client = ice.client()
        client.call_Set_Rate_SyringePump(1, 10.0)
        client.call_Set_Vial_FractionCollector(1, "BOTTOM")
        client.call_Set_Port_SyringePump(1, 1)
        client.call_Withdraw_SyringePump(1, 5.0)
        client.call_Set_Port_SyringePump(1, 8)
        client.call_Dispense_SyringePump(1, 5.0)
        client.call_Initialize_SP200_API({"channel": 1})
        client.call_Connect_SP200()
        client.call_Load_Firmware_SP200()
        client.call_Initialize_CV_Tech_SP200({"e_step_v": 0.002})
        client.call_Load_Technique_SP200()
        client.call_Start_Channel_SP200()
        inline = client.call_Get_Measurements_Inline(wait=True)
        assert len(inline["current_a"]) == 600
        # note: Get_Measurements_Inline consumed one acquisition; re-read
        # via the file path written by the same call
        mount = ice.mount()
        files = [s.path for s in mount.listdir() if s.path.endswith(".mpt")]
        assert files
        trace = mount.read_voltammogram(files[-1])
        np.testing.assert_allclose(
            np.asarray(inline["current_a"]), trace.current_a, rtol=1e-5
        )
        mount.unmount()
        client.call_Disconnect_SP200()
        client.close()

    def test_inline_before_start_errors(self, ice):
        client = ice.client()
        client.call_Initialize_SP200_API({"channel": 1})
        with pytest.raises(InstrumentStateError):
            client.call_Get_Measurements_Inline(wait=False)
        client.close()


class TestCharacterizationServerEdges:
    def test_inject_without_vial(self, ice):
        station = ice.characterization_client()
        with pytest.raises(InstrumentStateError, match="no vial"):
            station.call_Inject_HPLC(0.5)
        station.close()

    def test_handoff_without_vial(self, ice):
        station = ice.characterization_client()
        with pytest.raises(InstrumentStateError):
            station.call_Handoff_Fraction_To_Robot("TOP")
        station.close()

    def test_hplc_status(self, ice):
        station = ice.characterization_client()
        status = station.call_HPLC_Status()
        assert status["injections_run"] == 0
        assert status["method_minutes"] == pytest.approx(12.0)
        station.close()

    def test_fresh_fraction_vials_get_unique_names(self, ice):
        station = ice.characterization_client()
        first = station.call_Load_Fraction_Vial("TOP")
        second = station.call_Load_Fraction_Vial("MIDDLE")
        assert first != second
        station.close()

    def test_double_load_same_position_replaces(self, ice):
        # the collector rack allows swapping a vial in place
        station = ice.characterization_client()
        station.call_Load_Fraction_Vial("TOP")
        reply = station.call_Load_Fraction_Vial("TOP")
        assert reply.startswith("OK fraction-")
        station.close()


class TestTechniqueSwitching:
    def test_wrong_params_for_technique_rejected(self, ice):
        client = ice.client()
        client.call_Initialize_SP200_API({"channel": 1})
        with pytest.raises((TechniqueError, Exception)):
            client.call_Initialize_DPV_Tech_SP200({"nonsense": 1})
        client.close()

    def test_reinitialize_technique_requires_reload(self, ice):
        client = ice.client()
        client.call_Set_Rate_SyringePump(1, 10.0)
        client.call_Set_Vial_FractionCollector(1, "BOTTOM")
        client.call_Set_Port_SyringePump(1, 1)
        client.call_Withdraw_SyringePump(1, 5.0)
        client.call_Set_Port_SyringePump(1, 8)
        client.call_Dispense_SyringePump(1, 5.0)
        client.call_Initialize_SP200_API({"channel": 1})
        client.call_Connect_SP200()
        client.call_Load_Firmware_SP200()
        client.call_Initialize_CV_Tech_SP200({"e_step_v": 0.002})
        client.call_Load_Technique_SP200()
        # re-init swaps the technique: starting without reloading fails
        client.call_Initialize_LSV_Tech_SP200({"e_step_v": 0.002})
        with pytest.raises(TechniqueError):
            client.call_Start_Channel_SP200()
        client.call_Load_Technique_SP200()
        client.call_Start_Channel_SP200()
        result = client.call_Get_Tech_Path_Rslt()
        assert result["technique"] == "LSV"
        client.call_Disconnect_SP200()
        client.close()
