"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scan_rate == 0.1
        assert args.volume == 5.0

    def test_scan_rate_positional(self):
        args = build_parser().parse_args(["scan-rate", "0.1", "0.2"])
        assert args.rates == [0.1, 0.2]

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "x.mpt", "--diffusion", "2.4e-5"]
        )
        assert args.file == "x.mpt"
        assert args.diffusion == pytest.approx(2.4e-5)


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--e-step", "0.002"])
        captured = capsys.readouterr()
        assert code == 0
        assert "D_run_cv" in captured.out
        assert "anodic peak" in captured.out

    def test_scan_rate_runs(self, capsys):
        code = main(["scan-rate", "0.1", "0.2", "--e-step", "0.002"])
        captured = capsys.readouterr()
        assert code == 0
        assert "D = " in captured.out

    def test_analyze_round_trip(self, tmp_path, capsys, reference_voltammogram):
        from repro.datachannel.formats import write_mpt

        path = write_mpt(tmp_path / "run.mpt", reference_voltammogram)
        code = main(["analyze", str(path), "--diffusion", "2.4e-5"])
        captured = capsys.readouterr()
        assert code == 0
        assert "E1/2" in captured.out
        assert "Nicholson" in captured.out

    def test_analyze_blank_reports_no_wave(self, tmp_path, capsys):
        from repro.chemistry.cv_engine import CVEngine, CVParameters
        from repro.chemistry.species import FERROCENE
        from repro.datachannel.formats import write_mpt

        blank = CVEngine(FERROCENE, 0.0, 0.0707).run(CVParameters())
        path = write_mpt(tmp_path / "blank.mpt", blank)
        code = main(["analyze", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no complete" in captured.out

    def test_watch_tails_the_live_feed(self, capsys):
        code = main(["watch", "--e-step", "0.005", "--interval", "0.05"])
        captured = capsys.readouterr()
        assert code == 0
        # the feed rendered span completions from both halves
        assert "span" in captured.out
        assert "task." in captured.out
        assert "stream:" in captured.out
        assert "metric updates" in captured.out

    def test_watch_profile_prints_hot_operations(self, capsys):
        code = main(
            ["watch", "--e-step", "0.005", "--interval", "0.05", "--profile"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "profile:" in captured.out
        assert "task." in captured.out


class TestWatchParser:
    def test_watch_defaults(self):
        args = build_parser().parse_args(["watch"])
        assert args.interval == pytest.approx(0.2)
        assert args.profile is False
        assert args.fn.__name__ == "_cmd_watch"


class TestTop:
    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.tenants == ["lab-a", "lab-b"]
        assert args.burst_tenant is None
        assert args.fn.__name__ == "_cmd_top"

    def test_top_renders_tenant_table(self, capsys):
        code = main(["top", "--calls", "5", "--rounds", "1"])
        captured = capsys.readouterr()
        assert code == 0  # no burst: nothing is alerting
        assert "TENANT" in captured.out
        assert "lab-a" in captured.out and "lab-b" in captured.out
        assert "dgx-session" in captured.out and "acl-daemon" in captured.out

    def test_top_burst_pages_and_exits_nonzero(self, capsys):
        code = main(
            [
                "top",
                "--calls",
                "5",
                "--rounds",
                "1",
                "--burst-tenant",
                "lab-a",
                "--burst-calls",
                "10",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1  # the burst tenant's burn-rate alert is firing
        burst_row = next(
            line
            for line in captured.out.splitlines()
            if line.startswith("lab-a")
        )
        idle_row = next(
            line
            for line in captured.out.splitlines()
            if line.startswith("lab-b")
        )
        assert "ALERT" in burst_row
        assert "ALERT" not in idle_row
