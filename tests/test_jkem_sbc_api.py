"""SBC dispatch + front-end API over the serial link."""

import pytest

from repro.errors import InstrumentCommandError
from repro.instruments.jkem.protocol import Command
from repro.instruments.jkem.sbc import JKemSBC


@pytest.fixture
def stack(workstation):
    """(api, sbc, workstation) wired through the virtual serial cable."""
    return workstation.jkem_api, workstation.sbc, workstation


class TestDispatch:
    def test_unknown_verb_404(self):
        sbc = JKemSBC()
        response = sbc.execute(Command("NO_SUCH_VERB"))
        assert not response.ok
        assert response.error_code == 404

    def test_missing_device_400(self):
        sbc = JKemSBC()
        response = sbc.execute(Command("SYRINGEPUMP_RATE", (1, 5.0)))
        assert not response.ok
        assert response.error_code == 400

    def test_wrong_arity(self, stack):
        _, sbc, _ = stack
        response = sbc.execute(Command("SYRINGEPUMP_RATE", (1,)))
        assert not response.ok
        assert "expects 2" in response.error_message

    def test_wrong_arg_type(self, stack):
        _, sbc, _ = stack
        response = sbc.execute(Command("SYRINGEPUMP_PORT", (1, "BOTTOM")))
        assert not response.ok

    def test_non_integer_unit(self, stack):
        _, sbc, _ = stack
        response = sbc.execute(Command("SYRINGEPUMP_RATE", ("one", 5.0)))
        assert not response.ok

    def test_status_inventory(self, stack):
        _, sbc, _ = stack
        response = sbc.execute(Command("STATUS"))
        assert response.ok
        assert "syringe=1" in (response.value or "")


class TestAPIOverSerial:
    def test_fig5a_sequence(self, stack):
        """The exact command sequence of paper Fig 5a, all returning OK."""
        api, sbc, ws = stack
        assert api.set_rate_syringe_pump(1, 5.0) == "OK"
        assert api.set_port_syringe_pump(1, 1) == "OK"
        assert api.set_vial_fraction_collector(1, "BOTTOM") == "OK"
        assert api.withdraw_syringe_pump(1, 5.0) == "OK"
        assert api.set_port_syringe_pump(1, 8) == "OK"
        assert api.dispense_syringe_pump(1, 5.0) == "OK"
        assert ws.cell.volume_ml == pytest.approx(5.0)
        # the SBC console echoes each line with OK (Fig 5b)
        echoes = sbc.log.messages(source="jkem.sbc", kind="command")
        assert "SYRINGEPUMP_RATE(1,5.000000) OK" in echoes
        assert "FRACTIONCOLLECTOR_VIAL(1,BOTTOM) OK" in echoes

    def test_error_propagates_as_exception(self, stack):
        api, _, _ = stack
        with pytest.raises(InstrumentCommandError, match="overfill"):
            api.withdraw_syringe_pump(1, 50.0)

    def test_reads_return_floats(self, stack):
        api, _, _ = stack
        api.set_flow_mfc(1, 25.0)
        assert api.read_flow_mfc(1) == pytest.approx(25.0)
        assert isinstance(api.read_temperature(1), float)
        assert 0.0 <= api.read_ph(1) <= 14.0

    def test_thermal_and_chiller_commands(self, stack):
        api, _, _ = stack
        assert api.set_temperature(1, 30.0) == "OK"
        assert api.start_chiller(1) == "OK"
        assert api.set_coolant_chiller(1, 10.0) == "OK"
        assert api.stop_chiller(1) == "OK"

    def test_peristaltic_transfer(self, stack):
        api, _, ws = stack
        # cell -> waste line
        api.set_rate_syringe_pump(1, 10.0)
        api.set_vial_fraction_collector(1, "BOTTOM")
        api.set_port_syringe_pump(1, 1)
        api.withdraw_syringe_pump(1, 6.0)
        api.set_port_syringe_pump(1, 8)
        api.dispense_syringe_pump(1, 6.0)
        api.set_rate_peristaltic_pump(1, 10.0)
        assert api.transfer_peristaltic_pump(1, 2.0) == "OK"
        assert ws.cell.volume_ml == pytest.approx(4.0)

    def test_status_syringe_pump_summary(self, stack):
        api, _, _ = stack
        api.set_rate_syringe_pump(1, 7.0)
        summary = api.status_syringe_pump(1)
        assert "rate=7.000" in summary

    def test_exit_blocks_further_commands(self, stack):
        api, _, _ = stack
        assert api.exit() == "J-Kem API exit OK"
        with pytest.raises(InstrumentCommandError, match="closed"):
            api.status()

    def test_reopen_restores_session(self, stack):
        api, _, _ = stack
        api.exit()
        api.reopen()
        assert api.status()

    def test_status_command(self, stack):
        api, _, _ = stack
        assert "syringe=1" in api.status()
