"""J-Kem device models: pumps, MFC, collector, thermal, pH."""

import pytest

from repro.clock import VirtualClock
from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.species import ferrocene_solution
from repro.errors import (
    InstrumentCommandError,
    InstrumentFaultError,
    InstrumentStateError,
)
from repro.instruments.jkem.devices import (
    Chiller,
    FractionCollector,
    MassFlowController,
    PeristalticPump,
    PHProbe,
    SyringePump,
    TemperatureController,
)
from repro.instruments.jkem.plumbing import PortMap, Reservoir, WASTE


@pytest.fixture
def bench():
    cell = ElectrochemicalCell()
    stock = Reservoir("stock", ferrocene_solution(2.0), 50.0)
    ports = PortMap()
    ports.connect(1, stock)
    ports.connect(8, cell)
    ports.connect(9, WASTE)
    pump = SyringePump(ports=ports)
    return cell, stock, pump


class TestSyringePump:
    def test_withdraw_dispense_moves_liquid(self, bench):
        cell, stock, pump = bench
        pump.set_port(1)
        pump.withdraw(5.0)
        assert stock.volume_ml == pytest.approx(45.0)
        assert pump.held_volume_ml == pytest.approx(5.0)
        pump.set_port(8)
        pump.dispense(5.0)
        assert cell.volume_ml == pytest.approx(5.0)
        assert pump.held_volume_ml == 0.0

    def test_rate_limits(self, bench):
        _, _, pump = bench
        pump.set_rate(5.0)
        assert pump.rate_ml_min == 5.0
        with pytest.raises(InstrumentCommandError):
            pump.set_rate(1000.0)
        with pytest.raises(InstrumentCommandError):
            pump.set_rate(0.0)

    def test_unplumbed_port(self, bench):
        _, _, pump = bench
        with pytest.raises(InstrumentCommandError):
            pump.set_port(3)

    def test_syringe_overfill(self, bench):
        _, _, pump = bench
        pump.set_port(1)
        with pytest.raises(InstrumentStateError):
            pump.withdraw(11.0)

    def test_dispense_more_than_held(self, bench):
        _, _, pump = bench
        pump.set_port(1)
        pump.withdraw(2.0)
        pump.set_port(8)
        with pytest.raises(InstrumentStateError):
            pump.dispense(3.0)

    def test_reservoir_exhaustion(self, bench):
        _, stock, pump = bench
        pump.set_port(1)
        from repro.errors import ChemistryError

        pump2 = SyringePump(name="big", syringe_volume_ml=100.0, ports=pump.ports)
        with pytest.raises(ChemistryError):
            pump2.withdraw(60.0)

    def test_empty_to_waste(self, bench):
        _, _, pump = bench
        pump.set_port(1)
        pump.withdraw(3.0)
        assert pump.empty_to_waste() == pytest.approx(3.0)
        assert pump.held_volume_ml == 0.0

    def test_time_charged_when_scaled(self):
        clock = VirtualClock()
        ports = PortMap()
        ports.connect(1, Reservoir("r", ferrocene_solution(), 100.0))
        pump = SyringePump(ports=ports, clock=clock, time_scale=1.0)
        pump.set_rate(60.0)  # 1 mL/s
        pump.withdraw(5.0)
        assert clock.now() == pytest.approx(5.0)

    def test_fault_blocks_operations(self, bench):
        _, _, pump = bench
        pump.inject_fault("plunger stuck")
        with pytest.raises(InstrumentFaultError):
            pump.withdraw(1.0)
        pump.clear_fault()
        pump.set_port(1)
        pump.withdraw(1.0)

    def test_negative_volumes(self, bench):
        _, _, pump = bench
        with pytest.raises(InstrumentCommandError):
            pump.withdraw(-1.0)
        with pytest.raises(InstrumentCommandError):
            pump.dispense(0.0)


class TestPeristalticPump:
    def test_transfer(self):
        cell = ElectrochemicalCell()
        cell.add_liquid(10.0, ferrocene_solution())
        pump = PeristalticPump(source=cell, destination=WASTE)
        pump.set_rate(10.0)
        pump.transfer(4.0)
        assert cell.volume_ml == pytest.approx(6.0)

    def test_tubing_ranges(self):
        pump = PeristalticPump(tubing="LS14")
        with pytest.raises(InstrumentCommandError):
            pump.set_rate(0.1)
        pump.set_rate(100.0)

    def test_unknown_tubing(self):
        with pytest.raises(InstrumentCommandError):
            PeristalticPump(tubing="LS99")

    def test_unconnected_transfer(self):
        pump = PeristalticPump()
        with pytest.raises(InstrumentStateError):
            pump.transfer(1.0)


class TestMFC:
    def test_flow_reaches_cell(self):
        cell = ElectrochemicalCell()
        mfc = MassFlowController(cell=cell)
        mfc.set_flow(50.0)
        assert cell.purge == ("argon", 50.0)
        assert mfc.actual_sccm == 50.0

    def test_zero_flow_stops_purge(self):
        cell = ElectrochemicalCell()
        mfc = MassFlowController(cell=cell)
        mfc.set_flow(50.0)
        mfc.set_flow(0.0)
        assert cell.purge == (None, 0.0)

    def test_range(self):
        mfc = MassFlowController(max_sccm=100.0)
        with pytest.raises(InstrumentCommandError):
            mfc.set_flow(150.0)
        with pytest.raises(InstrumentCommandError):
            mfc.set_flow(-1.0)

    def test_faulted_reads_zero(self):
        mfc = MassFlowController()
        mfc.set_flow(10.0)
        mfc.inject_fault("valve stuck")
        assert mfc.actual_sccm == 0.0


class TestFractionCollector:
    def test_vial_selection_and_withdraw(self):
        collector = FractionCollector()
        stock = Reservoir("stock", ferrocene_solution(2.0), 10.0)
        collector.load_vial("BOTTOM", stock)
        collector.move_to("BOTTOM")
        solution = collector.withdraw(2.0)
        assert solution is stock.solution
        assert stock.volume_ml == pytest.approx(8.0)

    def test_unknown_position(self):
        collector = FractionCollector()
        with pytest.raises(InstrumentCommandError):
            collector.move_to("SIDEWAYS")

    def test_no_vial_loaded(self):
        collector = FractionCollector()
        collector.move_to("TOP")
        with pytest.raises(InstrumentStateError):
            collector.withdraw(1.0)

    def test_fill_collects_fractions(self):
        collector = FractionCollector()
        vial = Reservoir("collect", ferrocene_solution(), 0.0)
        collector.load_vial("TOP", vial)
        collector.move_to("TOP")
        collector.fill(1.5)
        assert vial.volume_ml == pytest.approx(1.5)


class TestThermal:
    def test_first_order_approach(self):
        clock = VirtualClock()
        cell = ElectrochemicalCell(temperature_c=25.0)
        controller = TemperatureController(cell=cell, tau_s=100.0, clock=clock)
        controller.set_setpoint(50.0)
        clock.advance(100.0)  # one time constant: ~63% of the way
        temp = controller.read_temperature()
        assert temp == pytest.approx(25.0 + 25.0 * 0.632, abs=0.5)
        assert cell.temperature_c == pytest.approx(temp)

    def test_setpoint_limits(self):
        controller = TemperatureController()
        with pytest.raises(InstrumentCommandError):
            controller.set_setpoint(500.0)

    def test_chiller_lifecycle(self):
        chiller = Chiller()
        chiller.start()
        assert chiller.running
        chiller.set_coolant(5.0)
        assert chiller.coolant_setpoint_c == 5.0
        chiller.stop()
        assert not chiller.running

    def test_chiller_coolant_range(self):
        with pytest.raises(InstrumentCommandError):
            Chiller().set_coolant(99.0)


class TestPHProbe:
    def test_reading_near_baseline(self):
        probe = PHProbe(baseline_ph=7.0, noise_sigma=0.01, seed=1)
        readings = [probe.read_ph() for _ in range(20)]
        assert all(6.9 <= r <= 7.1 for r in readings)

    def test_reading_clamped(self):
        probe = PHProbe(baseline_ph=0.0, noise_sigma=1.0, seed=1)
        assert all(0.0 <= probe.read_ph() <= 14.0 for _ in range(50))
