"""Peak finding, CV metrics, Randles-Sevcik."""

import numpy as np
import pytest

from repro.analysis import (
    CVMetrics,
    ScanRateStudy,
    characterize,
    estimate_diffusion_coefficient,
    find_peaks,
    randles_sevcik_current,
    reversibility_checks,
)
from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.faults import FaultKind, apply_fault
from repro.chemistry.noise import NoiseModel
from repro.chemistry.species import FERROCENE, ferrocene_solution

CONC = ferrocene_solution(2.0).concentration(FERROCENE)
AREA = 0.0707


class TestFindPeaks:
    def test_clean_trace(self, reference_voltammogram):
        pair = find_peaks(reference_voltammogram)
        assert pair.complete
        assert pair.anodic.current_a > 0 > pair.cathodic.current_a
        assert pair.separation_v == pytest.approx(0.058, abs=0.006)
        assert pair.e_half_v == pytest.approx(0.40, abs=0.005)

    def test_noisy_trace_still_found(self, reference_voltammogram):
        noisy = NoiseModel(white_sigma_a=2e-7, seed=1).apply(
            reference_voltammogram
        )
        pair = find_peaks(noisy)
        assert pair.complete
        assert pair.e_half_v == pytest.approx(0.40, abs=0.01)

    def test_disconnected_reports_no_peaks(self, reference_voltammogram):
        broken = apply_fault(
            reference_voltammogram, FaultKind.DISCONNECTED_ELECTRODE, 0.8
        )
        pair = find_peaks(broken)
        assert not pair.complete

    def test_blank_reports_no_peaks(self):
        engine = CVEngine(FERROCENE, 0.0, AREA)
        pair = find_peaks(engine.run(CVParameters()))
        assert pair.anodic is None and pair.cathodic is None

    def test_incomplete_pair_nan_metrics(self, reference_voltammogram):
        broken = apply_fault(
            reference_voltammogram, FaultKind.DISCONNECTED_ELECTRODE, 0.8
        )
        pair = find_peaks(broken)
        assert np.isnan(pair.separation_v)
        assert np.isnan(pair.e_half_v)

    def test_multi_cycle_selects_cycle(self):
        engine = CVEngine(FERROCENE, CONC, AREA, double_layer_f_cm2=0.0)
        trace = engine.run(CVParameters(n_cycles=2))
        pair0 = find_peaks(trace, cycle=0)
        pair1 = find_peaks(trace, cycle=1)
        assert pair0.complete and pair1.complete

    def test_short_trace(self):
        from repro.chemistry.voltammogram import Voltammogram

        tiny = Voltammogram(
            time_s=np.arange(4.0),
            potential_v=np.array([0.0, 0.1, 0.2, 0.1]),
            current_a=np.zeros(4),
            cycle_index=np.zeros(4, dtype=int),
        )
        assert not find_peaks(tiny).complete


class TestCharacterize:
    def test_metrics_fields(self, reference_voltammogram):
        metrics = characterize(reference_voltammogram)
        assert isinstance(metrics, CVMetrics)
        assert metrics.peak_ratio == pytest.approx(1.0, abs=0.35)
        assert metrics.scan_rate_v_s == pytest.approx(0.1)
        assert "dEp" in metrics.format_summary()

    def test_raises_without_wave(self, reference_voltammogram):
        broken = apply_fault(
            reference_voltammogram, FaultKind.DISCONNECTED_ELECTRODE, 0.8
        )
        with pytest.raises(ValueError, match="no complete"):
            characterize(broken)

    def test_reversibility_checks_pass_for_ferrocene(self, reference_voltammogram):
        checks = reversibility_checks(characterize(reference_voltammogram))
        assert checks["peak_separation_nernstian"]
        assert checks["peak_ratio_unity"]
        assert checks["peaks_ordered"]

    def test_reversibility_fails_for_slow_kinetics(self):
        from repro.chemistry.species import RedoxSpecies

        sluggish = RedoxSpecies(
            name="slow", formal_potential_v=0.4, k0_cm_s=1e-4,
            diffusion_cm2_s=2.4e-5,
        )
        engine = CVEngine(sluggish, CONC, AREA, double_layer_f_cm2=0.0)
        metrics = characterize(engine.run(CVParameters()))
        assert not reversibility_checks(metrics)["peak_separation_nernstian"]


class TestRandlesSevcik:
    def test_prediction_positive_and_scales(self):
        i1 = randles_sevcik_current(1, AREA, CONC, 2.4e-5, 0.1)
        i2 = randles_sevcik_current(1, AREA, CONC, 2.4e-5, 0.4)
        assert i2 / i1 == pytest.approx(2.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            randles_sevcik_current(1, -1.0, CONC, 2.4e-5, 0.1)

    def test_diffusion_estimate_recovers_truth(self):
        rates = np.array([0.05, 0.1, 0.2, 0.4])
        peaks = np.array(
            [randles_sevcik_current(1, AREA, CONC, 2.4e-5, v) for v in rates]
        )
        diffusion, r_squared = estimate_diffusion_coefficient(
            rates, peaks, 1, AREA, CONC
        )
        assert diffusion == pytest.approx(2.4e-5, rel=1e-6)
        assert r_squared == pytest.approx(1.0, abs=1e-9)

    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            estimate_diffusion_coefficient(
                np.array([0.1]), np.array([1e-5]), 1, AREA, CONC
            )
        with pytest.raises(ValueError):
            estimate_diffusion_coefficient(
                np.array([0.1, -0.2]), np.array([1e-5, 2e-5]), 1, AREA, CONC
            )
        with pytest.raises(ValueError):
            estimate_diffusion_coefficient(
                np.array([0.1, 0.2]), np.array([1e-5]), 1, AREA, CONC
            )

    def test_study_with_simulated_runner(self):
        def runner(scan_rate: float):
            engine = CVEngine(
                FERROCENE, CONC, AREA, double_layer_f_cm2=0.0, substeps=1
            )
            return engine.run(
                CVParameters(scan_rate_v_s=scan_rate, e_step_v=0.002)
            )

        study = ScanRateStudy(runner, scan_rates_v_s=(0.05, 0.1, 0.2)).run()
        assert len(study.peak_currents_a) == 3
        diffusion, r_squared = study.estimate_diffusion(1, AREA, CONC)
        assert diffusion == pytest.approx(2.4e-5, rel=0.08)
        assert r_squared > 0.999

    def test_study_requires_run_before_estimate(self):
        study = ScanRateStudy(lambda v: None)  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="run"):
            study.estimate_diffusion(1, AREA, CONC)

    def test_study_fails_cleanly_without_wave(self):
        def blank_runner(scan_rate: float):
            return CVEngine(FERROCENE, 0.0, AREA).run(
                CVParameters(scan_rate_v_s=scan_rate)
            )

        with pytest.raises(ValueError, match="no anodic peak"):
            ScanRateStudy(blank_runner, scan_rates_v_s=(0.1,)).run()
