"""Context propagation across the control channel, end to end.

The acceptance bar for the observability layer: one CV workflow run
under ``repro.connect()`` must emit a single connected trace — workflow
task → client RPC call → daemon dispatch → instrument command — plus
the data-file arrival span, all sharing one ``trace_id`` and linked by
``parent_id`` (verified by walking the links, not by name matching).
"""

from __future__ import annotations

import pytest

import repro
from repro.core.cv_workflow import CVWorkflowSettings
from repro.obs import MetricsRegistry, Tracer
from repro.rpc import Daemon, Proxy, expose
from repro.rpc.protocol import request_body, request_trace_context

FAST = CVWorkflowSettings(e_step_v=0.002)


@expose
class Echo:
    def echo(self, value):
        return value


class TestWireField:
    def test_request_body_carries_trace_field(self):
        body = request_body(
            "obj", "m", (), {}, trace_context={"trace_id": "t" * 32, "span_id": "s" * 16}
        )
        assert body["trace"] == {"trace_id": "t" * 32, "span_id": "s" * 16}
        assert request_trace_context(body) is not None

    def test_request_body_omits_trace_field_by_default(self):
        body = request_body("obj", "m", (), {})
        assert "trace" not in body
        assert request_trace_context(body) is None

    @pytest.mark.parametrize(
        "carrier", ["junk", 42, {"trace_id": "only"}, ["a", "b"], {}]
    )
    def test_malformed_trace_field_extracts_to_none(self, carrier):
        body = request_body("obj", "m", (), {})
        body["trace"] = carrier
        assert request_trace_context(body) is None

    def test_daemon_serves_malformed_trace_field_untraced(self, monkeypatch):
        """A garbage ``trace`` field must not fail the call — the daemon
        serves it, recording the dispatch as a trace root."""
        import repro.rpc.proxy as proxy_mod

        daemon = Daemon()
        daemon.tracer = Tracer("daemon")
        uri = daemon.register(Echo(), object_id="echo")
        daemon.start_background()

        real_request_body = proxy_mod.request_body

        def poisoned(*args, **kwargs):
            body = real_request_body(*args, **kwargs)
            body["trace"] = {"trace_id": 123, "span_id": None}
            return body

        monkeypatch.setattr(proxy_mod, "request_body", poisoned)
        try:
            with Proxy(uri) as proxy:
                assert proxy.echo(7) == 7
        finally:
            daemon.shutdown()
        (dispatch,) = daemon.tracer.find("rpc.dispatch.echo")
        assert dispatch.parent_id is None  # served untraced, not failed


class TestClientDaemonPropagation:
    def test_client_span_parents_daemon_span_across_wan(self, ice):
        """Same trace on both sides of the simulated ACL<->K200 WAN."""
        tracer = Tracer("session")
        metrics = MetricsRegistry()
        ice.attach_observability(tracer, metrics)
        client = ice.client(tracer=tracer, metrics=metrics)
        client.call_Status_JKem()
        client.close()

        calls = tracer.find("rpc.call.Status_JKem")
        dispatches = tracer.find("rpc.dispatch.Status_JKem")
        assert len(calls) == 1 and len(dispatches) == 1
        assert dispatches[0].trace_id == calls[0].trace_id
        assert dispatches[0].parent_id == calls[0].span_id
        # and the metrics saw both sides
        assert metrics.counter("rpc.client.calls_total").total() == 1
        assert metrics.counter("rpc.daemon.calls_total").value(
            method="Status_JKem", status="ok"
        ) == 1

    def test_untraced_client_yields_root_dispatch_spans(self, ice):
        """Daemon tracing engages even when the client sends no context;
        those dispatch spans are roots of their own traces."""
        daemon_tracer = Tracer("daemon-only")
        ice.control_daemon.tracer = daemon_tracer
        client = ice.client()  # no client tracer: no trace on the wire
        client.call_Status_JKem()
        client.close()
        (dispatch,) = daemon_tracer.find("rpc.dispatch.Status_JKem")
        assert dispatch.parent_id is None
        assert dispatch.status == "OK"


class TestEndToEndTrace:
    def _walk_to_root(self, by_id, span):
        chain = [span]
        while chain[-1].parent_id is not None:
            parent = by_id.get(chain[-1].parent_id)
            assert parent is not None, (
                f"broken parent link at {chain[-1].name}: {chain[-1].parent_id}"
            )
            chain.append(parent)
        return chain

    def test_cv_workflow_emits_one_connected_trace(self, ice, trained_classifier):
        with repro.connect(ice, classifier=trained_classifier) as session:
            result = session.run_workflow(settings=FAST)
        assert result.succeeded

        spans = session.tracer.finished_spans()
        by_id = {s.span_id: s for s in spans}

        # the acceptance walk: instrument command -> daemon dispatch ->
        # client RPC -> workflow task -> workflow root, via parent links
        (start_cmd,) = [
            s for s in spans if s.name == "instrument.Start_Channel_SP200"
        ]
        chain = self._walk_to_root(by_id, start_cmd)
        names = [s.name for s in chain]
        assert names == [
            "instrument.Start_Channel_SP200",
            "rpc.dispatch.Start_Channel_SP200",
            "rpc.call.Start_Channel_SP200",
            "task.D_run_cv",
            "workflow.cv-workflow",
        ]

        # the data-file arrival is part of the same task, same trace
        (arrival,) = [s for s in spans if s.name == "datachannel.file_arrival"]
        arrival_chain = self._walk_to_root(by_id, arrival)
        assert arrival_chain[-1].name == "workflow.cv-workflow"
        assert any(s.name == "task.D_run_cv" for s in arrival_chain)

        # one trace covers the entire workflow's span tree
        workflow_trace = chain[-1].trace_id
        connected = [
            s
            for s in spans
            if s.name.startswith(
                ("workflow.", "task.", "rpc.", "instrument.", "datachannel.")
            )
        ]
        assert connected and all(s.trace_id == workflow_trace for s in connected)

        # every non-root span's parent actually exists in the trace
        for span in connected:
            if span.parent_id is not None:
                assert span.parent_id in by_id

    def test_resilient_client_adds_logical_call_span_to_chain(self, ice):
        """With the resilient wrapper on, each attempt's ``rpc.call`` span
        nests under the logical ``rpc.resilient`` span, same trace."""
        settings = CVWorkflowSettings(e_step_v=0.002, resilient_client=True)
        with repro.connect(ice) as session:
            result = session.run_workflow(settings=settings)
        assert result.succeeded
        spans = session.tracer.finished_spans()
        by_id = {s.span_id: s for s in spans}
        (start_cmd,) = [
            s for s in spans if s.name == "instrument.Start_Channel_SP200"
        ]
        names = [s.name for s in self._walk_to_root(by_id, start_cmd)]
        assert names == [
            "instrument.Start_Channel_SP200",
            "rpc.dispatch.Start_Channel_SP200",
            "rpc.call.Start_Channel_SP200",
            "rpc.resilient.Start_Channel_SP200",
            "task.D_run_cv",
            "workflow.cv-workflow",
        ]

    def test_file_arrival_latency_histogram_recorded(self, ice):
        with repro.connect(ice) as session:
            result = session.run_workflow(settings=FAST)
        assert result.succeeded
        hist = session.metrics.histogram("datachannel.file_arrival_latency_s")
        assert hist.count() == 1
        snap = hist.snapshot()
        assert snap["min"] > 0

    def test_task_metrics_and_teardown_events(self, ice):
        settings = CVWorkflowSettings(fill_volume_ml=25.0)  # task C aborts
        with repro.connect(ice) as session:
            result = session.run_workflow(settings=settings)
        assert not result.succeeded
        m = session.metrics
        assert m.counter("workflow.tasks_total").value(
            workflow="cv-workflow", task="C_fill_cell", state="failed"
        ) == 1
        assert m.counter("workflow.tasks_total").value(
            workflow="cv-workflow", task="B_configure_jkem", state="succeeded"
        ) == 1
        # the run span carries the teardown events and an ERROR status
        (run_span,) = session.tracer.find("workflow.cv-workflow")
        assert run_span.status == "ERROR"
        teardowns = [e for e in run_span.events if e["name"] == "teardown"]
        # safe-state instruments, unmount, close channel, flight dump
        assert len(teardowns) == 4
        assert [e["attributes"]["action"] for e in teardowns] == [
            "safe_state_instruments",
            "unmount_data_channel",
            "close_control_channel",
            "dump_flight_recording",
        ]

    def test_simnet_link_metrics_observed(self, ice):
        with repro.connect(ice) as session:
            session.client.call_Status_JKem()
        m = session.metrics
        link_bytes = m.counter("net.link.bytes_total")
        assert link_bytes.total() > 0
        rtt = m.gauge("net.path.rtt_s")
        assert any(v[1][0] > 0 for v in rtt.series())
