"""Wire serialisation: round trips, safety, hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SerializationError
from repro.rpc.serialization import deserialize, serialize


def round_trip(value):
    return deserialize(serialize(value))


class TestBasicTypes:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -7, 2**53, 3.14, "", "text", "ünïcode"],
    )
    def test_scalars(self, value):
        assert round_trip(value) == value

    def test_nan_round_trips(self):
        result = round_trip(float("nan"))
        assert result != result

    @pytest.mark.parametrize("value", [float("inf"), float("-inf")])
    def test_infinities(self, value):
        assert round_trip(value) == value

    def test_bytes(self):
        assert round_trip(b"\x00\xffraw") == b"\x00\xffraw"

    def test_bytearray_becomes_bytes(self):
        assert round_trip(bytearray(b"ab")) == b"ab"

    def test_tuple_preserved(self):
        assert round_trip((1, "a", (2,))) == (1, "a", (2,))

    def test_set_and_frozenset(self):
        assert round_trip({1, 2}) == {1, 2}
        result = round_trip(frozenset({3}))
        assert result == frozenset({3})
        assert isinstance(result, frozenset)

    def test_complex(self):
        assert round_trip(3 + 4j) == 3 + 4j

    def test_nested_containers(self):
        value = {"a": [1, (2, {3})], "b": {"c": b"x"}}
        assert round_trip(value) == value

    def test_non_string_dict_keys(self):
        value = {1: "a", (2, 3): "b"}
        assert round_trip(value) == value

    def test_dict_with_tag_collision_key_escaped(self):
        value = {"__repro_type__": "sneaky", "x": 1}
        assert round_trip(value) == value


class TestNumpy:
    def test_float_array(self):
        array = np.linspace(0, 1, 17)
        result = round_trip(array)
        assert isinstance(result, np.ndarray)
        np.testing.assert_array_equal(result, array)
        assert result.dtype == array.dtype

    def test_2d_int_array(self):
        array = np.arange(12, dtype=np.int32).reshape(3, 4)
        np.testing.assert_array_equal(round_trip(array), array)

    def test_result_is_writable(self):
        result = round_trip(np.zeros(3))
        result[0] = 1.0  # must not raise

    def test_fortran_order_array(self):
        array = np.asfortranarray(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(round_trip(array), array)

    def test_numpy_scalars_become_python(self):
        assert round_trip(np.float64(2.5)) == 2.5
        assert round_trip(np.int64(7)) == 7

    def test_object_dtype_rejected(self):
        with pytest.raises(SerializationError):
            serialize(np.array([object()], dtype=object))

    @given(
        hnp.arrays(
            dtype=st.sampled_from([np.float64, np.float32, np.int64, np.uint8]),
            shape=hnp.array_shapes(max_dims=3, max_side=8),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_array_round_trip(self, array):
        result = round_trip(array)
        assert result.dtype == array.dtype
        assert result.shape == array.shape
        np.testing.assert_array_equal(result, array)


class TestRejections:
    def test_unserialisable_type(self):
        with pytest.raises(SerializationError):
            serialize(object())

    def test_function_rejected(self):
        with pytest.raises(SerializationError):
            serialize(lambda: None)

    def test_deep_nesting_rejected(self):
        value: list = []
        cursor = value
        for _ in range(100):
            cursor.append([])
            cursor = cursor[0]
        with pytest.raises(SerializationError):
            serialize(value)

    def test_bad_utf8_payload(self):
        with pytest.raises(SerializationError):
            deserialize(b"\xff\xfe not json")

    def test_bad_json_payload(self):
        with pytest.raises(SerializationError):
            deserialize(b"{not json")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            deserialize(b'{"__repro_type__": "gadget"}')

    def test_bad_special_float(self):
        with pytest.raises(SerializationError):
            deserialize(b'{"__repro_type__": "float", "repr": "1e309"}')

    def test_ndarray_length_mismatch(self):
        payload = serialize(np.zeros(4))
        tampered = payload.replace(b'"shape":[4]', b'"shape":[400]')
        with pytest.raises(SerializationError):
            deserialize(tampered)

    def test_ndarray_object_dtype_rejected_on_decode(self):
        payload = serialize(np.zeros(2))
        tampered = payload.replace(b'"dtype":"<f8"', b'"dtype":"|O8"')
        with pytest.raises(SerializationError):
            deserialize(tampered)


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, width=64)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4)
    | st.tuples(children, children),
    max_leaves=12,
)


@given(json_like)
@settings(max_examples=80, deadline=None)
def test_property_generic_round_trip(value):
    assert round_trip(value) == value
