"""Multi-tenant facility gateway: admission, fairness, durability.

Covers the PROTOCOLS §1.8 surface from the inside (no RPC — that side
lives in ``test_gateway_rpc.py``): tenant auth and admission control
(quota, rate limit), weighted fair-share placement with its starvation
bound, health-gated cell selection, cancel semantics for queued vs
running jobs, the ``Job_Poll`` cursor/gap contract, and the journal
replay that survives a gateway crash — including the acceptance
property that a re-executed job *resumes* its campaign instead of
re-touching instruments.
"""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.errors import (
    GatewayError,
    JobStateError,
    QuotaExceededError,
    RateLimitedError,
    TenantAuthError,
    UnknownJobError,
    UnknownTenantError,
    WorkflowError,
)
from repro.gateway import (
    CANCELLED,
    FAILED,
    FEED_SCHEMA,
    QUEUED,
    SUCCEEDED,
    Cell,
    FairShareScheduler,
    Gateway,
    JobStore,
    TenantSpec,
)
from repro.gateway.gateway import campaign_runner
from repro.obs import MetricsRegistry
from repro.obs.health import DEGRADED, HEALTHY, UNHEALTHY

SPEC = {
    "strategy": {"kind": "scan-rate", "scan_rates_v_s": [0.1], "base": {}},
    "max_rounds": 1,
}

A = TenantSpec("lab-a", "key-a")
B = TenantSpec("lab-b", "key-b", weight=2.0)


def _recording_runner(log):
    """Synthetic runner: records (tenant, cell, resume) and succeeds."""

    def run(job, cell, ctx):
        log.append((job.tenant, cell.name, ctx.resume))
        return {"state": SUCCEEDED, "rounds": 1}

    return run


def _gateway(tmp_path, tenants=(A, B), cells=("c1",), runner=None, **kwargs):
    log = []
    gateway = Gateway(
        [Cell(name) for name in cells],
        tmp_path / "gw",
        tenants=tenants,
        runner=runner or _recording_runner(log),
        **kwargs,
    )
    return gateway, log


class TestAdmission:
    def test_unknown_tenant_rejected(self, tmp_path):
        gateway, _ = _gateway(tmp_path)
        with gateway:
            with pytest.raises(UnknownTenantError) as info:
                gateway.submit("nobody", "key", SPEC)
            assert info.value.code == "GATEWAY_UNKNOWN_TENANT"

    def test_bad_api_key_rejected_and_counted(self, tmp_path):
        metrics = MetricsRegistry()
        gateway, _ = _gateway(tmp_path, metrics=metrics)
        with gateway:
            with pytest.raises(TenantAuthError) as info:
                gateway.submit("lab-a", "wrong", SPEC)
            assert info.value.code == "GATEWAY_TENANT_AUTH"
            assert (
                metrics.counter("gateway.rejects_total").value(reason="auth")
                == 1
            )

    def test_missing_tenant_id_rejected(self, tmp_path):
        gateway, _ = _gateway(tmp_path)
        with gateway:
            with pytest.raises(UnknownTenantError):
                gateway.submit(None, "key-a", SPEC)

    def test_spec_validated_before_journaling(self, tmp_path):
        gateway, _ = _gateway(tmp_path)
        with gateway:
            with pytest.raises(GatewayError):
                gateway.submit("lab-a", "key-a", {"max_rounds": 1})
            with pytest.raises(WorkflowError):
                gateway.submit(
                    "lab-a", "key-a", {"strategy": {"kind": "nope"}}
                )
            assert gateway.queue_depth() == 0
        # neither rejected submit may have been journaled
        reopened, _ = _gateway(tmp_path)
        with reopened:
            assert reopened.queue_depth() == 0

    def test_quota_exhaustion_then_recovery_after_completion(self, tmp_path):
        spec = TenantSpec("lab-q", "key-q", max_active=2)
        gateway, _ = _gateway(tmp_path, tenants=(spec,))
        with gateway:
            gateway.submit("lab-q", "key-q", SPEC)
            gateway.submit("lab-q", "key-q", SPEC)
            with pytest.raises(QuotaExceededError) as info:
                gateway.submit("lab-q", "key-q", SPEC)
            assert info.value.code == "GATEWAY_QUOTA_EXCEEDED"
            # one job finishing frees one quota slot
            assert gateway.step() is not None
            view = gateway.submit("lab-q", "key-q", SPEC)
            assert view["state"] == QUEUED

    def test_rate_limit_refills_with_time(self, tmp_path):
        clock = VirtualClock()
        spec = TenantSpec(
            "lab-r", "key-r", submit_rate_per_s=1.0, burst=2, max_active=99
        )
        gateway, _ = _gateway(tmp_path, tenants=(spec,), clock=clock)
        with gateway:
            gateway.submit("lab-r", "key-r", SPEC)
            gateway.submit("lab-r", "key-r", SPEC)
            with pytest.raises(RateLimitedError) as info:
                gateway.submit("lab-r", "key-r", SPEC)
            assert info.value.code == "GATEWAY_RATE_LIMITED"
            clock.advance(1.0)
            assert gateway.submit("lab-r", "key-r", SPEC)["state"] == QUEUED


class TestFairness:
    def test_weighted_interleaving(self, tmp_path):
        gateway, log = _gateway(tmp_path)
        with gateway:
            for _ in range(4):
                gateway.submit("lab-a", "key-a", SPEC)
            for _ in range(8):
                gateway.submit("lab-b", "key-b", SPEC)
            assert gateway.run_until_idle() == 12
        order = [tenant for tenant, _, _ in log]
        # weight 2 earns two placements per one of weight 1, from the start
        assert order[:6] == [
            "lab-a", "lab-b", "lab-b", "lab-a", "lab-b", "lab-b",
        ]

    def test_starvation_bound_under_deep_backlog(self, tmp_path):
        gateway, log = _gateway(
            tmp_path,
            tenants=(A, TenantSpec("lab-b", "key-b", weight=3.0, max_active=64)),
        )
        with gateway:
            for _ in range(3):
                gateway.submit("lab-a", "key-a", SPEC)
            for _ in range(30):
                gateway.submit("lab-b", "key-b", SPEC)
            gateway.run_until_idle()
        order = [tenant for tenant, _, _ in log]
        # the stride bound: between two lab-a services at most
        # ceil(w_b / w_a) = 3 lab-b placements fit, so consecutive
        # lab-a placements are at most 4 apart
        last_a = -1
        for i, tenant in enumerate(order):
            if tenant == "lab-a":
                assert i - last_a <= 4
                last_a = i
        assert order.count("lab-a") == 3

    def test_priority_orders_within_tenant_only(self, tmp_path):
        gateway, log = _gateway(tmp_path, tenants=(A,))
        with gateway:
            low = gateway.submit("lab-a", "key-a", SPEC, priority=0)
            high = gateway.submit("lab-a", "key-a", SPEC, priority=5)
            gateway.run_until_idle()
            finished = sorted(
                (gateway.status("lab-a", "key-a", v["job_id"])
                 for v in (low, high)),
                key=lambda j: j["started_at"],
            )
            assert finished[0]["job_id"] == high["job_id"]

    def test_idle_tenant_cannot_bank_credit(self):
        scheduler = FairShareScheduler([Cell("c1")])
        job = object()
        weights = {"a": 1.0, "b": 1.0}
        # a alone for a long stretch; b idle the whole time
        for _ in range(20):
            assert scheduler.pick_tenant({"a": job, "b": None}, weights) == "a"
        # b returning is served promptly but gets no catch-up burst:
        # placements alternate instead of b draining 20 turns of credit
        picks = [
            scheduler.pick_tenant({"a": job, "b": job}, weights)
            for _ in range(6)
        ]
        assert picks.count("b") == 3


class TestHealthGating:
    def test_unhealthy_cell_skipped_then_recovers(self, tmp_path):
        metrics = MetricsRegistry()
        verdicts = {"c1": UNHEALTHY, "c2": DEGRADED}
        cells = [
            Cell("c1", health=lambda: verdicts["c1"]),
            Cell("c2", health=lambda: verdicts["c2"]),
        ]
        log = []
        gateway = Gateway(
            cells,
            tmp_path / "gw",
            tenants=(A,),
            runner=_recording_runner(log),
            metrics=metrics,
        )
        with gateway:
            gateway.submit("lab-a", "key-a", SPEC)
            # nothing healthy: no placement, skips counted per cell
            assert gateway.step() is None
            assert log == []
            skips = metrics.counter("gateway.scheduler_skips_total")
            assert skips.value(cell="c1", verdict=UNHEALTHY) >= 1
            assert skips.value(cell="c2", verdict=DEGRADED) >= 1
            # c2 recovers; the queued job lands there and only there
            verdicts["c2"] = HEALTHY
            view = gateway.step()
            assert view["state"] == SUCCEEDED
            assert view["cell"] == "c2"
            assert [cell for _, cell, _ in log] == ["c2"]


class TestCancel:
    def test_cancel_queued_is_immediate_and_never_runs(self, tmp_path):
        gateway, log = _gateway(tmp_path, tenants=(A,))
        with gateway:
            view = gateway.submit("lab-a", "key-a", SPEC)
            cancelled = gateway.cancel("lab-a", "key-a", view["job_id"])
            assert cancelled["state"] == CANCELLED
            assert gateway.run_until_idle() == 0
            assert log == []

    def test_cancel_running_lands_at_next_boundary(self, tmp_path):
        gateway_box = {}

        def cancelling_runner(job, cell, ctx):
            assert not ctx.cancelled()
            gateway_box["gw"].cancel("lab-a", "key-a", job.job_id)
            assert ctx.cancelled()
            return {"state": CANCELLED, "rounds": 1}

        gateway, _ = _gateway(
            tmp_path, tenants=(A,), runner=cancelling_runner
        )
        gateway_box["gw"] = gateway
        with gateway:
            view = gateway.submit("lab-a", "key-a", SPEC)
            assert gateway.step()["state"] == CANCELLED
            final = gateway.status("lab-a", "key-a", view["job_id"])
            assert final["cancel_requested"]

    def test_cancel_terminal_is_a_state_error(self, tmp_path):
        gateway, _ = _gateway(tmp_path, tenants=(A,))
        with gateway:
            view = gateway.submit("lab-a", "key-a", SPEC)
            gateway.run_until_idle()
            with pytest.raises(JobStateError) as info:
                gateway.cancel("lab-a", "key-a", view["job_id"])
            assert info.value.code == "GATEWAY_JOB_STATE"

    def test_jobs_do_not_leak_across_tenants(self, tmp_path):
        gateway, _ = _gateway(tmp_path)
        with gateway:
            view = gateway.submit("lab-a", "key-a", SPEC)
            with pytest.raises(UnknownJobError):
                gateway.status("lab-b", "key-b", view["job_id"])
            with pytest.raises(UnknownJobError):
                gateway.cancel("lab-b", "key-b", view["job_id"])


class TestJobPoll:
    def test_poll_reply_shape_and_incremental_cursor(self, tmp_path):
        gateway, _ = _gateway(tmp_path, tenants=(A,))
        with gateway:
            gateway.submit("lab-a", "key-a", SPEC)
            first = gateway.poll("lab-a", "key-a", cursor=0)
            assert first["schema"] == FEED_SCHEMA
            assert first["service"] == "gateway"
            assert first["gap"] == 0
            assert [e["name"] for e in first["events"]] == ["job.submitted"]
            gateway.run_until_idle()
            second = gateway.poll("lab-a", "key-a", cursor=first["cursor"])
            assert [e["name"] for e in second["events"]] == [
                "job.started",
                "job.finished",
            ]
            # cursor is a high-water mark: re-polling yields nothing new
            third = gateway.poll("lab-a", "key-a", cursor=second["cursor"])
            assert third["events"] == []
            assert third["cursor"] == second["cursor"]

    def test_stale_cursor_reports_gap(self, tmp_path):
        gateway, _ = _gateway(tmp_path, tenants=(A,), feed_capacity=4)
        with gateway:
            for _ in range(4):
                gateway.submit("lab-a", "key-a", SPEC)
            gateway.run_until_idle()  # 12 events through a 4-slot ring
            reply = gateway.poll("lab-a", "key-a", cursor=0)
            assert reply["gap"] == 8
            assert len(reply["events"]) == 4

    def test_tenant_filter_advances_past_other_tenants(self, tmp_path):
        gateway, _ = _gateway(tmp_path)
        with gateway:
            gateway.submit("lab-a", "key-a", SPEC)
            gateway.submit("lab-b", "key-b", SPEC)
            reply = gateway.poll("lab-b", "key-b", cursor=0)
            assert [e["tenant"] for e in reply["events"]] == ["lab-b"]
            # the cursor still advanced past lab-a's event
            assert reply["cursor"] == 2


class TestDurability:
    def test_restart_preserves_queued_jobs(self, tmp_path):
        gateway, _ = _gateway(tmp_path, tenants=(A,))
        views = [gateway.submit("lab-a", "key-a", SPEC) for _ in range(3)]
        gateway.close()

        reopened, log = _gateway(tmp_path, tenants=(A,))
        with reopened:
            assert reopened.queue_depth("lab-a") == 3
            assert reopened.run_until_idle() == 3
            for view in views:
                final = reopened.status("lab-a", "key-a", view["job_id"])
                assert final["state"] == SUCCEEDED
        assert all(resume is False for _, _, resume in log)

    def test_crash_mid_execution_requeues_with_resume_flag(self, tmp_path):
        metrics = MetricsRegistry()
        gateway, _ = _gateway(tmp_path, tenants=(A,))
        running = gateway.submit("lab-a", "key-a", SPEC)
        queued = gateway.submit("lab-a", "key-a", SPEC)
        done = gateway.submit("lab-a", "key-a", SPEC)
        gateway.store.mark_finished(done["job_id"], SUCCEEDED, rounds=1)
        # the crash: job-started journaled, process dies before finishing
        gateway.store.mark_running(running["job_id"], "c1")
        gateway.store.close()

        reopened, log = _gateway(tmp_path, tenants=(A,), metrics=metrics)
        with reopened:
            assert reopened.store.requeued_on_open == [running["job_id"]]
            assert (
                metrics.counter("gateway.jobs_requeued_total").total() == 1
            )
            assert reopened.run_until_idle() == 2
            view = reopened.status("lab-a", "key-a", running["job_id"])
            assert view["state"] == SUCCEEDED
        # exactly one execution ran resumed (the torn one), one fresh,
        # and the pre-crash success was not re-executed at all
        assert sorted(resume for _, _, resume in log) == [False, True]
        assert len(log) == 2

    def test_finished_jobs_keep_their_outcome_across_restart(self, tmp_path):
        def failing_runner(job, cell, ctx):
            return {"state": FAILED, "rounds": 0, "error": "bad electrode"}

        gateway, _ = _gateway(tmp_path, tenants=(A,), runner=failing_runner)
        view = gateway.submit("lab-a", "key-a", SPEC)
        gateway.run_until_idle()
        gateway.close()
        reopened, log = _gateway(tmp_path, tenants=(A,))
        with reopened:
            final = reopened.status("lab-a", "key-a", view["job_id"])
            assert final["state"] == FAILED
            assert final["error"] == "bad electrode"
            assert reopened.run_until_idle() == 0
        assert log == []

    def test_runner_exception_is_job_failure_not_gateway_crash(self, tmp_path):
        def exploding_runner(job, cell, ctx):
            raise RuntimeError("potentiostat on fire")

        gateway, _ = _gateway(tmp_path, tenants=(A,), runner=exploding_runner)
        with gateway:
            view = gateway.submit("lab-a", "key-a", SPEC)
            gateway.run_until_idle()
            final = gateway.status("lab-a", "key-a", view["job_id"])
            assert final["state"] == FAILED
            assert "potentiostat on fire" in final["error"]
            # the cell came back: a second job still runs
            again = gateway.submit("lab-a", "key-a", SPEC)
            gateway._runner = _recording_runner([])
            gateway.run_until_idle()
            assert (
                gateway.status("lab-a", "key-a", again["job_id"])["state"]
                == SUCCEEDED
            )


class TestRealCampaignResume:
    def test_restart_resumes_campaign_with_zero_instrument_reruns(
        self, ice, tmp_path
    ):
        """The acceptance scenario, on a real ICE.

        A job's campaign runs to completion but the gateway dies before
        journaling ``job-finished``. The restarted gateway re-queues the
        job and its re-execution must *resume* from the campaign journal
        — restoring every round from checkpoints — so the instrument
        sees zero additional executions.
        """
        from repro.gateway.gateway import JobContext

        spec = {
            "strategy": {
                "kind": "scan-rate",
                "scan_rates_v_s": [0.05, 0.1],
                "base": {},
            },
            "max_rounds": 2,
        }
        starts = {"n": 0}
        server = ice._ws_server
        original = server.Start_Channel_SP200

        def counting(*args, **kwargs):
            starts["n"] += 1
            return original(*args, **kwargs)

        server.Start_Channel_SP200 = counting

        state_dir = tmp_path / "gw"
        gateway = Gateway({"cell-1": ice}, state_dir, tenants=(A,))
        view = gateway.submit("lab-a", "key-a", spec)
        job, cell = gateway._place()
        outcome = campaign_runner(
            job,
            cell,
            JobContext(
                journal_dir=state_dir / "jobs" / job.job_id,
                idem_prefix=job.idem_prefix,
                resume=False,
                cancelled=lambda: False,
            ),
        )
        assert outcome["state"] == SUCCEEDED
        assert starts["n"] == 2
        # crash here: the campaign finished but job-finished never landed
        gateway.store.close()

        reopened = Gateway({"cell-1": ice}, state_dir, tenants=(A,))
        with reopened:
            assert reopened.store.requeued_on_open == [view["job_id"]]
            assert reopened.run_until_idle() == 1
            final = reopened.status("lab-a", "key-a", view["job_id"])
            assert final["state"] == SUCCEEDED
            assert final["rounds"] == 2
        # ZERO duplicated instrument executions across the restart
        assert starts["n"] == 2


class TestJobStore:
    def test_wrong_transitions_refused(self, tmp_path):
        store = JobStore.open(tmp_path / "store")
        try:
            job = store.submit("lab-a", SPEC)
            with pytest.raises(JobStateError):
                store.mark_finished(job.job_id, QUEUED)
            store.mark_running(job.job_id, "c1")
            with pytest.raises(JobStateError):
                store.mark_running(job.job_id, "c1")
            store.mark_finished(job.job_id, SUCCEEDED, rounds=1)
            with pytest.raises(JobStateError):
                store.mark_finished(job.job_id, FAILED)
        finally:
            store.close()

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore.open(tmp_path / "store")
        try:
            with pytest.raises(UnknownJobError) as info:
                store.get("nope")
            assert info.value.code == "GATEWAY_UNKNOWN_JOB"
        finally:
            store.close()

    def test_queued_cancel_replays_as_cancelled(self, tmp_path):
        store = JobStore.open(tmp_path / "store")
        job = store.submit("lab-a", SPEC)
        store.cancel(job.job_id)
        store.close()
        reopened = JobStore.open(tmp_path / "store")
        try:
            assert reopened.get(job.job_id).state == CANCELLED
            assert reopened.requeued_on_open == []
        finally:
            reopened.close()
