"""The assembled bench: wiring between J-Kem, cell, and potentiostat."""

import pytest

from repro.facility.workstation import (
    PORT_CELL,
    PORT_COLLECTOR,
    PORT_SOLVENT,
    PORT_WASTE,
    ElectrochemistryWorkstation,
    WorkstationConfig,
)


class TestBuild:
    def test_all_parts_present(self, workstation):
        assert workstation.cell.capacity_ml == 20.0
        assert workstation.stock.volume_ml == 50.0
        assert workstation.sbc.commands_handled == 0
        assert workstation.potentiostat.cell is workstation.cell
        assert workstation.mfc.cell is workstation.cell

    def test_port_plumbing(self, workstation):
        ports = workstation.syringe_pump.ports
        assert PORT_COLLECTOR in ports
        assert PORT_SOLVENT in ports
        assert PORT_CELL in ports
        assert PORT_WASTE in ports
        assert ports.target(PORT_CELL) is workstation.cell

    def test_stock_vial_loaded_at_bottom(self, workstation):
        workstation.collector.move_to("BOTTOM")
        assert workstation.collector.current_vial() is workstation.stock

    def test_custom_concentration(self, tmp_path):
        ws = ElectrochemistryWorkstation.build(
            WorkstationConfig(
                ferrocene_mm=5.0, measurement_dir=tmp_path / "m"
            )
        )
        try:
            from repro.chemistry.species import FERROCENE

            assert ws.stock.solution.concentration(FERROCENE) == pytest.approx(
                5e-6
            )
        finally:
            ws.shutdown()

    def test_shared_event_log(self, workstation):
        workstation.jkem_api.set_rate_syringe_pump(1, 5.0)
        sources = {e.source for e in workstation.event_log}
        assert "jkem.api" in sources
        assert "jkem.sbc" in sources


class TestCrossInstrumentCoupling:
    def test_fill_changes_what_potentiostat_sees(self, workstation):
        api = workstation.jkem_api
        api.set_vial_fraction_collector(1, "BOTTOM")
        api.set_port_syringe_pump(1, PORT_COLLECTOR)
        api.withdraw_syringe_pump(1, 6.0)
        api.set_port_syringe_pump(1, PORT_CELL)
        api.dispense_syringe_pump(1, 6.0)

        eclab = workstation.eclab
        eclab.initialize()
        eclab.connect()
        eclab.load_firmware()
        eclab.init_cv_technique()
        eclab.load_technique()
        eclab.start_channel()
        trace = eclab.get_measurements()
        _, peak = trace.peak_anodic()
        assert peak > 1e-5  # a real ferrocene wave, not a blank

    def test_empty_cell_measures_nothing(self, workstation):
        eclab = workstation.eclab
        eclab.initialize()
        eclab.connect()
        eclab.load_firmware()
        eclab.init_cv_technique()
        eclab.load_technique()
        eclab.start_channel()
        trace = eclab.get_measurements()
        import numpy as np

        assert np.abs(trace.current_a).max() < 1e-6

    def test_solvent_wash_dilution_path(self, workstation):
        api = workstation.jkem_api
        api.set_port_syringe_pump(1, PORT_SOLVENT)
        api.withdraw_syringe_pump(1, 3.0)
        api.set_port_syringe_pump(1, PORT_CELL)
        api.dispense_syringe_pump(1, 3.0)
        assert workstation.cell.volume_ml == pytest.approx(3.0)
        # blank solvent: no ferrocene signal
        contents = workstation.cell.contents
        assert contents is not None and not contents.species
