"""The ``repro.connect()`` facade and the deprecated entry-point shims."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.cv_workflow import CVWorkflowSettings
from repro.core.session import RemoteSession
from repro.errors import ReproError, WorkflowError
from repro.obs import MetricsRegistry, Tracer, read_jsonl_spans

FAST = CVWorkflowSettings(e_step_v=0.002)


class TestConnect:
    def test_connect_exposes_the_unified_surface(self, ice):
        with repro.connect(ice) as session:
            assert session.client is not None
            assert session.datachannel is not None
            assert session.mount is session.datachannel  # back-compat alias
            assert isinstance(session.tracer, Tracer)
            assert isinstance(session.metrics, MetricsRegistry)
            wf = session.workflow()
            assert wf.name == "cv-workflow"

    def test_connect_with_no_target_owns_its_ice(self):
        with repro.connect() as session:
            assert session.ice is not None
            assert session.client.call_Status_JKem()
        # owned ICE is shut down on close: the control daemon is gone
        assert not session.ice.control_daemon._running.is_set()

    def test_injected_observability_is_used(self, ice):
        tracer, metrics = Tracer("mine"), MetricsRegistry()
        with repro.connect(ice, tracer=tracer, metrics=metrics) as session:
            assert session.tracer is tracer
            assert session.metrics is metrics
            session.client.call_Status_JKem()
        assert tracer.find("rpc.call.Status_JKem")

    def test_uri_mode_has_no_workflow(self, ice_tcp):
        session = repro.connect(ice_tcp.control_uri)
        try:
            assert session.client.call_Status_JKem()
            assert session.datachannel is None
            with pytest.raises(WorkflowError):
                session.workflow()
            with pytest.raises(WorkflowError):
                _ = session.characterization
        finally:
            session.close()

    def test_summarize_covers_spans_and_metrics(self, ice):
        with repro.connect(ice) as session:
            session.client.call_Status_JKem()
        summary = session.summarize()
        assert "rpc.call.Status_JKem" in summary["spans"]
        assert any(k.startswith("rpc.client.calls_total") for k in summary["metrics"])

    def test_export_trace_writes_readable_jsonl(self, ice, tmp_path):
        path = tmp_path / "trace.jsonl"
        with repro.connect(ice) as session:
            session.client.call_Status_JKem()
            count = session.export_trace(path)
        assert count > 0
        rows = read_jsonl_spans(path)
        assert len(rows) == count
        assert any(r["name"] == "rpc.call.Status_JKem" for r in rows)

    def test_close_is_idempotent(self, ice):
        session = repro.connect(ice)
        session.close()
        session.close()

    def test_notebook_verbs_run_a_cv(self, ice):
        with repro.connect(ice) as session:
            trace = session.run_cv(
                e_begin_v=0.2, e_vertex_v=0.8, scan_rate_v_s=0.1
            )
            assert len(trace) > 0
            status = session.cell_status()
            assert "volume_ml" in status


class TestWorkflowThroughSession:
    def test_run_workflow_threads_session_observability(self, ice):
        with repro.connect(ice) as session:
            result = session.run_workflow(settings=FAST)
        assert result.succeeded
        assert session.tracer.find("workflow.cv-workflow")
        assert session.metrics.counter("workflow.tasks_total").total() >= 5


class TestDeprecatedShims:
    def test_remote_session_warns_but_works(self, ice):
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            session = RemoteSession(ice)
        try:
            assert session.client.call_Status_JKem()
            assert session.datachannel is not None
        finally:
            session.close()

    def test_facade_is_exported_at_top_level(self):
        assert repro.connect is not None
        assert repro.Session is not None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the new path must not warn
            assert callable(repro.connect)

    def test_error_hierarchy_root(self):
        assert issubclass(WorkflowError, ReproError)
        assert WorkflowError("x").code == "WORKFLOW_ERROR"
