"""The ``repro.connect()`` facade, its config objects, and legacy kwargs."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.config import SessionConfig, TransportConfig
from repro.core.cv_workflow import CVWorkflowSettings
from repro.errors import ReproError, WorkflowError
from repro.obs import MetricsRegistry, Tracer, read_jsonl_spans

FAST = CVWorkflowSettings(e_step_v=0.002)


class TestConnect:
    def test_connect_exposes_the_unified_surface(self, ice):
        with repro.connect(ice) as session:
            assert session.client is not None
            assert session.datachannel is not None
            assert session.mount is session.datachannel  # back-compat alias
            assert isinstance(session.tracer, Tracer)
            assert isinstance(session.metrics, MetricsRegistry)
            wf = session.workflow()
            assert wf.name == "cv-workflow"

    def test_connect_with_no_target_owns_its_ice(self):
        with repro.connect() as session:
            assert session.ice is not None
            assert session.client.call_Status_JKem()
        # owned ICE is shut down on close: the control daemon is gone
        assert not session.ice.control_daemon._running.is_set()

    def test_injected_observability_is_used(self, ice):
        tracer, metrics = Tracer("mine"), MetricsRegistry()
        with repro.connect(ice, tracer=tracer, metrics=metrics) as session:
            assert session.tracer is tracer
            assert session.metrics is metrics
            session.client.call_Status_JKem()
        assert tracer.find("rpc.call.Status_JKem")

    def test_uri_mode_has_no_workflow(self, ice_tcp):
        session = repro.connect(ice_tcp.control_uri)
        try:
            assert session.client.call_Status_JKem()
            assert session.datachannel is None
            with pytest.raises(WorkflowError):
                session.workflow()
            with pytest.raises(WorkflowError):
                _ = session.characterization
        finally:
            session.close()

    def test_summarize_covers_spans_and_metrics(self, ice):
        with repro.connect(ice) as session:
            session.client.call_Status_JKem()
        summary = session.summarize()
        assert "rpc.call.Status_JKem" in summary["spans"]
        assert any(k.startswith("rpc.client.calls_total") for k in summary["metrics"])

    def test_export_trace_writes_readable_jsonl(self, ice, tmp_path):
        path = tmp_path / "trace.jsonl"
        with repro.connect(ice) as session:
            session.client.call_Status_JKem()
            count = session.export_trace(path)
        assert count > 0
        rows = read_jsonl_spans(path)
        assert len(rows) == count
        assert any(r["name"] == "rpc.call.Status_JKem" for r in rows)

    def test_close_is_idempotent(self, ice):
        session = repro.connect(ice)
        session.close()
        session.close()

    def test_notebook_verbs_run_a_cv(self, ice):
        with repro.connect(ice) as session:
            trace = session.run_cv(
                e_begin_v=0.2, e_vertex_v=0.8, scan_rate_v_s=0.1
            )
            assert len(trace) > 0
            status = session.cell_status()
            assert "volume_ml" in status


class TestWorkflowThroughSession:
    def test_run_workflow_threads_session_observability(self, ice):
        with repro.connect(ice) as session:
            result = session.run_workflow(settings=FAST)
        assert result.succeeded
        assert session.tracer.find("workflow.cv-workflow")
        assert session.metrics.counter("workflow.tasks_total").total() >= 5


class TestConfigObjects:
    def test_remote_session_shim_is_gone(self):
        # deleted after a full deprecation cycle; connect() is the sole
        # entry point now
        assert not hasattr(repro, "RemoteSession")
        with pytest.raises(ImportError):
            from repro.core.session import RemoteSession  # noqa: F401

    def test_default_configs_attached_to_session(self, ice):
        with repro.connect(ice) as session:
            assert session.transport_config == TransportConfig()
            assert session.session_config == SessionConfig()
            assert session.client.resilient  # SessionConfig default

    def test_transport_config_threads_to_channels(self, ice):
        transport = TransportConfig(max_inflight=4, pipeline_depth=8)
        with repro.connect(ice, transport=transport) as session:
            # the data-channel proxy carries the read-ahead window
            assert session.datachannel._proxy.max_inflight == 8

    def test_session_config_controls_resilience(self, ice):
        with repro.connect(
            ice, session=SessionConfig(resilient=False)
        ) as session:
            assert not session.client.resilient

    def test_legacy_resilient_kwarg_warns_and_maps(self, ice):
        with pytest.warns(DeprecationWarning, match="SessionConfig"):
            session = repro.connect(ice, resilient=False)
        try:
            assert not session.client.resilient
            assert session.session_config.resilient is False
        finally:
            session.close()

    def test_legacy_kwarg_conflicting_with_config_rejected(self, ice):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(WorkflowError, match="conflicting"):
                repro.connect(
                    ice,
                    session=SessionConfig(resilient=True),
                    resilient=False,
                )

    def test_config_validation(self):
        with pytest.raises(WorkflowError):
            TransportConfig(max_inflight=0)
        with pytest.raises(WorkflowError):
            TransportConfig(binary="yes please")
        with pytest.raises(WorkflowError):
            SessionConfig(health_window_s=0)

    def test_session_config_gates_workflows_by_default(self, ice):
        from repro.errors import HealthGateError
        from repro.obs.health import UNHEALTHY

        with repro.connect(
            ice, session=SessionConfig(require_healthy=True)
        ) as session:
            session.health_engine.register_probe(
                "rpc", lambda: (UNHEALTHY, "forced failure")
            )
            with pytest.raises(HealthGateError):
                session.run_workflow(settings=FAST)
            # per-call override still wins over the config default
            result = session.run_workflow(settings=FAST, require_healthy=False)
            assert result.succeeded

    def test_campaign_helper_inherits_session_config(self, ice, tmp_path):
        from repro.core.campaign import scan_rate_strategy

        with repro.connect(
            ice, session=SessionConfig(journal_dir=tmp_path / "journal")
        ) as session:
            campaign = session.campaign(
                scan_rate_strategy((0.05, 0.1), base=FAST)
            )
            assert campaign.journal_dir == tmp_path / "journal"
            assert campaign.flight_dir == session.flight_dir
            rounds = campaign.run()
            assert len(rounds) == 2
            assert (tmp_path / "journal" / "campaign.jsonl").exists()


class TestDeprecatedShims:
    def test_facade_is_exported_at_top_level(self):
        assert repro.connect is not None
        assert repro.Session is not None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the new path must not warn
            assert callable(repro.connect)

    def test_error_hierarchy_root(self):
        assert issubclass(WorkflowError, ReproError)
        assert WorkflowError("x").code == "WORKFLOW_ERROR"
