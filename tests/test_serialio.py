"""Simulated serial ports and line framing."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PortNotOpenError, SerialTimeoutError
from repro.serialio import CRLF, LineFramer, create_port_pair
from repro.serialio.framing import frame_line


class TestSerialEndpoint:
    def test_write_read_round_trip(self):
        host, device = create_port_pair()
        host.write(b"hello")
        assert device.read(5) == b"hello"

    def test_read_returns_partial_when_less_available(self):
        host, device = create_port_pair()
        host.write(b"ab")
        assert device.read(10) == b"ab"

    def test_read_timeout_returns_empty(self):
        _host, device = create_port_pair(timeout=0.05)
        assert device.read(1) == b""

    def test_read_exactly_raises_on_timeout(self):
        host, device = create_port_pair(timeout=0.05)
        host.write(b"ab")
        with pytest.raises(SerialTimeoutError):
            device.read_exactly(5)

    def test_read_exactly_assembles_chunks(self):
        host, device = create_port_pair()
        host.write(b"abc")
        host.write(b"def")
        assert device.read_exactly(6) == b"abcdef"

    def test_read_until_terminator(self):
        host, device = create_port_pair()
        host.write(b"CMD(1)\r\nrest")
        assert device.read_until(CRLF) == b"CMD(1)\r\n"
        assert device.read(4) == b"rest"

    def test_read_until_timeout(self):
        host, device = create_port_pair(timeout=0.05)
        host.write(b"no terminator")
        with pytest.raises(SerialTimeoutError):
            device.read_until(CRLF)

    def test_read_until_max_bytes(self):
        host, device = create_port_pair()
        host.write(b"x" * 300)
        with pytest.raises(ValueError):
            device.read_until(CRLF, max_bytes=256)

    def test_write_after_close_raises(self):
        host, _device = create_port_pair()
        host.close()
        with pytest.raises(PortNotOpenError):
            host.write(b"x")

    def test_peer_close_gives_eof_after_buffer(self):
        host, device = create_port_pair(timeout=0.05)
        host.write(b"last")
        host.close()
        assert device.read(4) == b"last"
        assert device.read(1) == b""

    def test_write_requires_bytes(self):
        host, _device = create_port_pair()
        with pytest.raises(TypeError):
            host.write("text")  # type: ignore[arg-type]

    def test_in_waiting_counts_buffered(self):
        host, device = create_port_pair()
        host.write(b"abcd")
        assert device.in_waiting() == 4

    def test_reset_input_buffer(self):
        host, device = create_port_pair(timeout=0.05)
        host.write(b"junk")
        device.reset_input_buffer()
        assert device.read(1) == b""

    def test_context_manager_closes(self):
        host, _device = create_port_pair()
        with host:
            pass
        assert not host.is_open

    def test_blocking_read_wakes_on_write(self):
        host, device = create_port_pair(timeout=2.0)
        result: list[bytes] = []

        def reader():
            result.append(device.read(5))

        thread = threading.Thread(target=reader)
        thread.start()
        host.write(b"hello")
        thread.join(timeout=2.0)
        assert result == [b"hello"]


class TestLineFramer:
    def test_single_complete_line(self):
        framer = LineFramer()
        assert framer.feed(b"CMD()\r\n") == [b"CMD()"]

    def test_split_across_chunks(self):
        framer = LineFramer()
        assert framer.feed(b"CM") == []
        assert framer.feed(b"D()\r") == []
        assert framer.feed(b"\n") == [b"CMD()"]

    def test_multiple_lines_one_chunk(self):
        framer = LineFramer()
        assert framer.feed(b"A()\r\nB()\r\n") == [b"A()", b"B()"]

    def test_pending_exposed(self):
        framer = LineFramer()
        framer.feed(b"partial")
        assert framer.pending == b"partial"

    def test_reset_drops_partial(self):
        framer = LineFramer()
        framer.feed(b"partial")
        framer.reset()
        assert framer.pending == b""

    def test_overlong_line_raises_and_clears(self):
        framer = LineFramer(max_line=8)
        with pytest.raises(ValueError):
            framer.feed(b"x" * 20)
        assert framer.pending == b""

    def test_empty_terminator_rejected(self):
        with pytest.raises(ValueError):
            LineFramer(terminator=b"")

    def test_feed_text_decodes(self):
        framer = LineFramer()
        assert framer.feed_text(b"OK\r\n") == ["OK"]

    @given(st.lists(st.binary(min_size=0, max_size=40).filter(lambda b: CRLF not in b), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_property_lines_survive_arbitrary_chunking(self, lines):
        stream = b"".join(line + CRLF for line in lines)
        framer = LineFramer(max_line=1 << 16)
        out: list[bytes] = []
        # feed one byte at a time: worst-case chunking
        for i in range(len(stream)):
            out.extend(framer.feed(stream[i : i + 1]))
        assert out == lines
        assert framer.pending == b""


class TestFrameLine:
    def test_appends_terminator(self):
        assert frame_line("OK") == b"OK\r\n"

    def test_rejects_control_characters(self):
        with pytest.raises(ValueError):
            frame_line("bad\nline")
