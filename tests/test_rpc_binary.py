"""Binary bulk framing (wire v2) and mixed-version interop.

Covers the PROTOCOLS §1.7 surface: the blob-hoisting codec, the framed
v2 payload, torn/oversized-frame handling (stable ``RPC_FRAME_CORRUPT``
code), and the HELLO negotiation matrix — a binary-capable client
against a JSON-only daemon and vice versa must converge on a working
wire, never a dead connection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    FrameCorruptError,
    ProtocolError,
    SerializationError,
)
from repro.rpc import (
    Daemon,
    Proxy,
    ThreadedDaemon,
    deserialize_binary,
    expose,
    serialize,
    serialize_binary,
)
from repro.rpc.protocol import (
    BINARY_VERSION,
    HEADER,
    MAGIC,
    MAX_PAYLOAD,
    VERSION,
    Message,
    MessageType,
    encode_message,
    parse_header,
)


@expose
class BulkService:
    """Echo plus bulk producers, for exercising both wire versions."""

    def echo(self, value):
        return value

    def wave(self, n: int):
        return np.linspace(0.0, 1.0, n)

    def chunk(self, n: int) -> bytes:
        return b"\xa5" * n

    def table(self, n: int):
        return {
            "potential_v": np.linspace(0.2, 0.8, n),
            "current_a": np.linspace(-1e-6, 1e-6, n),
            "raw": b"header",
        }


@pytest.fixture()
def reactor_daemon():
    daemon = Daemon(host="127.0.0.1")
    uri = daemon.register(BulkService(), object_id="Bulk")
    daemon.start_background()
    yield daemon, uri
    daemon.shutdown()


@pytest.fixture()
def json_daemon():
    daemon = ThreadedDaemon(host="127.0.0.1")
    uri = daemon.register(BulkService(), object_id="Bulk")
    daemon.start_background()
    yield daemon, uri
    daemon.shutdown()


class TestBinaryCodec:
    def test_round_trip_nested_bulk(self):
        original = {
            "trace": np.arange(1000, dtype=np.float64),
            "meta": {"file": b"cv-001.mpt", "cycles": 3},
            "tags": ("a", b"b"),
        }
        decoded = deserialize_binary(b"".join(serialize_binary(original)))
        np.testing.assert_array_equal(decoded["trace"], original["trace"])
        assert decoded["meta"] == {"file": b"cv-001.mpt", "cycles": 3}
        assert decoded["tags"] == ("a", b"b")

    def test_dtype_shape_and_writability_preserved(self):
        original = np.arange(12, dtype=np.float32).reshape(3, 4)
        decoded = deserialize_binary(b"".join(serialize_binary(original)))
        assert decoded.dtype == np.float32
        assert decoded.shape == (3, 4)
        decoded[0, 0] = 42.0  # the decode must not alias the read buffer

    def test_empty_array_and_empty_bytes(self):
        decoded = deserialize_binary(
            b"".join(serialize_binary({"a": np.array([]), "b": b""}))
        )
        assert decoded["a"].size == 0
        assert decoded["b"] == b""

    def test_binary_beats_json_on_bulk(self):
        payload = {"trace": np.linspace(0, 1, 100_000)}
        binary_size = sum(len(p) for p in serialize_binary(payload))
        json_size = len(serialize(payload))
        assert binary_size < json_size

    def test_torn_frame_maps_to_stable_code(self):
        data = b"".join(serialize_binary({"x": np.arange(64.0)}))
        for cut in (2, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(FrameCorruptError) as info:
                deserialize_binary(data[:cut])
            assert info.value.code == "RPC_FRAME_CORRUPT"

    def test_trailing_garbage_rejected(self):
        data = b"".join(serialize_binary({"x": b"abc"}))
        with pytest.raises(FrameCorruptError):
            deserialize_binary(data + b"\x00")

    def test_bad_envelope_json_is_serialization_error(self):
        import struct

        bogus = b"not json at all"
        data = struct.pack("!I", len(bogus)) + bogus
        with pytest.raises(SerializationError):
            deserialize_binary(data)


class TestBinaryFrames:
    def test_v2_message_round_trips(self):
        msg = Message(
            MessageType.RESPONSE,
            7,
            {"result": np.arange(10.0)},
            version=BINARY_VERSION,
        )
        raw = encode_message(msg)
        version, msg_type, flags, seq, length = parse_header(raw[:16])
        assert (version, msg_type, seq) == (
            BINARY_VERSION,
            MessageType.RESPONSE,
            7,
        )
        assert length == len(raw) - 16
        body = deserialize_binary(raw[16:])
        np.testing.assert_array_equal(body["result"], np.arange(10.0))

    def test_oversized_header_is_frame_corrupt(self):
        header = HEADER.pack(
            MAGIC, VERSION, int(MessageType.REQUEST), 0, 1, MAX_PAYLOAD + 1
        )
        with pytest.raises(FrameCorruptError) as info:
            parse_header(header)
        assert info.value.code == "RPC_FRAME_CORRUPT"

    def test_bad_magic_is_protocol_error(self):
        header = HEADER.pack(
            b"NOPE", VERSION, int(MessageType.REQUEST), 0, 1, 0
        )
        with pytest.raises(ProtocolError):
            parse_header(header)


class TestVersionNegotiation:
    def test_auto_client_on_reactor_daemon_goes_binary(self, reactor_daemon):
        daemon, uri = reactor_daemon
        with Proxy(uri) as proxy:
            trace = proxy.wave(5000)
            assert proxy.wire_version == BINARY_VERSION
            assert trace.shape == (5000,)
            assert daemon.serving_mode == "reactor"

    def test_auto_client_on_json_daemon_falls_back(self, json_daemon):
        daemon, uri = json_daemon
        with Proxy(uri) as proxy:
            trace = proxy.wave(100)
            assert proxy.wire_version == VERSION
            np.testing.assert_allclose(trace[-1], 1.0)
            assert daemon.serving_mode == "threaded"

    def test_pinned_json_client_on_reactor_daemon(self, reactor_daemon):
        _, uri = reactor_daemon
        # an old peer never sends HELLO; the daemon must answer v1 frames
        # with v1 frames without any negotiation at all
        with Proxy(uri, binary=False) as proxy:
            assert proxy.wire_version == VERSION
            assert proxy.echo({"k": (1, 2)}) == {"k": (1, 2)}

    def test_required_binary_against_json_daemon_raises(self, json_daemon):
        _, uri = json_daemon
        with Proxy(uri, binary=True) as proxy:
            with pytest.raises(ProtocolError):
                proxy.echo(1)

    def test_negotiation_survives_reconnect(self, reactor_daemon):
        _, uri = reactor_daemon
        with Proxy(uri) as proxy:
            proxy.echo(1)
            assert proxy.wire_version == BINARY_VERSION
            proxy.close()  # drop the connection, keep the proxy
            assert proxy.echo(2) == 2
            assert proxy.wire_version == BINARY_VERSION

    def test_reconnect_to_downgraded_peer_renegotiates(self):
        # the endpoint's daemon is replaced between connections: a v2
        # reactor daemon settles the proxy on binary, then dies, and a
        # JSON-only ThreadedDaemon takes over the same host:port. The
        # cached v2 verdict must not be replayed at the new peer — the
        # next dial re-runs HELLO and settles on v1
        daemon = Daemon(host="127.0.0.1")
        daemon.register(BulkService(), object_id="Bulk")
        daemon.start_background()
        host, port = daemon.address
        uri = f"PYRO:Bulk@{host}:{port}"
        proxy = Proxy(uri)
        successor = None
        try:
            proxy.echo(1)
            assert proxy.wire_version == BINARY_VERSION
            daemon.shutdown()

            successor = ThreadedDaemon(host=host, port=port)
            successor.register(BulkService(), object_id="Bulk")
            successor.start_background()
            # the stale socket fails once; the redial must renegotiate
            with pytest.raises(Exception):
                proxy.echo(2)
            assert proxy.echo(3) == 3
            assert proxy.wire_version == VERSION
            trace = proxy.wave(100)
            np.testing.assert_allclose(trace[-1], 1.0)
        finally:
            proxy.close()
            daemon.shutdown()
            if successor is not None:
                successor.shutdown()

    def test_pool_member_renegotiates_after_daemon_swap(self):
        # same swap, but through a ProxyPool lease: the member checked
        # out after the restart carries a dead connection and a cached
        # v2 verdict; its redial must downgrade cleanly to the new peer
        from repro.rpc import ProxyPool

        daemon = Daemon(host="127.0.0.1")
        daemon.register(BulkService(), object_id="Bulk")
        daemon.start_background()
        host, port = daemon.address
        uri = f"PYRO:Bulk@{host}:{port}"
        pool = ProxyPool(uri, size=1)
        successor = None
        try:
            assert pool.call("echo", 1) == 1
            with pool.acquire() as member:
                assert member.wire_version == BINARY_VERSION
            daemon.shutdown()

            successor = ThreadedDaemon(host=host, port=port)
            successor.register(BulkService(), object_id="Bulk")
            successor.start_background()
            with pytest.raises(Exception):
                pool.call("echo", 2)
            assert pool.call("echo", 3) == 3
            with pool.acquire() as member:
                assert member.wire_version == VERSION
        finally:
            pool.close()
            daemon.shutdown()
            if successor is not None:
                successor.shutdown()

    def test_bulk_payloads_identical_across_versions(
        self, reactor_daemon, json_daemon
    ):
        _, v2_uri = reactor_daemon
        _, v1_uri = json_daemon
        with Proxy(v2_uri) as new, Proxy(v1_uri) as old:
            a, b = new.table(256), old.table(256)
            np.testing.assert_array_equal(a["potential_v"], b["potential_v"])
            np.testing.assert_array_equal(a["current_a"], b["current_a"])
            assert a["raw"] == b["raw"] == b"header"

    def test_pipelined_bulk_reads_over_binary(self, reactor_daemon):
        _, uri = reactor_daemon
        with Proxy(uri, max_inflight=8) as proxy:
            with proxy.pipeline() as pipe:
                pending = [pipe.call("chunk", 4096) for _ in range(16)]
                chunks = [p.result() for p in pending]
            # checked before close(): closing forgets the negotiation so
            # the next dial re-HELLOs (the peer may have been replaced)
            assert proxy.wire_version == BINARY_VERSION
        assert all(c == b"\xa5" * 4096 for c in chunks)


class TestCorruptFramesOverTheWire:
    def test_daemon_replies_frame_corrupt_then_closes(self, reactor_daemon):
        from repro.rpc.transport import connect_tcp
        from repro.rpc.protocol import recv_message

        _, uri = reactor_daemon
        daemon, _ = reactor_daemon
        host, port = daemon.address
        conn = connect_tcp(host, port, timeout=5.0)
        try:
            # header declares an absurd payload length: unrecoverable
            conn.sendall(
                HEADER.pack(
                    MAGIC,
                    BINARY_VERSION,
                    int(MessageType.REQUEST),
                    0,
                    1,
                    MAX_PAYLOAD + 1,
                )
            )
            reply = recv_message(conn)
            assert reply.msg_type == MessageType.ERROR
            assert reply.body.get("code") == "RPC_FRAME_CORRUPT"
        finally:
            conn.close()

    def test_client_surfaces_frame_corrupt_code(self):
        from repro.errors import code_table

        assert code_table()["RPC_FRAME_CORRUPT"] is FrameCorruptError
