"""Simulated transport: connections, firewall, RPC-over-sim."""

import threading

import pytest

from repro.clock import VirtualClock
from repro.errors import (
    AddressInUseError,
    CommunicationError,
    ConnectionClosedError,
    FirewallDeniedError,
    NetworkError,
    NoRouteError,
)
from repro.net.links import LinkSpec
from repro.net.simtransport import SimNetwork
from repro.net.topology import Topology
from repro.rpc import Daemon, Proxy, expose


def build_network(separate_data_path: bool = False) -> SimNetwork:
    topo = Topology(clock=VirtualClock())
    topo.add_facility("ACL")
    topo.add_facility("K200")
    topo.add_host("agent", "ACL")
    topo.add_host("gw", "ACL", is_gateway=True)
    topo.add_host("dgx", "K200")
    topo.add_network("hub", "ACL")
    topo.add_network("wan", "K200")
    for host, net in [("agent", "hub"), ("gw", "hub"), ("gw", "wan"), ("dgx", "wan")]:
        topo.attach(host, net, LinkSpec())
    topo.host("agent").firewall.allow_port(9000, src_facility="K200")
    return SimNetwork(topo)


class TestConnection:
    def test_listen_connect_send_recv(self):
        net = build_network()
        listener = net.listen("agent", 9000)
        accepted: list = []

        def server():
            conn = listener.accept()
            data = conn.recv_exactly(5)
            conn.sendall(data[::-1])
            accepted.append(conn)

        thread = threading.Thread(target=server)
        thread.start()
        client = net.connect("dgx", "agent", 9000)
        client.sendall(b"hello")
        assert client.recv_exactly(5) == b"olleh"
        thread.join(timeout=2.0)
        client.close()
        listener.close()

    def test_firewall_denied(self):
        net = build_network()
        net.listen("agent", 9000)
        # port 9001 not opened
        net.topology.host("agent")  # exists
        with pytest.raises(FirewallDeniedError):
            net.connect("dgx", "agent", 9001)
        assert net.connects_denied == 1

    def test_connection_refused_no_listener(self):
        net = build_network()
        with pytest.raises(CommunicationError, match="refused"):
            net.connect("dgx", "agent", 9000)

    def test_double_bind_rejected(self):
        net = build_network()
        net.listen("agent", 9000)
        with pytest.raises(AddressInUseError):
            net.listen("agent", 9000)

    def test_rebind_after_close(self):
        net = build_network()
        listener = net.listen("agent", 9000)
        listener.close()
        net.listen("agent", 9000)

    def test_bad_port(self):
        net = build_network()
        with pytest.raises(NetworkError):
            net.listen("agent", 0)

    def test_unknown_hosts(self):
        net = build_network()
        with pytest.raises(NetworkError):
            net.connect("ghost", "agent", 9000)

    def test_closed_listener_accept_raises(self):
        net = build_network()
        listener = net.listen("agent", 9000)
        listener.close()
        with pytest.raises(ConnectionClosedError):
            listener.accept()

    def test_recv_timeout(self):
        net = build_network()
        listener = net.listen("agent", 9000)
        thread = threading.Thread(target=listener.accept)
        thread.start()
        client = net.connect("dgx", "agent", 9000)
        thread.join(timeout=2.0)
        client.settimeout(0.05)
        with pytest.raises(CommunicationError):
            client.recv_exactly(1)
        client.close()

    def test_peer_close_gives_connection_closed(self):
        net = build_network()
        listener = net.listen("agent", 9000)
        server_conns = []
        thread = threading.Thread(
            target=lambda: server_conns.append(listener.accept())
        )
        thread.start()
        client = net.connect("dgx", "agent", 9000)
        thread.join(timeout=2.0)
        server_conns[0].close()
        with pytest.raises(ConnectionClosedError):
            client.recv_exactly(1)

    def test_latency_charged_on_virtual_clock(self):
        topo = Topology(clock=VirtualClock())
        topo.add_facility("F")
        topo.add_host("a", "F")
        topo.add_host("b", "F")
        topo.add_network("n", "F")
        topo.attach("a", "n", LinkSpec(latency_s=0.01))
        topo.attach("b", "n", LinkSpec(latency_s=0.01))
        topo.host("b").firewall.allow_port(1000)
        net = SimNetwork(topo)
        listener = net.listen("b", 1000)
        thread = threading.Thread(target=listener.accept)
        thread.start()
        before = net.clock.now()
        client = net.connect("a", "b", 1000)
        thread.join(timeout=2.0)
        # handshake = 2 links x 2 directions x 10 ms
        assert net.clock.now() - before >= 0.039
        client.sendall(b"xxxx")
        # one-way traversal adds 2 x 10 ms more
        assert net.clock.now() - before >= 0.059


@expose
class EchoService:
    def echo(self, value):
        return value


class TestRPCOverSim:
    def test_daemon_proxy_through_gateway(self):
        net = build_network()
        listener = net.listen("agent", 9000)
        daemon = Daemon(listener=listener)
        uri = daemon.register(EchoService(), object_id="Echo")
        daemon.start_background()
        try:
            proxy = Proxy(uri, connection_factory=net.connection_factory("dgx"))
            assert proxy.echo([1, 2, 3]) == [1, 2, 3]
            proxy.close()
        finally:
            daemon.shutdown()

    def test_route_restriction_respected(self):
        net = build_network()
        listener = net.listen("agent", 9000)
        daemon = Daemon(listener=listener)
        uri = daemon.register(EchoService(), object_id="Echo")
        daemon.start_background()
        try:
            factory = net.connection_factory("dgx", allowed_networks={"hub"})
            proxy = Proxy(uri, connection_factory=factory)
            with pytest.raises(NoRouteError):
                proxy.echo(1)
            proxy.close()
        finally:
            daemon.shutdown()
