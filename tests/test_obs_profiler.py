"""The transition-sampling span profiler and its workflow hooks."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.core.campaign import Campaign, scan_rate_strategy
from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow
from repro.obs import SpanProfiler, Tracer
from repro.obs.profiler import SCHEMA, profile_tracer

FAST = CVWorkflowSettings(e_step_v=0.002)


@pytest.fixture
def clocked():
    clock = VirtualClock()
    tracer = Tracer("prof", clock=clock)
    profiler = SpanProfiler(clock=clock)
    assert profiler.attach(tracer)
    yield clock, tracer, profiler
    profiler.detach()


class TestSelfTimeAttribution:
    def test_nested_spans_split_self_and_total(self, clocked):
        clock, tracer, profiler = clocked
        with tracer.start_as_current_span("outer"):
            clock.advance(1.0)
            with tracer.start_as_current_span("inner"):
                clock.advance(2.0)
            clock.advance(3.0)
        doc = profiler.profile()
        outer = doc["operations"]["outer"]
        inner = doc["operations"]["inner"]
        assert outer["self_s"] == pytest.approx(4.0)
        assert outer["total_s"] == pytest.approx(6.0)
        assert inner["self_s"] == pytest.approx(2.0)
        assert inner["total_s"] == pytest.approx(2.0)
        assert outer["count"] == 1 and inner["count"] == 1

    def test_repeated_operations_accumulate(self, clocked):
        clock, tracer, profiler = clocked
        for _ in range(3):
            with tracer.start_as_current_span("op"):
                clock.advance(0.5)
        stats = profiler.profile()["operations"]["op"]
        assert stats["count"] == 3
        assert stats["self_s"] == pytest.approx(1.5)

    def test_error_spans_are_counted(self, clocked):
        clock, tracer, profiler = clocked
        with pytest.raises(RuntimeError):
            with tracer.start_as_current_span("failing"):
                clock.advance(0.1)
                raise RuntimeError("boom")
        stats = profiler.profile()["operations"]["failing"]
        assert stats["errors"] == 1

    def test_hot_path_tree_follows_nesting(self, clocked):
        clock, tracer, profiler = clocked
        with tracer.start_as_current_span("root"):
            clock.advance(1.0)
            with tracer.start_as_current_span("leaf"):
                clock.advance(2.0)
        doc = profiler.profile()
        paths = {tuple(entry["path"]) for entry in doc["hot_paths"]}
        assert ("root",) in paths
        assert ("root", "leaf") in paths
        tree = doc["tree"]
        assert tree["children"][0]["name"] == "root"
        assert tree["children"][0]["children"][0]["name"] == "leaf"


class TestAttachment:
    def test_profile_document_schema(self, clocked):
        clock, tracer, profiler = clocked
        with tracer.start_as_current_span("op"):
            clock.advance(0.1)
        doc = profiler.profile()
        assert doc["schema"] == SCHEMA
        assert doc["samples_total"] >= 1
        assert doc["wall_s"] >= 0.0
        for stats in doc["operations"].values():
            assert set(stats) >= {
                "count",
                "errors",
                "self_s",
                "cpu_self_s",
                "total_s",
                "samples",
            }

    def test_single_profiler_slot(self, clocked):
        _, tracer, _ = clocked
        second = SpanProfiler()
        assert second.attach(tracer) is False

    def test_detach_restores_the_slot(self):
        tracer = Tracer("t", clock=VirtualClock())
        profiler = SpanProfiler()
        assert profiler.attach(tracer)
        assert profile_tracer(tracer) is None  # slot taken
        profiler.detach()
        assert tracer.profiler is None
        fresh = profile_tracer(tracer)  # slot free again
        assert fresh is not None and tracer.profiler is fresh
        fresh.detach()

    def test_format_table_lists_hot_operations(self, clocked):
        clock, tracer, profiler = clocked
        with tracer.start_as_current_span("slow.op"):
            clock.advance(2.0)
        table = profiler.format_table()
        assert "slow.op" in table


class TestWorkflowProfiling:
    def test_profiled_run_attaches_document(self, ice):
        result = run_cv_workflow(ice, settings=FAST, profile=True)
        assert result.succeeded
        assert result.profile is not None
        assert result.profile["schema"] == SCHEMA
        operations = result.profile["operations"]
        assert any(name.startswith("task.") for name in operations)
        # the run's own root span is profiled too, and carries the
        # tasks' time in its total
        root = operations.get("workflow.cv-workflow")
        assert root is not None and root["total_s"] > 0

    def test_unprofiled_run_stays_clean(self, ice):
        result = run_cv_workflow(ice, settings=FAST)
        assert result.profile is None
        assert ice.tracer is None or ice.tracer.profiler is None

    def test_campaign_shares_one_profiler_across_rounds(self, ice):
        ice.attach_observability(tracer=Tracer("campaign", clock=None))
        campaign = Campaign(
            ice,
            scan_rate_strategy((0.1, 0.2), base=FAST),
            profile=True,
        )
        rounds = campaign.run()
        assert len(rounds) == 2
        assert all(r.result.profile is not None for r in rounds)
        doc = campaign.profile_doc
        assert doc is not None and doc["schema"] == SCHEMA
        # one profiler across the campaign: task counts cover both rounds
        task_ops = {
            name: stats
            for name, stats in doc["operations"].items()
            if name.startswith("task.")
        }
        assert task_ops
        assert all(stats["count"] == 2 for stats in task_ops.values())
        # profiler released after the campaign
        if ice.tracer is not None:
            assert ice.tracer.profiler is None
