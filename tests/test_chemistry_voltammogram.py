"""Voltammogram container semantics."""

import numpy as np
import pytest

from repro.chemistry.voltammogram import Voltammogram


def make(n=10, cycles=1):
    per = n // cycles
    return Voltammogram(
        time_s=np.arange(n, dtype=float),
        potential_v=np.linspace(0, 1, n),
        current_a=np.sin(np.linspace(0, np.pi, n)),
        cycle_index=np.repeat(np.arange(cycles), per),
        metadata={"technique": "CV"},
    )


def test_length_and_cycles():
    trace = make(12, cycles=3)
    assert len(trace) == 12
    assert trace.n_cycles == 3


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        Voltammogram(
            time_s=np.arange(5.0),
            potential_v=np.arange(4.0),
            current_a=np.arange(5.0),
            cycle_index=np.zeros(5, dtype=int),
        )


def test_cycle_slicing():
    trace = make(12, cycles=3)
    cycle = trace.cycle(1)
    assert len(cycle) == 4
    assert set(cycle.cycle_index) == {1}


def test_cycle_missing_raises():
    with pytest.raises(IndexError):
        make(10).cycle(5)


def test_peaks():
    trace = make(11)
    e_peak, i_peak = trace.peak_anodic()
    assert i_peak == pytest.approx(1.0, abs=0.01)
    _, i_min = trace.peak_cathodic()
    assert i_min == pytest.approx(0.0, abs=0.01)


def test_dict_round_trip():
    trace = make(8)
    rebuilt = Voltammogram.from_dict(trace.to_dict())
    np.testing.assert_array_equal(rebuilt.current_a, trace.current_a)
    np.testing.assert_array_equal(rebuilt.cycle_index, trace.cycle_index)
    assert rebuilt.metadata == trace.metadata


def test_dtype_coercion():
    trace = Voltammogram(
        time_s=[0, 1, 2],
        potential_v=[0.0, 0.1, 0.2],
        current_a=[1, 2, 3],
        cycle_index=[0, 0, 0],
    )
    assert trace.time_s.dtype == np.float64
    assert trace.cycle_index.dtype == np.int64


def test_empty_trace():
    trace = Voltammogram(
        time_s=np.array([]),
        potential_v=np.array([]),
        current_a=np.array([]),
        cycle_index=np.array([], dtype=int),
    )
    assert len(trace) == 0
    assert trace.n_cycles == 0
