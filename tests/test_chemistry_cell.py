"""The electrochemical cell: liquid, purge, circuit."""

import threading

import pytest

from repro.chemistry.cell import ElectrochemicalCell, Electrode
from repro.chemistry.species import ferrocene_solution
from repro.errors import CellOverflowError, CellUnderflowError, ChemistryError


@pytest.fixture
def cell():
    return ElectrochemicalCell(capacity_ml=20.0)


@pytest.fixture
def solution():
    return ferrocene_solution(2.0)


class TestLiquid:
    def test_starts_empty(self, cell):
        assert cell.volume_ml == 0.0
        assert cell.contents is None

    def test_add_liquid(self, cell, solution):
        cell.add_liquid(5.0, solution)
        assert cell.volume_ml == pytest.approx(5.0)
        assert cell.contents is solution

    def test_overflow(self, cell, solution):
        with pytest.raises(CellOverflowError):
            cell.add_liquid(25.0, solution)

    def test_exact_capacity_ok(self, cell, solution):
        cell.add_liquid(20.0, solution)
        assert cell.volume_ml == pytest.approx(20.0)

    def test_withdraw(self, cell, solution):
        cell.add_liquid(5.0, solution)
        assert cell.withdraw_liquid(2.0) == pytest.approx(2.0)
        assert cell.volume_ml == pytest.approx(3.0)

    def test_underflow(self, cell, solution):
        cell.add_liquid(1.0, solution)
        with pytest.raises(CellUnderflowError):
            cell.withdraw_liquid(2.0)

    def test_withdraw_everything_clears_contents(self, cell, solution):
        cell.add_liquid(5.0, solution)
        cell.withdraw_liquid(5.0)
        assert cell.contents is None

    def test_drain(self, cell, solution):
        cell.add_liquid(7.5, solution)
        assert cell.drain() == pytest.approx(7.5)
        assert cell.volume_ml == 0.0

    def test_negative_volumes_rejected(self, cell, solution):
        with pytest.raises(ChemistryError):
            cell.add_liquid(-1.0, solution)
        with pytest.raises(ChemistryError):
            cell.withdraw_liquid(-1.0)

    def test_concurrent_adds_conserve_volume(self, cell, solution):
        def adder():
            for _ in range(50):
                cell.add_liquid(0.01, solution)

        threads = [threading.Thread(target=adder) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cell.volume_ml == pytest.approx(2.0)


class TestPurge:
    def test_set_and_read(self, cell):
        cell.set_purge("argon", 50.0)
        assert cell.purge == ("argon", 50.0)

    def test_zero_flow_clears_gas(self, cell):
        cell.set_purge("argon", 50.0)
        cell.set_purge("argon", 0.0)
        assert cell.purge == (None, 0.0)

    def test_negative_flow_rejected(self, cell):
        with pytest.raises(ChemistryError):
            cell.set_purge("argon", -1.0)


class TestCircuit:
    def test_starts_closed(self, cell):
        assert cell.circuit_closed

    def test_disconnect_opens(self, cell):
        cell.set_electrode_connected("working", False)
        assert not cell.circuit_closed
        assert not cell.electrode_connected("working")
        cell.set_electrode_connected("working", True)
        assert cell.circuit_closed

    def test_unknown_role(self, cell):
        with pytest.raises(ChemistryError):
            cell.set_electrode_connected("auxiliary", False)


class TestEffectiveArea:
    def test_full_immersion(self, cell, solution):
        cell.add_liquid(10.0, solution)  # above the 4 mL immersion depth
        assert cell.effective_working_area_cm2 == pytest.approx(
            cell.working.area_cm2
        )

    def test_partial_immersion_scales(self, cell, solution):
        cell.add_liquid(2.0, solution)  # half of the 4 mL depth
        assert cell.effective_working_area_cm2 == pytest.approx(
            cell.working.area_cm2 * 0.5
        )

    def test_empty_cell_zero_area(self, cell):
        assert cell.effective_working_area_cm2 == 0.0


class TestMeasurementConditions:
    def test_snapshot_fields(self, cell, solution):
        cell.add_liquid(5.0, solution)
        cell.set_purge("argon", 25.0)
        conditions = cell.measurement_conditions()
        assert conditions["volume_ml"] == pytest.approx(5.0)
        assert conditions["solution"] is solution
        assert conditions["circuit_closed"] is True
        assert conditions["purge_gas"] == "argon"
        assert conditions["area_cm2"] == pytest.approx(cell.working.area_cm2)

    def test_snapshot_reflects_open_circuit(self, cell, solution):
        cell.add_liquid(5.0, solution)
        cell.set_electrode_connected("reference", False)
        assert cell.measurement_conditions()["circuit_closed"] is False


class TestElectrode:
    def test_validation(self):
        with pytest.raises(ValueError):
            Electrode(role="bogus", material="Pt", area_cm2=1.0)
        with pytest.raises(ValueError):
            Electrode(role="working", material="Pt", area_cm2=0.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ElectrochemicalCell(capacity_ml=0.0)
