"""Live telemetry streaming: the bus, the polling verb, the merged feed."""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.core.cv_workflow import CVWorkflowSettings
from repro.clock import VirtualClock
from repro.logging_utils import EventLog
from repro.obs import (
    MetricsRegistry,
    SessionStream,
    TelemetryBus,
    TelemetryEvent,
    TelemetryServer,
    Tracer,
)
from repro.obs.stream import KIND_METRIC, KIND_SPAN, KIND_STREAM, SCHEMA

FAST = CVWorkflowSettings(e_step_v=0.002)


class TestTelemetryBus:
    def test_publish_reaches_subscriber_in_order(self):
        bus = TelemetryBus("dgx-session", clock=VirtualClock())
        with bus.subscribe() as sub:
            for i in range(5):
                bus.publish("event", f"e{i}", index=i)
            events = sub.poll()
        assert [e.name for e in events] == [f"e{i}" for i in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        assert all(e.service == "dgx-session" for e in events)

    def test_slow_subscriber_drops_oldest_and_is_counted(self):
        metrics = MetricsRegistry()
        bus = TelemetryBus("dgx-session", clock=VirtualClock(), metrics=metrics)
        sub = bus.subscribe(capacity=4)
        for i in range(10):
            bus.publish("event", f"e{i}")
        events = sub.poll()
        # newest survive, oldest evicted
        assert [e.name for e in events] == ["e6", "e7", "e8", "e9"]
        assert sub.dropped == 6
        dropped = metrics.counter("obs.stream.dropped_total")
        assert dropped.value(half="dgx-session") == 6

    def test_publishing_never_blocks_on_closed_subscription(self):
        bus = TelemetryBus("dgx-session", clock=VirtualClock())
        sub = bus.subscribe()
        sub.close()
        bus.publish("event", "after-close")
        assert sub.poll() == []

    def test_cursor_read_pages_and_reports_gaps(self):
        bus = TelemetryBus("acl-daemon", clock=VirtualClock(), history=4)
        for i in range(10):
            bus.publish("event", f"e{i}")
        # cursor 0 fell off the ring: only the last 4 retained, 6 missed
        events, cursor, gap = bus.read_since(0)
        assert [e.name for e in events] == ["e6", "e7", "e8", "e9"]
        assert cursor == 10
        assert gap == 6
        # caught up: nothing new, no gap
        events, cursor, gap = bus.read_since(cursor)
        assert events == [] and cursor == 10 and gap == 0
        bus.publish("event", "e10")
        events, cursor, gap = bus.read_since(cursor)
        assert [e.name for e in events] == ["e10"] and gap == 0

    def test_attached_tracer_publishes_span_completions(self):
        clock = VirtualClock()
        bus = TelemetryBus("dgx-session", clock=clock)
        tracer = Tracer("t", clock=clock)
        bus.attach_tracer(tracer)
        with bus.subscribe() as sub:
            with tracer.start_as_current_span("op.one") as span:
                clock.advance(0.5)
                span.set_attribute("k", "v")
            events = sub.poll()
        assert len(events) == 1
        event = events[0]
        assert event.kind == KIND_SPAN and event.name == "op.one"
        assert event.trace_id == span.trace_id
        assert event.data["duration_s"] == pytest.approx(0.5)
        assert event.data["attributes"]["k"] == "v"
        bus.detach()

    def test_attach_tracer_filter_and_exporter_chain(self):
        clock = VirtualClock()
        bus = TelemetryBus("acl-daemon", clock=clock)
        tracer = Tracer("t", clock=clock)
        exported = []
        tracer.exporter = exported.append
        bus.attach_tracer(tracer, only=lambda s: s.name.startswith("keep."))
        with bus.subscribe() as sub:
            tracer.start_as_current_span("keep.this").end()
            tracer.start_as_current_span("drop.this").end()
            names = [e.name for e in sub.poll()]
        assert names == ["keep.this"]
        # the pre-existing exporter still sees everything (chained)
        assert [s.name for s in exported] == ["keep.this", "drop.this"]

    def test_metric_updates_flow_without_feedback_loop(self):
        metrics = MetricsRegistry()
        bus = TelemetryBus("dgx-session", clock=VirtualClock(), metrics=metrics)
        bus.observe_metrics(metrics)
        with bus.subscribe() as sub:
            metrics.counter("rpc.calls_total").inc(verb="Status_JKem")
            metrics.gauge("cell.volume_ml").set(5.0)
            events = sub.poll()
        names = {e.name for e in events}
        assert "rpc.calls_total" in names and "cell.volume_ml" in names
        # the bus's own bookkeeping counters must not echo through the
        # listener (that would publish forever)
        assert not any(n.startswith("obs.stream.") for n in names)
        update = next(e for e in events if e.name == "rpc.calls_total")
        assert update.kind == KIND_METRIC
        assert update.data["labels"] == {"verb": "Status_JKem"}
        assert update.data["value"] == 1

    def test_event_log_entries_are_published(self):
        bus = TelemetryBus("acl-daemon", clock=VirtualClock())
        log = EventLog(clock_fn=bus.clock.now)
        bus.attach_event_log(log)
        with bus.subscribe() as sub:
            log.emit("jkem", "pump.dispense", "5 ml", volume_ml=5.0)
            events = sub.poll()
        assert len(events) == 1
        assert events[0].kind == "event"
        assert events[0].name == "jkem:pump.dispense"
        assert events[0].data["data"]["volume_ml"] == 5.0

    def test_wire_round_trip_and_malformed_tolerance(self):
        bus = TelemetryBus("dgx-session", clock=VirtualClock())
        original = bus.publish("event", "e", trace_id="abc", answer=42)
        decoded = TelemetryEvent.from_wire(original.to_wire())
        assert decoded == original
        assert TelemetryEvent.from_wire("garbage") is None
        assert TelemetryEvent.from_wire({"seq": "not-an-int"}) is None


class TestTelemetryServer:
    def test_poll_verb_serves_the_daemon_bus(self, ice):
        ice.telemetry_bus.publish("event", "test.ping", payload=1)
        proxy = ice.telemetry_client()
        try:
            reply = proxy.Telemetry_Poll(cursor=0)
        finally:
            proxy.close()
        assert reply["schema"] == SCHEMA
        assert reply["service"] == "acl-daemon"
        assert reply["gap"] == 0
        names = [e["name"] for e in reply["events"]]
        assert "test.ping" in names
        assert reply["cursor"] >= 1

    def test_poll_cursor_advances_incrementally(self, ice):
        proxy = ice.telemetry_client()
        try:
            first = proxy.Telemetry_Poll(cursor=0)
            ice.telemetry_bus.publish("event", "test.after")
            second = proxy.Telemetry_Poll(cursor=first["cursor"])
        finally:
            proxy.close()
        names = [e["name"] for e in second["events"]]
        # the poll RPC itself logs a daemon event, so don't assert an
        # exact list — only that nothing before the cursor repeats
        assert "test.after" in names
        assert all(e["seq"] > first["cursor"] for e in second["events"])

    def test_direct_server_reports_gap(self):
        bus = TelemetryBus("acl-daemon", clock=VirtualClock(), history=2)
        server = TelemetryServer(bus)
        for i in range(5):
            bus.publish("event", f"e{i}")
        reply = server.Telemetry_Poll(cursor=0)
        assert reply["gap"] == 3
        assert [e["name"] for e in reply["events"]] == ["e3", "e4"]


class TestSessionStream:
    def test_live_feed_during_workflow(self, ice):
        """Acceptance: a subscriber sees task spans and metric/health
        events *while* ``run_cv_workflow`` is still running."""
        with repro.connect(ice) as session:
            outcome = {}

            def run():
                outcome["result"] = session.run_workflow(settings=FAST)

            worker = threading.Thread(target=run)
            batches: list[list[TelemetryEvent]] = []
            with session.stream() as stream:
                worker.start()
                try:
                    while worker.is_alive():
                        batches.append(stream.drain())
                        time.sleep(0.02)
                finally:
                    worker.join()
                after = stream.drain()
            seen_live = [e for batch in batches for e in batch]
            assert outcome["result"].succeeded
            # the live window (before the run returned) saw task spans...
            live_task_spans = [
                e
                for e in seen_live
                if e.kind == KIND_SPAN and e.name.startswith("task.")
            ]
            assert live_task_spans, "no task span observed before the run returned"
            # ...and at least one metric or health event
            assert any(
                e.kind in ("metric", "health") for e in seen_live
            ), "no metric/health event observed before the run returned"
            # both halves contribute to the merged feed
            services = {e.service for e in seen_live + after}
            assert "dgx-session" in services
            assert "acl-daemon" in services
            # each drained batch is merged in time order (global order
            # across batches is not promised: the remote poll lags)
            for batch in batches:
                stamps = [e.timestamp for e in batch]
                assert stamps == sorted(stamps)

    def test_remote_failure_degrades_with_synthetic_event(self):
        bus = TelemetryBus("dgx-session", clock=VirtualClock())

        def broken_client():
            raise ConnectionError("partitioned")

        stream = SessionStream(bus, remote_client_fn=broken_client)
        events = stream.drain()
        names = [e.name for e in events]
        assert "stream.remote_poll_failed" in names
        failed = next(e for e in events if e.name == "stream.remote_poll_failed")
        assert failed.kind == KIND_STREAM
        assert stream.remote_poll_failures >= 1
        # local publishing still flows
        bus.publish("event", "local.still.works")
        assert "local.still.works" in [e.name for e in stream.drain()]
        stream.close()

    def test_remote_gap_surfaces_cursor_gap_event(self):
        metrics = MetricsRegistry()
        local = TelemetryBus("dgx-session", clock=VirtualClock(), metrics=metrics)
        remote = TelemetryBus("acl-daemon", clock=VirtualClock(), history=2)
        server = TelemetryServer(remote)

        class InProcessClient:
            def Telemetry_Poll(self, cursor=0, max_events=256):
                return server.Telemetry_Poll(cursor, max_events)

            def close(self):
                pass

        stream = SessionStream(local, remote_client_fn=InProcessClient)
        for i in range(6):
            remote.publish("event", f"e{i}")
        events = stream.drain()
        gap_events = [e for e in events if e.name == "stream.cursor_gap"]
        assert len(gap_events) == 1
        assert gap_events[0].data["missed"] == 4
        assert stream.remote_gap_total == 4
        assert metrics.counter("obs.stream.dropped_total").value(half="remote") == 4
        # the retained remote events did arrive
        assert {"e4", "e5"} <= {e.name for e in events}
        stream.close()

    def test_stream_without_remote_half_is_local_only(self):
        bus = TelemetryBus("dgx-session", clock=VirtualClock())
        stream = SessionStream(bus, remote_client_fn=None)
        bus.publish("event", "only.local")
        events = stream.drain()
        assert [e.name for e in events] == ["only.local"]
        stream.close()


class TestHealthTransitions:
    def test_status_change_is_published_once(self):
        metrics = MetricsRegistry()
        bus = TelemetryBus("dgx-session", clock=VirtualClock(), metrics=metrics)
        from repro.obs import HealthEngine

        engine = HealthEngine(metrics, bus=bus)
        flip = {"status": None}

        def probe():
            return (flip["status"], "forced") if flip["status"] else None

        engine.register_probe("workflow", probe)
        with bus.subscribe() as sub:
            engine.evaluate()  # healthy: first evaluation is a transition
            engine.evaluate()  # still healthy: no event
            flip["status"] = "unhealthy"
            engine.evaluate()  # flip: second event
            events = [e for e in sub.poll() if e.kind == "health"]
        assert [e.data["status"] for e in events] == ["healthy", "unhealthy"]
        assert events[1].data["previous"] == "healthy"
        assert any("forced" in r for r in events[1].data["reasons"])
