"""Daemon + proxy integration over real TCP sockets."""

import threading

import numpy as np
import pytest

from repro.errors import (
    CommunicationError,
    InstrumentStateError,
    MethodNotExposedError,
    NamingError,
    RemoteInvocationError,
)
from repro.rpc import Daemon, Proxy, expose, oneway


@expose
class Service:
    def __init__(self):
        self.oneway_calls = 0
        self.oneway_done = threading.Event()

    def echo(self, value):
        return value

    def add(self, a, b=0):
        return a + b

    def double_array(self, array):
        return np.asarray(array) * 2

    def fail_known(self):
        raise InstrumentStateError("device is busy")

    def fail_unknown(self):
        raise KeyError("some key")

    def unserialisable(self):
        return object()

    @oneway
    def fire_and_forget(self, n):
        self.oneway_calls += n
        self.oneway_done.set()

    def _private(self):
        return "secret"


class Unexposed:
    def visible(self):
        return 1


@pytest.fixture
def served():
    service = Service()
    daemon = Daemon()
    uri = daemon.register(service, object_id="Svc")
    daemon.start_background()
    yield service, daemon, uri
    daemon.shutdown()


class TestBasicCalls:
    def test_echo(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            assert proxy.echo(41) == 41

    def test_kwargs(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            assert proxy.add(2, b=3) == 5

    def test_ndarray_payload(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            result = proxy.double_array(np.arange(5.0))
            np.testing.assert_allclose(result, np.arange(5.0) * 2)

    def test_many_sequential_calls_one_connection(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            for i in range(50):
                assert proxy.echo(i) == i

    def test_ping(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            proxy._pyro_ping()

    def test_metadata_lists_exposed_methods(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            meta = proxy._pyro_metadata()
        assert "echo" in meta["methods"]
        assert "_private" not in meta["methods"]
        assert "fire_and_forget" in meta["oneway"]


class TestErrors:
    def test_known_error_keeps_type(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            with pytest.raises(InstrumentStateError, match="device is busy"):
                proxy.fail_known()

    def test_unknown_error_becomes_remote_invocation(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            with pytest.raises(RemoteInvocationError) as excinfo:
                proxy.fail_unknown()
        assert excinfo.value.remote_type == "KeyError"
        assert "fail_unknown" in excinfo.value.remote_traceback

    def test_private_method_blocked_server_side(self, served):
        # bypass the client-side guard by calling _call directly
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            with pytest.raises(MethodNotExposedError):
                proxy._call("_private", (), {})

    def test_unknown_method(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            with pytest.raises(MethodNotExposedError):
                proxy.nonexistent()

    def test_unknown_object_id(self, served):
        _service, _daemon, uri = served
        bad = str(uri).replace("Svc", "Nope")
        with Proxy(bad) as proxy:
            with pytest.raises(NamingError):
                proxy.echo(1)

    def test_unserialisable_result_reported(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            with pytest.raises(Exception) as excinfo:
                proxy.unserialisable()
        assert "serialis" in str(excinfo.value).lower()

    def test_connection_refused(self):
        with Proxy("PYRO:X@127.0.0.1:1", timeout=1.0) as proxy:
            with pytest.raises(CommunicationError):
                proxy.anything()

    def test_call_survives_after_remote_error(self, served):
        _service, _daemon, uri = served
        with Proxy(uri) as proxy:
            with pytest.raises(InstrumentStateError):
                proxy.fail_known()
            assert proxy.echo("still alive") == "still alive"


class TestOneway:
    def test_oneway_method_executes(self, served):
        service, _daemon, uri = served
        with Proxy(uri) as proxy:
            proxy.fire_and_forget(5)
        assert service.oneway_done.wait(timeout=2.0)
        assert service.oneway_calls == 5

    def test_explicit_oneway_call_returns_none(self, served):
        service, _daemon, uri = served
        service.oneway_done.clear()
        with Proxy(uri) as proxy:
            assert proxy.fire_and_forget.oneway(3) is None
        assert service.oneway_done.wait(timeout=2.0)


class TestDaemonRegistry:
    def test_register_duplicate_id_rejected(self, served):
        _service, daemon, _uri = served
        with pytest.raises(NamingError):
            daemon.register(Service(), object_id="Svc")

    def test_unregister_then_call_fails(self):
        daemon = Daemon()
        uri = daemon.register(Service(), object_id="Temp")
        daemon.start_background()
        try:
            daemon.unregister("Temp")
            with Proxy(uri) as proxy:
                with pytest.raises(NamingError):
                    proxy.echo(1)
        finally:
            daemon.shutdown()

    def test_unregister_unknown_raises(self, served):
        _service, daemon, _uri = served
        with pytest.raises(NamingError):
            daemon.unregister("ghost")

    def test_auto_generated_object_id(self):
        daemon = Daemon()
        uri = daemon.register(Service())
        assert "obj_" in uri
        daemon.shutdown()

    def test_registered_ids_listing(self, served):
        _service, daemon, _uri = served
        assert daemon.registered_ids() == ["Svc"]

    def test_exposure_required_for_whole_class(self):
        daemon = Daemon()
        uri = daemon.register(Unexposed(), object_id="U")
        daemon.start_background()
        try:
            with Proxy(uri) as proxy:
                with pytest.raises(MethodNotExposedError):
                    proxy.visible()
        finally:
            daemon.shutdown()


class TestConcurrency:
    def test_concurrent_clients(self, served):
        _service, _daemon, uri = served
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                with Proxy(uri) as proxy:
                    for i in range(20):
                        assert proxy.echo([worker_id, i]) == [worker_id, i]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_shared_proxy_across_threads(self, served):
        _service, _daemon, uri = served
        errors: list[Exception] = []
        with Proxy(uri) as proxy:

            def worker() -> None:
                try:
                    for i in range(20):
                        assert proxy.echo(i) == i
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []


class TestLifecycle:
    def test_daemon_shutdown_closes_clients(self, served):
        _service, daemon, uri = served
        proxy = Proxy(uri)
        assert proxy.echo(1) == 1
        daemon.shutdown()
        with pytest.raises(Exception):
            proxy.echo(2)
        proxy.close()

    def test_proxy_reconnects_after_close(self, served):
        _service, _daemon, uri = served
        proxy = Proxy(uri)
        assert proxy.echo(1) == 1
        proxy.close()
        assert not proxy.connected
        assert proxy.echo(2) == 2
        proxy.close()

    def test_daemon_context_manager(self):
        with Daemon() as daemon:
            uri = daemon.register(Service(), object_id="Ctx")
            with Proxy(uri) as proxy:
                assert proxy.echo(1) == 1
