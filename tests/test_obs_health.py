"""Health engine: quantile estimation edges, rule verdicts, the gate.

The tier-1 half exercises :func:`bucket_quantile` /
:meth:`Histogram.quantile` edge cases and each :class:`HealthEngine`
rule against hand-incremented counters; the e2e half checks the
acceptance pair — a clean run reports ``healthy``, a chaos partition
reports ``unhealthy`` — through ``session.health()``.
"""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.core.cv_workflow import CVWorkflowSettings
from repro.errors import HealthGateError
from repro.obs import MetricsRegistry, bucket_quantile
from repro.obs.health import (
    DEGRADED,
    HEALTHY,
    SUBSYSTEMS,
    UNHEALTHY,
    HealthEngine,
    HealthThresholds,
    require_healthy,
    worst,
)
from repro.resilience import RetryPolicy


class TestBucketQuantile:
    def test_empty_distribution_returns_none(self):
        assert (
            bucket_quantile((1.0, 2.0), [0, 0, 0], 0, 0.5, 0.0, 0.0) is None
        )
        histogram = MetricsRegistry().histogram("latency", "never observed")
        assert histogram.quantile(0.95) is None

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            bucket_quantile((1.0,), [0, 0], 1, 1.5, 0.0, 1.0)
        histogram = MetricsRegistry().histogram("latency", "empty")
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_q_zero_and_one_return_observed_extremes(self):
        histogram = MetricsRegistry().histogram("latency", "two points")
        histogram.observe(0.003)
        histogram.observe(0.7)
        assert histogram.quantile(0.0) == pytest.approx(0.003)
        assert histogram.quantile(1.0) == pytest.approx(0.7)

    def test_single_observation_returns_the_observation(self):
        # the bucket bound would say 0.005; clamping to the observed
        # range must return the actual value for every q
        histogram = MetricsRegistry().histogram("latency", "one point")
        histogram.observe(0.004)
        for q in (0.1, 0.5, 0.95):
            assert histogram.quantile(q) == pytest.approx(0.004)

    def test_single_bucket_distribution(self):
        # everything in one interior bucket: interpolation stays inside
        # it and clamps to the observed extremes
        estimate = bucket_quantile((1.0, 2.0), [0, 10, 0], 10, 0.5, 1.2, 1.9)
        assert estimate == pytest.approx(1.5)
        assert bucket_quantile(
            (1.0, 2.0), [0, 10, 0], 10, 0.01, 1.2, 1.9
        ) == pytest.approx(1.2)  # clamped up to the observed minimum

    def test_inf_overflow_bucket_returns_observed_max(self):
        # rank lands past the last finite bound: the overflow bucket has
        # no upper edge, so the only honest point estimate is the max
        histogram = MetricsRegistry().histogram("latency", "huge values")
        histogram.observe(0.001)
        histogram.observe(90_000.0)
        histogram.observe(120_000.0)
        assert histogram.quantile(0.95) == pytest.approx(120_000.0)

    def test_per_label_series_are_independent(self):
        histogram = MetricsRegistry().histogram("latency", "labelled")
        histogram.observe(0.001, method="fast")
        histogram.observe(5.0, method="slow")
        assert histogram.quantile(1.0, method="fast") == pytest.approx(0.001)
        assert histogram.quantile(1.0, method="slow") == pytest.approx(5.0)
        assert histogram.quantile(0.5, method="absent") is None


def _engine(**thresholds):
    clock = VirtualClock()
    metrics = MetricsRegistry()
    engine = HealthEngine(
        metrics,
        clock=clock,
        window_s=60.0,
        thresholds=HealthThresholds(**thresholds) if thresholds else None,
    )
    return metrics, engine, clock


class TestHealthRules:
    def test_clean_registry_is_healthy_everywhere(self):
        _metrics, engine, _clock = _engine()
        report = engine.evaluate()
        assert report.status == HEALTHY
        assert report.healthy and not report.unhealthy
        assert set(report.subsystems) == set(SUBSYSTEMS)
        assert report.reasons() == []

    def test_rpc_error_rate_unhealthy(self):
        metrics, engine, _clock = _engine()
        calls = metrics.counter("rpc.client.calls_total")
        for _ in range(5):
            calls.inc(method="Status_JKem", status="ok")
        for _ in range(5):
            calls.inc(method="Status_JKem", status="error")
        report = engine.evaluate()
        sub = report.subsystems["rpc"]
        assert sub.status == UNHEALTHY
        assert any("error rate" in r for r in sub.reasons)
        assert sub.details["error_rate"] == pytest.approx(0.5)

    def test_rpc_abstains_below_min_calls(self):
        # one failed call out of two is not a 50% outage
        metrics, engine, _clock = _engine()
        calls = metrics.counter("rpc.client.calls_total")
        calls.inc(method="Status_JKem", status="ok")
        calls.inc(method="Status_JKem", status="error")
        assert engine.evaluate().subsystems["rpc"].status == HEALTHY

    def test_rpc_p95_latency_thresholds(self):
        metrics, engine, _clock = _engine(
            rpc_p95_degraded_s=0.1, rpc_p95_unhealthy_s=10.0
        )
        latency = metrics.histogram("rpc.client.call_latency_s")
        for _ in range(20):
            latency.observe(0.5, method="Status_JKem")
        report = engine.evaluate()
        assert report.subsystems["rpc"].status == DEGRADED
        assert any("p95" in r for r in report.subsystems["rpc"].reasons)

    def test_breaker_gauge_states(self):
        metrics, engine, _clock = _engine()
        state = metrics.gauge("resilience.breaker.state")
        state.set(1, breaker="control")
        report = engine.evaluate()
        assert report.subsystems["resilience"].status == UNHEALTHY
        state.set(2, breaker="control")
        report = engine.evaluate()
        assert report.subsystems["resilience"].status == DEGRADED
        state.set(0, breaker="control")
        assert engine.evaluate().subsystems["resilience"].status == HEALTHY

    def test_retry_volume_degraded(self):
        metrics, engine, _clock = _engine()
        retries = metrics.counter("resilience.retries_total")
        for _ in range(3):
            retries.inc(method="Status_JKem", error_type="ConnectionError")
        assert engine.evaluate().subsystems["resilience"].status == DEGRADED

    def test_datachannel_verify_and_poll_failures(self):
        metrics, engine, _clock = _engine()
        metrics.counter("datachannel.watcher.poll_failures_total").inc(
            directory="/"
        )
        report = engine.evaluate()
        assert report.subsystems["datachannel"].status == DEGRADED
        metrics.counter("datachannel.verify_failures_total").inc(
            path="run.mpt"
        )
        report = engine.evaluate()
        assert report.subsystems["datachannel"].status == UNHEALTHY
        assert any("verify" in r for r in report.subsystems["datachannel"].reasons)

    def test_workflow_failed_and_skipped_tasks(self):
        metrics, engine, _clock = _engine()
        tasks = metrics.counter("workflow.tasks_total")
        tasks.inc(workflow="cv", task="D_run_cv", state="skipped")
        assert engine.evaluate().subsystems["workflow"].status == DEGRADED
        tasks.inc(workflow="cv", task="C_fill_cell", state="failed")
        assert engine.evaluate().subsystems["workflow"].status == UNHEALTHY

    def test_fleet_cell_crash_unhealthy(self):
        metrics, engine, _clock = _engine()
        metrics.counter("fleet.cells_total").inc(status="error")
        assert engine.evaluate().subsystems["fleet"].status == UNHEALTHY

    def test_chaos_faults_degraded(self):
        metrics, engine, _clock = _engine()
        metrics.counter("chaos.faults_total").inc(kind="link-down")
        report = engine.evaluate()
        assert report.subsystems["chaos"].status == DEGRADED
        assert report.status == DEGRADED

    def test_construction_snapshot_baselines_prior_traffic(self):
        # failures recorded before the engine existed are not its problem
        clock = VirtualClock()
        metrics = MetricsRegistry()
        for _ in range(10):
            metrics.counter("rpc.client.calls_total").inc(
                method="Status_JKem", status="error"
            )
        engine = HealthEngine(metrics, clock=clock, window_s=60.0)
        assert engine.evaluate().subsystems["rpc"].status == HEALTHY

    def test_window_expiry_forgives_old_failures(self):
        metrics, engine, clock = _engine()
        calls = metrics.counter("rpc.client.calls_total")
        for _ in range(10):
            calls.inc(method="Status_JKem", status="error")
        assert engine.evaluate().subsystems["rpc"].status == UNHEALTHY
        # once a newer baseline ages into the window the old failures
        # fall out of the delta
        clock.sleep(120.0)
        assert engine.evaluate().subsystems["rpc"].status == HEALTHY

    def test_watch_probe_escalates_with_streak(self):
        class FakeWatcher:
            failure_streak = 0

        _metrics, engine, _clock = _engine()
        watcher = FakeWatcher()
        engine.watch(watcher)
        assert engine.evaluate().subsystems["datachannel"].status == HEALTHY
        watcher.failure_streak = 1
        assert engine.evaluate().subsystems["datachannel"].status == DEGRADED
        watcher.failure_streak = 5
        report = engine.evaluate()
        assert report.subsystems["datachannel"].status == UNHEALTHY
        assert any("streak" in r for r in report.subsystems["datachannel"].reasons)

    def test_raising_probe_reports_degraded_not_crash(self):
        _metrics, engine, _clock = _engine()
        engine.register_probe(
            "rpc", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        report = engine.evaluate()
        assert report.subsystems["rpc"].status == DEGRADED
        assert any("probe raised" in r for r in report.subsystems["rpc"].reasons)

    def test_worst_helper(self):
        assert worst() == HEALTHY
        assert worst(HEALTHY, DEGRADED) == DEGRADED
        assert worst(DEGRADED, UNHEALTHY, HEALTHY) == UNHEALTHY

    def test_report_round_trips_and_formats(self):
        metrics, engine, _clock = _engine()
        metrics.counter("chaos.faults_total").inc(kind="link-down")
        report = engine.evaluate()
        as_dict = report.to_dict()
        assert as_dict["status"] == DEGRADED
        assert as_dict["subsystems"]["chaos"]["status"] == DEGRADED
        table = report.format_table()
        assert "overall" in table and "chaos" in table


class TestRequireHealthy:
    def test_no_engine_means_no_opinion(self):
        assert require_healthy(None) is None

    def test_healthy_returns_the_report(self):
        _metrics, engine, _clock = _engine()
        report = require_healthy(engine, what="campaign")
        assert report is not None and report.healthy

    def test_unhealthy_raises_with_reasons(self):
        metrics, engine, _clock = _engine()
        metrics.counter("workflow.tasks_total").inc(
            workflow="cv", task="C_fill_cell", state="failed"
        )
        with pytest.raises(HealthGateError, match="workflow: .*failed"):
            require_healthy(engine, what="campaign")


class TestSessionHealthE2E:
    def test_clean_run_reports_healthy(self):
        import repro

        with repro.connect() as session:
            result = session.run_workflow(
                settings=CVWorkflowSettings(e_step_v=0.01)
            )
            assert result.succeeded
            report = session.health()
        assert report.status == HEALTHY, report.reasons()

    def test_gate_blocks_reruns_after_a_failed_run(self):
        import repro

        with repro.connect() as session:
            # 25 mL overflows the cell: the fill task fails, the CV is
            # skipped, and the failure lands in workflow.tasks_total
            result = session.run_workflow(
                settings=CVWorkflowSettings(fill_volume_ml=25.0, e_step_v=0.01)
            )
            assert not result.succeeded
            assert session.health().unhealthy
            with pytest.raises(HealthGateError):
                session.run_workflow(
                    settings=CVWorkflowSettings(e_step_v=0.01),
                    require_healthy=True,
                )


@pytest.mark.chaos
class TestSessionHealthUnderChaos:
    def test_partition_makes_the_session_unhealthy(self):
        import repro
        from repro.facility.ice import HOST_DGX
        from repro.net.chaos import ChaosController

        settings = CVWorkflowSettings(
            resilient_client=True,
            client_retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.01, jitter="none"
            ),
        )
        with repro.connect() as session:
            chaos = ChaosController(
                session.ice.simnet, event_log=session.ice.event_log
            )
            chaos.flap_link(
                HOST_DGX, "ornl-wan", after_frames=14, down_frames=10**6
            )
            try:
                result = session.run_workflow(settings=settings)
            finally:
                chaos.stop()
            assert not result.succeeded
            report = session.health()
        assert report.unhealthy
        assert report.subsystems["workflow"].status == UNHEALTHY
        assert report.reasons()
