"""EventLog: emission, filtering, subscription."""

import threading

from repro.logging_utils import Event, EventLog


def test_emit_records_event():
    log = EventLog()
    event = log.emit("src", "kind", "hello", value=1)
    assert event.source == "src"
    assert event.data == {"value": 1}
    assert len(log) == 1


def test_filter_by_source_and_kind():
    log = EventLog()
    log.emit("a", "x", "1")
    log.emit("a", "y", "2")
    log.emit("b", "x", "3")
    assert [e.message for e in log.events(source="a")] == ["1", "2"]
    assert [e.message for e in log.events(kind="x")] == ["1", "3"]
    assert [e.message for e in log.events(source="a", kind="x")] == ["1"]


def test_messages_helper():
    log = EventLog()
    log.emit("a", "x", "first")
    log.emit("a", "x", "second")
    assert log.messages() == ["first", "second"]


def test_subscription_and_unsubscribe():
    log = EventLog()
    seen: list[str] = []
    unsubscribe = log.subscribe(lambda e: seen.append(e.message))
    log.emit("a", "x", "one")
    unsubscribe()
    log.emit("a", "x", "two")
    assert seen == ["one"]


def test_clear():
    log = EventLog()
    log.emit("a", "x", "1")
    log.clear()
    assert len(log) == 0


def test_custom_clock_function():
    log = EventLog(clock_fn=lambda: 42.0)
    assert log.emit("a", "x", "1").timestamp == 42.0


def test_format_line_and_transcript():
    log = EventLog(clock_fn=lambda: 1.0)
    log.emit("jkem.sbc", "command", "SYRINGEPUMP_RATE(1,5.000000) OK")
    transcript = log.format_transcript()
    assert "SYRINGEPUMP_RATE(1,5.000000) OK" in transcript
    assert "jkem.sbc" in transcript


def test_concurrent_emission_is_lossless():
    log = EventLog()
    n_threads, n_events = 8, 100

    def worker(tid: int) -> None:
        for i in range(n_events):
            log.emit(f"t{tid}", "k", str(i))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(log) == n_threads * n_events


def test_iteration_yields_events_in_order():
    log = EventLog()
    for i in range(5):
        log.emit("s", "k", str(i))
    assert [e.message for e in log] == [str(i) for i in range(5)]
