"""URI parsing and the name server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NamingError
from repro.rpc import (
    NameServer,
    Proxy,
    locate_name_server,
    parse_uri,
    start_name_server,
)
from repro.rpc.naming import make_uri


class TestURI:
    def test_parse_round_trip(self):
        uri = parse_uri("PYRO:ACL_Workstation@10.2.11.161:9690")
        assert uri.object_id == "ACL_Workstation"
        assert uri.host == "10.2.11.161"
        assert uri.port == 9690
        assert str(uri) == "PYRO:ACL_Workstation@10.2.11.161:9690"

    def test_parse_accepts_parsed(self):
        uri = make_uri("Obj", "host", 1234)
        assert parse_uri(uri) is uri

    def test_hostnames_allowed(self):
        assert parse_uri("PYRO:Obj@acl-control-agent:9690").host == "acl-control-agent"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not a uri",
            "PYRO:@host:1",
            "PYRO:Obj@:1",
            "PYRO:Obj@host:",
            "PYRO:Obj@host:99999",
            "PYRO:Obj@host:0",
            "pyro:Obj@host:1",
            "PYRO:Obj@host:1x",
            "PYRO:Ob j@host:1",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(NamingError):
            parse_uri(bad)

    @given(
        st.from_regex(r"[A-Za-z0-9_.\-]{1,20}", fullmatch=True),
        st.from_regex(r"[A-Za-z0-9_.\-]{1,20}", fullmatch=True),
        st.integers(min_value=1, max_value=65535),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_format_parse_inverse(self, object_id, host, port):
        uri = make_uri(object_id, host, port)
        parsed = parse_uri(str(uri))
        assert parsed == uri


class TestNameServerObject:
    def test_register_and_lookup(self):
        ns = NameServer()
        ns.register("acl.jkem", "PYRO:JKem@host:9690")
        assert ns.lookup("acl.jkem") == "PYRO:JKem@host:9690"

    def test_lookup_missing(self):
        with pytest.raises(NamingError):
            NameServer().lookup("ghost")

    def test_register_validates_uri(self):
        with pytest.raises(NamingError):
            NameServer().register("x", "garbage")

    def test_no_replace_flag(self):
        ns = NameServer()
        ns.register("a", "PYRO:X@h:1")
        with pytest.raises(NamingError):
            ns.register("a", "PYRO:Y@h:2", replace=False)

    def test_replace_default(self):
        ns = NameServer()
        ns.register("a", "PYRO:X@h:1")
        ns.register("a", "PYRO:Y@h:2")
        assert ns.lookup("a") == "PYRO:Y@h:2"

    def test_unregister(self):
        ns = NameServer()
        ns.register("a", "PYRO:X@h:1")
        ns.unregister("a")
        with pytest.raises(NamingError):
            ns.lookup("a")

    def test_unregister_missing(self):
        with pytest.raises(NamingError):
            NameServer().unregister("nope")

    def test_list_with_prefix(self):
        ns = NameServer()
        ns.register("acl.jkem", "PYRO:A@h:1")
        ns.register("acl.sp200", "PYRO:B@h:2")
        ns.register("k200.dgx", "PYRO:C@h:3")
        assert set(ns.list("acl.")) == {"acl.jkem", "acl.sp200"}
        assert len(ns.list()) == 3


class TestServedNameServer:
    def test_over_the_wire(self):
        daemon, uri = start_name_server()
        try:
            parsed = parse_uri(uri)
            client = locate_name_server(parsed.host, parsed.port)
            client.register("acl.ws", "PYRO:ACL_Workstation@agent:9690")
            assert client.lookup("acl.ws") == "PYRO:ACL_Workstation@agent:9690"
            with pytest.raises(NamingError):
                client.lookup("missing")
            client.close()
        finally:
            daemon.shutdown()
