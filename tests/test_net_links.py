"""Link specs and shared-link contention."""

import threading

import pytest

from repro.clock import VirtualClock
from repro.errors import LinkDownError
from repro.net.links import LinkSpec, SharedLink


class TestLinkSpec:
    def test_transmission_time(self):
        spec = LinkSpec(bandwidth_bps=8e6)  # 1 MB/s
        assert spec.transmission_time(1_000_000) == pytest.approx(1.0)

    def test_infinite_bandwidth(self):
        assert LinkSpec(bandwidth_bps=None).transmission_time(10**9) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_s": -1.0},
            {"bandwidth_bps": 0.0},
            {"bandwidth_bps": -5.0},
            {"jitter_s": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)


class TestSharedLink:
    def test_transmit_charges_latency_and_serialisation(self):
        clock = VirtualClock()
        link = SharedLink("l", LinkSpec(latency_s=0.01, bandwidth_bps=8e6), clock=clock)
        owed = link.transmit(1_000_000)
        assert owed == 0.0  # fully charged on the clock
        assert clock.now() == pytest.approx(1.01)

    def test_transmit_deferred_latency(self):
        clock = VirtualClock()
        link = SharedLink("l", LinkSpec(latency_s=0.01, bandwidth_bps=8e6), clock=clock)
        owed = link.transmit(1_000_000, charge_latency=False)
        assert owed == pytest.approx(0.01)
        # only the serialisation time was slept
        assert clock.now() == pytest.approx(1.0)

    def test_statistics(self):
        link = SharedLink("l", LinkSpec(), clock=VirtualClock())
        link.transmit(100)
        link.transmit(200)
        assert link.bytes_carried == 300
        assert link.transmissions == 2

    def test_down_link_raises(self):
        link = SharedLink("l", LinkSpec(), clock=VirtualClock())
        link.set_up(False)
        assert not link.is_up
        with pytest.raises(LinkDownError):
            link.transmit(1)

    def test_link_recovers(self):
        link = SharedLink("l", LinkSpec(), clock=VirtualClock())
        link.set_up(False)
        link.set_up(True)
        link.transmit(1)

    def test_jitter_bounded(self):
        clock = VirtualClock()
        spec = LinkSpec(latency_s=0.001, jitter_s=0.002)
        link = SharedLink("l", spec, clock=clock)
        for _ in range(50):
            start = clock.now()
            link.transmit(10)
            delay = clock.now() - start
            assert 0.001 <= delay <= 0.0031

    def test_contention_serialises_wall_time(self):
        # two threads pushing through a slow link take ~2x one thread
        link = SharedLink("l", LinkSpec(bandwidth_bps=8e5))  # 100 kB/s real clock
        results = []

        def sender():
            results.append(link.transmit(5_000))  # 50 ms serialisation

        threads = [threading.Thread(target=sender) for _ in range(2)]
        import time

        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.monotonic() - start
        # serialised: total >= 2 * 50 ms (some tolerance for scheduling)
        assert wall >= 0.09


class TestPriorityLink:
    def test_basic_transmit_charges_like_shared(self):
        from repro.net.links import PriorityLink

        clock = VirtualClock()
        link = PriorityLink(
            "p", LinkSpec(latency_s=0.01, bandwidth_bps=8e6), clock=clock
        )
        owed = link.transmit(1_000_000, charge_latency=False)
        assert owed == pytest.approx(0.01)
        assert clock.now() == pytest.approx(1.0)
        assert link.bytes_carried == 1_000_000
        assert link.transmissions == 1

    def test_control_preempts_queued_bulk(self):
        # Two bulk frames saturate a slow link; a control frame submitted
        # after them must finish before the second bulk frame does.
        import threading
        import time

        from repro.net.links import PriorityLink

        link = PriorityLink("p", LinkSpec(bandwidth_bps=4e6))  # 500 kB/s
        finish_order: list[str] = []
        lock = threading.Lock()

        def send(name: str, size: int, priority: int) -> None:
            link.transmit(size, priority=priority)
            with lock:
                finish_order.append(name)

        bulk_a = threading.Thread(target=send, args=("bulk-a", 100_000, 1))
        bulk_b = threading.Thread(target=send, args=("bulk-b", 100_000, 1))
        bulk_a.start()
        bulk_b.start()
        time.sleep(0.02)  # both bulk frames are in/queued
        control = threading.Thread(target=send, args=("control", 500, 0))
        control.start()
        for thread in (bulk_a, bulk_b, control):
            thread.join(timeout=10.0)
        # the control frame must not finish last
        assert finish_order[-1] != "control"
        assert set(finish_order) == {"bulk-a", "bulk-b", "control"}

    def test_down_link_raises(self):
        from repro.net.links import PriorityLink

        link = PriorityLink("p", LinkSpec(), clock=VirtualClock())
        link.set_up(False)
        with pytest.raises(LinkDownError):
            link.transmit(10)

    def test_segmentation_preserves_byte_accounting(self):
        from repro.net.links import PriorityLink

        link = PriorityLink("p", LinkSpec(), clock=VirtualClock())
        link.transmit(PriorityLink.SEGMENT_BYTES * 3 + 17)
        assert link.bytes_carried == PriorityLink.SEGMENT_BYTES * 3 + 17
        assert link.transmissions == 1
