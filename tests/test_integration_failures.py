"""Cross-facility failure injection: what breaks, and how loudly.

The value of the ICE software is not the happy path (Figs 5-7) but that
every operational failure — forgotten firewall rule, WAN outage, dead
device thread, wrong share path — surfaces as a specific, catchable
error at the workflow boundary instead of a hang.
"""

import pytest

from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow
from repro.core.workflow import TaskState
from repro.errors import (
    CommunicationError,
    FirewallDeniedError,
    InstrumentCommandError,
    LinkDownError,
    ReproError,
)
from repro.facility.ice import (
    CONTROL_PORT,
    HOST_AGENT,
    HOST_DGX,
    ElectrochemistryICE,
    ICEConfig,
)

FAST = CVWorkflowSettings(e_step_v=0.002)


class TestNetworkFailures:
    def test_forgotten_firewall_rule(self):
        ecosystem = ElectrochemistryICE.build()
        try:
            # simulate IT re-imaging the agent: rules wiped
            ecosystem.topology.host(HOST_AGENT).firewall._rules.clear()
            client = ecosystem.client()
            with pytest.raises(FirewallDeniedError):
                client.ping()
        finally:
            ecosystem.shutdown()

    def test_wan_outage_mid_session(self, ice):
        client = ice.client()
        client.ping()
        wan_link = ice.topology.link(HOST_DGX, "ornl-wan")
        wan_link.set_up(False)
        with pytest.raises((LinkDownError, ReproError)):
            client.call_Status_JKem()
        # link restored: a fresh dial works
        wan_link.set_up(True)
        client.close()
        client2 = ice.client()
        client2.ping()
        client2.close()

    def test_wan_outage_fails_workflow_task_a(self):
        ecosystem = ElectrochemistryICE.build()
        try:
            ecosystem.topology.link(HOST_DGX, "ornl-wan").set_up(False)
            result = run_cv_workflow(ecosystem, settings=FAST)
            assert not result.succeeded
            task_a = result.workflow.tasks["A_establish_communications"]
            assert task_a.state is TaskState.FAILED
            assert task_a.attempts == 2  # one retry configured
        finally:
            ecosystem.shutdown()

    def test_data_channel_outage_leaves_control_up(self, ice):
        # drop only the dedicated data links
        ice.topology.link(HOST_DGX, "ornl-wan-data").set_up(False)
        client = ice.client()
        client.ping()  # control unaffected: channel separation at work
        with pytest.raises((LinkDownError, ReproError)):
            ice.mount().listdir()
        client.close()
        ice.topology.link(HOST_DGX, "ornl-wan-data").set_up(True)

    def test_control_daemon_down(self, ice):
        ice.control_daemon.shutdown()
        client = ice.client()
        with pytest.raises((CommunicationError, ReproError)):
            client.ping()


class TestInstrumentFailures:
    def test_sbc_stopped_times_out_cleanly(self, ice):
        ice.workstation.sbc.stop()
        # shorten the serial deadline so the test is quick
        ice.workstation.jkem_api.timeout_s = 0.2
        client = ice.client()
        with pytest.raises(InstrumentCommandError, match="no response"):
            client.call_Status_JKem()
        client.close()

    def test_potentiostat_fault_fails_task_d(self, ice):
        ice.workstation.potentiostat.inject_fault("power supply trip")
        result = run_cv_workflow(ice, settings=FAST)
        assert not result.succeeded
        assert result.workflow.tasks["D_run_cv"].state is TaskState.FAILED
        assert result.workflow.tasks["E_shutdown"].state is TaskState.SKIPPED

    def test_fault_recovery_allows_next_run(self, ice):
        ice.workstation.potentiostat.inject_fault("power supply trip")
        first = run_cv_workflow(ice, settings=FAST)
        assert not first.succeeded
        ice.workstation.potentiostat.clear_fault()
        ice.workstation.cell.drain()
        second = run_cv_workflow(ice, settings=FAST)
        assert second.succeeded

    def test_stock_exhaustion_fails_fill(self):
        from repro.facility.workstation import WorkstationConfig

        ecosystem = ElectrochemistryICE.build(
            ICEConfig(workstation=WorkstationConfig(stock_volume_ml=2.0))
        )
        try:
            result = run_cv_workflow(ecosystem, settings=FAST)  # needs 5 mL
            assert not result.succeeded
            assert (
                result.workflow.tasks["C_fill_cell"].state is TaskState.FAILED
            )
        finally:
            ecosystem.shutdown()


class TestShareFailures:
    def test_measurement_file_deleted_before_fetch(self, ice):
        result = run_cv_workflow(ice, settings=FAST)
        assert result.succeeded
        target = ice.measurement_dir / result.measurement_file
        target.unlink()
        mount = ice.mount()
        from repro.errors import RemoteFileNotFoundError

        with pytest.raises(RemoteFileNotFoundError):
            mount.read_voltammogram(result.measurement_file)
        mount.unmount()

    def test_corrupted_measurement_file(self, ice):
        result = run_cv_workflow(ice, settings=FAST)
        target = ice.measurement_dir / result.measurement_file
        target.write_text("NOT A MEASUREMENT")
        mount = ice.mount()
        from repro.errors import FileFormatError

        with pytest.raises(FileFormatError):
            mount.read_voltammogram(result.measurement_file)
        mount.unmount()
