"""Live acquisition monitoring and steering."""

import pytest

from repro.core.streaming import LiveMonitor, compliance_guard
from repro.errors import WorkflowError
from repro.facility.ice import ElectrochemistryICE, ICEConfig
from repro.facility.workstation import WorkstationConfig


@pytest.fixture
def slow_ice():
    """An ICE whose acquisitions take ~0.5 s of wall time."""
    config = ICEConfig(workstation=WorkstationConfig(time_scale=0.04))
    ecosystem = ElectrochemistryICE.build(config)
    yield ecosystem
    ecosystem.shutdown()


def start_acquisition(client, e_step=0.002):
    client.call_Set_Rate_SyringePump(1, 10.0)
    client.call_Set_Vial_FractionCollector(1, "BOTTOM")
    client.call_Set_Port_SyringePump(1, 1)
    client.call_Withdraw_SyringePump(1, 5.0)
    client.call_Set_Port_SyringePump(1, 8)
    client.call_Dispense_SyringePump(1, 5.0)
    client.call_Initialize_SP200_API({"channel": 1})
    client.call_Connect_SP200()
    client.call_Load_Firmware_SP200()
    client.call_Initialize_CV_Tech_SP200({"e_step_v": e_step})
    client.call_Load_Technique_SP200()
    client.call_Start_Channel_SP200()


class TestLiveMonitor:
    def test_watch_sees_progress_then_finish(self, slow_ice):
        client = slow_ice.client()
        start_acquisition(client)
        seen: list[int] = []
        monitor = LiveMonitor(
            client,
            poll_interval_s=0.05,
            on_progress=lambda s: seen.append(s.samples_acquired),
        )
        outcome = monitor.watch(timeout_s=30.0)
        assert outcome.finished and not outcome.aborted
        assert outcome.polls >= 3
        # progress is monotone and partial values were observed mid-run
        assert seen == sorted(seen)
        assert any(0 < value < 600 for value in seen)
        client.call_Disconnect_SP200()
        client.close()

    def test_guard_aborts_early(self, slow_ice):
        client = slow_ice.client()
        start_acquisition(client)
        monitor = LiveMonitor(
            client,
            poll_interval_s=0.05,
            guard=lambda s: s.samples_acquired < 100,  # trip once data flows
        )
        outcome = monitor.watch(timeout_s=30.0)
        assert outcome.aborted and not outcome.finished
        # the instrument is still usable afterwards
        slow_ice.workstation.potentiostat.channel(1).wait(timeout=30.0)
        client.call_Disconnect_SP200()
        client.close()

    def test_compliance_guard_with_partial_data(self, slow_ice):
        client = slow_ice.client()
        start_acquisition(client)
        monitor = LiveMonitor(
            client,
            poll_interval_s=0.05,
            fetch_partial_data=True,
            guard=compliance_guard(1e-9),  # absurdly low limit: must trip
        )
        outcome = monitor.watch(timeout_s=30.0)
        assert outcome.aborted
        tripped = [
            s for s in outcome.samples if s.partial_max_abs_current is not None
        ]
        assert tripped and tripped[-1].partial_max_abs_current > 1e-9
        slow_ice.workstation.potentiostat.channel(1).wait(timeout=30.0)
        client.call_Disconnect_SP200()
        client.close()

    def test_compliance_guard_passes_under_limit(self, slow_ice):
        client = slow_ice.client()
        start_acquisition(client)
        monitor = LiveMonitor(
            client,
            poll_interval_s=0.05,
            fetch_partial_data=True,
            guard=compliance_guard(1.0),  # far above any real current
        )
        outcome = monitor.watch(timeout_s=30.0)
        assert outcome.finished and not outcome.aborted
        client.call_Disconnect_SP200()
        client.close()

    def test_timeout_raises(self, slow_ice):
        client = slow_ice.client()
        start_acquisition(client)
        monitor = LiveMonitor(client, poll_interval_s=0.05)
        with pytest.raises(WorkflowError, match="still"):
            monitor.watch(timeout_s=0.1)
        slow_ice.workstation.potentiostat.channel(1).wait(timeout=30.0)
        client.call_Disconnect_SP200()
        client.close()

    def test_bad_interval(self, slow_ice):
        client = slow_ice.client()
        with pytest.raises(WorkflowError):
            LiveMonitor(client, poll_interval_s=0.0)
        client.close()


class TestMonitorTracing:
    def test_each_poll_emits_a_span_onto_the_bus(self, slow_ice):
        from repro.obs import TelemetryBus, Tracer

        tracer = Tracer("steering")
        bus = TelemetryBus("dgx-session")
        bus.attach_tracer(tracer)
        client = slow_ice.client()
        start_acquisition(client)
        monitor = LiveMonitor(client, poll_interval_s=0.05, tracer=tracer)
        with bus.subscribe(capacity=2048) as sub:
            outcome = monitor.watch(timeout_s=30.0)
            events = [e for e in sub.poll() if e.name == "monitor.poll"]
        assert outcome.finished
        # one span per probe, each carrying the acquisition snapshot
        assert len(events) == outcome.polls
        assert events[-1].data["attributes"]["state"] == "finished"
        acquired = [e.data["attributes"]["samples_acquired"] for e in events]
        assert acquired == sorted(acquired)
        spans = tracer.find("monitor.poll")
        assert len(spans) == outcome.polls
        client.call_Disconnect_SP200()
        client.close()

    def test_ambient_span_adopts_untraced_monitor(self, slow_ice):
        from repro.obs import Tracer

        tracer = Tracer("steering")
        client = slow_ice.client()
        start_acquisition(client)
        monitor = LiveMonitor(client, poll_interval_s=0.05)  # no tracer
        with tracer.start_as_current_span("steering.loop") as root:
            outcome = monitor.watch(timeout_s=30.0)
        assert outcome.finished
        polls = tracer.find("monitor.poll")
        assert len(polls) == outcome.polls
        assert all(s.parent_id == root.span_id for s in polls)
        client.call_Disconnect_SP200()
        client.close()
