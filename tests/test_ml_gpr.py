"""Gaussian-process regression."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml.gpr import GaussianProcessRegressor, RBFKernel


class TestKernel:
    def test_matrix_shape_and_diagonal(self):
        kernel = RBFKernel(length_scale=1.0, signal_std=2.0)
        x = np.linspace(0, 1, 5)
        k_matrix = kernel(x, x)
        assert k_matrix.shape == (5, 5)
        np.testing.assert_allclose(np.diag(k_matrix), 4.0)

    def test_decay_with_distance(self):
        kernel = RBFKernel(length_scale=0.5)
        k_matrix = kernel(np.array([0.0]), np.array([0.0, 0.5, 5.0]))
        assert k_matrix[0, 0] > k_matrix[0, 1] > k_matrix[0, 2]

    def test_theta_round_trip(self):
        kernel = RBFKernel(0.3, 1.5, 0.01)
        rebuilt = RBFKernel.from_theta(kernel.theta())
        assert rebuilt.length_scale == pytest.approx(0.3)
        assert rebuilt.noise_std == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [{"length_scale": 0.0}, {"signal_std": -1.0}, {"noise_std": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(MLError):
            RBFKernel(**kwargs)


class TestGPRegression:
    def test_interpolates_smooth_function(self):
        x = np.linspace(0, 1, 40)
        y = np.sin(2 * np.pi * x)
        gp = GaussianProcessRegressor().fit(x, y)
        x_test = np.linspace(0.1, 0.9, 15)
        prediction = gp.predict(x_test)
        np.testing.assert_allclose(
            prediction, np.sin(2 * np.pi * x_test), atol=0.05
        )

    def test_noise_hyperparameter_tracks_actual_noise(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 80)
        clean = np.sin(2 * np.pi * x)
        noisy = clean + rng.normal(0, 0.2, len(x))
        gp = GaussianProcessRegressor().fit(x, noisy)
        # y is standardised inside; noise fraction ~ 0.2 / std(y) ~ 0.27
        assert 0.1 <= gp.kernel.noise_std <= 0.6

    def test_smooth_signal_gets_low_noise_estimate(self):
        x = np.linspace(0, 1, 60)
        gp = GaussianProcessRegressor().fit(x, np.sin(2 * np.pi * x))
        assert gp.kernel.noise_std < 0.05

    def test_predict_std_small_at_training_points(self):
        x = np.linspace(0, 1, 30)
        y = np.cos(3 * x)
        gp = GaussianProcessRegressor().fit(x, y)
        _, std_at_train = gp.predict(x, return_std=True)
        _, std_far = gp.predict(np.array([5.0]), return_std=True)
        assert std_at_train.mean() < std_far[0]

    def test_log_marginal_likelihood_finite(self):
        x = np.linspace(0, 1, 30)
        gp = GaussianProcessRegressor().fit(x, np.sin(x))
        assert np.isfinite(gp.log_marginal_likelihood_)

    def test_fixed_kernel_mode(self):
        kernel = RBFKernel(length_scale=0.2, signal_std=1.0, noise_std=0.1)
        x = np.linspace(0, 1, 20)
        gp = GaussianProcessRegressor(kernel=kernel)
        gp.fit(x, np.sin(x), optimize_hyperparameters=False)
        assert gp.kernel is kernel

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            GaussianProcessRegressor().predict(np.array([0.0]))

    def test_mismatched_lengths(self):
        with pytest.raises(MLError):
            GaussianProcessRegressor().fit(np.arange(5.0), np.arange(4.0))

    def test_too_few_points(self):
        with pytest.raises(MLError):
            GaussianProcessRegressor().fit(np.arange(2.0), np.arange(2.0))

    def test_normalization_handles_large_scales(self):
        x = np.linspace(0, 1, 40)
        y = 1e-5 * np.sin(2 * np.pi * x)  # current-magnitude scale
        gp = GaussianProcessRegressor().fit(x, y)
        prediction = gp.predict(x)
        np.testing.assert_allclose(prediction, y, atol=2e-6)

    def test_constant_target_does_not_crash(self):
        x = np.linspace(0, 1, 20)
        gp = GaussianProcessRegressor().fit(x, np.ones(20))
        assert np.all(np.isfinite(gp.predict(x)))

    def test_residual_std_reasonable(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 1, 60)
        y = np.sin(2 * np.pi * x) + rng.normal(0, 0.1, 60)
        gp = GaussianProcessRegressor().fit(x, y)
        assert 0.01 <= gp.residual_std() <= 0.3
