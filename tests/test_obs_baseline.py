"""Perf baselines: recording, regression verdicts, and the health probe."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.obs import BaselineStore, HealthEngine, MetricsRegistry, Tracer
from repro.obs.baseline import NEW, OK, REGRESSED, SCHEMA


def summary(name: str, mean_s: float, count: int = 5) -> dict:
    return {
        name: {
            "count": count,
            "errors": 0,
            "total_s": mean_s * count,
            "mean_s": mean_s,
            "min_s": mean_s,
            "max_s": mean_s,
            "p95_s": mean_s,
        }
    }


class TestRecordAndCompare:
    def test_round_trip_verdicts(self):
        store = BaselineStore(clock=VirtualClock())
        store.record_baseline(summary("rpc.call.Status_JKem", 0.010))
        ok = store.compare(summary("rpc.call.Status_JKem", 0.011))
        verdict = ok["rpc.call.Status_JKem"]
        assert verdict["status"] == OK
        assert verdict["ratio"] == pytest.approx(1.1)

        bad = store.compare(summary("rpc.call.Status_JKem", 0.020))
        verdict = bad["rpc.call.Status_JKem"]
        assert verdict["status"] == REGRESSED
        assert verdict["severity"] == "degraded"

        worse = store.compare(summary("rpc.call.Status_JKem", 0.040))
        assert worse["rpc.call.Status_JKem"]["severity"] == "unhealthy"

    def test_unknown_operation_is_new_not_regressed(self):
        store = BaselineStore()
        store.record_baseline(summary("a", 0.01))
        verdicts = store.compare(summary("b", 10.0))
        assert verdicts["b"]["status"] == NEW
        assert store.regressions(verdicts) == []

    def test_low_count_operations_are_not_judged(self):
        store = BaselineStore(min_count=3)
        # too few samples to record a baseline at all
        assert store.record_baseline(summary("rare", 0.01, count=2)) == {}
        store.record_baseline(summary("common", 0.01, count=3))
        # too few current samples to judge
        verdicts = store.compare(summary("common", 1.0, count=2))
        assert verdicts["common"]["status"] == OK

    def test_noise_floor_suppresses_microsecond_jitter(self):
        store = BaselineStore(min_floor_s=0.001)
        store.record_baseline(summary("tiny", 0.00005))
        verdicts = store.compare(summary("tiny", 0.0004))  # 8x, but micro
        assert verdicts["tiny"]["status"] == OK

    def test_regressions_sorted_worst_first(self):
        store = BaselineStore()
        store.record_baseline({**summary("a", 0.01), **summary("b", 0.01)})
        verdicts = store.compare({**summary("a", 0.02), **summary("b", 0.08)})
        ranked = store.regressions(verdicts)
        assert [name for name, _ in ranked] == ["b", "a"]

    def test_save_load_round_trip(self, tmp_path):
        store = BaselineStore(clock=VirtualClock(), min_count=4, min_floor_s=0.002)
        store.record_baseline(summary("op", 0.5, count=6))
        path = store.save(tmp_path / "baselines.json")
        loaded = BaselineStore.load(path)
        assert loaded.min_count == 4
        assert loaded.min_floor_s == 0.002
        assert loaded.get("op")["mean_s"] == pytest.approx(0.5)
        assert loaded.to_dict()["schema"] == SCHEMA

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"schema": "something-else", "baselines": {}}')
        with pytest.raises(ValueError, match="repro-baseline-1"):
            BaselineStore.load(path)


class TestHealthProbe:
    def _engine_with_spans(self, mean_s: float):
        clock = VirtualClock()
        tracer = Tracer("perf", clock=clock)
        for _ in range(5):
            span = tracer.start_as_current_span("op.slow")
            clock.advance(mean_s)
            span.end()
        return clock, tracer

    def test_regression_degrades_the_perf_subsystem(self):
        _, tracer = self._engine_with_spans(0.01)
        store = BaselineStore(clock=tracer.clock)
        store.record_baseline(tracer.summarize())

        clock2, tracer2 = self._engine_with_spans(0.02)
        engine = HealthEngine(MetricsRegistry(), clock=clock2)
        engine.track_baseline(store, tracer2)
        report = engine.evaluate()
        perf = report.subsystems["perf"]
        assert perf.status == "degraded"
        assert "op.slow" in " ".join(perf.reasons)
        assert report.status == "degraded"

    def test_matching_run_stays_healthy(self):
        _, tracer = self._engine_with_spans(0.01)
        store = BaselineStore(clock=tracer.clock)
        store.record_baseline(tracer.summarize())
        clock2, tracer2 = self._engine_with_spans(0.01)
        engine = HealthEngine(MetricsRegistry(), clock=clock2)
        engine.track_baseline(store, tracer2)
        assert engine.evaluate().subsystems["perf"].status == "healthy"

    def test_empty_store_reports_nothing(self):
        clock, tracer = self._engine_with_spans(0.01)
        engine = HealthEngine(MetricsRegistry(), clock=clock)
        engine.track_baseline(BaselineStore(), tracer)
        assert engine.evaluate().subsystems["perf"].status == "healthy"


class TestSessionIntegration:
    def test_record_then_track_through_the_facade(self, ice, tmp_path):
        import repro

        path = tmp_path / "baselines.json"
        with repro.connect(ice) as session:
            # a single workflow run repeats no operation min_count (3)
            # times, so probe the control channel a few times instead
            for _ in range(3):
                session.client.call_Status_JKem()
            store = session.record_baseline(path)
            assert "rpc.call.Status_JKem" in store.names()
            assert path.exists()
            # tracking the baseline we just recorded: no regression
            session.track_baseline(path)
            report = session.health()
            assert report.subsystems["perf"].status == "healthy"
