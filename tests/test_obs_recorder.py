"""Flight recorder: ring buffers, merging, the RPC verb, black boxes.

The tier-1 half covers the :class:`FlightRecorder` capture surfaces and
:func:`merge_snapshots` correlation; the chaos-marked e2e covers the
acceptance scenario — a safe-state teardown writes exactly one merged
client+daemon dump whose spans share the workflow's trace id.
"""

from __future__ import annotations

import json

import pytest

from repro.clock import VirtualClock
from repro.core.cv_workflow import CVWorkflowSettings
from repro.logging_utils import EventLog
from repro.obs import MetricsRegistry, Tracer
from repro.obs.recorder import (
    SCHEMA,
    FlightRecorder,
    FlightRecorderServer,
    is_daemon_side_span,
    merge_snapshots,
)


class TestCapture:
    def test_span_ring_is_bounded(self):
        clock = VirtualClock()
        tracer = Tracer("svc", clock=clock)
        recorder = FlightRecorder("svc", clock=clock, max_spans=5)
        recorder.attach_tracer(tracer)
        for i in range(12):
            tracer.start_span(f"op{i}").end()
        snapshot = recorder.snapshot()
        assert len(snapshot["spans"]) == 5
        # oldest entries fell off silently
        assert [s["name"] for s in snapshot["spans"]] == [
            "op7", "op8", "op9", "op10", "op11",
        ]

    def test_attach_tracer_chains_and_detaches(self):
        seen = []
        tracer = Tracer("svc", exporter=seen.append)
        recorder = FlightRecorder("svc")
        recorder.attach_tracer(tracer)
        tracer.start_span("op").end()
        assert len(seen) == 1  # the pre-existing exporter still fires
        assert len(recorder.snapshot()["spans"]) == 1
        recorder.detach()
        tracer.start_span("after").end()
        assert len(seen) == 2
        assert len(recorder.snapshot()["spans"]) == 1

    def test_only_filter_splits_the_halves(self):
        tracer = Tracer("shared")
        daemon_half = FlightRecorder("acl-daemon")
        daemon_half.attach_tracer(tracer, only=is_daemon_side_span)
        client_half = FlightRecorder("dgx-session")
        client_half.attach_tracer(
            tracer, only=lambda s: not is_daemon_side_span(s)
        )
        tracer.start_span("rpc.call.Status_JKem").end()
        tracer.start_span("rpc.dispatch.Status_JKem").end()
        tracer.start_span("instrument.Status_JKem").end()
        assert [s["name"] for s in daemon_half.snapshot()["spans"]] == [
            "rpc.dispatch.Status_JKem",
            "instrument.Status_JKem",
        ]
        assert [s["name"] for s in client_half.snapshot()["spans"]] == [
            "rpc.call.Status_JKem"
        ]

    def test_event_log_subscription_and_notes(self):
        log = EventLog()
        recorder = FlightRecorder("svc", clock=VirtualClock())
        recorder.attach_event_log(log)
        log.emit("cell", "halt", "overflow guard tripped", volume_ml=25.0)
        recorder.note("operator paged", severity="high")
        snapshot = recorder.snapshot()
        assert snapshot["events"][0]["kind"] == "halt"
        assert snapshot["events"][0]["data"]["volume_ml"] == 25.0
        assert snapshot["notes"][0]["message"] == "operator paged"

    def test_metric_snapshots_capture_final_readings(self):
        metrics = MetricsRegistry()
        recorder = FlightRecorder("svc", clock=VirtualClock())
        recorder.observe_metrics(metrics)
        metrics.counter("rpc.client.calls_total").inc(status="ok")
        snapshot = recorder.snapshot()  # takes a fresh metric snapshot
        assert snapshot["schema"] == SCHEMA
        readings = snapshot["metric_snapshots"][-1]["metrics"]
        assert any(k.startswith("rpc.client.calls_total") for k in readings)


class TestMergeSnapshots:
    @staticmethod
    def _half(service, spans):
        return {
            "schema": SCHEMA,
            "service": service,
            "captured_at": 10.0,
            "spans": spans,
            "events": [],
            "metric_snapshots": [],
            "notes": [],
        }

    def test_merge_groups_by_trace_id_across_services(self):
        client = self._half(
            "dgx-session",
            [
                {
                    "name": "rpc.call.Fill",
                    "trace_id": "t1",
                    "span_id": "c1",
                    "parent_id": None,
                    "start_time": 1.0,
                    "duration_s": 0.4,
                    "status": "OK",
                    # the shared in-process tracer stamped its own name;
                    # the capturing half must win
                    "attributes": {"service": "not-me"},
                    "service": "not-me",
                }
            ],
        )
        daemon = self._half(
            "acl-daemon",
            [
                {
                    "name": "rpc.dispatch.Fill",
                    "trace_id": "t1",
                    "span_id": "d1",
                    "parent_id": "c1",
                    "start_time": 1.1,
                    "duration_s": 0.2,
                    "status": "OK",
                }
            ],
        )
        merged = merge_snapshots([client, daemon], trigger="unit")
        assert merged["schema"] == SCHEMA and merged["trigger"] == "unit"
        assert [h["service"] for h in merged["halves"]] == [
            "dgx-session",
            "acl-daemon",
        ]
        # pooled spans: start-time order, capturing-half service
        assert [s["service"] for s in merged["spans"]] == [
            "dgx-session",
            "acl-daemon",
        ]
        trace = merged["traces"]["t1"]
        assert trace["span_count"] == 2
        assert set(trace["services"]) == {"dgx-session", "acl-daemon"}
        child = next(s for s in trace["spans"] if s["span_id"] == "d1")
        assert child["parent_id"] == "c1"


class TestDump:
    def test_dump_writes_one_sanitized_json_file(self, tmp_path):
        recorder = FlightRecorder("svc", clock=VirtualClock())
        path = recorder.dump(tmp_path, trigger="breaker open: ctl/1")
        assert path.parent == tmp_path
        assert path.name.startswith("flightrec-breaker-open--ctl-1-")
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["halves"][0]["service"] == "svc"
        assert recorder.last_dump == path
        # a second dump never overwrites the first
        again = recorder.dump(tmp_path, trigger="breaker open: ctl/1")
        assert again != path and again.exists()

    def test_dump_ignores_malformed_remote_halves(self, tmp_path):
        recorder = FlightRecorder("svc", clock=VirtualClock())
        path = recorder.dump(
            tmp_path, trigger="t", remote_snapshots=["garbage", None]
        )
        doc = json.loads(path.read_text())
        assert len(doc["halves"]) == 1


class TestRecorderServer:
    def test_recorder_dump_verb_over_the_control_channel(self, ice):
        proxy = ice.recorder_client()
        try:
            assert proxy.Recorder_Note("client says hello") is True
            snapshot = proxy.Recorder_Dump()
        finally:
            proxy.close()
        assert snapshot["schema"] == SCHEMA
        assert snapshot["service"] == "acl-daemon"
        notes = [n["message"] for n in snapshot["notes"]]
        assert "client says hello" in notes
        # the daemon's event log was attached at build time, so the
        # snapshot carries facility events
        assert isinstance(snapshot["events"], list)

    def test_server_object_id_is_stable(self):
        assert FlightRecorderServer.OBJECT_ID == "ACL_FlightRecorder"


@pytest.mark.chaos
class TestBlackBoxE2E:
    def test_safe_state_teardown_writes_merged_black_box(self, tmp_path):
        import repro

        flight_dir = tmp_path / "blackbox"
        # 25 mL overflows the cell: the fill task fails mid-experiment
        # and the safe-state teardown path fires, dump included
        settings = CVWorkflowSettings(fill_volume_ml=25.0, e_step_v=0.01)
        with repro.connect(flight_dir=flight_dir) as session:
            result = session.run_workflow(settings=settings)
            assert not result.succeeded

        dumps = list(flight_dir.glob("flightrec-safe-state-teardown-*.json"))
        assert len(dumps) == 1, "expected exactly one black box"
        doc = json.loads(dumps[0].read_text())
        assert doc["schema"] == "repro-flightrec-1"

        # both halves made it into one document
        services = {h["service"] for h in doc["halves"]}
        assert services == {"dgx-session", "acl-daemon"}

        # the workflow's trace correlates spans from both facilities:
        # the client-side task span and the daemon-side dispatch span it
        # caused share one trace id
        task_traces = [
            t
            for t in doc["traces"].values()
            if any(s["name"].startswith("task.") for s in t["spans"])
        ]
        assert task_traces
        assert any(
            {"dgx-session", "acl-daemon"} <= set(t["services"])
            for t in task_traces
        )

    def test_partitioned_channel_still_yields_client_half(self, tmp_path):
        """When the control path dies, the remote pull fails — but the
        client half must still land on disk (that is the whole point of
        a black box)."""
        import repro
        from repro.facility.ice import HOST_DGX
        from repro.net.chaos import ChaosController
        from repro.resilience import RetryPolicy

        flight_dir = tmp_path / "blackbox"
        settings = CVWorkflowSettings(
            resilient_client=True,
            client_retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.01, jitter="none"
            ),
        )
        with repro.connect(flight_dir=flight_dir) as session:
            chaos = ChaosController(
                session.ice.simnet, event_log=session.ice.event_log
            )
            chaos.flap_link(
                HOST_DGX, "ornl-wan", after_frames=14, down_frames=10**6
            )
            try:
                result = session.run_workflow(settings=settings)
            finally:
                chaos.stop()
            assert not result.succeeded

        dumps = list(flight_dir.glob("flightrec-safe-state-teardown-*.json"))
        assert dumps, "no black box written under partition"
        doc = json.loads(dumps[0].read_text())
        services = {h["service"] for h in doc["halves"]}
        assert "dgx-session" in services
