"""Campaign retry-with-refill and :class:`FleetCampaign` (ISSUE 3).

The Campaign docstring always promised that with ``abort_on_abnormal=
False`` an abnormal round is "retried once with a refilled cell"; these
tests pin the now-implemented behaviour on both branches, plus the
fleet layer: concurrent per-cell campaigns with failure isolation,
safe-state teardown, and merged provenance.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    Campaign,
    CVWorkflowSettings,
    FleetCampaign,
    scan_rate_strategy,
)
from repro.errors import WorkflowError
from repro.facility.ice import ElectrochemistryICE
from repro.ml.normality import NormalityReport
from repro.obs import MetricsRegistry, Tracer

FAST = CVWorkflowSettings(e_step_v=0.002)


def _report(normal: bool) -> NormalityReport:
    return NormalityReport(
        label="normal" if normal else "abnormal",
        normal=normal,
        confidence=0.9,
        probabilities={"normal": 0.9 if normal else 0.1},
    )


class FlipFlopClassifier:
    """Abnormal on the first sight of each measurement, normal on retry."""

    def __init__(self):
        self.calls = 0

    def classify(self, trace) -> NormalityReport:
        self.calls += 1
        return _report(self.calls % 2 == 0)


class AlwaysAbnormal:
    def classify(self, trace) -> NormalityReport:
        return _report(False)


class TestCampaignRetryWithRefill:
    def test_abnormal_round_retried_once_with_refill(self, ice):
        campaign = Campaign(
            ice,
            scan_rate_strategy((0.05, 0.1), base=FAST),
            classifier=FlipFlopClassifier(),
            abort_on_abnormal=False,
            max_rounds=8,
        )
        rounds = campaign.run()
        # each sweep point: abnormal attempt + normal retry
        assert len(rounds) == 4
        assert [r.retry_of for r in rounds] == [None, 0, None, 2]
        retry = rounds[1]
        assert retry.settings.fill_volume_ml == FAST.fill_volume_ml
        assert retry.settings.measurement_stem.endswith("_retry")
        assert retry.result.normality.normal
        # second sweep point still skips the initial fill (cell in use)
        assert rounds[2].settings.fill_volume_ml == 0.0
        # effective history hides superseded attempts, so the sweep
        # visited both scan rates exactly once
        effective = campaign.effective_rounds
        assert [r.settings.scan_rate_v_s for r in effective] == [0.05, 0.1]

    def test_abort_branch_stops_without_retry(self, ice):
        campaign = Campaign(
            ice,
            scan_rate_strategy((0.05, 0.1), base=FAST),
            classifier=AlwaysAbnormal(),
            abort_on_abnormal=True,
        )
        rounds = campaign.run()
        assert len(rounds) == 1
        assert rounds[0].retry_of is None
        assert not campaign.all_normal

    def test_retry_still_abnormal_stops_campaign(self, ice):
        campaign = Campaign(
            ice,
            scan_rate_strategy((0.05, 0.1), base=FAST),
            classifier=AlwaysAbnormal(),
            abort_on_abnormal=False,
        )
        rounds = campaign.run()
        assert len(rounds) == 2
        assert rounds[1].retry_of == 0
        assert not rounds[1].result.normality.normal

    def test_retry_respects_max_rounds(self, ice):
        campaign = Campaign(
            ice,
            scan_rate_strategy((0.05, 0.1), base=FAST),
            classifier=AlwaysAbnormal(),
            abort_on_abnormal=False,
            max_rounds=1,
        )
        rounds = campaign.run()
        assert len(rounds) == 1  # no room for the retry

    def test_normal_rounds_never_retry(self, ice):
        campaign = Campaign(
            ice,
            scan_rate_strategy((0.05, 0.1), base=FAST),
            abort_on_abnormal=False,
        )
        rounds = campaign.run()
        assert len(rounds) == 2
        assert all(r.retry_of is None for r in rounds)


def _exploding_strategy(history):
    raise RuntimeError("strategy exploded")


class TestFleetCampaign:
    def test_requires_campaigns(self):
        with pytest.raises(WorkflowError):
            FleetCampaign({})

    def test_cells_run_and_failures_isolate(self, tmp_path):
        tracer = Tracer()
        metrics = MetricsRegistry()
        ices = [ElectrochemistryICE.build() for _ in range(3)]
        try:
            fleet = FleetCampaign(
                {
                    "cell-a": Campaign(
                        ices[0], scan_rate_strategy((0.05,), base=FAST)
                    ),
                    "cell-b": Campaign(
                        ices[1], scan_rate_strategy((0.05, 0.1), base=FAST)
                    ),
                    "cell-broken": Campaign(ices[2], _exploding_strategy),
                },
                tracer=tracer,
                metrics=metrics,
            )
            results = fleet.run()

            # healthy cells completed despite the broken one
            assert results["cell-a"].succeeded
            assert len(results["cell-a"].rounds) == 1
            assert results["cell-b"].succeeded
            assert len(results["cell-b"].rounds) == 2
            # the broken cell is isolated, recorded, and quiesced
            broken = results["cell-broken"]
            assert not broken.succeeded
            assert "strategy exploded" in str(broken.error)
            assert broken.safe_stated
            assert not fleet.succeeded
            assert (
                metrics.counter("fleet.cells_total").value(status="ok") == 2
            )
            assert (
                metrics.counter("fleet.cells_total").value(status="error") == 1
            )

            # spans: three fleet.cell children under one fleet.run root
            roots = tracer.find("fleet.run")
            cells = tracer.find("fleet.cell")
            assert len(roots) == 1 and len(cells) == 3
            assert {span.parent_id for span in cells} == {
                roots[0].context.span_id
            }

            # merged provenance covers every cell and serialises cleanly
            doc = fleet.merged_provenance()
            assert doc["schema"] == "repro-fleet-provenance-1"
            assert set(doc["cells"]) == {"cell-a", "cell-b", "cell-broken"}
            assert doc["succeeded"] is False
            assert doc["cells"]["cell-broken"]["error"]
            assert doc["cells"]["cell-broken"]["safe_stated"] is True
            round_record = doc["cells"]["cell-a"]["rounds"][0]
            assert round_record["succeeded"] is True
            assert round_record["artifacts"], "measurement file hashed"
            path = fleet.write_merged_provenance(tmp_path)
            assert json.loads(path.read_text())["schema"] == doc["schema"]
        finally:
            for ecosystem in ices:
                ecosystem.shutdown()

    def test_single_cell_fleet(self, ice):
        fleet = FleetCampaign(
            {"solo": Campaign(ice, scan_rate_strategy((0.05,), base=FAST))}
        )
        results = fleet.run()
        assert fleet.succeeded
        assert results["solo"].succeeded
        assert len(results["solo"].rounds) == 1

    def test_max_workers_bound_still_runs_all(self):
        ices = [ElectrochemistryICE.build() for _ in range(3)]
        try:
            fleet = FleetCampaign(
                {
                    f"cell-{i}": Campaign(
                        ices[i], scan_rate_strategy((0.05,), base=FAST)
                    )
                    for i in range(3)
                },
                max_workers=1,
            )
            results = fleet.run()
            assert len(results) == 3
            assert all(r.succeeded for r in results.values())
        finally:
            for ecosystem in ices:
                ecosystem.shutdown()
