"""Unit helpers: conversions and physical constants."""

import math

import pytest

from repro import units


def test_faraday_constant_codata():
    assert units.FARADAY == pytest.approx(96485.332, abs=0.01)


def test_mv_volt_round_trip():
    assert units.mv_to_v(units.v_to_mv(0.123)) == pytest.approx(0.123)


def test_ua_amp_round_trip():
    assert units.a_to_ua(units.ua_to_a(42.0)) == pytest.approx(42.0)


def test_ml_liter_round_trip():
    assert units.l_to_ml(units.ml_to_l(7.5)) == pytest.approx(7.5)


def test_flow_rate_conversion():
    assert units.ml_min_to_ml_s(60.0) == pytest.approx(1.0)


def test_millimolar_to_mol_per_cm3():
    # 1 M = 1e-3 mol/cm^3, so 2 mM = 2e-6 mol/cm^3
    assert units.mm_to_mol_per_cm3(2.0) == pytest.approx(2e-6)


def test_temperature_round_trip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) == pytest.approx(25.0)


def test_nernst_slope_at_25c():
    assert units.nernst_slope(25.0, 1) == pytest.approx(0.025693, rel=1e-4)


def test_nernst_slope_scales_inverse_with_n():
    assert units.nernst_slope(25.0, 2) == pytest.approx(
        units.nernst_slope(25.0, 1) / 2
    )


def test_nernst_slope_rejects_zero_electrons():
    with pytest.raises(ValueError):
        units.nernst_slope(25.0, 0)


def test_reversible_peak_separation_is_59mv():
    # the classic 2.218 RT/nF criterion
    assert 2.218 * units.nernst_slope(25.0, 1) == pytest.approx(0.057, abs=0.001)


def test_sccm_conversion_positive():
    assert units.sccm_to_mol_s(22414.0 / 1000) == pytest.approx(
        1.0 / 1000 / 60, rel=1e-3
    )
