"""Retry policy and circuit breaker, deterministically under SimClock."""

import random

import pytest

from repro.clock import VirtualClock
from repro.errors import (
    CallTimeoutError,
    CircuitOpenError,
    CommunicationError,
    InstrumentCommandError,
    RetryExhaustedError,
)
from repro.resilience import BreakerState, CircuitBreaker, RetryPolicy


class Flaky:
    """Callable failing the first N calls, then succeeding."""

    def __init__(self, failures: int, exc: Exception | None = None):
        self.failures = failures
        self.calls = 0
        self.exc = exc or CommunicationError("boom")

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok"


class TestRetryPolicyDelays:
    def test_backoff_ceiling_doubles_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter="none"
        )
        assert policy.backoff_ceiling_s(2) == pytest.approx(0.1)
        assert policy.backoff_ceiling_s(3) == pytest.approx(0.2)
        assert policy.backoff_ceiling_s(4) == pytest.approx(0.4)
        assert policy.backoff_ceiling_s(5) == pytest.approx(0.5)  # capped
        assert policy.backoff_ceiling_s(9) == pytest.approx(0.5)

    def test_full_jitter_stays_under_ceiling(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0)
        rng = random.Random(7)
        for attempt in range(2, 8):
            ceiling = policy.backoff_ceiling_s(attempt)
            for _ in range(50):
                delay = policy.backoff_s(attempt, rng=rng)
                assert 0.0 <= delay <= ceiling

    def test_jitter_none_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter="none")
        assert policy.backoff_s(2) == policy.backoff_s(2) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter="gaussian")


class TestRetryPolicyRun:
    def test_succeeds_after_transient_failures(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, jitter="none")
        flaky = Flaky(failures=2)
        assert policy.run(flaky, clock=clock) == "ok"
        assert flaky.calls == 3
        # two backoff sleeps were charged on the virtual clock: 0.1 + 0.2
        assert clock.now() == pytest.approx(0.3)

    def test_exhaustion_raises_with_last_error(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter="none")
        flaky = Flaky(failures=99)
        with pytest.raises(RetryExhaustedError) as info:
            policy.run(flaky, clock=clock)
        assert flaky.calls == 3
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, CommunicationError)

    def test_non_retryable_error_propagates_unwrapped(self):
        policy = RetryPolicy(max_attempts=5)
        flaky = Flaky(failures=99, exc=InstrumentCommandError("bad args"))
        with pytest.raises(InstrumentCommandError):
            policy.run(flaky, clock=VirtualClock())
        assert flaky.calls == 1  # an application error is never retried

    def test_timeout_is_retryable_by_default(self):
        # CallTimeoutError subclasses CommunicationError
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter="none")
        flaky = Flaky(failures=1, exc=CallTimeoutError("deadline"))
        assert policy.run(flaky, clock=VirtualClock()) == "ok"
        assert flaky.calls == 2

    def test_deadline_stops_before_sleeping_past_it(self):
        clock = VirtualClock()
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=100.0, deadline_s=2.5, jitter="none",
        )
        flaky = Flaky(failures=99)
        with pytest.raises(RetryExhaustedError) as info:
            policy.run(flaky, clock=clock)
        # attempt 1 fails, sleeps 1s; attempt 2 fails; the next sleep (2s)
        # would cross the 2.5s deadline, so the policy gives up there
        assert flaky.calls == 2
        assert info.value.attempts == 2
        assert clock.now() == pytest.approx(1.0)

    def test_on_retry_observer_sees_attempts_and_delays(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter="none")
        observed = []
        flaky = Flaky(failures=2)
        policy.run(
            flaky,
            clock=clock,
            on_retry=lambda n, exc, d: observed.append((n, type(exc).__name__, d)),
        )
        assert observed == [
            (2, "CommunicationError", pytest.approx(0.1)),
            (3, "CommunicationError", pytest.approx(0.2)),
        ]


class TestCircuitBreaker:
    def _tripped(self, clock) -> CircuitBreaker:
        breaker = CircuitBreaker(
            failure_threshold=3, failure_rate=0.5, min_calls=3,
            cooldown_s=10.0, clock=clock,
        )
        for _ in range(3):
            breaker.record_failure()
        return breaker

    def test_trips_open_and_fails_fast(self):
        clock = VirtualClock()
        breaker = self._tripped(clock)
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        assert breaker.rejected_calls == 1

    def test_below_threshold_stays_closed(self):
        breaker = CircuitBreaker(
            failure_threshold=3, min_calls=3, clock=VirtualClock()
        )
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.before_call()  # admits

    def test_half_open_probe_success_closes(self):
        clock = VirtualClock()
        breaker = self._tripped(clock)
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.before_call()  # the probe
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.before_call()  # admits freely again

    def test_half_open_probe_failure_reopens(self):
        clock = VirtualClock()
        breaker = self._tripped(clock)
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 2

    def test_half_open_admits_one_probe_at_a_time(self):
        clock = VirtualClock()
        breaker = self._tripped(clock)
        clock.advance(10.0)
        breaker.before_call()
        with pytest.raises(CircuitOpenError, match="probe in flight"):
            breaker.before_call()

    def test_call_wrapper_records_outcomes(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, failure_rate=0.5, min_calls=2,
            cooldown_s=5.0, clock=clock,
        )
        for _ in range(2):
            with pytest.raises(CommunicationError):
                breaker.call(Flaky(failures=99))
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
