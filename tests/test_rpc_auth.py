"""HMAC challenge-response authentication on the control channel."""

import pytest

from repro.errors import AuthenticationError, ReproError
from repro.facility.client import ACLPyroClient
from repro.facility.ice import ElectrochemistryICE, ICEConfig
from repro.rpc import Daemon, Proxy, expose


@expose
class Service:
    def hello(self):
        return "hi"


@pytest.fixture
def secured():
    daemon = Daemon(secret=b"lab-secret")
    uri = daemon.register(Service(), object_id="S")
    daemon.start_background()
    yield uri, daemon
    daemon.shutdown()


class TestHandshake:
    def test_correct_secret_serves(self, secured):
        uri, _ = secured
        with Proxy(uri, secret=b"lab-secret") as proxy:
            assert proxy.hello() == "hi"
            assert proxy.hello() == "hi"  # handshake happens once

    def test_wrong_secret_rejected(self, secured):
        uri, _ = secured
        with Proxy(uri, secret=b"wrong", timeout=2.0) as proxy:
            with pytest.raises((AuthenticationError, ReproError)):
                proxy.hello()

    def test_missing_secret_rejected(self, secured):
        uri, _ = secured
        with Proxy(uri, timeout=2.0) as proxy:
            with pytest.raises(Exception):
                proxy.hello()

    def test_secret_against_open_daemon_fails(self):
        daemon = Daemon()
        uri = daemon.register(Service(), object_id="S")
        daemon.start_background()
        try:
            with Proxy(uri, secret=b"whatever", timeout=0.5) as proxy:
                with pytest.raises(Exception):
                    proxy.hello()
        finally:
            daemon.shutdown()

    def test_reconnect_reauthenticates(self, secured):
        uri, _ = secured
        proxy = Proxy(uri, secret=b"lab-secret")
        assert proxy.hello() == "hi"
        proxy.close()
        assert proxy.hello() == "hi"
        proxy.close()

    def test_failed_auth_logged(self, secured):
        uri, daemon = secured
        with Proxy(uri, secret=b"wrong", timeout=2.0) as proxy:
            with pytest.raises(Exception):
                proxy.hello()
        assert any("authentication failed" in m for m in daemon.log.messages())


class TestSecuredICE:
    def test_authorized_workflow_runs(self):
        from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow

        config = ICEConfig(control_secret=b"ornl-ice")
        with ElectrochemistryICE.build(config) as ice:
            result = run_cv_workflow(
                ice, settings=CVWorkflowSettings(e_step_v=0.002)
            )
            assert result.succeeded

    def test_unauthenticated_intruder_blocked(self):
        config = ICEConfig(control_secret=b"ornl-ice")
        with ElectrochemistryICE.build(config) as ice:
            intruder = ACLPyroClient.from_uri(
                ice.control_uri,
                connection_factory=ice.simnet.connection_factory(
                    "k200-dgx", ice.control_networks
                ),
                timeout=2.0,
            )
            with pytest.raises(Exception):
                intruder.ping()
            intruder.close()

    def test_data_channel_not_affected_by_control_secret(self):
        config = ICEConfig(control_secret=b"ornl-ice")
        with ElectrochemistryICE.build(config) as ice:
            mount = ice.mount()
            assert mount.listdir() == []
            mount.unmount()
