"""Species, solvents, and solutions."""

import pytest

from repro.chemistry.species import (
    ACETONITRILE,
    FERROCENE,
    RedoxSpecies,
    Solution,
    TBA_TRIFLATE,
    ferrocene_solution,
)
from repro.units import mm_to_mol_per_cm3


class TestRedoxSpecies:
    def test_ferrocene_parameters(self):
        assert FERROCENE.n_electrons == 1
        assert FERROCENE.formal_potential_v == pytest.approx(0.40)
        assert FERROCENE.diffusion_cm2_s == pytest.approx(2.4e-5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_electrons": 0},
            {"diffusion_cm2_s": 0.0},
            {"diffusion_cm2_s": -1e-5},
            {"k0_cm_s": 0.0},
            {"alpha": 0.0},
            {"alpha": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(name="x", formal_potential_v=0.0)
        with pytest.raises(ValueError):
            RedoxSpecies(**{**base, **kwargs})

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FERROCENE.alpha = 0.4  # type: ignore[misc]


class TestSolution:
    def test_ferrocene_solution_concentration(self):
        solution = ferrocene_solution(2.0)
        assert solution.concentration(FERROCENE) == pytest.approx(2e-6)
        assert "2 mM ferrocene" in solution.label

    def test_absent_species_zero(self):
        other = RedoxSpecies(name="other", formal_potential_v=0.1)
        assert ferrocene_solution().concentration(other) == 0.0

    def test_with_concentration_returns_copy(self):
        solution = ferrocene_solution(2.0)
        richer = solution.with_concentration_mm(FERROCENE, 5.0)
        assert richer.concentration(FERROCENE) == pytest.approx(
            mm_to_mol_per_cm3(5.0)
        )
        assert solution.concentration(FERROCENE) == pytest.approx(2e-6)

    def test_with_concentration_rejects_negative(self):
        with pytest.raises(ValueError):
            ferrocene_solution().with_concentration_mm(FERROCENE, -1.0)

    def test_supported_resistance_moderate(self):
        assert 50.0 <= ferrocene_solution().resistance_ohm <= 300.0

    def test_unsupported_resistance_high(self):
        bare = Solution(solvent=ACETONITRILE, species={})
        assert bare.resistance_ohm >= 1000.0

    def test_resistance_scales_with_salt(self):
        from repro.chemistry.species import SupportingElectrolyte

        weak = Solution(
            solvent=ACETONITRILE,
            supporting_electrolyte=SupportingElectrolyte("salt", 0.01),
        )
        strong = Solution(
            solvent=ACETONITRILE,
            supporting_electrolyte=SupportingElectrolyte("salt", 0.1),
        )
        assert weak.resistance_ohm > strong.resistance_ohm

    def test_default_electrolyte_is_tba_triflate(self):
        assert ferrocene_solution().supporting_electrolyte is TBA_TRIFLATE
