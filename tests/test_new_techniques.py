"""LSV and DPV techniques, and the general-waveform solver entry."""

import numpy as np
import pytest

from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.cv_engine import CVEngine
from repro.chemistry.species import FERROCENE, ferrocene_solution
from repro.errors import SimulationError, TechniqueError
from repro.instruments.potentiostat import (
    DPVTechnique,
    ECLabAPI,
    LSVTechnique,
    SP200,
)


@pytest.fixture
def filled_cell():
    cell = ElectrochemicalCell()
    cell.add_liquid(8.0, ferrocene_solution(2.0))
    return cell


class TestRunWaveform:
    def test_matches_cv_run(self):
        from repro.chemistry.cv_engine import CVParameters, potential_waveform

        engine = CVEngine(FERROCENE, 2e-6, 0.0707, double_layer_f_cm2=0.0)
        params = CVParameters(e_step_v=0.002)
        direct = engine.run(params)
        time, potential, cycles = potential_waveform(params)
        via_waveform = engine.run_waveform(time, potential, cycles)
        np.testing.assert_allclose(
            via_waveform.current_a, direct.current_a, rtol=1e-10
        )

    def test_rejects_nonuniform_time(self):
        engine = CVEngine(FERROCENE, 2e-6, 0.0707)
        time = np.array([0.0, 0.1, 0.3])
        with pytest.raises(SimulationError, match="uniform"):
            engine.run_waveform(time, np.zeros(3))

    def test_rejects_short_waveform(self):
        engine = CVEngine(FERROCENE, 2e-6, 0.0707)
        with pytest.raises(SimulationError):
            engine.run_waveform(np.array([0.0]), np.array([0.1]))


class TestLSV:
    def test_single_sweep_shape(self, filled_cell):
        trace = LSVTechnique(e_step_v=0.002).execute(filled_cell)
        # monotone ramp, anodic peak present
        assert np.all(np.diff(trace.potential_v) > 0)
        peak_e, peak_i = trace.peak_anodic()
        assert peak_i > 1e-5
        assert 0.41 < peak_e < 0.46

    def test_downward_sweep(self, filled_cell):
        trace = LSVTechnique(
            e_begin_v=0.8, e_end_v=0.2, e_step_v=0.002
        ).execute(filled_cell)
        assert np.all(np.diff(trace.potential_v) < 0)

    def test_validation(self):
        with pytest.raises(TechniqueError):
            LSVTechnique(scan_rate_v_s=0.0)
        with pytest.raises(TechniqueError):
            LSVTechnique(e_begin_v=0.4, e_end_v=0.4)

    def test_duration(self):
        assert LSVTechnique(
            e_begin_v=0.0, e_end_v=0.6, scan_rate_v_s=0.1
        ).duration_s() == pytest.approx(6.0)

    def test_open_circuit(self, filled_cell):
        filled_cell.set_electrode_connected("working", False)
        trace = LSVTechnique(e_step_v=0.002).execute(filled_cell)
        assert np.abs(trace.current_a).max() < 1e-6


class TestDPV:
    def test_peak_near_theory(self, filled_cell):
        technique = DPVTechnique()
        trace = technique.execute(filled_cell)
        assert len(trace) == technique.n_steps
        index = int(np.argmax(trace.current_a))
        peak_potential = trace.potential_v[index]
        # theory: peak at E1/2 - dE_pulse/2 = 0.400 - 0.025 = 0.375
        assert peak_potential == pytest.approx(0.375, abs=0.02)

    def test_differential_baseline_near_zero(self, filled_cell):
        trace = DPVTechnique().execute(filled_cell)
        # far from the wave the differential signal is tiny
        far = trace.current_a[trace.potential_v > 0.7]
        near_peak = trace.current_a.max()
        assert np.abs(far).max() < 0.1 * near_peak

    def test_peak_scales_with_concentration(self):
        def run(conc_mm):
            cell = ElectrochemicalCell()
            cell.add_liquid(8.0, ferrocene_solution(conc_mm))
            return DPVTechnique().execute(cell).current_a.max()

        # sub-linear by design: the larger currents at 4 mM suffer more
        # iR attenuation through the ~100 ohm cell resistance
        assert run(4.0) / run(2.0) == pytest.approx(2.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(TechniqueError):
            DPVTechnique(step_e_v=0.0)
        with pytest.raises(TechniqueError):
            DPVTechnique(pulse_width_s=0.3, period_s=0.2)
        with pytest.raises(TechniqueError):
            DPVTechnique(pulse_amplitude_v=0.0)

    def test_duration(self):
        technique = DPVTechnique(
            e_begin_v=0.0, e_end_v=0.1, step_e_v=0.005, period_s=0.2
        )
        assert technique.duration_s() == pytest.approx(4.0)


class TestThroughECLab:
    def test_lsv_and_dpv_pipeline(self, filled_cell, tmp_path):
        api = ECLabAPI(SP200(cell=filled_cell, noise=None), tmp_path / "m")
        api.initialize()
        api.connect()
        api.load_firmware()
        assert "LSV technique" in api.init_lsv_technique({"e_step_v": 0.002})
        api.load_technique()
        api.start_channel()
        lsv = api.get_measurements()
        assert lsv.metadata["technique"] == "LSV"
        assert "DPV technique" in api.init_dpv_technique()
        api.load_technique()
        api.start_channel()
        dpv = api.get_measurements()
        assert dpv.metadata["technique"] == "DPV"
        assert api.last_measurement_path.exists()
