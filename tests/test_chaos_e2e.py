"""Chaos e2e: the paper's CV workflow under injected network faults.

The acceptance scenario of the resilience layer: the full five-task
workflow runs to a normal voltammogram while the chaos controller flaps
the DGX's WAN uplink mid-run and resets the control-channel connection,
with zero duplicated instrument side effects; a forced abort exercises
the safe-state teardown.
"""

import pytest

from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow
from repro.core.workflow import TaskState
from repro.errors import CircuitOpenError, RetryExhaustedError
from repro.facility.ice import CONTROL_PORT, HOST_AGENT, HOST_DGX
from repro.net.chaos import ChaosController
from repro.obs import MetricsRegistry
from repro.resilience import CircuitBreaker, RetryPolicy

FAST_POLICY = RetryPolicy(max_attempts=8, base_delay_s=0.01, jitter="none")

RESILIENT = CVWorkflowSettings(
    resilient_client=True, client_retry_policy=FAST_POLICY
)


@pytest.mark.chaos
class TestWorkflowUnderChaos:
    def test_cv_workflow_survives_flap_and_reset(self, ice, trained_classifier):
        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        # mid-run (task C territory) the DGX's WAN uplink flaps ...
        chaos.flap_link(HOST_DGX, "ornl-wan", after_frames=18, down_frames=3)
        # ... and later (task D territory) every control-channel session
        # to the agent is abruptly reset at the lab hub
        chaos.reset_connections_after(
            HOST_AGENT,
            "acl-hub",
            after_frames=30,
            dst_host=HOST_AGENT,
            port=CONTROL_PORT,
        )
        try:
            result = run_cv_workflow(
                ice, settings=RESILIENT, classifier=trained_classifier
            )
        finally:
            chaos.stop()

        # both faults actually fired — otherwise this test proves nothing
        assert chaos.fired("link-down") and chaos.fired("link-up")
        resets = chaos.fired("connection-reset")
        assert resets and sum(r["connections"] for r in resets) >= 1

        # the workflow still produced the paper's result
        assert result.succeeded
        assert result.voltammogram is not None and len(result.voltammogram) > 0
        assert result.metrics is not None
        assert result.metrics.e_half_v == pytest.approx(0.40, abs=0.01)
        assert result.normality is not None and result.normality.normal

        # zero duplicated side effects: exactly one 5 mL fill reached the
        # cell even though instrument calls were retried across the faults
        status = ice.client().call_Cell_Status()
        assert status["volume_ml"] == pytest.approx(
            RESILIENT.fill_volume_ml
        )

    def test_reset_during_acquisition_replays_not_reruns(self, ice):
        """A reset arriving late hits the long-running acquisition call;
        the retried frame must be replayed from the dedup cache rather
        than starting a second acquisition."""
        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        chaos.reset_connections_after(
            HOST_AGENT,
            "acl-hub",
            after_frames=39,  # the Get_Tech_Path_Rslt exchange
            dst_host=HOST_AGENT,
            port=CONTROL_PORT,
        )
        try:
            result = run_cv_workflow(ice, settings=RESILIENT)
        finally:
            chaos.stop()
        assert chaos.fired("connection-reset")
        assert result.succeeded
        # one acquisition, one measurement file on the share
        mount = ice.mount()
        files = [s for s in mount.listdir() if s.path.endswith(".mpt")]
        mount.unmount()
        assert len(files) == 1


@pytest.mark.chaos
class TestSafeStateOnAbort:
    def test_forced_abort_runs_safe_state_teardown(self, ice):
        # 25 mL > cell capacity: task C aborts the run mid-experiment,
        # with the purge MFC already flowing from task B
        settings = CVWorkflowSettings(fill_volume_ml=25.0)
        result = run_cv_workflow(ice, settings=settings)

        assert not result.succeeded
        assert result.workflow.tasks["C_fill_cell"].state is TaskState.FAILED
        assert result.workflow.tasks["D_run_cv"].state is TaskState.SKIPPED

        # safe state reached: pumps halted, purge gas off, stat parked
        ws = ice.workstation
        assert ws.mfc.setpoint_sccm == 0.0
        assert ws.potentiostat.usb_connected is False
        assert ws.event_log.events(kind="halt")
        teardown_msgs = ice.event_log.messages(kind="teardown")
        assert any("safe state" in m for m in teardown_msgs)

    def test_partition_abort_still_runs_local_teardowns(self, ice):
        """With the control path hard-partitioned, the safe-state call
        fails — but the engine guards each teardown, so the local mount
        and client cleanup still run and the run ends, not hangs."""
        settings = CVWorkflowSettings(
            resilient_client=True,
            client_retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.01, jitter="none"
            ),
        )
        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        chaos.flap_link(HOST_DGX, "ornl-wan", after_frames=14, down_frames=10**6)
        try:
            result = run_cv_workflow(ice, settings=settings)
        finally:
            chaos.stop()

        assert not result.succeeded
        teardown_msgs = ice.event_log.messages(kind="teardown")
        # the safe-state teardown was attempted and its failure recorded,
        # without stopping the remaining teardowns
        assert any("raised" in m for m in teardown_msgs)
        assert any("executing 3 safe-state" in m for m in teardown_msgs)


@pytest.mark.chaos
class TestChaosMetrics:
    """The observability layer must *see* the faults the chaos controller
    injects — retries, reconnects and breaker trips all land in metrics."""

    def test_retry_counter_increments_under_link_flap(self, ice):
        metrics = MetricsRegistry()
        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        chaos.flap_link(HOST_DGX, "ornl-wan", after_frames=18, down_frames=3)
        try:
            result = run_cv_workflow(ice, settings=RESILIENT, metrics=metrics)
        finally:
            chaos.stop()

        assert chaos.fired("link-down") and result.succeeded
        retries = metrics.counter("resilience.retries_total")
        assert retries.total() > 0
        # every retried attempt redialled the dead connection first
        assert metrics.counter("resilience.reconnects_total").total() > 0
        # labels identify what was retried and why
        assert any(
            labels.get("error_type") for labels, _ in retries.series()
        )

    def test_breaker_open_gauge_observed_under_partition(self, ice):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=2,
            min_calls=2,
            cooldown_s=60.0,
            metrics=metrics,
            name="control",
        )
        client = ice.client(
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.01, jitter="none"
            ),
            breaker=breaker,
            metrics=metrics,
        )
        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        chaos.flap_link(HOST_DGX, "ornl-wan", after_frames=0, down_frames=10**6)
        try:
            saw_open = False
            for _ in range(8):
                try:
                    client.call_Status_JKem()
                except CircuitOpenError:
                    saw_open = True
                    break
                except (RetryExhaustedError, Exception):
                    continue
        finally:
            chaos.stop()
            client.close()

        assert saw_open, "breaker never failed fast under a hard partition"
        state = metrics.gauge("resilience.breaker.state")
        assert state.value(breaker="control") == 1  # 1 == OPEN
        assert metrics.counter(
            "resilience.breaker.opens_total"
        ).value(breaker="control") >= 1
        assert metrics.counter(
            "resilience.breaker.rejected_total"
        ).value(breaker="control") >= 1


@pytest.mark.chaos
class TestStreamUnderPartition:
    """The live feed must degrade, not hang, when its remote half dies."""

    def test_partition_surfaces_failure_events_without_hanging(self, ice):
        import time

        import repro

        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        try:
            with repro.connect(ice) as session:
                with session.stream() as stream:
                    # healthy first: the daemon half is reachable
                    ice.telemetry_bus.publish("event", "test.before")
                    first = stream.drain()
                    assert "test.before" in [e.name for e in first]
                    assert stream.remote_poll_failures == 0

                    # hard-partition the DGX's WAN uplink mid-stream
                    chaos.flap_link(
                        HOST_DGX, "ornl-wan", after_frames=0,
                        down_frames=10**6,
                    )
                    start = time.monotonic()
                    degraded = []
                    for _ in range(5):
                        degraded.extend(stream.drain())
                        if stream.remote_poll_failures:
                            break
                    elapsed = time.monotonic() - start

                    # the subscriber got synthetic events, not a hang
                    assert stream.remote_poll_failures >= 1
                    names = [e.name for e in degraded]
                    assert "stream.remote_poll_failed" in names
                    assert elapsed < 30.0, "drain must not hang on a partition"

                    # the local half keeps flowing through the outage
                    session.metrics.counter("test.alive_total").inc()
                    local = stream.drain()
                    assert any(
                        e.name == "test.alive_total" for e in local
                    )
        finally:
            chaos.stop()

    def test_feed_recovers_when_the_link_heals(self, ice):
        import repro

        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        try:
            with repro.connect(ice) as session:
                with session.stream() as stream:
                    stream.drain()  # establish the remote cursor
                    # short flap: retry traffic itself drives the heal
                    chaos.flap_link(
                        HOST_DGX, "ornl-wan", after_frames=0, down_frames=4
                    )
                    ice.telemetry_bus.publish("event", "test.during")
                    recovered = []
                    for _ in range(30):
                        recovered.extend(stream.drain())
                        if any(e.name == "test.during" for e in recovered):
                            break
                    # the poll failed at least once, then reconnected and
                    # caught up on the daemon events published meanwhile
                    assert stream.remote_poll_failures >= 1
                    assert any(e.name == "test.during" for e in recovered)
        finally:
            chaos.stop()
