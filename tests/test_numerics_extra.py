"""Extra numerical validation: GPR gradients, temperature physics, parity."""

import numpy as np
import pytest

from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.species import FERROCENE
from repro.ml.gpr import GaussianProcessRegressor, RBFKernel


class TestGPRGradients:
    """The analytic marginal-likelihood gradient must match finite
    differences — a wrong gradient silently degrades every feature vector
    the normality method sees."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gradient_matches_finite_difference(self, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.uniform(0, 1, 25))
        y = np.sin(4 * x) + rng.normal(0, 0.1, 25)
        gp = GaussianProcessRegressor()
        theta = np.log([0.3, 1.2, 0.2])
        _value, grad = gp._neg_log_marginal(theta, x, y)
        eps = 1e-6
        for index in range(3):
            theta_hi = theta.copy()
            theta_hi[index] += eps
            theta_lo = theta.copy()
            theta_lo[index] -= eps
            value_hi, _ = gp._neg_log_marginal(theta_hi, x, y)
            value_lo, _ = gp._neg_log_marginal(theta_lo, x, y)
            numeric = (value_hi - value_lo) / (2 * eps)
            assert grad[index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)


class TestTemperaturePhysics:
    def test_peak_separation_scales_with_rt(self):
        """dEp tracks 2.218 RT/nF: hotter cells have wider waves."""
        def separation(temperature_c):
            engine = CVEngine(
                FERROCENE,
                2e-6,
                0.0707,
                temperature_c=temperature_c,
                double_layer_f_cm2=0.0,
                substeps=2,
            )
            trace = engine.run(CVParameters(e_step_v=0.001))
            return trace.peak_anodic()[0] - trace.peak_cathodic()[0]

        cold = separation(5.0)
        hot = separation(60.0)
        assert hot > cold
        # ratio tracks the kelvin ratio within discretisation error
        expected = (273.15 + 60.0) / (273.15 + 5.0)
        assert hot / cold == pytest.approx(expected, rel=0.06)

    def test_peak_current_decreases_slightly_when_hot(self):
        """Randles-Sevcik: ip ~ sqrt(1/T) at fixed D."""
        def peak(temperature_c):
            engine = CVEngine(
                FERROCENE, 2e-6, 0.0707,
                temperature_c=temperature_c, double_layer_f_cm2=0.0,
            )
            return engine.run(CVParameters(e_step_v=0.002)).peak_anodic()[1]

        assert peak(60.0) < peak(5.0)


class TestTransportParity:
    """The same workflow over the simulated network and real TCP must
    produce physically identical measurements (transport must not leak
    into science)."""

    def test_sim_vs_tcp_same_metrics(self):
        from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow
        from repro.facility.ice import ElectrochemistryICE, ICEConfig

        settings = CVWorkflowSettings(e_step_v=0.002)
        metrics = {}
        for transport in ("sim", "tcp"):
            with ElectrochemistryICE.build(ICEConfig(transport=transport)) as ice:
                result = run_cv_workflow(ice, settings=settings)
                assert result.succeeded
                metrics[transport] = result.metrics
        assert metrics["sim"].anodic_peak_a == pytest.approx(
            metrics["tcp"].anodic_peak_a, rel=0.02
        )
        assert metrics["sim"].e_half_v == pytest.approx(
            metrics["tcp"].e_half_v, abs=0.005
        )


class TestAutoCatalog:
    def test_arrivals_are_indexed(self, ice, tmp_path):
        import time

        from repro.core.cv_workflow import CVWorkflowSettings, run_cv_workflow
        from repro.datachannel import MeasurementWatcher
        from repro.datachannel.catalog import MeasurementCatalog
        from repro.datachannel.watcher import auto_catalog

        cache = tmp_path / "cache"
        cache.mkdir()
        mount = ice.mount(cache_dir=cache)
        watcher = MeasurementWatcher(mount, interval_s=0.05)
        catalog = MeasurementCatalog(cache)
        stop = auto_catalog(watcher, catalog)
        try:
            run_cv_workflow(ice, settings=CVWorkflowSettings(e_step_v=0.002))
            deadline = time.monotonic() + 10.0
            while len(catalog) == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
        finally:
            stop()
            mount.unmount()
        assert len(catalog) == 1
        entry = next(iter(catalog))
        assert entry.technique == "CV"
        # stop() saved the catalog next to the cache
        assert (cache / "_catalog.json").exists()
