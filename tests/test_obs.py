"""Unit tests for the observability core: spans, metrics, exporters."""

from __future__ import annotations

import json

import pytest

from repro.clock import VirtualClock
from repro.obs import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    JsonlSpanExporter,
    SpanStatus,
    Tracer,
    child_span,
    current_span,
    extract_context,
    read_jsonl_spans,
    summarize_spans,
    use_span,
)


class TestSpans:
    def test_root_span_ids_and_timing(self):
        clock = VirtualClock()
        tracer = Tracer("svc", clock=clock)
        span = tracer.start_span("op")
        assert len(span.trace_id) == 32 and len(span.span_id) == 16
        assert span.parent_id is None
        clock.sleep(1.5)
        span.end()
        assert span.duration_s == pytest.approx(1.5)
        assert span.status == SpanStatus.OK
        assert tracer.finished_spans() == [span]

    def test_service_attribute_stamped(self):
        tracer = Tracer("dgx")
        with tracer.start_as_current_span("op") as span:
            pass
        assert span.attributes["service"] == "dgx"

    def test_current_span_nesting(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.start_as_current_span("outer") as outer:
            assert current_span() is outer
            with tracer.start_as_current_span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert current_span() is outer
        assert current_span() is None

    def test_explicit_parent_none_starts_new_trace(self):
        tracer = Tracer()
        with tracer.start_as_current_span("outer") as outer:
            root = tracer.start_span("detached", parent=None)
            assert root.parent_id is None
            assert root.trace_id != outer.trace_id
            root.end()

    def test_exception_marks_error_and_records_event(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.start_as_current_span("boom") as span:
                raise ValueError("nope")
        assert span.status == SpanStatus.ERROR
        (event,) = [e for e in span.events if e["name"] == "exception"]
        assert event["attributes"]["error_type"] == "ValueError"

    def test_mutation_after_end_is_ignored(self):
        tracer = Tracer()
        span = tracer.start_span("op")
        span.end()
        span.set_attribute("late", 1)
        span.add_event("late")
        assert "late" not in span.attributes and span.events == []
        first_end = span.end_time
        span.end(SpanStatus.ERROR)  # double end: no-op
        assert span.status == SpanStatus.OK and span.end_time == first_end

    def test_max_spans_ring_buffer(self):
        tracer = Tracer(max_spans=5)
        for i in range(8):
            tracer.start_span(f"s{i}").end()
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["s3", "s4", "s5", "s6", "s7"]
        assert len(tracer) == 5

    def test_child_span_is_noop_without_parent(self):
        with child_span("deep.layer") as span:
            assert span is None

    def test_child_span_uses_parent_tracer(self):
        tracer = Tracer()
        with tracer.start_as_current_span("task") as task:
            with child_span("instrument.X", unit=1) as span:
                assert span is not None
                assert span.parent_id == task.span_id
                assert span.attributes["unit"] == 1
        assert [s.name for s in tracer.finished_spans()] == [
            "instrument.X",
            "task",
        ]

    def test_use_span_adopts_foreign_span(self):
        tracer = Tracer()
        span = tracer.start_as_current_span("ambient")
        span.end()  # contextvar restored
        with use_span(span):
            assert current_span() is span
        assert current_span() is None
        with use_span(None):
            assert current_span() is None

    def test_find_and_summarize(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        for _ in range(3):
            s = tracer.start_span("rpc.call.ping")
            clock.sleep(0.25)
            s.end()
        assert len(tracer.find("rpc.call")) == 3
        stats = tracer.summarize()["rpc.call.ping"]
        assert stats["count"] == 3
        assert stats["mean_s"] == pytest.approx(0.25)


class TestWireContext:
    def test_inject_extract_roundtrip(self):
        tracer = Tracer()
        with tracer.start_as_current_span("client") as span:
            carrier = tracer.inject()
        ctx = extract_context(carrier)
        assert ctx is not None
        assert ctx.trace_id == span.trace_id
        assert ctx.span_id == span.span_id

    def test_inject_without_current_span(self):
        assert Tracer().inject() is None

    @pytest.mark.parametrize(
        "carrier",
        [None, "junk", 42, {}, {"trace_id": "a"}, {"trace_id": 1, "span_id": 2},
         {"trace_id": "", "span_id": ""}, ["trace_id", "span_id"]],
    )
    def test_extract_tolerates_malformed_carriers(self, carrier):
        assert extract_context(carrier) is None

    def test_remote_parenting_via_extracted_context(self):
        client, daemon = Tracer("client"), Tracer("daemon")
        with client.start_as_current_span("rpc.call.x") as call:
            carrier = client.inject()
        dispatch = daemon.start_span(
            "rpc.dispatch.x", parent=extract_context(carrier)
        )
        dispatch.end()
        assert dispatch.trace_id == call.trace_id
        assert dispatch.parent_id == call.span_id


class TestMetrics:
    def test_counter_labels_and_total(self):
        reg = MetricsRegistry()
        calls = reg.counter("calls_total")
        calls.inc(method="ping")
        calls.inc(method="ping")
        calls.inc(3, method="echo")
        assert calls.value(method="ping") == 2
        assert calls.value(method="echo") == 3
        assert calls.value(method="nope") == 0
        assert calls.total() == 5
        with pytest.raises(ValueError):
            calls.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("breaker.state")
        g.set(1, breaker="ctl")
        assert g.value(breaker="ctl") == 1
        g.inc(breaker="ctl")
        g.dec(0.5, breaker="ctl")
        assert g.value(breaker="ctl") == pytest.approx(1.5)

    def test_histogram_buckets_and_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.005 and snap["max"] == 5.0
        assert snap["buckets"] == {"0.01": 1, "0.1": 1, "1.0": 1, "+Inf": 1}
        assert h.count() == 4
        assert reg.histogram("lat").snapshot()["count"] == 4  # same instrument

    def test_get_or_create_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_summarize_and_table(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2, method="ping")
        reg.gauge("b").set(7)
        reg.histogram("c").observe(0.2)
        summary = reg.summarize()
        assert summary["a{method=ping}"] == 2
        assert summary["b"] == 7
        assert summary["c"]["count"] == 1
        table = reg.format_table()
        assert "a{method=ping}" in table and "count=1" in table
        assert MetricsRegistry().format_table() == "(no metrics recorded)"

    def test_default_latency_buckets_are_sorted(self):
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)


class TestExporters:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        clock = VirtualClock()
        tracer = Tracer("svc", clock=clock, exporter=JsonlSpanExporter(path))
        with tracer.start_as_current_span("outer"):
            s = tracer.start_as_current_span("inner")
            clock.sleep(0.5)
            s.end()
        tracer.exporter.close()
        rows = read_jsonl_spans(path)
        assert [r["name"] for r in rows] == ["inner", "outer"]
        assert rows[0]["parent_id"] == rows[1]["span_id"]
        assert rows[0]["duration_s"] == pytest.approx(0.5)
        # every line is valid standalone JSON
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_jsonl_concurrent_exports_keep_lines_whole(self, tmp_path):
        import threading

        path = tmp_path / "spans.jsonl"
        exporter = JsonlSpanExporter(path)
        clock = VirtualClock()

        def hammer(worker: int) -> None:
            tracer = Tracer(f"svc{worker}", clock=clock, exporter=exporter)
            for i in range(50):
                tracer.start_span(f"w{worker}.op{i}").end()

        threads = [
            threading.Thread(target=hammer, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        exporter.close()
        rows = read_jsonl_spans(path)
        assert len(rows) == 200
        # no interleaved/torn lines: every one parses on its own
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_jsonl_close_flushes_and_reopens_for_late_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlSpanExporter(path)
        tracer = Tracer("svc", clock=VirtualClock(), exporter=exporter)
        tracer.start_span("before").end()
        exporter.close()
        assert [r["name"] for r in read_jsonl_spans(path)] == ["before"]
        # a straggler span after close() reopens in append mode
        tracer.start_span("after").end()
        exporter.close()
        assert [r["name"] for r in read_jsonl_spans(path)] == ["before", "after"]

    def test_trace_tree_marks_orphans_as_synthetic_roots(self):
        from repro.obs import trace_tree

        clock = VirtualClock()
        tracer = Tracer("svc", clock=clock)
        with tracer.start_as_current_span("root"):
            with tracer.start_as_current_span("kept.child"):
                orphan = tracer.start_as_current_span("orphan.child")
                orphan.end()
        spans = tracer.finished_spans()
        # drop the orphan's parent from the capture (as a ring overflow
        # or a partial stream would)
        partial = [s for s in spans if s.name != "kept.child"]
        rendering = trace_tree(partial)
        lines = rendering.splitlines()
        assert any(line.startswith("… orphan.child") for line in lines)
        assert any(line.startswith("root") for line in lines)
        # full captures render unmarked
        assert "…" not in trace_tree(spans)

    def test_summarize_spans_accepts_dicts_and_spans(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        a = tracer.start_span("op")
        clock.sleep(1.0)
        a.end(SpanStatus.ERROR)
        from_spans = summarize_spans(tracer.finished_spans())
        from_dicts = summarize_spans([s.to_dict() for s in tracer.finished_spans()])
        assert from_spans == from_dicts
        assert from_spans["op"]["errors"] == 1
        assert from_spans["op"]["mean_s"] == pytest.approx(1.0)
