"""Frame protocol: encoding, stream behaviour, malformed input."""

import pytest

from repro.errors import ConnectionClosedError, ProtocolError
from repro.rpc.protocol import (
    HEADER_SIZE,
    MAGIC,
    Message,
    MessageType,
    encode_message,
    error_body,
    recv_message,
    request_body,
    send_message,
    validate_request_body,
)


class FakeStream:
    """In-memory Stream for protocol tests."""

    def __init__(self, data: bytes = b""):
        self.buffer = bytearray(data)
        self.sent = bytearray()

    def sendall(self, data: bytes) -> None:
        self.sent += data

    def recv_exactly(self, size: int) -> bytes:
        if len(self.buffer) < size:
            raise ConnectionClosedError("eof")
        out = bytes(self.buffer[:size])
        del self.buffer[:size]
        return out


def test_round_trip_request():
    msg = Message(MessageType.REQUEST, 7, request_body("Obj", "m", (1, 2), {"k": 3}))
    stream = FakeStream(encode_message(msg))
    decoded = recv_message(stream)
    assert decoded.msg_type is MessageType.REQUEST
    assert decoded.seq == 7
    assert decoded.body["object"] == "Obj"
    assert decoded.body["args"] == [1, 2]


def test_send_then_recv_via_stream():
    stream = FakeStream()
    send_message(stream, Message(MessageType.PING, 3, None))
    stream.buffer = bytearray(stream.sent)
    decoded = recv_message(stream)
    assert decoded.msg_type is MessageType.PING
    assert decoded.body is None


def test_header_is_sixteen_bytes():
    assert HEADER_SIZE == 16


def test_frame_starts_with_magic():
    frame = encode_message(Message(MessageType.PONG, 1, None))
    assert frame[:4] == MAGIC


def test_bad_magic_rejected():
    frame = bytearray(encode_message(Message(MessageType.PING, 1, None)))
    frame[0] = ord("X")
    with pytest.raises(ProtocolError, match="magic"):
        recv_message(FakeStream(bytes(frame)))


def test_bad_version_rejected():
    frame = bytearray(encode_message(Message(MessageType.PING, 1, None)))
    frame[4] = 99
    with pytest.raises(ProtocolError, match="version"):
        recv_message(FakeStream(bytes(frame)))


def test_unknown_message_type_rejected():
    frame = bytearray(encode_message(Message(MessageType.PING, 1, None)))
    frame[5] = 200
    with pytest.raises(ProtocolError, match="message type"):
        recv_message(FakeStream(bytes(frame)))


def test_truncated_frame_raises_connection_closed():
    frame = encode_message(Message(MessageType.REQUEST, 1, {"object": "x", "method": "y"}))
    with pytest.raises(ConnectionClosedError):
        recv_message(FakeStream(frame[: len(frame) - 3]))


def test_oneway_flag():
    msg = Message(MessageType.REQUEST, 1, {}, flags=1)
    assert msg.oneway
    assert not Message(MessageType.REQUEST, 1, {}).oneway


def test_validate_request_body_happy():
    body = request_body("Obj", "method", (1,), {"a": 2})
    object_id, method, args, kwargs = validate_request_body(body)
    assert (object_id, method, args, kwargs) == ("Obj", "method", [1], {"a": 2})


@pytest.mark.parametrize(
    "body",
    [
        "not a dict",
        {},
        {"object": 1, "method": "m"},
        {"object": "o", "method": 2},
        {"object": "o", "method": "m", "args": "nope"},
        {"object": "o", "method": "m", "kwargs": []},
    ],
)
def test_validate_request_body_rejects(body):
    with pytest.raises(ProtocolError):
        validate_request_body(body)


def test_error_body_fields():
    body = error_body("ValueError", "bad", "trace")
    assert body == {
        "error_type": "ValueError",
        "message": "bad",
        "traceback": "trace",
    }
