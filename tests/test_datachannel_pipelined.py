"""Pipelined read-ahead chunk fetch through :class:`Mount` (ISSUE 3).

A mount whose proxy allows more than one in-flight request fetches every
chunk of a file in one burst; these tests pin down that the pipelined
path returns byte-identical data to the serial path across file shapes,
that ``verify=`` checksum semantics survive, and that the
``pipeline_depth`` knob on :meth:`ElectrochemistryICE.mount` reaches the
share proxy.
"""

from __future__ import annotations

import threading

import pytest

from repro.datachannel.mount import Mount
from repro.datachannel.share import CHUNK_SIZE, FileShareService
from repro.errors import DataChannelError
from repro.rpc import Daemon, Proxy


@pytest.fixture()
def share(tmp_path):
    root = tmp_path / "share"
    root.mkdir()
    daemon = Daemon(host="127.0.0.1", port=0)
    uri = daemon.register(
        FileShareService(root, share_name="test"), object_id="Share"
    )
    daemon.start_background()
    yield root, uri
    daemon.shutdown()


def _mount(uri, depth=1, **kwargs) -> Mount:
    return Mount(Proxy(uri, timeout=30.0, max_inflight=depth), **kwargs)


FILE_SHAPES = {
    "empty": b"",
    "tiny": b"hello",
    "one_byte_short_of_chunk": b"a" * (CHUNK_SIZE - 1),
    "exactly_one_chunk": b"b" * CHUNK_SIZE,
    "multi_chunk": bytes(range(256)) * (3 * CHUNK_SIZE // 256) + b"tail",
    "exact_multi_chunk": b"c" * (2 * CHUNK_SIZE),
}


class TestPipelinedReads:
    @pytest.mark.parametrize("shape", sorted(FILE_SHAPES))
    def test_matches_serial_bytes(self, share, shape):
        root, uri = share
        payload = FILE_SHAPES[shape]
        (root / "data.bin").write_bytes(payload)
        serial = _mount(uri, depth=1)
        piped = _mount(uri, depth=6)
        try:
            assert serial.read_bytes("data.bin") == payload
            assert piped.read_bytes("data.bin") == payload
            assert piped.bytes_fetched == len(payload)
        finally:
            serial.unmount()
            piped.unmount()

    @pytest.mark.parametrize("depth", [1, 6])
    def test_verify_checksum(self, share, depth):
        root, uri = share
        payload = b"d" * (2 * CHUNK_SIZE + 17)
        (root / "data.bin").write_bytes(payload)
        mount = _mount(uri, depth=depth)
        try:
            assert mount.read_bytes("data.bin", verify=True) == payload
        finally:
            mount.unmount()

    def test_verify_mismatch_raises(self, share, monkeypatch):
        root, uri = share
        (root / "data.bin").write_bytes(b"e" * (CHUNK_SIZE + 5))
        mount = _mount(uri, depth=6)
        try:
            import hashlib as real_hashlib

            import repro.datachannel.mount as mount_module

            class WrongHashlib:
                @staticmethod
                def sha256(data=b""):
                    return real_hashlib.sha256(b"corrupted")

            # rebind only the mount module's hashlib, so the in-process
            # share service still computes the true checksum
            monkeypatch.setattr(mount_module, "hashlib", WrongHashlib)
            with pytest.raises(DataChannelError, match="checksum"):
                mount.read_bytes("data.bin", verify=True)
        finally:
            mount.unmount()

    def test_file_grown_after_stat_still_complete(self, share):
        """If chunks all come back full, the tail is re-read serially."""
        root, uri = share
        payload = b"f" * (2 * CHUNK_SIZE)  # exact multiple: triggers tail
        (root / "data.bin").write_bytes(payload)
        mount = _mount(uri, depth=6)
        try:
            assert mount.read_bytes("data.bin") == payload
        finally:
            mount.unmount()

    def test_smaller_read_size(self, share):
        root, uri = share
        payload = bytes(range(256)) * 64  # 16 KiB
        (root / "data.bin").write_bytes(payload)
        serial = _mount(uri, depth=1, read_size=4096)
        piped = _mount(uri, depth=8, read_size=4096)
        try:
            assert serial.read_bytes("data.bin") == payload
            assert piped.read_bytes("data.bin", verify=True) == payload
        finally:
            serial.unmount()
            piped.unmount()

    def test_read_size_validation(self, share):
        _root, uri = share
        with pytest.raises(ValueError):
            _mount(uri, read_size=0)
        clamped = _mount(uri, read_size=10 * CHUNK_SIZE)
        try:
            assert clamped.read_size == CHUNK_SIZE
        finally:
            clamped.unmount()

    def test_fetch_and_voltammogram_on_pipelined_mount(self, share, tmp_path):
        root, uri = share
        payload = b"g" * (CHUNK_SIZE + 100)
        (root / "sub").mkdir()
        (root / "sub" / "data.bin").write_bytes(payload)
        mount = Mount(
            Proxy(uri, timeout=30.0, max_inflight=4),
            cache_dir=tmp_path / "cache",
        )
        try:
            local = mount.fetch("sub/data.bin")
            assert local.read_bytes() == payload
        finally:
            mount.unmount()

    def test_concurrent_readers_on_one_pipelined_mount(self, share):
        """Multiple threads reading distinct files through one mount."""
        root, uri = share
        payloads = {}
        for index in range(4):
            data = bytes([index]) * (CHUNK_SIZE + index * 1000 + 1)
            (root / f"file{index}.bin").write_bytes(data)
            payloads[index] = data
        mount = _mount(uri, depth=8)
        failures: list[str] = []

        def worker(index: int) -> None:
            for _ in range(3):
                got = mount.read_bytes(f"file{index}.bin", verify=True)
                if got != payloads[index]:
                    failures.append(f"file{index}: wrong bytes")
                    return

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
        finally:
            mount.unmount()


class TestICEPipelineDepth:
    def test_mount_knob_reaches_proxy(self, ice):
        mount = ice.mount(pipeline_depth=4)
        try:
            assert mount._proxy.max_inflight == 4
            names = [record.path for record in mount.listdir("")]
            assert isinstance(names, list)
        finally:
            mount.unmount()

    def test_mount_default_stays_serial(self, ice):
        mount = ice.mount()
        try:
            assert mount._proxy.max_inflight == 1
        finally:
            mount.unmount()

    def test_pipelined_mount_reads_measurement(self, ice):
        """End to end over the sim network: run a workflow, then fetch
        its measurement file through a pipelined mount."""
        from repro.core import CVWorkflowSettings, run_cv_workflow

        result = run_cv_workflow(
            ice, settings=CVWorkflowSettings(e_step_v=0.002)
        )
        assert result.succeeded
        serial_mount = ice.mount()
        piped_mount = ice.mount(pipeline_depth=6)
        try:
            serial_bytes = serial_mount.read_bytes(
                result.measurement_file, verify=True
            )
            piped_bytes = piped_mount.read_bytes(
                result.measurement_file, verify=True
            )
            assert piped_bytes == serial_bytes
        finally:
            serial_mount.unmount()
            piped_mount.unmount()
