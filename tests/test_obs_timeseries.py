"""TimeSeriesStore: rollup rings, queries, and the scrape feed."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_RESOLUTIONS,
    TimeSeriesStore,
    is_daemon_side_metric,
)


@pytest.fixture
def rig():
    clock = VirtualClock()
    reg = MetricsRegistry()
    store = TimeSeriesStore(clock=clock)
    store.attach(reg)
    return clock, reg, store


class TestRollups:
    def test_counter_rolls_up_deltas_not_readings(self, rig):
        clock, reg, store = rig
        counter = reg.counter("c")
        counter.inc(5)
        counter.inc(3)
        points = store.query("c")
        assert len(points) == 1
        assert points[0]["sum"] == 8  # 5 + 3, not 5 + 8
        assert points[0]["count"] == 2

    def test_preexisting_counter_is_seeded_on_attach(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(100)  # before the store exists
        store = TimeSeriesStore(clock=clock)
        store.attach(reg)
        counter.inc(2)
        points = store.query("c")
        assert sum(p["sum"] for p in points) == 2  # no 100-spike

    def test_gauge_keeps_last_and_minmax(self, rig):
        clock, reg, store = rig
        gauge = reg.gauge("g")
        gauge.set(5)
        gauge.set(1)
        gauge.set(3)
        (point,) = store.query("g")
        assert point["last"] == 3
        assert point["min"] == 1 and point["max"] == 5

    def test_histogram_carries_bucket_deltas(self, rig):
        clock, reg, store = rig
        hist = reg.histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        (point,) = store.query("h")
        assert point["buckets"] == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert store.bucket_bounds("h") == (0.1, 1.0)

    def test_samples_split_across_time_buckets(self, rig):
        clock, reg, store = rig
        counter = reg.counter("c")
        counter.inc()
        clock.advance(1.5)
        counter.inc()
        points = store.query("c")
        assert [p["sum"] for p in points] == [1, 1]
        assert points[1]["start"] - points[0]["start"] == 1.0

    def test_multi_resolution_rings(self, rig):
        clock, reg, store = rig
        counter = reg.counter("c")
        for _ in range(30):
            counter.inc()
            clock.advance(1.0)
        fine = store.query("c", resolution=1.0)
        coarse = store.query("c", resolution=10.0)
        assert len(fine) > len(coarse) >= 3
        assert sum(p["sum"] for p in fine) == 30
        assert sum(p["sum"] for p in coarse) == 30

    def test_unknown_resolution_raises(self, rig):
        _, _, store = rig
        with pytest.raises(ValueError):
            store.query("c", resolution=7.0)

    def test_window_filter_and_selector(self, rig):
        clock, reg, store = rig
        counter = reg.counter("c")
        counter.inc(tenant="a")
        clock.advance(100)
        counter.inc(tenant="a")
        counter.inc(tenant="b")
        recent = store.window_stats("c", {"tenant": "a"}, window_s=10)
        assert recent["sum"] == 1  # the old bucket fell outside the window
        both = store.window_stats("c", window_s=10)
        assert both["sum"] == 2

    def test_tenants_listing(self, rig):
        clock, reg, store = rig
        counter = reg.counter("c")
        counter.inc(tenant="b")
        counter.inc(tenant="a")
        counter.inc()  # untagged
        assert store.tenants() == ["a", "b"]
        assert store.tenants("other") == []

    def test_own_metrics_are_not_rolled_up(self, rig):
        clock, reg, store = rig
        reg.counter("obs.timeseries.series_dropped_total").inc(metric="x")
        assert store.query("obs.timeseries.series_dropped_total") == []

    def test_series_cap_drops_and_counts(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        store = TimeSeriesStore(clock=clock, max_series=2)
        store.attach(reg)
        counter = reg.counter("c")
        for i in range(10):
            counter.inc(t=f"t{i}")
        assert store.series_count() == 2
        dropped = reg.counter("obs.timeseries.series_dropped_total")
        assert dropped.value(metric="c") == 8

    def test_ring_memory_is_bounded(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        store = TimeSeriesStore(
            clock=clock, resolutions=(1.0,), ring_capacity=5
        )
        store.attach(reg)
        counter = reg.counter("c")
        for _ in range(50):
            counter.inc()
            clock.advance(1.0)
        points = store.query("c")
        assert len(points) <= 6  # 5 closed + 1 open

    def test_only_filter_splits_a_shared_registry(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        daemon_store = TimeSeriesStore(clock=clock)
        daemon_store.attach(reg, only=is_daemon_side_metric)
        session_store = TimeSeriesStore(clock=clock)
        session_store.attach(reg, only=lambda n: not is_daemon_side_metric(n))
        reg.counter("rpc.daemon.calls_total").inc()
        reg.counter("rpc.client.calls_total").inc()
        assert daemon_store.names() == ["rpc.daemon.calls_total"]
        assert session_store.names() == ["rpc.client.calls_total"]

    def test_close_unsubscribes(self, rig):
        clock, reg, store = rig
        store.close()
        reg.counter("c").inc()
        assert store.query("c") == []
        assert not store.attached


class TestScrapeFeed:
    def test_scrape_pages_with_cursor(self, rig):
        clock, reg, store = rig
        counter = reg.counter("c")
        for _ in range(3):
            counter.inc()
            clock.advance(1.0)
        rows, cursor, gap = store.scrape(0)
        assert gap == 0 and len(rows) >= 3
        assert [r["seq"] for r in rows] == sorted(r["seq"] for r in rows)
        # nothing new: same cursor, no rows
        rows2, cursor2, gap2 = store.scrape(cursor)
        assert rows2 == [] and cursor2 == cursor and gap2 == 0

    def test_scrape_reports_gap_after_ring_overflow(self):
        clock = VirtualClock()
        reg = MetricsRegistry()
        store = TimeSeriesStore(clock=clock, export_capacity=4)
        store.attach(reg)
        counter = reg.counter("c")
        rows, cursor, gap = store.scrape(0)
        for _ in range(10):
            counter.inc()
            clock.advance(1.0)
        rows, cursor, gap = store.scrape(cursor)
        assert gap > 0
        assert len(rows) <= 4

    def test_scrape_selectors_filter_without_stalling_cursor(self, rig):
        clock, reg, store = rig
        reg.counter("c").inc(tenant="a")
        reg.counter("c").inc(tenant="b")
        reg.counter("other").inc(tenant="a")
        clock.advance(1.0)
        rows, cursor, _ = store.scrape(0, {"name": "c", "tenant": "a"})
        assert len(rows) == 1
        assert rows[0]["labels"] == {"tenant": "a"}
        # the cursor advanced past the filtered-out rows too
        rows2, _, _ = store.scrape(cursor)
        assert rows2 == []

    def test_forced_flush_makes_fresh_bursts_visible(self, rig):
        clock, reg, store = rig
        reg.counter("c").inc()  # same-second write, bucket still open
        rows, _, _ = store.scrape(0)
        assert len(rows) == 1  # scrape force-flushed it

    def test_partial_flush_rows_sum_exactly(self, rig):
        clock, reg, store = rig
        counter = reg.counter("c")
        counter.inc()
        store.scrape(0)  # force-closes the half-full bucket
        counter.inc()  # same second: reopens a cell with the same start
        clock.advance(1.0)
        rows, _, _ = store.scrape(0)
        # two cells share a start but the deltas are disjoint: the total
        # equals the two increments, nothing is double-counted
        assert sum(r["sum"] for r in rows) == 2
        assert len({r["start"] for r in rows}) == 1
