"""The paper's five-task workflow, end to end on the simulated ICE."""

import numpy as np
import pytest

from repro.core.cv_workflow import (
    CVWorkflowSettings,
    build_cv_workflow,
    run_cv_workflow,
)
from repro.core.workflow import TaskState


class TestHappyPath:
    def test_paper_defaults(self, ice, trained_classifier):
        result = run_cv_workflow(ice, classifier=trained_classifier)
        assert result.succeeded
        # Fig 7: the I-V profile of ferrocene
        trace = result.voltammogram
        assert trace is not None
        assert trace.potential_v.min() == pytest.approx(0.2, abs=0.01)
        assert trace.potential_v.max() == pytest.approx(0.8, abs=0.01)
        assert np.abs(trace.current_a).max() > 1e-5
        # analysis on the DGX
        assert result.metrics is not None
        assert result.metrics.e_half_v == pytest.approx(0.40, abs=0.01)
        # ML verdict: normal (paper §4.3.3)
        assert result.normality is not None
        assert result.normality.normal
        assert "normal" in result.summary()

    def test_task_names_match_paper(self, ice):
        flow = build_cv_workflow(ice)
        assert flow.task_names == [
            "A_establish_communications",
            "B_configure_jkem",
            "C_fill_cell",
            "D_run_cv",
            "E_shutdown",
            "analyze",
        ]

    def test_measurement_file_on_share(self, ice):
        result = run_cv_workflow(ice)
        assert result.measurement_file is not None
        mount = ice.mount()
        assert mount.exists(result.measurement_file)
        mount.unmount()

    def test_custom_settings(self, ice):
        settings = CVWorkflowSettings(
            fill_volume_ml=6.0,
            scan_rate_v_s=0.2,
            n_cycles=2,
            e_step_v=0.002,
            measurement_stem="custom_run",
        )
        result = run_cv_workflow(ice, settings=settings)
        assert result.succeeded
        assert result.measurement_file == "custom_run.mpt"
        assert result.voltammogram.n_cycles == 2

    def test_rerunnable_on_same_ice(self, ice):
        first = run_cv_workflow(ice)
        second = run_cv_workflow(
            ice, settings=CVWorkflowSettings(fill_volume_ml=2.0)
        )
        assert first.succeeded and second.succeeded
        assert first.measurement_file != second.measurement_file


class TestFailureModes:
    def test_overfill_fails_task_c_and_skips_d(self, ice):
        settings = CVWorkflowSettings(fill_volume_ml=25.0)  # > cell capacity
        result = run_cv_workflow(ice, settings=settings)
        assert not result.succeeded
        tasks = result.workflow.tasks
        assert tasks["C_fill_cell"].state is TaskState.FAILED
        assert tasks["D_run_cv"].state is TaskState.SKIPPED
        assert result.voltammogram is None

    def test_disconnected_electrode_flagged_abnormal(self, ice, trained_classifier):
        ice.workstation.cell.set_electrode_connected("working", False)
        result = run_cv_workflow(ice, classifier=trained_classifier)
        assert result.succeeded  # the workflow ran; the *measurement* is bad
        assert result.normality is not None
        assert not result.normality.normal
        assert result.normality.label == "disconnected_electrode"
        assert result.metrics is None  # no wave to characterise

    def test_under_filled_cell_flagged(self, ice, trained_classifier):
        # fill only 1 mL: quarter immersion of the 4 mL-depth electrode
        settings = CVWorkflowSettings(fill_volume_ml=1.0)
        result = run_cv_workflow(ice, settings=settings, classifier=trained_classifier)
        assert result.succeeded
        assert result.normality is not None
        # shrunken wave: must not be classified as a healthy run
        assert not result.normality.normal

    def test_pump_fault_fails_workflow(self, ice):
        # the fault hits the first pump command, which is task B's
        # Set_Rate_SyringePump; everything downstream is skipped
        ice.workstation.syringe_pump.inject_fault("plunger jam")
        result = run_cv_workflow(ice)
        assert not result.succeeded
        assert result.workflow.tasks["B_configure_jkem"].state is TaskState.FAILED
        assert result.workflow.tasks["C_fill_cell"].state is TaskState.SKIPPED
        assert result.workflow.tasks["D_run_cv"].state is TaskState.SKIPPED

    def test_summary_names_failed_task(self, ice):
        ice.workstation.syringe_pump.inject_fault("plunger jam")
        result = run_cv_workflow(ice)
        assert "B_configure_jkem" in result.summary()
