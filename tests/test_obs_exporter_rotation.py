"""JsonlSpanExporter size-based rotation (max_bytes / max_files)."""

from __future__ import annotations

import json

import pytest

from repro.obs import JsonlSpanExporter, Tracer, read_jsonl_spans


def _emit(exporter, n, name="op"):
    tracer = Tracer("svc", exporter=exporter)
    for i in range(n):
        with tracer.start_span(name, attributes={"i": i}):
            pass


class TestValidation:
    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSpanExporter(tmp_path / "s.jsonl", max_bytes=0)

    def test_max_files_must_be_at_least_one(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSpanExporter(tmp_path / "s.jsonl", max_bytes=10, max_files=0)


class TestRotation:
    def test_no_cap_means_no_rollover(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanExporter(path) as exporter:
            _emit(exporter, 50)
        assert exporter.rollover_paths() == []
        assert len(read_jsonl_spans(path)) == 50

    def test_rotation_produces_numbered_files(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanExporter(path, max_bytes=2000) as exporter:
            _emit(exporter, 60)
        rolled = exporter.rollover_paths()
        assert rolled, "expected at least one rollover"
        assert rolled[0].name == "spans.jsonl.1"

    def test_no_span_is_lost_or_split(self, tmp_path):
        """Every line across live + rolled files parses, and the union
        is exactly the emitted span set — rotation happens on line
        boundaries only."""
        path = tmp_path / "spans.jsonl"
        with JsonlSpanExporter(path, max_bytes=1500, max_files=50) as exporter:
            _emit(exporter, 80)
        seen = []
        files = [p for p in [path, *exporter.rollover_paths()] if p.exists()]
        for file in files:
            for line in file.read_text().splitlines():
                span = json.loads(line)  # raises on a torn line
                seen.append(span["attributes"]["i"])
        assert sorted(seen) == list(range(80))

    def test_rolled_files_are_flushed_complete(self, tmp_path):
        """The flush-on-rotate guarantee: a rolled file is fully on disk
        the moment it is renamed, even though the exporter stays open."""
        path = tmp_path / "spans.jsonl"
        exporter = JsonlSpanExporter(path, max_bytes=500)
        try:
            _emit(exporter, 40)
            # inspect WITHOUT closing the exporter
            rolled = exporter.rollover_paths()
            assert rolled
            for file in rolled:
                lines = file.read_text().splitlines()
                assert lines
                for line in lines:
                    json.loads(line)
        finally:
            exporter.close()

    def test_max_files_prunes_oldest(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanExporter(path, max_bytes=300, max_files=2) as exporter:
            _emit(exporter, 100)
        rolled = exporter.rollover_paths()
        assert len(rolled) == 2  # .1 and .2 only; older history pruned
        names = {p.name for p in rolled}
        assert names == {"spans.jsonl.1", "spans.jsonl.2"}

    def test_footprint_is_bounded(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        cap, keep = 400, 3
        with JsonlSpanExporter(path, max_bytes=cap, max_files=keep) as exporter:
            _emit(exporter, 200)
        files = [p for p in [path, *exporter.rollover_paths()] if p.exists()]
        total = sum(p.stat().st_size for p in files)
        # each file crosses the cap by at most one span line
        assert total <= (cap + 400) * (keep + 1)

    def test_spans_after_rotation_reopen_fresh_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanExporter(path, max_bytes=200) as exporter:
            _emit(exporter, 3)  # each span > 200 bytes: rotate per span
            assert path.with_name("spans.jsonl.1").exists()
            _emit(exporter, 1)
        # the post-rotation span went through a freshly opened file (it
        # crossed the cap itself, so it may already sit in a rollover);
        # either way every span survived the reopen cycles
        files = [p for p in [path, *exporter.rollover_paths()] if p.exists()]
        total = sum(len(p.read_text().splitlines()) for p in files)
        assert total == 4
