"""Feature extraction, dataset generation, and the normality method."""

import numpy as np
import pytest

from repro.chemistry.faults import FaultKind, apply_fault
from repro.chemistry.voltammogram import Voltammogram
from repro.errors import FeatureExtractionError, NotFittedError
from repro.ml import (
    FEATURE_NAMES,
    NormalityClassifier,
    extract_features,
    generate_dataset,
)
from repro.ml.datasets import DatasetSpec, train_test_split


class TestFeatures:
    def test_vector_matches_names(self, reference_voltammogram):
        features = extract_features(reference_voltammogram)
        assert features.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(features))

    def test_deterministic(self, reference_voltammogram):
        a = extract_features(reference_voltammogram)
        b = extract_features(reference_voltammogram)
        np.testing.assert_allclose(a, b)

    def test_disconnected_collapses_magnitudes(self, reference_voltammogram):
        healthy = extract_features(reference_voltammogram)
        broken = extract_features(
            apply_fault(
                reference_voltammogram, FaultKind.DISCONNECTED_ELECTRODE, 0.8
            )
        )
        idx = FEATURE_NAMES.index("log10_current_range_a")
        assert broken[idx] < healthy[idx] - 2  # >2 decades down

    def test_low_volume_shrinks_peaks(self, reference_voltammogram):
        healthy = extract_features(reference_voltammogram)
        low = extract_features(
            apply_fault(reference_voltammogram, FaultKind.LOW_VOLUME, 0.7)
        )
        idx = FEATURE_NAMES.index("log10_peak_anodic_a")
        assert low[idx] < healthy[idx]

    def test_too_short_trace_rejected(self):
        trace = Voltammogram(
            time_s=np.arange(5.0),
            potential_v=np.arange(5.0),
            current_a=np.ones(5),
            cycle_index=np.zeros(5, dtype=int),
        )
        with pytest.raises(FeatureExtractionError):
            extract_features(trace)

    def test_flat_potential_rejected(self):
        trace = Voltammogram(
            time_s=np.arange(32.0),
            potential_v=np.full(32, 0.5),
            current_a=np.random.default_rng(0).normal(size=32),
            cycle_index=np.zeros(32, dtype=int),
        )
        with pytest.raises(FeatureExtractionError):
            extract_features(trace)

    def test_multi_cycle_uses_first_and_consistency(self):
        from repro.chemistry.cv_engine import CVEngine, CVParameters
        from repro.chemistry.species import FERROCENE

        engine = CVEngine(FERROCENE, 2e-6, 0.0707, double_layer_f_cm2=0.0)
        trace = engine.run(CVParameters(n_cycles=2))
        features = extract_features(trace)
        idx = FEATURE_NAMES.index("cycle_consistency")
        assert 0.0 <= features[idx] < 0.2  # repeatable cycles


class TestDataset:
    def test_shapes_and_labels(self, ml_corpus):
        traces, labels, features = ml_corpus
        assert len(traces) == len(labels) == features.shape[0]
        assert features.shape[1] == len(FEATURE_NAMES)
        assert set(labels) == {
            "normal",
            "disconnected_electrode",
            "low_volume",
        }

    def test_deterministic_given_seed(self):
        spec = DatasetSpec(n_per_class=2, seed=42)
        a_traces, a_labels = generate_dataset(spec)
        b_traces, b_labels = generate_dataset(spec)
        assert a_labels == b_labels
        np.testing.assert_allclose(
            a_traces[0].current_a, b_traces[0].current_a
        )

    def test_split_partitions(self, ml_corpus):
        _, labels, features = ml_corpus
        x_train, y_train, x_test, y_test = train_test_split(
            features, labels, 0.25, seed=3
        )
        assert len(x_train) + len(x_test) == len(features)
        assert len(y_test) == len(x_test)

    def test_split_validation(self, ml_corpus):
        _, labels, features = ml_corpus
        with pytest.raises(ValueError):
            train_test_split(features, labels, 0.0)


class TestNormalityClassifier:
    def test_high_oob_accuracy(self, trained_classifier):
        assert trained_classifier.oob_score >= 0.8

    def test_classifies_held_out_correctly(self, trained_classifier):
        traces, labels = generate_dataset(DatasetSpec(n_per_class=5, seed=99))
        correct = 0
        for trace, label in zip(traces, labels):
            report = trained_classifier.classify(trace)
            correct += report.label == label
        assert correct / len(traces) >= 0.8

    def test_normal_flag_and_report(self, trained_classifier, reference_voltammogram):
        report = trained_classifier.classify(reference_voltammogram)
        assert report.normal == (report.label == "normal")
        assert 0.0 <= report.confidence <= 1.0
        assert abs(sum(report.probabilities.values()) - 1.0) < 1e-9
        assert "classified" in str(report)

    def test_disconnected_flagged_abnormal(self, trained_classifier, reference_voltammogram):
        broken = apply_fault(
            reference_voltammogram, FaultKind.DISCONNECTED_ELECTRODE, 0.8
        )
        report = trained_classifier.classify(broken)
        assert not report.normal
        assert report.label == "disconnected_electrode"

    def test_is_normal_wrapper(self, trained_classifier, reference_voltammogram):
        assert trained_classifier.is_normal(reference_voltammogram) in (
            True,
            False,
        )

    def test_unfitted_raises(self, reference_voltammogram):
        with pytest.raises(NotFittedError):
            NormalityClassifier().classify(reference_voltammogram)

    def test_fit_on_traces(self, ml_corpus):
        traces, labels, _ = ml_corpus
        classifier = NormalityClassifier().fit(
            traces[:30], list(labels[:30])
        )
        report = classifier.classify(traces[0])
        assert report.label in set(labels)
