"""Topology construction and routing."""

import pytest

from repro.clock import VirtualClock
from repro.errors import NetworkError, NoRouteError
from repro.net.links import LinkSpec
from repro.net.topology import Topology


@pytest.fixture
def ice_topology():
    """The paper's shape: agent -- hub -- gateway -- wan -- dgx."""
    topo = Topology(clock=VirtualClock())
    topo.add_facility("ACL")
    topo.add_facility("K200")
    topo.add_host("agent", "ACL", platform="windows")
    topo.add_host("gw", "ACL", is_gateway=True)
    topo.add_host("dgx", "K200")
    topo.add_network("hub", "ACL")
    topo.add_network("wan", "K200")
    topo.attach("agent", "hub", LinkSpec())
    topo.attach("gw", "hub", LinkSpec())
    topo.attach("gw", "wan", LinkSpec())
    topo.attach("dgx", "wan", LinkSpec())
    return topo


class TestConstruction:
    def test_duplicate_facility(self, ice_topology):
        with pytest.raises(NetworkError):
            ice_topology.add_facility("ACL")

    def test_duplicate_node_name(self, ice_topology):
        with pytest.raises(NetworkError):
            ice_topology.add_host("hub", "ACL")
        with pytest.raises(NetworkError):
            ice_topology.add_network("agent", "ACL")

    def test_unknown_facility(self, ice_topology):
        with pytest.raises(NetworkError):
            ice_topology.add_host("x", "NOPE")

    def test_duplicate_attachment(self, ice_topology):
        with pytest.raises(NetworkError):
            ice_topology.attach("agent", "hub", LinkSpec())

    def test_attach_unknown_nodes(self, ice_topology):
        with pytest.raises(NetworkError):
            ice_topology.attach("ghost", "hub", LinkSpec())
        with pytest.raises(NetworkError):
            ice_topology.attach("agent", "ghost", LinkSpec())

    def test_lookups(self, ice_topology):
        assert ice_topology.host("agent").platform == "windows"
        assert ice_topology.network("hub").facility == "ACL"
        assert ice_topology.link("agent", "hub").name == "agent<->hub"
        with pytest.raises(NetworkError):
            ice_topology.host("ghost")
        with pytest.raises(NetworkError):
            ice_topology.network("ghost")
        with pytest.raises(NetworkError):
            ice_topology.link("dgx", "hub")

    def test_listings(self, ice_topology):
        assert {h.name for h in ice_topology.hosts()} == {"agent", "gw", "dgx"}
        assert {n.name for n in ice_topology.networks()} == {"hub", "wan"}


class TestRouting:
    def test_cross_facility_route(self, ice_topology):
        links = ice_topology.route("dgx", "agent")
        assert [l.name for l in links] == [
            "dgx<->wan",
            "gw<->wan",
            "gw<->hub",
            "agent<->hub",
        ]

    def test_path_hosts_includes_gateway(self, ice_topology):
        assert ice_topology.path_hosts("dgx", "agent") == ["dgx", "gw", "agent"]

    def test_same_host_empty_route(self, ice_topology):
        assert ice_topology.route("dgx", "dgx") == []
        assert ice_topology.path_hosts("dgx", "dgx") == ["dgx"]

    def test_non_gateway_cannot_forward(self, ice_topology):
        # add a host that shares both networks but is NOT a gateway
        ice_topology.add_host("rogue", "ACL")
        ice_topology.attach("rogue", "hub", LinkSpec())
        ice_topology.attach("rogue", "wan", LinkSpec())
        # route must still go through gw (same length), never rogue
        assert "rogue" not in ice_topology.path_hosts("dgx", "agent")

    def test_no_route(self, ice_topology):
        ice_topology.add_host("island", "ACL")
        with pytest.raises(NoRouteError):
            ice_topology.route("island", "dgx")

    def test_unknown_hosts(self, ice_topology):
        with pytest.raises(NetworkError):
            ice_topology.route("ghost", "dgx")
        with pytest.raises(NetworkError):
            ice_topology.route("dgx", "ghost")

    def test_allowed_networks_restriction(self, ice_topology):
        # add a parallel data path
        ice_topology.add_network("hub-data", "ACL")
        ice_topology.add_network("wan-data", "K200")
        ice_topology.attach("agent", "hub-data", LinkSpec())
        ice_topology.attach("gw", "hub-data", LinkSpec())
        ice_topology.attach("gw", "wan-data", LinkSpec())
        ice_topology.attach("dgx", "wan-data", LinkSpec())
        data_links = ice_topology.route(
            "dgx", "agent", allowed_networks={"hub-data", "wan-data"}
        )
        assert all("data" in l.name for l in data_links)
        control_links = ice_topology.route(
            "dgx", "agent", allowed_networks={"hub", "wan"}
        )
        assert all("data" not in l.name for l in control_links)

    def test_allowed_networks_no_route(self, ice_topology):
        with pytest.raises(NoRouteError):
            ice_topology.route("dgx", "agent", allowed_networks={"hub"})
