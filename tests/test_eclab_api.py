"""The EC-Lab-style driver: the 8 steps of Fig 6a."""

import pytest

from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.species import ferrocene_solution
from repro.errors import InstrumentStateError, TechniqueError
from repro.instruments.potentiostat import ECLabAPI, SP200


@pytest.fixture
def api(tmp_path):
    cell = ElectrochemicalCell()
    cell.add_liquid(8.0, ferrocene_solution(2.0))
    device = SP200(cell=cell, noise=None)
    return ECLabAPI(device, measurement_dir=tmp_path / "data")


def full_pipeline(api, **cv_params):
    assert api.initialize({"channel": 1}) == "Initialization is done"
    assert api.connect() == "Channel Connection is done"
    assert api.load_firmware() == "Loading firmware is done"
    assert api.init_cv_technique(cv_params) == "CV technique is initialized"
    assert api.load_technique() == "Loading CV technique is done"
    assert api.start_channel() == "Channel is activated for probing measurements"
    return api.get_measurements()


class TestPipeline:
    def test_fig6a_confirmations(self, api):
        trace = full_pipeline(api)
        assert len(trace) == 1200
        # step 8: file written to the measurement dir
        assert api.last_measurement_path is not None
        assert api.last_measurement_path.exists()
        assert api.last_measurement_path.suffix == ".mpt"

    def test_transcript_contains_fig6b_lines(self, api):
        full_pipeline(api)
        messages = api.log.messages(source="sp200.api")
        assert "Initialization is done" in messages
        assert "Measurements are collected" in messages
        device_messages = api.device.log.messages(source="sp200")
        assert "> Loading kernel4.bin ..." in device_messages

    def test_ordering_enforced(self, api):
        with pytest.raises(InstrumentStateError):
            api.connect()  # before initialize
        api.initialize()
        with pytest.raises(TechniqueError):
            api.load_technique()  # before init_cv_technique
        api.connect()
        api.load_firmware()
        api.init_cv_technique()
        api.load_technique()
        with pytest.raises(InstrumentStateError):
            api.get_measurements()  # nothing started

    def test_start_requires_loaded_technique(self, api):
        api.initialize()
        api.connect()
        api.load_firmware()
        api.init_cv_technique()
        with pytest.raises(TechniqueError):
            api.start_channel()  # load_technique skipped

    def test_unknown_config_keys(self, api):
        with pytest.raises(InstrumentStateError):
            api.initialize({"channel": 1, "bogus": True})

    def test_bad_channel(self, api):
        with pytest.raises(InstrumentStateError):
            api.initialize({"channel": 0})

    def test_unknown_cv_params(self, api):
        api.initialize()
        with pytest.raises(TechniqueError):
            api.init_cv_technique({"voltage": 1.0})

    def test_custom_cv_params_flow_through(self, api):
        trace = full_pipeline(api, scan_rate_v_s=0.2, n_cycles=2)
        assert trace.metadata["scan_rate_v_s"] == 0.2
        assert trace.n_cycles == 2

    def test_save_as_names_file(self, api):
        api.initialize()
        api.connect()
        api.load_firmware()
        api.init_cv_technique()
        api.load_technique()
        api.start_channel()
        api.get_measurements(save_as="ferrocene_run")
        assert api.last_measurement_path.name == "ferrocene_run.mpt"

    def test_partial_read_without_wait(self, api):
        api.initialize()
        api.connect()
        api.load_firmware()
        api.init_cv_technique()
        api.load_technique()
        api.start_channel()
        api.device.channel(1).wait(timeout=30.0)
        trace = api.get_measurements(wait=False)
        assert len(trace) == 1200

    def test_other_techniques(self, api):
        api.initialize()
        api.connect()
        api.load_firmware()
        assert "CA technique" in api.init_ca_technique({"duration": 2.0})
        api.load_technique()
        api.start_channel()
        trace = api.get_measurements()
        assert trace.metadata["technique"] == "CA"
        assert "OCV technique" in api.init_ocv_technique({"duration": 1.0})
        api.load_technique()
        api.start_channel()
        trace = api.get_measurements()
        assert trace.metadata["technique"] == "OCV"

    def test_disconnect_and_reuse(self, api):
        full_pipeline(api)
        assert api.disconnect() == "Potentiostat disconnected"
        trace = full_pipeline(api)
        assert len(trace) == 1200

    def test_no_measurement_dir(self):
        cell = ElectrochemicalCell()
        cell.add_liquid(8.0, ferrocene_solution(2.0))
        api = ECLabAPI(SP200(cell=cell, noise=None), measurement_dir=None)
        trace = full_pipeline(api)
        assert api.last_measurement_path is None
        assert len(trace) == 1200

    def test_sequential_acquisitions_autonumber(self, api):
        full_pipeline(api)
        first = api.last_measurement_path
        api.init_cv_technique()
        api.load_technique()
        api.start_channel()
        api.get_measurements()
        second = api.last_measurement_path
        assert first != second
        assert first.exists() and second.exists()
