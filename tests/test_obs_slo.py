"""SLO engine: objectives, burn-rate math, alerts, health surfacing."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.obs.health import DEGRADED, HealthEngine, UNHEALTHY
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import LATENCY, SLOEngine, SLObjective, default_objectives
from repro.obs.stream import KIND_SLO, TelemetryBus
from repro.obs.timeseries import TimeSeriesStore


def _rig(**objective_kwargs):
    clock = VirtualClock()
    reg = MetricsRegistry()
    store = TimeSeriesStore(clock=clock)
    store.attach(reg)
    bus = TelemetryBus("test", clock=clock)
    engine = SLOEngine(store, clock=clock, bus=bus, metrics=reg)
    defaults = dict(
        name="avail", metric="calls_total", objective=0.99, min_events=5
    )
    defaults.update(objective_kwargs)
    engine.add(SLObjective(**defaults))
    return clock, reg, store, bus, engine


class TestObjectiveValidation:
    def test_objective_must_be_fractional(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", metric="m", objective=1.0)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", metric="m", kind=LATENCY)

    def test_duplicate_names_rejected(self):
        _, _, _, _, engine = _rig()
        with pytest.raises(ValueError):
            engine.add(SLObjective(name="avail", metric="m2"))

    def test_defaults_are_well_formed(self):
        names = {o.name for o in default_objectives()}
        assert names == {"rpc-availability", "rpc-latency"}


class TestBurnRates:
    def test_clean_traffic_is_ok(self):
        clock, reg, _, _, engine = _rig()
        counter = reg.counter("calls_total")
        for _ in range(50):
            counter.inc(status="ok", tenant="a")
        (status,) = engine.evaluate()
        assert status["tenant"] == "a"
        assert status["status"] == "ok"
        assert status["burn_fast"] == 0.0

    def test_error_burst_fires_fast_window_only(self):
        """A long healthy history plus a fresh sharp burst: the fast
        window pages, the slow window (mostly healthy) stays quiet."""
        clock, reg, _, _, engine = _rig(
            fast_window_s=60, slow_window_s=600, fast_burn=14, slow_burn=6
        )
        counter = reg.counter("calls_total")
        for _ in range(540):  # 9 minutes of clean traffic
            counter.inc(status="ok", tenant="a")
            clock.advance(1.0)
        for _ in range(30):  # 30 s burst at 50% errors
            counter.inc(status="error", tenant="a")
            counter.inc(status="ok", tenant="a")
            clock.advance(1.0)
        (status,) = engine.evaluate()
        assert status["alerts"] == ["fast"]
        assert status["burn_fast"] > 14
        assert status["burn_slow"] < 6

    def test_per_tenant_isolation(self):
        clock, reg, _, _, engine = _rig()
        counter = reg.counter("calls_total")
        for i in range(20):
            counter.inc(status="error" if i % 2 else "ok", tenant="noisy")
            counter.inc(status="ok", tenant="quiet")
        by_tenant = {s["tenant"]: s for s in engine.evaluate()}
        assert by_tenant["noisy"]["alerts"]
        assert by_tenant["quiet"]["alerts"] == []

    def test_min_events_abstains(self):
        clock, reg, _, _, engine = _rig(min_events=10)
        counter = reg.counter("calls_total")
        for _ in range(3):
            counter.inc(status="error", tenant="a")
        (status,) = engine.evaluate()
        assert status["alerts"] == []  # 100% errors but too few events

    def test_untenanted_traffic_evaluates_globally(self):
        clock, reg, _, _, engine = _rig()
        counter = reg.counter("calls_total")
        for _ in range(20):
            counter.inc(status="error")
        (status,) = engine.evaluate()
        assert status["tenant"] is None
        assert status["alerts"]

    def test_latency_objective_judges_threshold_from_buckets(self):
        clock, reg, _, _, engine = _rig(
            name="lat",
            metric="latency_s",
            kind=LATENCY,
            threshold_s=1.0,
            objective=0.9,
            fast_burn=2.0,
        )
        hist = reg.histogram("latency_s", buckets=(0.1, 1.0, 10.0))
        for _ in range(10):
            hist.observe(0.05, tenant="a")  # good
        for _ in range(10):
            hist.observe(5.0, tenant="a")  # over threshold
        (status,) = engine.evaluate()
        assert status["sli_fast"] == pytest.approx(0.5)
        assert status["burn_fast"] == pytest.approx(5.0)
        assert status["alerts"]

    def test_burn_gauges_are_exported(self):
        clock, reg, _, _, engine = _rig()
        reg.counter("calls_total").inc(status="ok", tenant="a")
        engine.evaluate()
        burn = reg.gauge("obs.slo.burn_rate")
        assert burn.value(objective="avail", tenant="a", window="fast") == 0.0


class TestAlertTransitions:
    def test_bus_sees_alert_then_resolve(self):
        clock, reg, _, bus, engine = _rig(fast_window_s=30, slow_window_s=60)
        counter = reg.counter("calls_total")
        for _ in range(20):
            counter.inc(status="error", tenant="a")
        engine.evaluate()
        events, _, _ = bus.read_since(0)
        alerts = [e for e in events if e.kind == KIND_SLO]
        assert len(alerts) == 1 and alerts[0].name == "slo.alert"
        assert alerts[0].data["tenant"] == "a"
        assert alerts[0].data["schema"] == "repro-slo-1"
        # steady state: no duplicate events while still firing
        engine.evaluate()
        events, _, _ = bus.read_since(0)
        assert len([e for e in events if e.kind == KIND_SLO]) == 1
        # budget recovers once the burst ages out of both windows
        clock.advance(120)
        for _ in range(10):
            counter.inc(status="ok", tenant="a")
        engine.evaluate()
        events, _, _ = bus.read_since(0)
        slo_events = [e for e in events if e.kind == KIND_SLO]
        assert [e.name for e in slo_events] == ["slo.alert", "slo.resolved"]
        assert engine.active_alerts() == []


class TestHealthSurfacing:
    def _health(self, engine, reg, clock):
        health = HealthEngine(reg, clock=clock)
        engine.attach_health(health)
        return health

    def test_fast_alert_degrades_slo_subsystem(self):
        clock, reg, _, _, engine = _rig(
            fast_window_s=60, slow_window_s=600, fast_burn=14, slow_burn=6
        )
        health = self._health(engine, reg, clock)
        counter = reg.counter("calls_total")
        for _ in range(540):
            counter.inc(status="ok", tenant="a")
            clock.advance(1.0)
        assert health.evaluate().subsystems["slo"].status == "healthy"
        for _ in range(30):
            counter.inc(status="error", tenant="a")
            counter.inc(status="ok", tenant="a")
            clock.advance(1.0)
        report = health.evaluate()
        assert report.subsystems["slo"].status == DEGRADED
        assert "burning" in report.subsystems["slo"].reasons[0]

    def test_both_windows_burning_is_unhealthy(self):
        clock, reg, _, _, engine = _rig()
        health = self._health(engine, reg, clock)
        counter = reg.counter("calls_total")
        for _ in range(50):
            counter.inc(status="error", tenant="a")
        report = health.evaluate()
        assert report.subsystems["slo"].status == UNHEALTHY
