"""ResilientProxy: reconnect across faults, replay instead of re-execute."""

import pytest

from repro.errors import CallTimeoutError, RetryExhaustedError
from repro.facility.ice import HOST_DGX
from repro.facility.workstation import PORT_CELL, PORT_COLLECTOR
from repro.net.chaos import ChaosController
from repro.resilience import ResilientProxy, RetryPolicy
from repro.rpc.proxy import Proxy

FAST_POLICY = RetryPolicy(max_attempts=6, base_delay_s=0.001, jitter="none")


def _prepare_syringe(client, volume_ml=5.0):
    """Withdraw stock so a dispense is physically possible."""
    client.call_Set_Rate_SyringePump(1, 5.0)
    client.call_Set_Vial_FractionCollector(1, "BOTTOM")
    client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
    client.call_Withdraw_SyringePump(1, volume_ml)
    client.call_Set_Port_SyringePump(1, PORT_CELL)


class TestReconnectUnderLinkFlap:
    def test_call_survives_wan_flap(self, ice):
        client = ice.client(retry_policy=FAST_POLICY)
        client.ping()  # connection up before the fault arms

        chaos = ChaosController(ice.simnet, event_log=ice.event_log)
        # the next frame on the DGX's WAN attachment trips the flap and is
        # the first of down_frames=2 casualties; the attempt after those
        # finds the link healed
        chaos.flap_link(HOST_DGX, "ornl-wan", after_frames=0, down_frames=2)
        try:
            status = client.call_Cell_Status()
        finally:
            chaos.stop()
            client.close()

        assert status["volume_ml"] == pytest.approx(0.0)
        assert client._proxy.retry_count >= 2
        assert client._proxy.reconnect_count >= 2
        assert chaos.fired("link-down") and chaos.fired("link-up")

    def test_bare_proxy_fails_where_resilient_succeeds(self, ice):
        bare = ice.client()
        bare.ping()
        chaos = ChaosController(ice.simnet)
        chaos.flap_link(HOST_DGX, "ornl-wan", after_frames=0, down_frames=2)
        try:
            with pytest.raises(Exception):
                bare.call_Cell_Status()
        finally:
            chaos.stop()
            bare.close()

    def test_retries_exhaust_on_standing_partition(self, ice):
        client = ice.client(
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.001, jitter="none"
            )
        )
        client.ping()
        chaos = ChaosController(ice.simnet)
        chaos.partition([(HOST_DGX, "ornl-wan")])
        try:
            with pytest.raises(RetryExhaustedError):
                client.call_Cell_Status()
        finally:
            chaos.stop()
            client.close()


class TestIdempotentReplay:
    def test_same_key_does_not_double_dispense(self, ice):
        client = ice.client()
        _prepare_syringe(client, volume_ml=5.0)

        proxy = Proxy(
            ice.control_uri,
            timeout=30.0,
            connection_factory=ice.simnet.connection_factory(
                HOST_DGX, ice.control_networks
            ),
        )
        try:
            key = "dispense-logical-call-1"
            first = proxy._call(
                "Dispense_SyringePump", (1, 5.0), {}, idempotency_key=key
            )
            # a retransmission of the same logical call: replayed, not run
            second = proxy._call(
                "Dispense_SyringePump", (1, 5.0), {}, idempotency_key=key
            )
        finally:
            proxy.close()

        assert first == second
        assert ice.control_daemon.replay_count == 1
        status = client.call_Cell_Status()
        # executed twice this would read 10 mL (or have failed on an
        # empty syringe); the cell got exactly one 5 mL dispense
        assert status["volume_ml"] == pytest.approx(5.0)
        client.close()

    def test_replay_works_across_reconnects(self, ice):
        """The dedup cache is keyed on the call, not the connection."""
        client = ice.client()
        _prepare_syringe(client, volume_ml=4.0)
        factory = ice.simnet.connection_factory(HOST_DGX, ice.control_networks)

        key = "dispense-logical-call-2"
        first_proxy = Proxy(ice.control_uri, connection_factory=factory)
        first = first_proxy._call(
            "Dispense_SyringePump", (1, 4.0), {}, idempotency_key=key
        )
        first_proxy.close()

        second_proxy = Proxy(ice.control_uri, connection_factory=factory)
        second = second_proxy._call(
            "Dispense_SyringePump", (1, 4.0), {}, idempotency_key=key
        )
        second_proxy.close()

        assert first == second
        assert ice.control_daemon.replay_count == 1
        assert client.call_Cell_Status()["volume_ml"] == pytest.approx(4.0)
        client.close()

    def test_lost_response_replays_instead_of_reexecuting(self, ice):
        """The J-Kem dispense scenario the resilience layer exists for:

        the request reaches the agent and the pump dispenses, but the
        response is lost. The retried frame (same idempotency key) must
        be answered from the dedup cache, not dispensed again.
        """
        client = ice.client()
        _prepare_syringe(client, volume_ml=3.0)

        inner_factory = ice.simnet.connection_factory(
            HOST_DGX, ice.control_networks
        )
        fault = {"armed": False, "injected": 0}

        class LossyConnection:
            """Delegates to a SimConnection, losing one reply when armed."""

            def __init__(self, conn):
                self._conn = conn

            def sendall(self, data):
                self._conn.sendall(data)

            def recv_exactly(self, size):
                if fault["armed"]:
                    fault["armed"] = False
                    fault["injected"] += 1
                    raise CallTimeoutError("injected response loss")
                return self._conn.recv_exactly(size)

            def close(self):
                self._conn.close()

            def settimeout(self, timeout):
                self._conn.settimeout(timeout)

            @property
            def peer(self):
                return self._conn.peer

        resilient = ResilientProxy(
            Proxy(
                ice.control_uri,
                connection_factory=lambda h, p: LossyConnection(
                    inner_factory(h, p)
                ),
            ),
            policy=FAST_POLICY,
        )
        try:
            resilient._pyro_ping()
            fault["armed"] = True
            result = resilient.Dispense_SyringePump(1, 3.0)
        finally:
            resilient.close()

        assert "OK" in result
        assert fault["injected"] == 1
        assert resilient.retry_count == 1
        assert ice.control_daemon.replay_count == 1
        assert client.call_Cell_Status()["volume_ml"] == pytest.approx(3.0)
        client.close()
