"""The gateway over the control channel: ``ACL_Gateway`` end to end.

Exercises the PROTOCOLS §1.8 wire surface: the ``tenant`` REQUEST field
(set once on the proxy, carried on every call, bound per-dispatch by
the daemon), the four ``Job_*`` verbs, gateway error codes surviving
serialization (rebuilt by class on the client), and the
:class:`~repro.gateway.GatewayClient` / ``Session.use_gateway`` client
surface over a real daemon.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    QuotaExceededError,
    TenantAuthError,
    UnknownJobError,
    UnknownTenantError,
)
from repro.gateway import (
    CANCELLED,
    FEED_SCHEMA,
    SUCCEEDED,
    Cell,
    Gateway,
    GatewayClient,
    GatewayServer,
    TenantSpec,
)
from repro.rpc import Daemon, Proxy

SPEC = {
    "strategy": {"kind": "scan-rate", "scan_rates_v_s": [0.1], "base": {}},
    "max_rounds": 1,
}


def _ok_runner(job, cell, ctx):
    return {"state": CANCELLED if ctx.cancelled() else SUCCEEDED, "rounds": 1}


@pytest.fixture()
def served(tmp_path):
    gateway = Gateway(
        [Cell("c1")],
        tmp_path / "gw",
        tenants=(
            TenantSpec("lab-a", "key-a"),
            TenantSpec("lab-b", "key-b", max_active=1),
        ),
        runner=_ok_runner,
    )
    daemon = Daemon(host="127.0.0.1")
    uri = daemon.register(GatewayServer(gateway), object_id="ACL_Gateway")
    daemon.start_background()
    yield gateway, daemon, uri
    daemon.shutdown()
    gateway.close()


class TestTenantEnvelope:
    def test_proxy_tenant_rides_every_request(self, served):
        gateway, _, uri = served
        with Proxy(uri, tenant="lab-a") as proxy:
            view = proxy.Job_Submit(api_key="key-a", spec=SPEC)
            assert view["tenant"] == "lab-a"
            gateway.run_until_idle()
            assert (
                proxy.Job_Status(view["job_id"], api_key="key-a")["state"]
                == SUCCEEDED
            )

    def test_explicit_tenant_argument_still_works(self, served):
        _, _, uri = served
        with Proxy(uri) as proxy:  # no envelope tenant at all
            view = proxy.Job_Submit(
                api_key="key-a", spec=SPEC, tenant="lab-a"
            )
            assert view["tenant"] == "lab-a"

    def test_envelope_and_argument_must_agree(self, served):
        _, _, uri = served
        with Proxy(uri, tenant="lab-a") as proxy:
            with pytest.raises(TenantAuthError) as info:
                proxy.Job_Submit(api_key="key-b", spec=SPEC, tenant="lab-b")
            assert info.value.code == "GATEWAY_TENANT_AUTH"

    def test_no_tenant_anywhere_is_unknown_tenant(self, served):
        _, _, uri = served
        with Proxy(uri) as proxy:
            with pytest.raises(UnknownTenantError):
                proxy.Job_Submit(api_key="key-a", spec=SPEC)


class TestErrorCodesOverTheWire:
    def test_quota_error_rebuilds_with_stable_code(self, served):
        _, _, uri = served
        with Proxy(uri, tenant="lab-b") as proxy:
            proxy.Job_Submit(api_key="key-b", spec=SPEC)  # max_active=1
            with pytest.raises(QuotaExceededError) as info:
                proxy.Job_Submit(api_key="key-b", spec=SPEC)
            assert info.value.code == "GATEWAY_QUOTA_EXCEEDED"

    def test_cross_tenant_lookup_rebuilds_unknown_job(self, served):
        _, _, uri = served
        with Proxy(uri, tenant="lab-a") as proxy:
            view = proxy.Job_Submit(api_key="key-a", spec=SPEC)
        with Proxy(uri, tenant="lab-b") as proxy:
            with pytest.raises(UnknownJobError) as info:
                proxy.Job_Status(view["job_id"], api_key="key-b")
            assert info.value.code == "GATEWAY_UNKNOWN_JOB"


class TestGatewayClientOverRpc:
    def test_full_lifecycle_through_client(self, served):
        gateway, _, uri = served
        with GatewayClient(uri, "lab-a", "key-a") as client:
            view = client.submit(SPEC)
            assert view["state"] == "queued"
            gateway.run_until_idle()
            assert client.status(view["job_id"])["state"] == SUCCEEDED
            reply = client.poll(cursor=0)
            assert reply["schema"] == FEED_SCHEMA
            assert [e["name"] for e in reply["events"]] == [
                "job.submitted",
                "job.started",
                "job.finished",
            ]

    def test_cancel_queued_through_client(self, served):
        _, _, uri = served
        with GatewayClient(uri, "lab-a", "key-a") as client:
            view = client.submit(SPEC)
            assert client.cancel(view["job_id"])["state"] == CANCELLED


class TestSessionSurface:
    def test_session_submits_jobs_through_attached_gateway(
        self, ice, tmp_path
    ):
        import repro

        gateway = Gateway(
            {"cell-1": ice},
            tmp_path / "gw",
            tenants=(TenantSpec("lab-a", "key-a"),),
        )
        with repro.connect(ice) as session, gateway:
            session.use_gateway(gateway, "lab-a", "key-a")
            view = session.submit_job(
                repro.scan_rate_strategy((0.1,)), max_rounds=1
            )
            gateway.run_until_idle()
            assert session.job_status(view["job_id"])["state"] == SUCCEEDED
            events = session.poll_jobs()["events"]
            assert [e["name"] for e in events] == [
                "job.submitted",
                "job.started",
                "job.finished",
            ]

    def test_session_without_gateway_raises(self):
        import repro
        from repro.errors import WorkflowError

        with repro.connect() as session:
            with pytest.raises(WorkflowError):
                session.job_status("nope")

    def test_submit_job_requires_rebuildable_strategy(self, served):
        import repro

        gateway, _, _ = served
        with repro.connect() as session:
            session.use_gateway(gateway, "lab-a", "key-a")
            with pytest.raises(repro.ReproError):
                session.submit_job(lambda history: None)
