"""The shipped examples must actually run (they are the quickstart docs).

Each example is executed in-process via ``runpy`` with its ``__main__``
guard honoured. The two classifier-training examples are the slowest
tests in the suite; they stay in because a broken quickstart is a broken
front door.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_remote_notebook_session(capsys):
    out = run_example("remote_notebook_session.py", capsys)
    assert "Set_Rate_SyringePump" in out
    assert "Measurements are collected" in out or "collected" in out
    assert "SYRINGEPUMP_RATE(1,5.000000) OK" in out  # the Fig 5b echo


def test_scan_rate_study(capsys):
    out = run_example("scan_rate_study.py", capsys)
    assert "estimated D" in out
    assert "R^2" in out


def test_electrolysis_characterization(capsys):
    out = run_example("electrolysis_characterization.py", capsys)
    assert "ferrocenium" in out
    assert "conversion after electrolysis" in out


def test_live_steering(capsys):
    out = run_example("live_steering.py", capsys)
    assert "finished=True" in out
    assert "aborted=True" in out


@pytest.mark.slow
def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "classified normal" in out


@pytest.mark.slow
def test_anomaly_detection(capsys):
    out = run_example("anomaly_detection.py", capsys)
    assert "match the paper's reported behaviour" in out
