"""Server side of the file share (the CIFS stand-in).

:class:`FileShareService` is an RPC-exposed object that exports one root
directory read-only: directory listing, stat, chunked reads and whole-file
reads with checksums. Registered on its own daemon/port it forms the data
channel, physically separate from the control channel.

Path handling is strict: every client path is resolved inside the export
root; traversal attempts raise :class:`~repro.errors.AccessDeniedError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import AccessDeniedError, RemoteFileNotFoundError
from repro.rpc.expose import expose


@dataclass(frozen=True)
class FileStat:
    """Stat record for one remote entry."""

    path: str
    size: int
    mtime: float
    is_dir: bool

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "size": self.size,
            "mtime": self.mtime,
            "is_dir": self.is_dir,
        }


#: Chunk size for streamed reads: large enough to amortise the frame
#: overhead, small enough to keep control-channel-style latencies sane
#: when a link is shared (benchmark CH1 relies on this being realistic).
CHUNK_SIZE = 256 * 1024


@expose
class FileShareService:
    """Read-only export of ``root``.

    Args:
        root: directory to export; must exist.
        share_name: advertised name (metadata only).
    """

    def __init__(self, root: str | Path, share_name: str = "measurements"):
        self._root = Path(root).resolve()
        if not self._root.is_dir():
            raise AccessDeniedError(f"export root {self._root} is not a directory")
        self.share_name = share_name
        self.reads_served = 0
        self.bytes_served = 0
        #: optional repro.obs.MetricsRegistry (assign after construction)
        self.metrics = None

    # -- path safety -----------------------------------------------------------
    def _resolve(self, relative: str) -> Path:
        if relative.startswith(("/", "\\")) or ":" in relative:
            raise AccessDeniedError(f"absolute paths are not allowed: {relative!r}")
        candidate = (self._root / relative).resolve()
        if candidate != self._root and self._root not in candidate.parents:
            raise AccessDeniedError(f"path escapes the share: {relative!r}")
        return candidate

    # -- exposed operations --------------------------------------------------
    def info(self) -> dict:
        """Share metadata."""
        return {"share_name": self.share_name, "root": str(self._root)}

    def listdir(self, relative: str = "") -> list[dict]:
        """Stat records of entries under ``relative`` (non-recursive)."""
        directory = self._resolve(relative) if relative else self._root
        if not directory.is_dir():
            raise RemoteFileNotFoundError(f"not a directory: {relative!r}")
        records = []
        for entry in sorted(directory.iterdir()):
            stat = entry.stat()
            records.append(
                FileStat(
                    path=str(entry.relative_to(self._root)),
                    size=stat.st_size if entry.is_file() else 0,
                    mtime=stat.st_mtime,
                    is_dir=entry.is_dir(),
                ).to_dict()
            )
        return records

    def stat(self, relative: str) -> dict:
        """Stat one entry."""
        target = self._resolve(relative)
        if not target.exists():
            raise RemoteFileNotFoundError(f"no such file: {relative!r}")
        stat = target.stat()
        return FileStat(
            path=relative,
            size=stat.st_size if target.is_file() else 0,
            mtime=stat.st_mtime,
            is_dir=target.is_dir(),
        ).to_dict()

    def exists(self, relative: str) -> bool:
        """Does the entry exist inside the share?"""
        try:
            return self._resolve(relative).exists()
        except AccessDeniedError:
            raise

    def read_chunk(self, relative: str, offset: int, size: int = CHUNK_SIZE) -> bytes:
        """Read up to ``size`` bytes starting at ``offset``."""
        if offset < 0 or size < 0:
            raise AccessDeniedError("offset/size must be non-negative")
        target = self._resolve(relative)
        if not target.is_file():
            raise RemoteFileNotFoundError(f"no such file: {relative!r}")
        with target.open("rb") as handle:
            handle.seek(offset)
            data = handle.read(min(size, CHUNK_SIZE))
        self.reads_served += 1
        self.bytes_served += len(data)
        if self.metrics is not None:
            self.metrics.counter(
                "datachannel.share.reads_total", "chunk reads served"
            ).inc(share=self.share_name)
            self.metrics.counter(
                "datachannel.share.bytes_total", "bytes served"
            ).inc(len(data), share=self.share_name)
        return data

    def checksum(self, relative: str) -> str:
        """SHA-256 of the whole file (transfer-integrity check)."""
        target = self._resolve(relative)
        if not target.is_file():
            raise RemoteFileNotFoundError(f"no such file: {relative!r}")
        digest = hashlib.sha256()
        with target.open("rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        return digest.hexdigest()
