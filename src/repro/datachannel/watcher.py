"""Polling watcher: notice new/changed measurement files on a mount.

The paper's workflow learns an acquisition is complete when its file
appears on the mounted share. :class:`MeasurementWatcher` polls one or
more mount directories, keeps (size, mtime) fingerprints, and reports
new or modified entries — either on demand (:meth:`poll`) or from a
background thread with a callback (:meth:`start`). The polling-vs-push
trade-off is one of the DC1 benchmark's ablations.

Error-streak escalation is tracked **per watched path**: a healthy poll
of one directory must not mask a share subtree that has been failing for
minutes (the historical global counter did exactly that — any success
reset the streak for every path).
"""

from __future__ import annotations

import fnmatch
import logging
import threading
from typing import Any, Callable, Sequence

from repro.clock import Clock, WALL
from repro.errors import DataChannelError
from repro.datachannel.mount import Mount
from repro.datachannel.share import FileStat

logger = logging.getLogger(__name__)


class MeasurementWatcher:
    """Watches directories of a mount for file arrivals.

    Args:
        mount: the mounted share.
        directory: share-relative directory to watch ("" = root), or a
            sequence of directories to watch together.
        pattern: fnmatch pattern, e.g. ``"*.mpt"``.
        interval_s: polling period for the background mode.
        clock: time source for waits.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            poll counters and per-directory failure counts.
    """

    def __init__(
        self,
        mount: Mount,
        directory: str | Sequence[str] = "",
        pattern: str = "*.mpt",
        interval_s: float = 0.2,
        clock: Clock | None = None,
        metrics: Any = None,
    ):
        if interval_s <= 0:
            raise DataChannelError("poll interval must be > 0")
        self.mount = mount
        if isinstance(directory, str):
            self.directories: tuple[str, ...] = (directory,)
        else:
            self.directories = tuple(directory) or ("",)
        #: primary directory, kept for the single-directory call sites
        self.directory = self.directories[0]
        self.pattern = pattern
        self.interval_s = interval_s
        self.clock = clock or WALL
        self.metrics = metrics
        self._seen: dict[str, tuple[int, float]] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.polls = 0
        #: consecutive failing polls per watched directory
        self.failure_streaks: dict[str, int] = {d: 0 for d in self.directories}
        #: most recent error per directory (for escalation callbacks)
        self.last_errors: dict[str, DataChannelError] = {}
        # bumped whenever the *real* poll() does its own per-directory
        # streak accounting; lets the background loop detect a wholesale
        # poll() replacement (tests do this) and fall back to coarse
        # accounting instead of double-counting
        self._streak_epoch = 0

    @property
    def failure_streak(self) -> int:
        """Worst current streak across all watched directories."""
        return max(self.failure_streaks.values(), default=0)

    def _record_poll_outcome(
        self,
        directory: str,
        error: DataChannelError | None = None,
        count_metric: bool = False,
    ) -> None:
        """The single point of per-directory streak bookkeeping.

        Success resets the directory's streak; failure extends it and
        remembers the error. Both :meth:`poll` and the background loop's
        coarse fallback route through here (the loop does not count
        metrics — only real per-directory polls do).
        """
        if error is None:
            self.failure_streaks[directory] = 0
            return
        self.failure_streaks[directory] = (
            self.failure_streaks.get(directory, 0) + 1
        )
        self.last_errors[directory] = error
        if count_metric and self.metrics is not None:
            self.metrics.counter(
                "datachannel.watcher.poll_failures_total",
                "failed directory polls",
            ).inc(directory=directory or "/")

    def snapshot(self) -> None:
        """Record the current state without reporting anything (baseline)."""
        for directory in self.directories:
            for stat in self._matching(directory):
                self._seen[stat.path] = (stat.size, stat.mtime)

    def _matching(self, directory: str) -> list[FileStat]:
        entries = self.mount.listdir(directory)
        return [
            stat
            for stat in entries
            if not stat.is_dir
            and fnmatch.fnmatch(stat.path.rsplit("/", 1)[-1], self.pattern)
        ]

    def poll(self) -> list[FileStat]:
        """One poll pass: files that are new or changed since last look.

        Each directory is polled independently and its failure streak
        updated in isolation; the pass raises only when *every* watched
        directory failed (with a single directory this is the historical
        behaviour).
        """
        self.polls += 1
        if self.metrics is not None:
            self.metrics.counter(
                "datachannel.watcher.polls_total", "watcher poll passes"
            ).inc()
        changed: list[FileStat] = []
        last_error: DataChannelError | None = None
        failed_dirs = 0
        for directory in self.directories:
            try:
                matches = self._matching(directory)
            except DataChannelError as exc:
                failed_dirs += 1
                last_error = exc
                self._record_poll_outcome(directory, exc, count_metric=True)
                continue
            self._record_poll_outcome(directory)
            for stat in matches:
                fingerprint = (stat.size, stat.mtime)
                if self._seen.get(stat.path) != fingerprint:
                    self._seen[stat.path] = fingerprint
                    changed.append(stat)
        self._streak_epoch += 1
        if last_error is not None and failed_dirs == len(self.directories):
            raise last_error
        return changed

    def wait_for(
        self, filename: str, timeout_s: float = 30.0
    ) -> FileStat:
        """Block until ``filename`` appears (exact share-relative path).

        Raises:
            DataChannelError: timeout expired.
        """
        deadline = self.clock.now() + timeout_s
        while True:
            for stat in self.poll():
                if stat.path == filename:
                    return stat
            if self.mount.exists(filename):
                return self.mount.stat(filename)
            if self.clock.now() >= deadline:
                raise DataChannelError(
                    f"file {filename!r} did not appear within {timeout_s}s"
                )
            self.clock.sleep(self.interval_s)

    # -- background mode ----------------------------------------------------
    def start(
        self,
        callback: Callable[[FileStat], None],
        on_error: Callable[[DataChannelError], None] | None = None,
        error_threshold: int = 5,
    ) -> None:
        """Poll on a thread, invoking ``callback`` per new/changed file.

        A transient mount error is retried on the next tick, but not
        silently forever: after ``error_threshold`` *consecutive*
        failures of one directory a warning is logged and ``on_error``
        (if given) is invoked with that directory's latest error, once
        per streak — a share that went away mid-acquisition should page
        somebody, not spin. A clean poll of a directory resets *that
        directory's* streak (and re-arms its notification); other
        directories' streaks are unaffected.
        """
        if error_threshold < 1:
            raise DataChannelError("error_threshold must be >= 1")
        if self._thread is not None and self._thread.is_alive():
            raise DataChannelError("watcher already running")
        self._stop.clear()
        self.failure_streaks = {d: 0 for d in self.directories}
        self.last_errors = {}

        def loop() -> None:
            notified: dict[str, bool] = {d: False for d in self.directories}
            while not self._stop.is_set():
                epoch_before = self._streak_epoch
                tick_error: DataChannelError | None = None
                try:
                    for stat in self.poll():
                        callback(stat)
                except DataChannelError as exc:
                    tick_error = exc
                    if self._streak_epoch == epoch_before:
                        # poll() was replaced wholesale (tests monkeypatch
                        # it): no per-directory accounting happened, so
                        # every watched directory shares the failure
                        for d in self.directories:
                            self._record_poll_outcome(d, exc)
                else:
                    if self._streak_epoch == epoch_before:
                        for d in self.directories:
                            self._record_poll_outcome(d)
                for d in self.directories:
                    streak = self.failure_streaks.get(d, 0)
                    if streak == 0:
                        notified[d] = False
                    elif streak >= error_threshold and not notified[d]:
                        notified[d] = True
                        exc = self.last_errors.get(d) or tick_error
                        logger.warning(
                            "measurement watcher: %d consecutive poll "
                            "failures on %r (last: %s)",
                            streak,
                            d or "/",
                            exc,
                        )
                        if on_error is not None and exc is not None:
                            try:
                                on_error(exc)
                            except Exception:  # noqa: BLE001
                                logger.exception(
                                    "watcher on_error callback raised"
                                )
                self._stop.wait(self.interval_s)

        self._thread = threading.Thread(target=loop, name="mpt-watcher", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def auto_catalog(
    watcher: MeasurementWatcher,
    catalog,
) -> Callable[[], None]:
    """Glue: keep a :class:`~repro.datachannel.catalog.MeasurementCatalog`
    current as measurements arrive on the watched mount.

    Starts the watcher's background loop with a callback that fetches each
    new ``.mpt`` into the mount's cache and indexes it. Returns a stop
    function (stops the watcher and saves the catalog).
    """
    from repro.errors import DataChannelError, FileFormatError

    def on_arrival(stat) -> None:
        try:
            watcher.mount.fetch(stat.path)
            catalog.add(stat.path)
        except (DataChannelError, FileFormatError):
            pass  # half-written files are retried on the next change

    watcher.start(on_arrival)

    def stop() -> None:
        watcher.stop()
        catalog.save()

    return stop
