"""Polling watcher: notice new/changed measurement files on a mount.

The paper's workflow learns an acquisition is complete when its file
appears on the mounted share. :class:`MeasurementWatcher` polls a mount
directory, keeps (size, mtime) fingerprints, and reports new or modified
entries — either on demand (:meth:`poll`) or from a background thread
with a callback (:meth:`start`). The polling-vs-push trade-off is one of
the DC1 benchmark's ablations.
"""

from __future__ import annotations

import fnmatch
import logging
import threading
from typing import Callable

from repro.clock import Clock, WALL
from repro.errors import DataChannelError
from repro.datachannel.mount import Mount
from repro.datachannel.share import FileStat

logger = logging.getLogger(__name__)


class MeasurementWatcher:
    """Watches one directory of a mount for file arrivals.

    Args:
        mount: the mounted share.
        directory: share-relative directory to watch ("" = root).
        pattern: fnmatch pattern, e.g. ``"*.mpt"``.
        interval_s: polling period for the background mode.
    """

    def __init__(
        self,
        mount: Mount,
        directory: str = "",
        pattern: str = "*.mpt",
        interval_s: float = 0.2,
        clock: Clock | None = None,
    ):
        if interval_s <= 0:
            raise DataChannelError("poll interval must be > 0")
        self.mount = mount
        self.directory = directory
        self.pattern = pattern
        self.interval_s = interval_s
        self.clock = clock or WALL
        self._seen: dict[str, tuple[int, float]] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.polls = 0
        #: consecutive background polls that raised; reset by a clean poll
        self.failure_streak = 0

    def snapshot(self) -> None:
        """Record the current state without reporting anything (baseline)."""
        for stat in self._matching():
            self._seen[stat.path] = (stat.size, stat.mtime)

    def _matching(self) -> list[FileStat]:
        entries = self.mount.listdir(self.directory)
        return [
            stat
            for stat in entries
            if not stat.is_dir and fnmatch.fnmatch(stat.path.rsplit("/", 1)[-1], self.pattern)
        ]

    def poll(self) -> list[FileStat]:
        """One poll: returns files that are new or changed since last look."""
        self.polls += 1
        changed: list[FileStat] = []
        for stat in self._matching():
            fingerprint = (stat.size, stat.mtime)
            if self._seen.get(stat.path) != fingerprint:
                self._seen[stat.path] = fingerprint
                changed.append(stat)
        return changed

    def wait_for(
        self, filename: str, timeout_s: float = 30.0
    ) -> FileStat:
        """Block until ``filename`` appears (exact share-relative path).

        Raises:
            DataChannelError: timeout expired.
        """
        deadline = self.clock.now() + timeout_s
        while True:
            for stat in self.poll():
                if stat.path == filename:
                    return stat
            if self.mount.exists(filename):
                return self.mount.stat(filename)
            if self.clock.now() >= deadline:
                raise DataChannelError(
                    f"file {filename!r} did not appear within {timeout_s}s"
                )
            self.clock.sleep(self.interval_s)

    # -- background mode ----------------------------------------------------
    def start(
        self,
        callback: Callable[[FileStat], None],
        on_error: Callable[[DataChannelError], None] | None = None,
        error_threshold: int = 5,
    ) -> None:
        """Poll on a thread, invoking ``callback`` per new/changed file.

        A transient mount error is retried on the next tick, but not
        silently forever: after ``error_threshold`` *consecutive*
        failures a warning is logged and ``on_error`` (if given) is
        invoked with the latest error, once per streak — a share that
        went away mid-acquisition should page somebody, not spin. A
        clean poll resets the streak.
        """
        if error_threshold < 1:
            raise DataChannelError("error_threshold must be >= 1")
        if self._thread is not None and self._thread.is_alive():
            raise DataChannelError("watcher already running")
        self._stop.clear()
        self.failure_streak = 0

        def loop() -> None:
            notified = False
            while not self._stop.is_set():
                try:
                    for stat in self.poll():
                        callback(stat)
                except DataChannelError as exc:
                    # transient mount errors: retry on the next tick,
                    # but escalate once the streak crosses the threshold
                    self.failure_streak += 1
                    if self.failure_streak >= error_threshold and not notified:
                        notified = True
                        logger.warning(
                            "measurement watcher: %d consecutive poll "
                            "failures on %r (last: %s)",
                            self.failure_streak,
                            self.directory or "/",
                            exc,
                        )
                        if on_error is not None:
                            try:
                                on_error(exc)
                            except Exception:  # noqa: BLE001
                                logger.exception(
                                    "watcher on_error callback raised"
                                )
                else:
                    self.failure_streak = 0
                    notified = False
                self._stop.wait(self.interval_s)

        self._thread = threading.Thread(target=loop, name="mpt-watcher", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def auto_catalog(
    watcher: MeasurementWatcher,
    catalog,
) -> Callable[[], None]:
    """Glue: keep a :class:`~repro.datachannel.catalog.MeasurementCatalog`
    current as measurements arrive on the watched mount.

    Starts the watcher's background loop with a callback that fetches each
    new ``.mpt`` into the mount's cache and indexes it. Returns a stop
    function (stops the watcher and saves the catalog).
    """
    from repro.errors import DataChannelError, FileFormatError

    def on_arrival(stat) -> None:
        try:
            watcher.mount.fetch(stat.path)
            catalog.add(stat.path)
        except (DataChannelError, FileFormatError):
            pass  # half-written files are retried on the next change

    watcher.start(on_arrival)

    def stop() -> None:
        watcher.stop()
        catalog.save()

    return stop
