"""Measurement catalog: a queryable index over the share.

The paper's ecosystem grows toward "data services" (§1 cites superfacility
projects); the minimum useful one is an index: every ``.mpt`` on the share
with its technique, parameters and summary statistics, queryable without
re-downloading the files. ``MeasurementCatalog`` builds and maintains that
index from a mount (remote side) or a directory (agent side).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import DataChannelError, FileFormatError
from repro.datachannel.formats import read_mpt

CATALOG_NAME = "_catalog.json"


@dataclass(frozen=True)
class CatalogEntry:
    """Index record for one measurement file."""

    path: str
    technique: str
    n_samples: int
    scan_rate_v_s: float | None
    peak_anodic_a: float | None
    e_half_v: float | None
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "technique": self.technique,
            "n_samples": self.n_samples,
            "scan_rate_v_s": self.scan_rate_v_s,
            "peak_anodic_a": self.peak_anodic_a,
            "e_half_v": self.e_half_v,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CatalogEntry":
        return cls(
            path=data["path"],
            technique=data["technique"],
            n_samples=data["n_samples"],
            scan_rate_v_s=data.get("scan_rate_v_s"),
            peak_anodic_a=data.get("peak_anodic_a"),
            e_half_v=data.get("e_half_v"),
            metadata=dict(data.get("metadata", {})),
        )


def _summarise(path: Path, relative: str) -> CatalogEntry:
    trace = read_mpt(path)
    peak_anodic = None
    e_half = None
    if len(trace) >= 8:
        from repro.analysis.peaks import find_peaks

        pair = find_peaks(trace)
        if pair.anodic is not None:
            peak_anodic = pair.anodic.current_a
        if pair.complete:
            e_half = pair.e_half_v
    scan_rate = trace.metadata.get("scan_rate_v_s")
    # keep only JSON-able scalar metadata in the index
    slim = {
        key: value
        for key, value in trace.metadata.items()
        if isinstance(value, (str, int, float, bool))
    }
    return CatalogEntry(
        path=relative,
        technique=str(trace.metadata.get("technique", "?")),
        n_samples=len(trace),
        scan_rate_v_s=float(scan_rate) if scan_rate else None,
        peak_anodic_a=peak_anodic,
        e_half_v=e_half,
        metadata=slim,
    )


class MeasurementCatalog:
    """Index of the measurement files under one directory.

    Args:
        directory: the measurement directory (the agent-side root, or a
            mount's local cache after fetching).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise DataChannelError(f"{self.directory} is not a directory")
        self._entries: dict[str, CatalogEntry] = {}

    # -- building ----------------------------------------------------------
    def rebuild(self) -> int:
        """Scan every ``.mpt`` under the directory; returns entry count.

        Unparseable files are skipped (a half-written acquisition must not
        poison the index) but counted in ``skipped_``.
        """
        self._entries.clear()
        self.skipped_ = 0
        for path in sorted(self.directory.rglob("*.mpt")):
            relative = str(path.relative_to(self.directory))
            try:
                self._entries[relative] = _summarise(path, relative)
            except FileFormatError:
                self.skipped_ += 1
        return len(self._entries)

    def add(self, relative: str) -> CatalogEntry:
        """Index one (new) file by its share-relative path."""
        path = self.directory / relative
        entry = _summarise(path, relative)
        self._entries[relative] = entry
        return entry

    # -- persistence ------------------------------------------------------
    def save(self) -> Path:
        """Write the index as JSON into the directory (one file, shareable)."""
        path = self.directory / CATALOG_NAME
        payload = {
            "schema": "repro-catalog-1",
            "entries": [entry.to_dict() for entry in self._entries.values()],
        }
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        return path

    @classmethod
    def load(cls, directory: str | Path) -> "MeasurementCatalog":
        """Read a previously saved index."""
        catalog = cls(directory)
        path = catalog.directory / CATALOG_NAME
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DataChannelError(f"cannot load catalog: {exc}") from exc
        for record in payload.get("entries", []):
            entry = CatalogEntry.from_dict(record)
            catalog._entries[entry.path] = entry
        return catalog

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    def get(self, relative: str) -> CatalogEntry | None:
        return self._entries.get(relative)

    def query(
        self,
        technique: str | None = None,
        min_scan_rate: float | None = None,
        max_scan_rate: float | None = None,
        predicate: Callable[[CatalogEntry], bool] | None = None,
    ) -> list[CatalogEntry]:
        """Filter entries; all conditions are conjunctive."""
        out = []
        for entry in self._entries.values():
            if technique is not None and entry.technique != technique:
                continue
            if min_scan_rate is not None and (
                entry.scan_rate_v_s is None or entry.scan_rate_v_s < min_scan_rate
            ):
                continue
            if max_scan_rate is not None and (
                entry.scan_rate_v_s is None or entry.scan_rate_v_s > max_scan_rate
            ):
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def scan_rate_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(scan rates, anodic peaks) across all CV entries that have both —
        the catalog-level input to a Randles-Sevcik fit."""
        rates, peaks = [], []
        for entry in self.query(technique="CV"):
            if entry.scan_rate_v_s and entry.peak_anodic_a:
                rates.append(entry.scan_rate_v_s)
                peaks.append(entry.peak_anodic_a)
        order = np.argsort(rates)
        return np.asarray(rates)[order], np.asarray(peaks)[order]
