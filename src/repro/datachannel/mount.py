"""Client side of the file share: the mounted view.

A :class:`Mount` wraps a proxy to a :class:`FileShareService` and offers
pathlib-flavoured access plus an optional local cache directory, mirroring
how the paper's DGX sees the control agent's measurement folder as local
files once CIFS is mounted.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.errors import DataChannelError, ShareNotMountedError
from repro.obs.trace import child_span
from repro.rpc.proxy import Proxy
from repro.datachannel.formats import read_mpt
from repro.datachannel.share import CHUNK_SIZE, FileStat


class Mount:
    """A mounted remote share.

    Bulk reads inherit the proxy's wire format: against a protocol-v2
    daemon (negotiated via ``binary="auto"``, PROTOCOLS §1.7) each
    ``read_chunk`` reply carries the chunk as a raw binary blob instead
    of base64-inside-JSON, so a mount built from
    :meth:`repro.facility.ice.ElectrochemistryICE.mount` gets zero-copy
    framing without any change here — the chunks arrive as ``bytes``
    either way.

    Args:
        proxy: connected proxy to the share service.
        cache_dir: local directory for :meth:`fetch`; created on demand.
        read_size: request granularity for chunked reads, in bytes. The
            server clamps each ``read_chunk`` to its own ``CHUNK_SIZE``,
            so values above that are ineffective; smaller values mean
            more, smaller frames — which pipelining turns into deeper
            read-ahead on high-latency links.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            checksum-verify failures count into
            ``datachannel.verify_failures_total`` (a health-rule input).
    """

    def __init__(
        self,
        proxy: Proxy,
        cache_dir: str | Path | None = None,
        read_size: int = CHUNK_SIZE,
        metrics=None,
    ):
        if read_size < 1:
            raise ValueError(f"read_size must be >= 1, got {read_size}")
        self._proxy: Proxy | None = proxy
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.read_size = min(read_size, CHUNK_SIZE)
        self.bytes_fetched = 0
        self.metrics = metrics

    # -- lifecycle -----------------------------------------------------------
    @property
    def mounted(self) -> bool:
        return self._proxy is not None

    def unmount(self) -> None:
        """Drop the connection; further access raises."""
        if self._proxy is not None:
            self._proxy.close()
            self._proxy = None

    def _service(self) -> Proxy:
        if self._proxy is None:
            raise ShareNotMountedError("share is not mounted")
        return self._proxy

    # -- directory operations -----------------------------------------------
    def info(self) -> dict:
        return self._service().info()

    def listdir(self, relative: str = "") -> list[FileStat]:
        """Stat records for a directory."""
        return [FileStat(**record) for record in self._service().listdir(relative)]

    def stat(self, relative: str) -> FileStat:
        return FileStat(**self._service().stat(relative))

    def exists(self, relative: str) -> bool:
        return bool(self._service().exists(relative))

    # -- file access -------------------------------------------------------
    def _read_serial(self, service, relative: str, offset: int = 0) -> list[bytes]:
        """Chunk-at-a-time fetch loop starting at ``offset``."""
        size = self.read_size
        chunks: list[bytes] = []
        while True:
            chunk = service.read_chunk(relative, offset, size)
            if not chunk:
                break
            chunks.append(chunk)
            offset += len(chunk)
            if len(chunk) < size:
                break
        return chunks

    def _read_pipelined(self, service, relative: str) -> list[bytes]:
        """Read-ahead fetch: every ``read_chunk`` in flight at once.

        A ``stat`` sizes the file, then all chunk requests go down the
        pipe back-to-back — the whole file costs one round trip plus the
        transfers instead of one round trip per chunk. If the file grew
        after the stat (a measurement still being written), a serial
        tail loop picks up the extra chunks.
        """
        read_size = self.read_size
        size = int(service.stat(relative)["size"])
        n_chunks = max(1, -(-size // read_size))
        with service.pipeline() as pipe:
            pending = [
                pipe.call("read_chunk", relative, i * read_size, read_size)
                for i in range(n_chunks)
            ]
            chunks = [p.result() for p in pending]
        # truncate at the first short/empty chunk (file shrank mid-read)
        out: list[bytes] = []
        for chunk in chunks:
            if not chunk:
                break
            out.append(chunk)
            if len(chunk) < read_size:
                break
        else:
            # every chunk came back full — the file may have grown
            out.extend(
                self._read_serial(service, relative, n_chunks * read_size)
            )
        return out

    def read_bytes(self, relative: str, verify: bool = False) -> bytes:
        """Read a whole remote file (chunked under the hood).

        When the mount's proxy was built with ``max_inflight > 1`` the
        chunk fetches are pipelined (each ``read_chunk`` is issued before
        the previous reply lands); otherwise the classic serial loop
        runs. Both paths return identical bytes.

        Args:
            verify: re-checksum the assembled bytes against the server's
                SHA-256 and raise on mismatch.
        """
        service = self._service()
        depth = getattr(service, "max_inflight", 1)
        pipelined = isinstance(depth, int) and depth > 1
        with child_span("datachannel.read", path=relative) as span:
            if pipelined:
                chunks = self._read_pipelined(service, relative)
            else:
                chunks = self._read_serial(service, relative)
            data = b"".join(chunks)
            self.bytes_fetched += len(data)
            if span is not None:
                span.set_attribute("bytes", len(data))
                span.set_attribute("pipelined", pipelined)
            if verify:
                expected = service.checksum(relative)
                actual = hashlib.sha256(data).hexdigest()
                if actual != expected:
                    if self.metrics is not None:
                        self.metrics.counter(
                            "datachannel.verify_failures_total",
                            "mount reads whose SHA-256 did not match the server's",
                        ).inc(path=relative)
                    raise DataChannelError(
                        f"checksum mismatch for {relative!r}: "
                        f"{actual[:12]} != {expected[:12]}"
                    )
        return data

    def read_text(self, relative: str, encoding: str = "utf-8") -> str:
        return self.read_bytes(relative).decode(encoding)

    def fetch(self, relative: str, verify: bool = True) -> Path:
        """Copy a remote file into the cache directory; returns local path."""
        if self.cache_dir is None:
            raise DataChannelError("mount has no cache directory configured")
        data = self.read_bytes(relative, verify=verify)
        local = self.cache_dir / relative
        local.parent.mkdir(parents=True, exist_ok=True)
        local.write_bytes(data)
        return local

    def read_voltammogram(self, relative: str):
        """Fetch and parse an ``.mpt`` measurement in one call."""
        if self.cache_dir is not None:
            return read_mpt(self.fetch(relative))
        import tempfile

        with tempfile.NamedTemporaryFile(
            "wb", suffix=".mpt", delete=False
        ) as handle:
            handle.write(self.read_bytes(relative))
            temp_path = Path(handle.name)
        try:
            return read_mpt(temp_path)
        finally:
            temp_path.unlink(missing_ok=True)
