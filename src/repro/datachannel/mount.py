"""Client side of the file share: the mounted view.

A :class:`Mount` wraps a proxy to a :class:`FileShareService` and offers
pathlib-flavoured access plus an optional local cache directory, mirroring
how the paper's DGX sees the control agent's measurement folder as local
files once CIFS is mounted.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.errors import DataChannelError, ShareNotMountedError
from repro.obs.trace import child_span
from repro.rpc.proxy import Proxy
from repro.datachannel.formats import read_mpt
from repro.datachannel.share import CHUNK_SIZE, FileStat


class Mount:
    """A mounted remote share.

    Args:
        proxy: connected proxy to the share service.
        cache_dir: local directory for :meth:`fetch`; created on demand.
    """

    def __init__(self, proxy: Proxy, cache_dir: str | Path | None = None):
        self._proxy: Proxy | None = proxy
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.bytes_fetched = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def mounted(self) -> bool:
        return self._proxy is not None

    def unmount(self) -> None:
        """Drop the connection; further access raises."""
        if self._proxy is not None:
            self._proxy.close()
            self._proxy = None

    def _service(self) -> Proxy:
        if self._proxy is None:
            raise ShareNotMountedError("share is not mounted")
        return self._proxy

    # -- directory operations -----------------------------------------------
    def info(self) -> dict:
        return self._service().info()

    def listdir(self, relative: str = "") -> list[FileStat]:
        """Stat records for a directory."""
        return [FileStat(**record) for record in self._service().listdir(relative)]

    def stat(self, relative: str) -> FileStat:
        return FileStat(**self._service().stat(relative))

    def exists(self, relative: str) -> bool:
        return bool(self._service().exists(relative))

    # -- file access -------------------------------------------------------
    def read_bytes(self, relative: str, verify: bool = False) -> bytes:
        """Read a whole remote file (chunked under the hood).

        Args:
            verify: re-checksum the assembled bytes against the server's
                SHA-256 and raise on mismatch.
        """
        service = self._service()
        with child_span("datachannel.read", path=relative) as span:
            chunks: list[bytes] = []
            offset = 0
            while True:
                chunk = service.read_chunk(relative, offset, CHUNK_SIZE)
                if not chunk:
                    break
                chunks.append(chunk)
                offset += len(chunk)
                if len(chunk) < CHUNK_SIZE:
                    break
            data = b"".join(chunks)
            self.bytes_fetched += len(data)
            if span is not None:
                span.set_attribute("bytes", len(data))
            if verify:
                expected = service.checksum(relative)
                actual = hashlib.sha256(data).hexdigest()
                if actual != expected:
                    raise DataChannelError(
                        f"checksum mismatch for {relative!r}: "
                        f"{actual[:12]} != {expected[:12]}"
                    )
        return data

    def read_text(self, relative: str, encoding: str = "utf-8") -> str:
        return self.read_bytes(relative).decode(encoding)

    def fetch(self, relative: str, verify: bool = True) -> Path:
        """Copy a remote file into the cache directory; returns local path."""
        if self.cache_dir is None:
            raise DataChannelError("mount has no cache directory configured")
        data = self.read_bytes(relative, verify=verify)
        local = self.cache_dir / relative
        local.parent.mkdir(parents=True, exist_ok=True)
        local.write_bytes(data)
        return local

    def read_voltammogram(self, relative: str):
        """Fetch and parse an ``.mpt`` measurement in one call."""
        if self.cache_dir is not None:
            return read_mpt(self.fetch(relative))
        import tempfile

        with tempfile.NamedTemporaryFile(
            "wb", suffix=".mpt", delete=False
        ) as handle:
            handle.write(self.read_bytes(relative))
            temp_path = Path(handle.name)
        try:
            return read_mpt(temp_path)
        finally:
            temp_path.unlink(missing_ok=True)
