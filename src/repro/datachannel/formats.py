"""EC-Lab-style ``.mpt`` measurement files.

The real SP200 writes text files with a header block followed by
tab-separated columns; this module reproduces that shape closely enough
that an electrochemist would recognise it, while keeping the parse strict
and the round trip lossless for everything a
:class:`~repro.chemistry.voltammogram.Voltammogram` carries.

Layout::

    EC-Lab ASCII FILE
    Nb header lines : 12

    Technique : CV
    meta.scan_rate_v_s : 0.1
    ...

    time/s<TAB>Ewe/V<TAB><I>/A<TAB>cycle number
    0.01<TAB>0.201<TAB>1.1e-07<TAB>0
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import FileFormatError
from repro.chemistry.voltammogram import Voltammogram

_SIGNATURE = "EC-Lab ASCII FILE"
_COLUMNS = "time/s\tEwe/V\t<I>/A\tcycle number"


def write_mpt(path: str | Path, voltammogram: Voltammogram) -> Path:
    """Write a voltammogram to ``path`` in ``.mpt`` form.

    Metadata values are JSON-encoded per line so arbitrary (JSON-able)
    metadata survives; non-encodable values are stringified.
    """
    path = Path(path)
    meta_lines = []
    for key, value in sorted(voltammogram.metadata.items()):
        try:
            encoded = json.dumps(value)
        except (TypeError, ValueError):
            encoded = json.dumps(str(value))
        meta_lines.append(f"meta.{key} : {encoded}")
    technique = voltammogram.metadata.get("technique", "CV")
    header = [
        _SIGNATURE,
        # signature + count line + blank + technique + metas + blank + columns
        f"Nb header lines : {len(meta_lines) + 6}",
        "",
        f"Technique : {technique}",
        *meta_lines,
        "",
        _COLUMNS,
    ]
    body = np.column_stack(
        [
            voltammogram.time_s,
            voltammogram.potential_v,
            voltammogram.current_a,
            voltammogram.cycle_index.astype(np.float64),
        ]
    )
    with path.open("w", encoding="utf-8", newline="\n") as handle:
        handle.write("\n".join(header) + "\n")
        np.savetxt(handle, body, fmt=["%.6e", "%.6e", "%.6e", "%d"], delimiter="\t")
    return path


def read_mpt(path: str | Path) -> Voltammogram:
    """Parse an ``.mpt`` file back into a voltammogram.

    Raises:
        FileFormatError: missing signature, malformed header, or bad body.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FileFormatError(f"cannot read {path}: {exc}") from exc
    lines = text.splitlines()
    if not lines or lines[0].strip() != _SIGNATURE:
        raise FileFormatError(f"{path} is not an EC-Lab ASCII file")
    if len(lines) < 2 or not lines[1].startswith("Nb header lines :"):
        raise FileFormatError(f"{path}: missing header-count line")
    try:
        n_header = int(lines[1].split(":")[1])
    except (IndexError, ValueError) as exc:
        raise FileFormatError(f"{path}: bad header count") from exc
    if n_header < 6 or n_header > len(lines):
        raise FileFormatError(f"{path}: header count {n_header} out of range")

    metadata: dict[str, Any] = {}
    for line in lines[2 : n_header - 1]:
        line = line.strip()
        if not line or line.startswith("Technique :"):
            continue
        if line.startswith("meta.") and " : " in line:
            key, _, raw = line.partition(" : ")
            try:
                metadata[key[len("meta.") :]] = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise FileFormatError(
                    f"{path}: unparseable metadata line {line!r}"
                ) from exc

    column_line = lines[n_header - 1].strip()
    if column_line != _COLUMNS.replace("\t", "\t").strip():
        # normalise: compare field lists to be whitespace tolerant
        if column_line.split("\t") != _COLUMNS.split("\t"):
            raise FileFormatError(
                f"{path}: unexpected column header {column_line!r}"
            )

    body_lines = [line for line in lines[n_header:] if line.strip()]
    if not body_lines:
        data = np.empty((0, 4))
    else:
        try:
            data = np.loadtxt(body_lines, delimiter="\t", ndmin=2)
        except ValueError as exc:
            raise FileFormatError(f"{path}: bad data body: {exc}") from exc
    if data.size and data.shape[1] != 4:
        raise FileFormatError(
            f"{path}: expected 4 columns, found {data.shape[1]}"
        )
    if data.size == 0:
        data = data.reshape(0, 4)
    return Voltammogram(
        time_s=data[:, 0],
        potential_v=data[:, 1],
        current_a=data[:, 2],
        cycle_index=data[:, 3].astype(np.int64),
        metadata=metadata,
    )
