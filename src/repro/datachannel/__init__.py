"""The data channel: measurement files and the cross-facility share.

Paper §3.3: rather than GridFTP/Globus, the ICE cross-mounts the control
agent's measurement folder onto the remote Linux system with CIFS. Here:

- :mod:`~repro.datachannel.formats` writes/reads EC-Lab-style ``.mpt``
  measurement files (the format the SP200's software produces);
- :class:`FileShareService` exports a directory over the RPC stack
  (list/stat/read, path-sandboxed) — served by its own daemon on its own
  port so data traffic stays off the control channel;
- :class:`Mount` is the client side: remote reads, local cache directory,
  and change polling;
- :class:`MeasurementWatcher` notifies workflow code when a new
  measurement file appears, which is how the analysis step learns the
  acquisition finished.
"""

from repro.datachannel.formats import write_mpt, read_mpt
from repro.datachannel.share import FileShareService, FileStat
from repro.datachannel.mount import Mount
from repro.datachannel.watcher import MeasurementWatcher

__all__ = [
    "write_mpt",
    "read_mpt",
    "FileShareService",
    "FileStat",
    "Mount",
    "MeasurementWatcher",
]
