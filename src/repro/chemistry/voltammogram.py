"""The I-V measurement record produced by a CV run.

A :class:`Voltammogram` is what travels over the data channel: time,
applied potential and measured current arrays plus the acquisition
metadata (analyte, scan rate, cycle count). It converts losslessly to and
from plain dicts so both the ``.mpt`` file writer and the RPC layer can
carry it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class Voltammogram:
    """One cyclic-voltammetry acquisition.

    Attributes:
        time_s: sample timestamps from technique start.
        potential_v: applied working-electrode potential (V vs ref).
        current_a: measured current (A; anodic positive).
        cycle_index: integer cycle number of each sample (0-based).
        metadata: acquisition context (scan rate, analyte label, ...).
    """

    time_s: np.ndarray
    potential_v: np.ndarray
    current_a: np.ndarray
    cycle_index: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {
            len(self.time_s),
            len(self.potential_v),
            len(self.current_a),
            len(self.cycle_index),
        }
        if len(lengths) != 1:
            raise ValueError(f"array lengths differ: {lengths}")
        self.time_s = np.asarray(self.time_s, dtype=np.float64)
        self.potential_v = np.asarray(self.potential_v, dtype=np.float64)
        self.current_a = np.asarray(self.current_a, dtype=np.float64)
        self.cycle_index = np.asarray(self.cycle_index, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.time_s)

    @property
    def n_cycles(self) -> int:
        return int(self.cycle_index.max()) + 1 if len(self) else 0

    def cycle(self, index: int) -> "Voltammogram":
        """Slice out one cycle (views where possible)."""
        mask = self.cycle_index == index
        if not mask.any():
            raise IndexError(f"no cycle {index} in voltammogram")
        return Voltammogram(
            time_s=self.time_s[mask],
            potential_v=self.potential_v[mask],
            current_a=self.current_a[mask],
            cycle_index=self.cycle_index[mask],
            metadata=dict(self.metadata),
        )

    def peak_anodic(self) -> tuple[float, float]:
        """(potential, current) of the maximum (anodic) current sample."""
        index = int(np.argmax(self.current_a))
        return float(self.potential_v[index]), float(self.current_a[index])

    def peak_cathodic(self) -> tuple[float, float]:
        """(potential, current) of the minimum (cathodic) current sample."""
        index = int(np.argmin(self.current_a))
        return float(self.potential_v[index]), float(self.current_a[index])

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for serialisation."""
        return {
            "time_s": self.time_s,
            "potential_v": self.potential_v,
            "current_a": self.current_a,
            "cycle_index": self.cycle_index,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Voltammogram":
        return cls(
            time_s=np.asarray(data["time_s"], dtype=np.float64),
            potential_v=np.asarray(data["potential_v"], dtype=np.float64),
            current_a=np.asarray(data["current_a"], dtype=np.float64),
            cycle_index=np.asarray(data["cycle_index"], dtype=np.int64),
            metadata=dict(data.get("metadata", {})),
        )
