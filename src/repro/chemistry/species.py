"""Redox species, solvents and electrolyte solutions.

Units follow electrochemical convention: concentrations in mol/cm^3
internally (accepting mM at the API edge), diffusion coefficients in
cm^2/s, potentials in volts against the cell reference electrode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import mm_to_mol_per_cm3


@dataclass(frozen=True)
class RedoxSpecies:
    """An electroactive couple O + n e- <-> R.

    Attributes:
        name: label, e.g. ``"ferrocene"``.
        formal_potential_v: E0' vs the reference electrode (V).
        n_electrons: electrons transferred per molecule.
        diffusion_cm2_s: diffusion coefficient of both forms (cm^2/s);
            the engine supports distinct D_O/D_R but ferrocene's forms
            are close enough to share one value.
        k0_cm_s: standard heterogeneous rate constant (cm/s). Ferrocene is
            fast (>1 cm/s on Pt/GC), i.e. electrochemically reversible at
            the paper's scan rates.
        alpha: transfer coefficient (0..1).
    """

    name: str
    formal_potential_v: float
    n_electrons: int = 1
    diffusion_cm2_s: float = 1.0e-5
    k0_cm_s: float = 1.0
    alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.n_electrons < 1:
            raise ValueError(f"n_electrons must be >= 1, got {self.n_electrons}")
        if self.diffusion_cm2_s <= 0:
            raise ValueError(f"diffusion coefficient must be > 0")
        if self.k0_cm_s <= 0:
            raise ValueError("k0 must be > 0")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")


@dataclass(frozen=True)
class Solvent:
    """A solvent with the properties the models care about."""

    name: str
    density_g_ml: float
    viscosity_cp: float


@dataclass(frozen=True)
class SupportingElectrolyte:
    """Inert salt that carries migration current so analyte moves by diffusion."""

    name: str
    concentration_m: float


ACETONITRILE = Solvent(name="acetonitrile", density_g_ml=0.786, viscosity_cp=0.343)
TBA_TRIFLATE = SupportingElectrolyte(
    name="tetrabutylammonium triflate", concentration_m=0.1
)

#: The paper's analyte: ferrocene/ferrocenium in acetonitrile. E0' vs the
#: pseudo-reference used in Fig 7 sits near +0.40 V; D from MeCN literature.
FERROCENE = RedoxSpecies(
    name="ferrocene",
    formal_potential_v=0.40,
    n_electrons=1,
    diffusion_cm2_s=2.4e-5,
    k0_cm_s=1.0,
    alpha=0.5,
)

#: The oxidised form [Fe(Cp)2]+ tracked separately so bulk electrolysis
#: and the HPLC-MS can see the product of cycling (paper §4.2 cycles
#: between the two).
FERROCENIUM = RedoxSpecies(
    name="ferrocenium",
    formal_potential_v=0.40,
    n_electrons=1,
    diffusion_cm2_s=2.2e-5,
    k0_cm_s=1.0,
    alpha=0.5,
)

#: reduced form -> its one-electron oxidation product
OXIDATION_PRODUCTS: dict[RedoxSpecies, RedoxSpecies] = {
    FERROCENE: FERROCENIUM,
}


@dataclass
class Solution:
    """A prepared electrolyte solution.

    Attributes:
        solvent: the solvent.
        species: analyte -> bulk concentration in mol/cm^3.
        supporting_electrolyte: the inert salt (affects solution resistance).
        label: human-readable description for measurement metadata.
    """

    solvent: Solvent
    species: dict[RedoxSpecies, float] = field(default_factory=dict)
    supporting_electrolyte: SupportingElectrolyte | None = None
    label: str = ""

    def concentration(self, species: RedoxSpecies) -> float:
        """Bulk concentration of ``species`` in mol/cm^3 (0 if absent)."""
        return self.species.get(species, 0.0)

    def with_concentration_mm(
        self, species: RedoxSpecies, millimolar: float
    ) -> "Solution":
        """Return a copy with ``species`` at the given mM concentration."""
        if millimolar < 0:
            raise ValueError(f"concentration must be >= 0, got {millimolar}")
        updated = dict(self.species)
        updated[species] = mm_to_mol_per_cm3(millimolar)
        return Solution(
            solvent=self.solvent,
            species=updated,
            supporting_electrolyte=self.supporting_electrolyte,
            label=self.label,
        )

    @property
    def resistance_ohm(self) -> float:
        """Uncompensated solution resistance estimate.

        Well-supported organic electrolyte (0.1 M TBA salt in MeCN) gives
        tens to a couple hundred ohms in a small cell; without supporting
        electrolyte the resistance balloons — the model makes that ~30x
        worse, enough to visibly tilt a voltammogram.
        """
        if self.supporting_electrolyte is None:
            return 3000.0
        base = 100.0 * (0.1 / max(self.supporting_electrolyte.concentration_m, 1e-4))
        return base * (self.solvent.viscosity_cp / ACETONITRILE.viscosity_cp)


def ferrocene_solution(concentration_mm: float = 2.0) -> Solution:
    """The paper's test solution: ferrocene in MeCN with 0.1 M TBAOTf."""
    return Solution(
        solvent=ACETONITRILE,
        species={FERROCENE: mm_to_mol_per_cm3(concentration_mm)},
        supporting_electrolyte=TBA_TRIFLATE,
        label=f"{concentration_mm:g} mM ferrocene / MeCN / 0.1 M TBAOTf",
    )
