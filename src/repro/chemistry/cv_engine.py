"""Cyclic-voltammetry physics: 1-D diffusion + Butler-Volmer kinetics.

Model (Bard & Faulkner, ch. 6 and appendix B):

- semi-infinite linear diffusion of the oxidised (O) and reduced (R) forms
  towards a planar electrode, explicit FTCS scheme on a uniform grid with
  the mesh ratio fixed at a stable value (lambda = D dt / dx^2 = 0.40);
- Butler-Volmer surface kinetics: kf = k0 exp(-alpha f eta),
  kb = k0 exp((1-alpha) f eta) with eta = E - E0' and f = nF/RT; surface
  concentrations solve the 2x2 flux-balance system each step;
- anodic current positive: I = n F A (kb C_R(0) - kf C_O(0));
- uncompensated resistance Ru is solved implicitly per step — the root of
  E_eff = E_applied - I(E_eff) Ru found by bisection (monotone residual),
  which stays stable where an explicit lag oscillates — and double-layer
  charging adds Cdl A dE_eff/dt.

The interior update is a single vectorised stencil per species per step
(in-place, no temporaries beyond the shifted views), per the HPC guide:
a 2400-sample, 2-cycle ferrocene run is a few milliseconds.

Validation targets (tested): Randles-Sevcik peak current within ~2 %,
peak separation within a few mV of 2.218 RT/nF for a reversible couple,
sqrt(scan rate) peak scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.units import FARADAY, GAS_CONSTANT, celsius_to_kelvin
from repro.chemistry.species import RedoxSpecies, Solution
from repro.chemistry.voltammogram import Voltammogram

#: FTCS mesh ratio; stability requires < 0.5, 0.40 leaves headroom.
MESH_RATIO = 0.40
#: Diffusion-layer multiple defining the simulation domain depth.
DOMAIN_SIGMAS = 6.0


@dataclass(frozen=True)
class CVParameters:
    """Technique settings as the potentiostat exposes them.

    Attributes:
        e_begin_v: initial (and final) potential of each cycle.
        e_vertex_v: turnaround potential.
        scan_rate_v_s: sweep speed in V/s.
        n_cycles: number of full cycles.
        e_step_v: sampling interval in potential (sets dt = e_step/v).
    """

    e_begin_v: float = 0.2
    e_vertex_v: float = 0.8
    scan_rate_v_s: float = 0.1
    n_cycles: int = 1
    e_step_v: float = 0.001

    def __post_init__(self) -> None:
        if self.scan_rate_v_s <= 0:
            raise ValueError(f"scan rate must be > 0, got {self.scan_rate_v_s}")
        if self.n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1, got {self.n_cycles}")
        if self.e_step_v <= 0:
            raise ValueError(f"e_step must be > 0, got {self.e_step_v}")
        if abs(self.e_vertex_v - self.e_begin_v) < 2 * self.e_step_v:
            raise ValueError("potential window is narrower than two steps")

    @property
    def window_v(self) -> float:
        return abs(self.e_vertex_v - self.e_begin_v)

    @property
    def samples_per_cycle(self) -> int:
        return 2 * int(round(self.window_v / self.e_step_v))

    @property
    def dt_s(self) -> float:
        return self.e_step_v / self.scan_rate_v_s

    @property
    def duration_s(self) -> float:
        return self.n_cycles * 2 * self.window_v / self.scan_rate_v_s


def potential_waveform(
    params: CVParameters,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the triangular sweep.

    Returns ``(time_s, potential_v, cycle_index)``; the first sample sits
    one step past ``e_begin`` (the potentiostat reports samples at the end
    of each step interval).
    """
    half = int(round(params.window_v / params.e_step_v))
    direction = 1.0 if params.e_vertex_v >= params.e_begin_v else -1.0
    steps = np.arange(1, half + 1, dtype=np.float64)
    forward = params.e_begin_v + direction * steps * params.e_step_v
    backward = params.e_vertex_v - direction * steps * params.e_step_v
    one_cycle = np.concatenate([forward, backward])
    potential = np.tile(one_cycle, params.n_cycles)
    n_total = len(potential)
    time = np.arange(1, n_total + 1, dtype=np.float64) * params.dt_s
    cycle_index = np.repeat(np.arange(params.n_cycles, dtype=np.int64), len(one_cycle))
    return time, potential, cycle_index


class CVEngine:
    """Finite-difference CV simulator for one analyte in a cell.

    Args:
        species: the redox couple.
        bulk_concentration: analyte bulk concentration (mol/cm^3).
        area_cm2: effective (wetted) working-electrode area.
        temperature_c: cell temperature.
        resistance_ohm: uncompensated solution resistance Ru.
        double_layer_f_cm2: specific double-layer capacitance (F/cm^2);
            20 µF/cm^2 is typical of glassy carbon.
        reduced_initially: True when the analyte starts in its reduced
            form (ferrocene does; the first sweep is then anodic).
        substeps: physics steps per recorded sample. The FTCS grid spacing
            is tied to the time step (dx = sqrt(D dt / lambda)), so finer
            substepping shrinks the spatial error too. With the second-
            order surface stencil even substeps=1 lands within ~0.3 % of
            the Randles-Sevcik peak and ~1 mV of the reversible dEp at
            default settings; the Fig 7 benchmark ablates this knob.
    """

    def __init__(
        self,
        species: RedoxSpecies,
        bulk_concentration: float,
        area_cm2: float,
        temperature_c: float = 25.0,
        resistance_ohm: float = 0.0,
        double_layer_f_cm2: float = 20e-6,
        reduced_initially: bool = True,
        substeps: int = 2,
        following_reaction_per_s: float = 0.0,
    ):
        if bulk_concentration < 0:
            raise SimulationError("bulk concentration must be >= 0")
        if area_cm2 < 0:
            raise SimulationError("electrode area must be >= 0")
        self.species = species
        self.bulk_concentration = bulk_concentration
        self.area_cm2 = area_cm2
        self.temperature_c = temperature_c
        self.resistance_ohm = resistance_ohm
        self.double_layer_f_cm2 = double_layer_f_cm2
        self.reduced_initially = reduced_initially
        if substeps < 1:
            raise SimulationError(f"substeps must be >= 1, got {substeps}")
        self.substeps = substeps
        if following_reaction_per_s < 0:
            raise SimulationError("following-reaction rate must be >= 0")
        # EC mechanism: the electro-generated form decays chemically with
        # this first-order rate (O -> inert for an initially reduced
        # analyte). Non-zero values model an unstable oxidation product —
        # the "electrolyte stability" studies of paper §4.2. Diagnostics:
        # |ipa/ipc| moves away from 1 as k/v grows.
        self.following_reaction_per_s = following_reaction_per_s

    @classmethod
    def from_cell_conditions(
        cls, conditions: dict, species: RedoxSpecies | None = None
    ) -> "CVEngine":
        """Build an engine from :meth:`ElectrochemicalCell.measurement_conditions`."""
        solution: Solution | None = conditions.get("solution")
        if species is None:
            if solution is not None and solution.species:
                # the dominant analyte carries the wave; trace amounts of
                # its oxidation product (from bulk electrolysis) are below
                # the solver's resolution anyway
                species = max(solution.species, key=solution.species.get)
            else:
                species = None
        if species is None:
            # Blank cell: zero concentration of a placeholder couple gives a
            # capacitive-only trace, which is physically what a blank shows.
            from repro.chemistry.species import FERROCENE

            species = FERROCENE
            concentration = 0.0
        else:
            concentration = solution.concentration(species) if solution else 0.0
        return cls(
            species=species,
            bulk_concentration=concentration,
            area_cm2=conditions.get("area_cm2", 0.0),
            temperature_c=conditions.get("temperature_c", 25.0),
            resistance_ohm=solution.resistance_ohm if solution else 1e9,
        )

    # -- core solver -------------------------------------------------------
    def run(self, params: CVParameters) -> Voltammogram:
        """Simulate the full technique; returns the ideal (noise-free) trace."""
        time, potential, cycle_index = potential_waveform(params)
        current = self._solve(time, potential, params.dt_s)
        return Voltammogram(
            time_s=time,
            potential_v=potential,
            current_a=current,
            cycle_index=cycle_index,
            metadata={
                "technique": "CV",
                "species": self.species.name,
                "e_begin_v": params.e_begin_v,
                "e_vertex_v": params.e_vertex_v,
                "scan_rate_v_s": params.scan_rate_v_s,
                "n_cycles": params.n_cycles,
                "e_step_v": params.e_step_v,
                "area_cm2": self.area_cm2,
                "bulk_concentration_mol_cm3": self.bulk_concentration,
                "temperature_c": self.temperature_c,
            },
        )

    def run_waveform(
        self,
        time: np.ndarray,
        potential: np.ndarray,
        cycle_index: np.ndarray | None = None,
        metadata: dict | None = None,
    ) -> Voltammogram:
        """Simulate an arbitrary applied-potential program.

        This is how the non-CV techniques (LSV, staircase, DPV) reuse the
        same diffusion/kinetics solver: they supply their own waveform.
        Samples must be uniformly spaced in time.

        Raises:
            SimulationError: fewer than 2 samples or non-uniform spacing.
        """
        time = np.asarray(time, dtype=np.float64)
        potential = np.asarray(potential, dtype=np.float64)
        if len(time) != len(potential) or len(time) < 2:
            raise SimulationError("waveform needs >= 2 matched samples")
        steps = np.diff(time)
        dt = float(steps[0])
        if dt <= 0 or not np.allclose(steps, dt, rtol=1e-6, atol=1e-12):
            raise SimulationError("waveform must be uniformly sampled in time")
        current = self._solve(time, potential, dt)
        if cycle_index is None:
            cycle_index = np.zeros(len(time), dtype=np.int64)
        base = {
            "species": self.species.name,
            "area_cm2": self.area_cm2,
            "bulk_concentration_mol_cm3": self.bulk_concentration,
            "temperature_c": self.temperature_c,
        }
        base.update(metadata or {})
        return Voltammogram(
            time_s=time,
            potential_v=potential,
            current_a=current,
            cycle_index=cycle_index,
            metadata=base,
        )

    def _solve(
        self, time: np.ndarray, potential: np.ndarray, sample_dt: float
    ) -> np.ndarray:
        n = self.species.n_electrons
        diffusion = self.species.diffusion_cm2_s
        k0 = self.species.k0_cm_s
        alpha = self.species.alpha
        f_volt = n * FARADAY / (GAS_CONSTANT * celsius_to_kelvin(self.temperature_c))

        substeps = self.substeps
        dt = sample_dt / substeps
        dx = np.sqrt(diffusion * dt / MESH_RATIO)
        depth = DOMAIN_SIGMAS * np.sqrt(diffusion * time[-1])
        n_x = max(int(np.ceil(depth / dx)) + 1, 10)
        if n_x > 2_000_000:
            raise SimulationError(
                f"grid of {n_x} points is unreasonable; check dt/scan rate"
            )

        c_bulk = self.bulk_concentration
        conc_o = np.zeros(n_x)
        conc_r = np.zeros(n_x)
        if self.reduced_initially:
            conc_r[:] = c_bulk
        else:
            conc_o[:] = c_bulk

        area = self.area_cm2
        nfa = n * FARADAY * area
        cdl = self.double_layer_f_cm2 * area
        ru = self.resistance_ohm
        # second-order one-sided surface gradient:
        #   dC/dx|_0 = (-3 C0 + 4 C1 - C2) / (2 dx)
        b_coeff = 3.0 * diffusion / (2.0 * dx)
        g_scale = diffusion / (2.0 * dx)
        e0 = self.species.formal_potential_v

        current = np.empty_like(potential)
        i_prev = 0.0
        e_eff_prev = potential[0]
        lam = MESH_RATIO  # = D dt / dx^2 by construction

        # Substep potentials interpolate linearly between recorded samples,
        # which is exact for the staircase-free triangular sweep.
        e_previous_sample = (
            potential[0] - (potential[1] - potential[0])
            if len(potential) > 1
            else potential[0]
        )

        # EC mechanism: per-substep survival factor of the electro-
        # generated species (exact integration of first-order decay)
        k_follow = self.following_reaction_per_s
        survival = math.exp(-k_follow * dt) if k_follow > 0.0 else 1.0

        for step in range(len(potential)):
            e_target = potential[step]
            e_start = e_previous_sample
            for sub in range(substeps):
                # interior diffusion update, vectorised stencil (in place)
                conc_o[1:-1] += lam * (conc_o[2:] - 2.0 * conc_o[1:-1] + conc_o[:-2])
                conc_r[1:-1] += lam * (conc_r[2:] - 2.0 * conc_r[1:-1] + conc_r[:-2])
                if survival != 1.0:
                    # the product of the electrode reaction decays in
                    # solution (O for a reduced-start analyte, R otherwise)
                    if self.reduced_initially:
                        conc_o *= survival
                    else:
                        conc_r *= survival
                # far boundary pinned at bulk values
                conc_o[-1] = c_bulk if not self.reduced_initially else 0.0
                conc_r[-1] = c_bulk if self.reduced_initially else 0.0

                e_applied = e_start + (e_target - e_start) * (sub + 1) / substeps
                # per-substep diffusive supply to the surface (fixed while
                # the ohmic drop is iterated)
                g_o = g_scale * (4.0 * conc_o[1] - conc_o[2])
                g_r = g_scale * (4.0 * conc_r[1] - conc_r[2])
                first = step + sub == 0

                def evaluate(e_eff: float) -> tuple[float, float, float]:
                    """Total current and surface concentrations at e_eff."""
                    eta = e_eff - e0
                    # clamp: |eta| beyond ~1.5 V is transport-limited anyway
                    arg_f = -alpha * f_volt * eta
                    arg_b = (1.0 - alpha) * f_volt * eta
                    kf_ = k0 * math.exp(min(max(arg_f, -60.0), 60.0))
                    kb_ = k0 * math.exp(min(max(arg_b, -60.0), 60.0))
                    det = b_coeff * b_coeff + b_coeff * (kf_ + kb_)
                    co0_ = ((b_coeff + kb_) * g_o + kb_ * g_r) / det
                    cr0_ = ((b_coeff + kf_) * g_r + kf_ * g_o) / det
                    i_far = nfa * (kb_ * cr0_ - kf_ * co0_)
                    i_cap = 0.0 if first else cdl * (e_eff - e_eff_prev) / dt
                    return i_far + i_cap, co0_, cr0_

                if ru > 0.0:
                    # Implicit ohmic drop: solve R(e) = e - e_applied +
                    # I(e) Ru = 0. I is strictly increasing in e (anodic
                    # convention), so R is monotone and bisection always
                    # converges — an explicit lag or plain fixed point
                    # oscillates once Ru * dI/dE exceeds 1.
                    half_width = 0.05
                    lo = e_eff_prev - half_width
                    hi = e_eff_prev + half_width
                    for _ in range(40):  # expand until the root is bracketed
                        r_lo = lo - e_applied + evaluate(lo)[0] * ru
                        r_hi = hi - e_applied + evaluate(hi)[0] * ru
                        if r_lo <= 0.0 <= r_hi:
                            break
                        half_width *= 2.0
                        lo = e_eff_prev - half_width
                        hi = e_eff_prev + half_width
                    for _ in range(48):
                        mid = 0.5 * (lo + hi)
                        if mid - e_applied + evaluate(mid)[0] * ru > 0.0:
                            hi = mid
                        else:
                            lo = mid
                        if hi - lo < 1e-9:
                            break
                    e_eff = 0.5 * (lo + hi)
                    i_total, co0, cr0 = evaluate(e_eff)
                else:
                    e_eff = e_applied
                    i_total, co0, cr0 = evaluate(e_eff)

                # clamp tiny negative overshoots from the one-sided stencil
                conc_o[0] = co0 if co0 > 0.0 else 0.0
                conc_r[0] = cr0 if cr0 > 0.0 else 0.0
                i_prev = i_total
                e_eff_prev = e_eff
            current[step] = i_prev
            e_previous_sample = e_target

        if not np.all(np.isfinite(current)):
            raise SimulationError("solver produced non-finite current (instability)")
        return current
