"""Measurement noise: what separates the solver's ideal trace from what a
real potentiostat records.

Components, each individually switchable so tests can isolate them:

- white current noise (amplifier/ADC floor);
- slow baseline drift (thermal/reference drift over the acquisition);
- mains pickup at 50/60 Hz;
- ADC quantisation at the current-range resolution.

The model is deterministic given its seed, which keeps the ML dataset
generation and the property tests reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.voltammogram import Voltammogram


@dataclass(frozen=True)
class NoiseModel:
    """Additive noise description.

    Attributes:
        white_sigma_a: standard deviation of white noise (A).
        drift_a_per_s: linear baseline drift rate (A/s).
        mains_amplitude_a: amplitude of mains interference (A).
        mains_hz: mains frequency (50 or 60 Hz).
        quantization_a: ADC step size (A); 0 disables quantisation.
        seed: RNG seed for the white component.
    """

    white_sigma_a: float = 5e-8
    drift_a_per_s: float = 0.0
    mains_amplitude_a: float = 0.0
    mains_hz: float = 60.0
    quantization_a: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.white_sigma_a < 0:
            raise ValueError("white_sigma_a must be >= 0")
        if self.mains_amplitude_a < 0:
            raise ValueError("mains_amplitude_a must be >= 0")
        if self.quantization_a < 0:
            raise ValueError("quantization_a must be >= 0")

    def apply(self, voltammogram: Voltammogram) -> Voltammogram:
        """Return a new voltammogram with noise added to the current."""
        rng = np.random.default_rng(self.seed)
        current = voltammogram.current_a.copy()
        time = voltammogram.time_s
        if self.white_sigma_a > 0:
            current += rng.normal(0.0, self.white_sigma_a, size=current.shape)
        if self.drift_a_per_s != 0.0:
            current += self.drift_a_per_s * time
        if self.mains_amplitude_a > 0:
            current += self.mains_amplitude_a * np.sin(
                2.0 * np.pi * self.mains_hz * time
            )
        if self.quantization_a > 0:
            np.round(current / self.quantization_a, out=current)
            current *= self.quantization_a
        metadata = dict(voltammogram.metadata)
        metadata["noise"] = {
            "white_sigma_a": self.white_sigma_a,
            "drift_a_per_s": self.drift_a_per_s,
            "mains_amplitude_a": self.mains_amplitude_a,
            "seed": self.seed,
        }
        return Voltammogram(
            time_s=voltammogram.time_s,
            potential_v=voltammogram.potential_v,
            current_a=current,
            cycle_index=voltammogram.cycle_index,
            metadata=metadata,
        )


#: Noise level of a well-behaved benchtop acquisition.
BENCH_NOISE = NoiseModel(white_sigma_a=5e-8)
#: A noisier environment with drift and mains pickup.
NOISY_LAB = NoiseModel(
    white_sigma_a=2e-7, drift_a_per_s=2e-9, mains_amplitude_a=1e-7, seed=1
)
