"""Abnormal experimental conditions (paper §4.3.3 / ref [11]).

The ML normality method is trained to distinguish a healthy voltammogram
from the two failure modes the paper names, plus a bubble transient we add
as an extension:

- ``DISCONNECTED_ELECTRODE``: the circuit is open; the potentiostat
  records only its input-stage noise around zero — no faradaic wave.
- ``LOW_VOLUME``: the under-filled cell wets a fraction of the electrode,
  shrinking the current proportionally and adding fill-level flutter from
  the meniscus moving across the electrode.
- ``BUBBLE``: a gas bubble transiently masks part of the electrode,
  causing a localised dropout in the current trace.

``apply_fault`` post-processes an ideal trace so datasets can be built
without re-running the solver per fault; the cell-level route (actually
under-filling the cell so the engine sees a smaller area) is exercised by
the workflow integration tests.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.chemistry.voltammogram import Voltammogram


class FaultKind(Enum):
    NONE = "normal"
    DISCONNECTED_ELECTRODE = "disconnected_electrode"
    LOW_VOLUME = "low_volume"
    BUBBLE = "bubble"


def apply_fault(
    voltammogram: Voltammogram,
    fault: FaultKind,
    severity: float = 0.7,
    seed: int = 0,
    scale_current: bool = True,
) -> Voltammogram:
    """Return a trace as it would look under ``fault``.

    Args:
        voltammogram: the healthy trace.
        fault: which abnormal condition to emulate.
        severity: 0..1, how bad (0.7 = cell at 30 % of proper volume, or a
            bubble masking 70 % of the electrode at its peak).
        seed: RNG seed for the stochastic parts.
        scale_current: for ``LOW_VOLUME`` only — set False when the caller
            already simulated the reduced wetted area physically (smaller
            engine area/higher Ru) and only the meniscus flutter should be
            added here.

    Raises:
        ValueError: severity outside [0, 1].
    """
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1], got {severity}")
    rng = np.random.default_rng(seed)
    current = voltammogram.current_a.copy()
    time = voltammogram.time_s
    n = len(current)

    if fault is FaultKind.NONE:
        pass
    elif fault is FaultKind.DISCONNECTED_ELECTRODE:
        # Open circuit: only input-referred noise remains; its scale does
        # not depend on what the chemistry would have produced.
        floor = 2e-8 * (1.0 + 4.0 * severity)
        current = rng.normal(0.0, floor, size=n)
    elif fault is FaultKind.LOW_VOLUME:
        # Wetted fraction of the electrode shrinks; meniscus flutter
        # modulates it at sub-Hz frequency, worse the lower the level.
        fraction = (1.0 - severity) if scale_current else 1.0
        amplitude = 0.03 + 0.10 * severity
        flutter = amplitude * np.sin(
            2.0 * np.pi * 0.5 * time + rng.uniform(0, 2 * np.pi)
        )
        current *= fraction * (1.0 + flutter)
        current += rng.normal(0.0, 3e-8, size=n)
    elif fault is FaultKind.BUBBLE:
        # A bubble grows over the electrode and detaches: smooth dip with a
        # sharp recovery, at a random position in the run.
        center = rng.uniform(0.2, 0.8) * time[-1]
        width = max(0.05 * time[-1], 1e-6)
        envelope = np.exp(-0.5 * ((time - center) / width) ** 2)
        # sharp recovery: zero the envelope after the detach point
        envelope[time > center] *= 0.2
        current *= 1.0 - severity * envelope
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown fault kind: {fault}")

    metadata = dict(voltammogram.metadata)
    metadata["fault"] = fault.value
    metadata["fault_severity"] = severity if fault is not FaultKind.NONE else 0.0
    return Voltammogram(
        time_s=voltammogram.time_s,
        potential_v=voltammogram.potential_v,
        current_a=current,
        cycle_index=voltammogram.cycle_index,
        metadata=metadata,
    )
