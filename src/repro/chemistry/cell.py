"""The electrochemical cell: liquid state, electrodes, gas purge.

The cell is the physical meeting point of the J-Kem fluidics (which fill
and withdraw liquid) and the potentiostat (which polarises the working
electrode). Its state is what couples the two instrument simulations:

- the syringe pump changes ``volume_ml``;
- the immersed fraction of the working electrode depends on fill level, so
  an under-filled cell shrinks the effective electrode area — one of the
  two abnormal conditions the ML method must flag;
- a disconnected electrode lead breaks the circuit entirely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import CellOverflowError, CellUnderflowError, ChemistryError
from repro.chemistry.species import Solution


@dataclass(frozen=True)
class Electrode:
    """One electrode of the three-electrode setup.

    Attributes:
        role: ``"working"``, ``"reference"`` or ``"counter"``.
        material: e.g. ``"glassy carbon"``, ``"Pt wire"``, ``"Ag wire"``.
        area_cm2: geometric area (meaningful for the working electrode).
        immersion_depth_ml: cell volume at which the electrode is fully
            immersed; below this the wetted area scales with fill level.
    """

    role: str
    material: str
    area_cm2: float
    immersion_depth_ml: float = 5.0

    def __post_init__(self) -> None:
        if self.role not in ("working", "reference", "counter"):
            raise ValueError(f"unknown electrode role: {self.role!r}")
        if self.area_cm2 <= 0:
            raise ValueError("electrode area must be > 0")


#: A 3 mm glassy-carbon disc, the standard bench working electrode.
GC_DISC_3MM = Electrode(
    role="working", material="glassy carbon", area_cm2=0.0707, immersion_depth_ml=4.0
)
PT_WIRE = Electrode(role="counter", material="Pt wire", area_cm2=0.5)
AG_WIRE = Electrode(role="reference", material="Ag wire", area_cm2=0.05)


class ElectrochemicalCell:
    """Stirred-tank liquid model plus electrode circuit state.

    Thread-safe: the J-Kem simulation mutates liquid state from its device
    thread while the potentiostat samples electrode conditions.
    """

    def __init__(
        self,
        capacity_ml: float = 20.0,
        working: Electrode = GC_DISC_3MM,
        counter: Electrode = PT_WIRE,
        reference: Electrode = AG_WIRE,
        temperature_c: float = 25.0,
    ):
        if capacity_ml <= 0:
            raise ValueError("capacity must be > 0")
        self.capacity_ml = capacity_ml
        self.working = working
        self.counter = counter
        self.reference = reference
        self.temperature_c = temperature_c
        self._volume_ml = 0.0
        self._contents: Solution | None = None
        self._purge_gas: str | None = None
        self._purge_sccm = 0.0
        self._connected = {"working": True, "reference": True, "counter": True}
        self._lock = threading.Lock()

    # -- liquid handling ----------------------------------------------------
    @property
    def volume_ml(self) -> float:
        with self._lock:
            return self._volume_ml

    @property
    def contents(self) -> Solution | None:
        with self._lock:
            return self._contents

    def add_liquid(self, volume_ml: float, solution: Solution) -> None:
        """Dispense ``volume_ml`` of ``solution`` into the cell.

        Mixing is idealised: the incoming solution replaces/augments the
        current contents; concentration bookkeeping assumes the same
        solution is used throughout a workflow (true for the paper's run).
        """
        if volume_ml < 0:
            raise ChemistryError(f"cannot add negative volume: {volume_ml}")
        with self._lock:
            if self._volume_ml + volume_ml > self.capacity_ml + 1e-9:
                raise CellOverflowError(
                    f"adding {volume_ml:.3f} mL exceeds capacity "
                    f"({self._volume_ml:.3f}/{self.capacity_ml:.3f} mL)"
                )
            self._volume_ml += volume_ml
            self._contents = solution

    def withdraw_liquid(self, volume_ml: float) -> float:
        """Remove liquid; returns the volume actually removed."""
        if volume_ml < 0:
            raise ChemistryError(f"cannot withdraw negative volume: {volume_ml}")
        with self._lock:
            if volume_ml > self._volume_ml + 1e-9:
                raise CellUnderflowError(
                    f"withdrawing {volume_ml:.3f} mL from a cell holding "
                    f"{self._volume_ml:.3f} mL"
                )
            self._volume_ml -= volume_ml
            if self._volume_ml <= 1e-12:
                self._volume_ml = 0.0
                self._contents = None
            return volume_ml

    def drain(self) -> float:
        """Empty the cell completely; returns the removed volume."""
        with self._lock:
            removed = self._volume_ml
            self._volume_ml = 0.0
            self._contents = None
            return removed

    # -- gas purge ---------------------------------------------------------
    def set_purge(self, gas: str | None, sccm: float = 0.0) -> None:
        """Start/stop inert-gas purge (argon in the paper's setup)."""
        if sccm < 0:
            raise ChemistryError(f"flow must be >= 0, got {sccm}")
        with self._lock:
            self._purge_gas = gas if sccm > 0 else None
            self._purge_sccm = sccm if gas else 0.0

    @property
    def purge(self) -> tuple[str | None, float]:
        with self._lock:
            return self._purge_gas, self._purge_sccm

    def apply_electrolysis(
        self,
        from_species,
        to_species,
        moles: float,
    ) -> None:
        """Convert ``moles`` of ``from_species`` into ``to_species``.

        Called by the potentiostat after an acquisition with the net
        faradaic charge converted to moles (Q / nF): bulk composition
        tracks what the electrode actually did, so a later fraction sent
        to the HPLC-MS shows the oxidation product. Conversion is capped
        at what is present; a negative ``moles`` converts the other way.
        """
        if from_species is None or to_species is None:
            return
        with self._lock:
            if self._contents is None or self._volume_ml <= 0:
                return
            volume_cm3 = self._volume_ml  # 1 mL == 1 cm^3
            concentrations = dict(self._contents.species)
            available = concentrations.get(from_species, 0.0) * volume_cm3
            converted = min(max(moles, 0.0), available)
            if converted <= 0.0:
                return
            concentrations[from_species] = (
                available - converted
            ) / volume_cm3
            concentrations[to_species] = (
                concentrations.get(to_species, 0.0) + converted / volume_cm3
            )
            self._contents = Solution(
                solvent=self._contents.solvent,
                species=concentrations,
                supporting_electrolyte=self._contents.supporting_electrolyte,
                label=self._contents.label,
            )

    # -- electrical circuit --------------------------------------------------
    def set_electrode_connected(self, role: str, connected: bool) -> None:
        """Fault injection: connect/disconnect an electrode lead."""
        if role not in self._connected:
            raise ChemistryError(f"unknown electrode role: {role!r}")
        with self._lock:
            self._connected[role] = connected

    def electrode_connected(self, role: str) -> bool:
        with self._lock:
            return self._connected[role]

    @property
    def circuit_closed(self) -> bool:
        """True when all three electrode leads are attached."""
        with self._lock:
            return all(self._connected.values())

    @property
    def effective_working_area_cm2(self) -> float:
        """Wetted working-electrode area given the current fill level.

        Full immersion above ``immersion_depth_ml``; below it the wetted
        area scales linearly with volume — an under-filled cell produces a
        proportionally smaller current, the second abnormal signature.
        """
        with self._lock:
            depth = self.working.immersion_depth_ml
            fraction = min(1.0, self._volume_ml / depth) if depth > 0 else 1.0
            return self.working.area_cm2 * fraction

    def measurement_conditions(self) -> dict:
        """Snapshot consumed by the potentiostat when a technique starts."""
        with self._lock:
            wetted_fraction = (
                min(1.0, self._volume_ml / self.working.immersion_depth_ml)
                if self.working.immersion_depth_ml > 0
                else 1.0
            )
            return {
                "volume_ml": self._volume_ml,
                "solution": self._contents,
                "area_cm2": self.working.area_cm2 * wetted_fraction,
                "wetted_fraction": wetted_fraction,
                "circuit_closed": all(self._connected.values()),
                "temperature_c": self.temperature_c,
                "purge_gas": self._purge_gas,
            }
