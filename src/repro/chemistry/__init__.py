"""Electrochemistry models: species, solutions, the cell, and CV physics.

The paper's experiment cycles 2 mM ferrocene in acetonitrile between
Fe(Cp)2 and [Fe(Cp)2]+ and records the I-V profile (Fig 7). Real chemistry
is replaced by a 1-D semi-infinite diffusion model with Butler-Volmer
electrode kinetics (the textbook treatment, Bard & Faulkner ch. 6 / app.
B), solved by an explicit finite-difference scheme vectorised with NumPy.

The simulated voltammograms have the properties the analysis and ML layers
rely on: duck-shaped curves, ~59 mV anodic/cathodic peak separation for
reversible couples, Randles-Sevcik square-root-of-scan-rate peak scaling,
and fault signatures (flat noise for a disconnected electrode, shrunken
distorted waves for an under-filled cell).
"""

from repro.chemistry.species import (
    RedoxSpecies,
    Solution,
    FERROCENE,
    ACETONITRILE,
    TBA_TRIFLATE,
    ferrocene_solution,
)
from repro.chemistry.cell import ElectrochemicalCell, Electrode
from repro.chemistry.cv_engine import CVParameters, CVEngine, potential_waveform
from repro.chemistry.voltammogram import Voltammogram
from repro.chemistry.noise import NoiseModel
from repro.chemistry.faults import FaultKind, apply_fault

__all__ = [
    "RedoxSpecies",
    "Solution",
    "FERROCENE",
    "ACETONITRILE",
    "TBA_TRIFLATE",
    "ferrocene_solution",
    "ElectrochemicalCell",
    "Electrode",
    "CVParameters",
    "CVEngine",
    "potential_waveform",
    "Voltammogram",
    "NoiseModel",
    "FaultKind",
    "apply_fault",
]
