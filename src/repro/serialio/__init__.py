"""Simulated serial ports.

The real workstation connects the J-Kem single-board computer and the SP200
potentiostat to their control agents over serial/USB links driven with
pyserial. This package provides an in-memory stand-in with the same
behavioural contract: byte streams, blocking reads with timeouts, and
explicit open/close lifecycle.

Use :func:`create_port_pair` to get the two ends of a virtual cable::

    host_port, device_port = create_port_pair("COM3")
    host_port.write(b"STATUS()\\r\\n")
    line = device_port.read_until(b"\\r\\n")
"""

from repro.serialio.port import SerialEndpoint, create_port_pair
from repro.serialio.framing import LineFramer, CRLF

__all__ = ["SerialEndpoint", "create_port_pair", "LineFramer", "CRLF"]
