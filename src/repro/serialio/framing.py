"""Line framing for text command protocols over serial byte streams.

The J-Kem command protocol is line-oriented ASCII terminated by CRLF. A
byte stream has no message boundaries, so both driver and device use a
:class:`LineFramer` to turn arbitrary chunks into complete lines.
"""

from __future__ import annotations

CRLF = b"\r\n"


class LineFramer:
    """Incremental splitter of a byte stream into terminator-delimited lines.

    Feed arbitrary chunks with :meth:`feed`; complete lines (terminator
    stripped) come back in order. Partial data is retained across calls.

    A ``max_line`` guard protects against a peer that never sends the
    terminator (e.g. a corrupted link).
    """

    def __init__(self, terminator: bytes = CRLF, max_line: int = 4096):
        if not terminator:
            raise ValueError("terminator must be non-empty")
        self.terminator = terminator
        self.max_line = max_line
        self._pending = bytearray()

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb a chunk; return all lines completed by it."""
        self._pending += chunk
        lines: list[bytes] = []
        while True:
            index = self._pending.find(self.terminator)
            if index < 0:
                break
            lines.append(bytes(self._pending[:index]))
            del self._pending[: index + len(self.terminator)]
        if len(self._pending) > self.max_line:
            overflow = bytes(self._pending)
            self._pending.clear()
            raise ValueError(
                f"unterminated line exceeded max_line={self.max_line}: "
                f"{overflow[:64]!r}..."
            )
        return lines

    def feed_text(self, chunk: bytes, encoding: str = "ascii") -> list[str]:
        """Like :meth:`feed` but decodes each completed line."""
        return [line.decode(encoding) for line in self.feed(chunk)]

    @property
    def pending(self) -> bytes:
        """Bytes received after the last terminator (incomplete line)."""
        return bytes(self._pending)

    def reset(self) -> None:
        """Drop any partial line (used after a device resync)."""
        self._pending.clear()


def frame_line(text: str, terminator: bytes = CRLF, encoding: str = "ascii") -> bytes:
    """Encode one command line with its terminator."""
    if any(ord(c) < 0x20 for c in text):
        raise ValueError(f"control characters not allowed in command line: {text!r}")
    return text.encode(encoding) + terminator
