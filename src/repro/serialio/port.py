"""In-memory serial endpoints connected back-to-back like a null-modem cable.

Semantics follow pyserial's ``Serial`` closely enough that the J-Kem and
SP200 drivers written against this module would port to real hardware by
swapping the constructor:

- ``write`` appends to the peer's receive buffer and returns the byte count;
- ``read(n)`` blocks until at least one byte is available or the timeout
  expires, then returns up to ``n`` bytes (pyserial behaviour);
- ``read_until(terminator)`` accumulates until the terminator or timeout;
- closing either end makes further I/O raise :class:`PortNotOpenError`, and
  a blocked reader on the other end gets whatever is buffered then EOF-style
  empty bytes.

A per-direction byte-rate limit can be set to emulate slow UARTs.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import PortNotOpenError, SerialTimeoutError


class _Pipe:
    """One direction of the cable: a byte queue with condition variable."""

    def __init__(self) -> None:
        self.buffer: deque[int] = deque()
        self.lock = threading.Lock()
        self.data_available = threading.Condition(self.lock)
        self.closed = False

    def push(self, data: bytes) -> None:
        with self.data_available:
            self.buffer.extend(data)
            self.data_available.notify_all()

    def close(self) -> None:
        with self.data_available:
            self.closed = True
            self.data_available.notify_all()


class SerialEndpoint:
    """One end of a virtual serial cable.

    Attributes:
        name: port name, e.g. ``"COM3"`` or ``"/dev/ttyUSB0"``.
        timeout: default read timeout in seconds (None blocks forever).
    """

    def __init__(
        self,
        name: str,
        rx: _Pipe,
        tx: _Pipe,
        timeout: float | None = 1.0,
    ):
        self.name = name
        self.timeout = timeout
        self._rx = rx
        self._tx = tx
        self._open = True

    # -- lifecycle ---------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._open

    def close(self) -> None:
        """Close this end; the peer sees EOF on subsequent reads."""
        if self._open:
            self._open = False
            self._tx.close()
            self._rx.close()

    def __enter__(self) -> "SerialEndpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if not self._open:
            raise PortNotOpenError(f"port {self.name} is closed")

    # -- writing -----------------------------------------------------------
    def write(self, data: bytes) -> int:
        """Send bytes to the peer. Returns the number of bytes written."""
        self._require_open()
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"write() expects bytes, got {type(data).__name__}")
        if self._tx.closed:
            raise PortNotOpenError(f"peer of {self.name} is closed")
        self._tx.push(bytes(data))
        return len(data)

    # -- reading -----------------------------------------------------------
    def in_waiting(self) -> int:
        """Bytes currently buffered for reading."""
        self._require_open()
        with self._rx.lock:
            return len(self._rx.buffer)

    def read(self, size: int = 1, timeout: float | None = ...) -> bytes:  # type: ignore[assignment]
        """Read up to ``size`` bytes.

        Blocks until at least one byte is available, the port timeout
        expires (returning whatever arrived, possibly ``b""``), or the peer
        closes (returning buffered bytes then ``b""``).
        """
        self._require_open()
        if size <= 0:
            return b""
        effective_timeout = self.timeout if timeout is ... else timeout
        with self._rx.data_available:
            if not self._rx.buffer and not self._rx.closed:
                self._rx.data_available.wait(timeout=effective_timeout)
            count = min(size, len(self._rx.buffer))
            return bytes(self._rx.buffer.popleft() for _ in range(count))

    def read_exactly(self, size: int, timeout: float | None = ...) -> bytes:  # type: ignore[assignment]
        """Read exactly ``size`` bytes or raise :class:`SerialTimeoutError`."""
        chunks: list[bytes] = []
        remaining = size
        while remaining > 0:
            chunk = self.read(remaining, timeout=timeout)
            if not chunk:
                raise SerialTimeoutError(
                    f"read_exactly({size}) on {self.name} got only "
                    f"{size - remaining} bytes before timeout/EOF"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def read_until(
        self,
        terminator: bytes = b"\n",
        max_bytes: int = 65536,
        timeout: float | None = ...,  # type: ignore[assignment]
    ) -> bytes:
        """Read until ``terminator`` is seen (inclusive) or timeout/EOF.

        Raises:
            SerialTimeoutError: terminator not seen before timeout or EOF.
            ProtocolError-like ValueError: ``max_bytes`` exceeded.
        """
        if not terminator:
            raise ValueError("terminator must be non-empty")
        accumulated = bytearray()
        while True:
            chunk = self.read(1, timeout=timeout)
            if not chunk:
                raise SerialTimeoutError(
                    f"read_until({terminator!r}) on {self.name} timed out "
                    f"after {len(accumulated)} bytes"
                )
            accumulated += chunk
            if accumulated.endswith(terminator):
                return bytes(accumulated)
            if len(accumulated) > max_bytes:
                raise ValueError(
                    f"read_until exceeded max_bytes={max_bytes} on {self.name}"
                )

    def reset_input_buffer(self) -> None:
        """Discard everything buffered for reading."""
        self._require_open()
        with self._rx.lock:
            self._rx.buffer.clear()


def create_port_pair(
    name: str = "COM1",
    timeout: float | None = 1.0,
) -> tuple[SerialEndpoint, SerialEndpoint]:
    """Create both ends of a virtual serial cable.

    Returns ``(host_end, device_end)``; names are suffixed ``:host`` /
    ``:device`` for log readability.
    """
    a_to_b = _Pipe()
    b_to_a = _Pipe()
    host = SerialEndpoint(f"{name}:host", rx=b_to_a, tx=a_to_b, timeout=timeout)
    device = SerialEndpoint(f"{name}:device", rx=a_to_b, tx=b_to_a, timeout=timeout)
    return host, device
