"""The SP200 instrument: channels, firmware state, acquisition.

Lifecycle enforced exactly as the EC-Lab API requires (Fig 6a):

1. the instrument must be *connected* (USB session) before anything else;
2. the board *kernel firmware* must be loaded before techniques;
3. a channel needs its *technique firmware + parameters loaded* before
   start;
4. ``start`` launches the acquisition; samples become visible
   progressively, scaled by ``time_scale`` (0 = instantaneous);
5. when acquisition completes the channel *disconnects automatically*
   (paper §4.2 step 8) and the full trace is available.

Out-of-order calls raise :class:`~repro.errors.InstrumentStateError`,
which is what the paper's wrapper modules must guard against.
"""

from __future__ import annotations

import threading
from enum import Enum

from repro.clock import Clock
from repro.errors import (
    ChannelBusyError,
    FirmwareError,
    InstrumentStateError,
    TechniqueError,
)
from repro.logging_utils import EventLog
from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.noise import BENCH_NOISE, NoiseModel
from repro.chemistry.voltammogram import Voltammogram
from repro.instruments.base import Instrument, InstrumentStatus
from repro.instruments.potentiostat.firmware import (
    FirmwareImage,
    technique_firmware,
)
from repro.instruments.potentiostat.techniques import Technique


class ChannelState(Enum):
    """Acquisition-channel lifecycle."""

    DISCONNECTED = "disconnected"
    CONNECTED = "connected"
    TECHNIQUE_LOADED = "technique_loaded"
    RUNNING = "running"
    FINISHED = "finished"


class Channel:
    """One potentiostat channel with its own technique and data buffer."""

    def __init__(self, number: int, device: "SP200"):
        self.number = number
        self.device = device
        self.state = ChannelState.DISCONNECTED
        self.technique: Technique | None = None
        self.technique_firmware_loaded = False
        self._result: Voltammogram | None = None
        self._visible_samples = 0
        self._lock = threading.Lock()
        self._acquisition_thread: threading.Thread | None = None

    # -- queries -------------------------------------------------------------
    @property
    def result(self) -> Voltammogram | None:
        with self._lock:
            return self._result

    def visible_data(self) -> Voltammogram | None:
        """The samples acquired so far (None before start)."""
        with self._lock:
            if self._result is None:
                return None
            count = self._visible_samples
            return Voltammogram(
                time_s=self._result.time_s[:count],
                potential_v=self._result.potential_v[:count],
                current_a=self._result.current_a[:count],
                cycle_index=self._result.cycle_index[:count],
                metadata=dict(self._result.metadata),
            )

    @property
    def finished(self) -> bool:
        return self.state is ChannelState.FINISHED

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the acquisition thread completes."""
        thread = self._acquisition_thread
        if thread is None:
            return self.finished
        thread.join(timeout=timeout)
        return self.finished


class SP200(Instrument):
    """The instrument.

    Args:
        cell: the electrochemical cell wired to this potentiostat.
        n_channels: SP200 chassis channel count.
        noise: measurement noise model applied to every acquisition.
        time_scale: seconds of real/virtual time charged per second of
            nominal technique duration (0 = instant acquisition).
        reveal_chunks: how many progressive visibility increments an
            acquisition is divided into.
    """

    def __init__(
        self,
        name: str = "sp200",
        cell: ElectrochemicalCell | None = None,
        n_channels: int = 2,
        noise: NoiseModel | None = BENCH_NOISE,
        time_scale: float = 0.0,
        reveal_chunks: int = 10,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        if n_channels < 1:
            raise InstrumentStateError("SP200 needs at least one channel")
        self.cell = cell
        self.noise = noise
        self.time_scale = time_scale
        self.reveal_chunks = max(1, reveal_chunks)
        self.usb_connected = False
        self.kernel: FirmwareImage | None = None
        self._channels = {i: Channel(i, self) for i in range(1, n_channels + 1)}
        self._seed_counter = 0

    # -- session -------------------------------------------------------------
    def connect(self) -> None:
        """Open the USB session (Fig 6 step 2)."""
        self._check_fault()
        if self.usb_connected:
            raise InstrumentStateError(f"{self.name} already connected")
        self.usb_connected = True
        self._emit("lifecycle", "Connection to the Potentiostat is Done")

    def disconnect(self) -> None:
        """Close the USB session; running channels are stopped."""
        for channel in self._channels.values():
            if channel.state is ChannelState.RUNNING:
                channel.wait(timeout=30.0)
        self.usb_connected = False
        self.kernel = None
        for channel in self._channels.values():
            channel.state = ChannelState.DISCONNECTED
            channel.technique_firmware_loaded = False
        self._emit("lifecycle", "Potentiostat disconnected")

    def _require_connected(self) -> None:
        if not self.usb_connected:
            raise InstrumentStateError(f"{self.name} is not connected")

    # -- firmware ------------------------------------------------------------
    def load_kernel(self, image: FirmwareImage) -> None:
        """Load the board kernel (Fig 6 step 3, ``kernel4.bin``)."""
        self._check_fault()
        self._require_connected()
        if image.kind != "kernel":
            raise FirmwareError(f"{image.name} is not kernel firmware")
        image.verify()
        self.kernel = image
        self._emit("lifecycle", f"> Loading {image.name} ...")
        self._emit("lifecycle", "> ... firmware loaded")

    def _require_kernel(self) -> None:
        if self.kernel is None:
            raise FirmwareError(f"{self.name}: kernel firmware not loaded")

    # -- channels ------------------------------------------------------------
    def channel(self, number: int) -> Channel:
        try:
            return self._channels[number]
        except KeyError:
            raise InstrumentStateError(
                f"{self.name} has no channel {number}; "
                f"valid: {sorted(self._channels)}"
            ) from None

    def connect_channel(self, number: int) -> Channel:
        """Attach a channel (Fig 6 step 6 prerequisite)."""
        self._check_fault()
        self._require_connected()
        self._require_kernel()
        channel = self.channel(number)
        if channel.state is ChannelState.RUNNING:
            raise ChannelBusyError(f"channel {number} is acquiring")
        channel.state = ChannelState.CONNECTED
        self._emit("lifecycle", f"channel {number} connected")
        return channel

    def load_technique(self, number: int, technique: Technique) -> None:
        """Load technique firmware + parameters onto a channel (steps 4-5)."""
        self._check_fault()
        self._require_connected()
        self._require_kernel()
        channel = self.channel(number)
        if channel.state is ChannelState.RUNNING:
            raise ChannelBusyError(f"channel {number} is acquiring")
        if channel.state is ChannelState.DISCONNECTED:
            raise InstrumentStateError(
                f"channel {number} must be connected before loading a technique"
            )
        firmware = technique_firmware(technique.technique_id)
        firmware.verify()
        channel.technique = technique
        channel.technique_firmware_loaded = True
        channel.state = ChannelState.TECHNIQUE_LOADED
        self._emit(
            "lifecycle",
            f"technique {technique.technique_id} loaded on channel {number}",
            params=technique.ecc_params(),
        )

    def start_channel(self, number: int) -> None:
        """Begin acquisition (step 6); data arrive progressively (step 7)."""
        self._check_fault()
        self._require_connected()
        self._require_kernel()
        if self.cell is None:
            raise InstrumentStateError(f"{self.name} is not wired to a cell")
        channel = self.channel(number)
        if channel.state is ChannelState.RUNNING:
            raise ChannelBusyError(f"channel {number} already running")
        if channel.state is not ChannelState.TECHNIQUE_LOADED:
            raise TechniqueError(
                f"channel {number} has no loaded technique (state "
                f"{channel.state.value})"
            )
        technique = channel.technique
        assert technique is not None
        self._seed_counter += 1
        seed = self._seed_counter
        channel.state = ChannelState.RUNNING
        self.status = InstrumentStatus.BUSY
        self._emit("lifecycle", f"Channel {number} connection is initiated")

        def acquire() -> None:
            trace = technique.execute(self.cell, noise=self.noise, seed=seed)
            self._apply_bulk_electrolysis(trace)
            with channel._lock:
                channel._result = trace
                channel._visible_samples = 0
            total = len(trace)
            chunks = min(self.reveal_chunks, max(total, 1))
            nominal_chunk = technique.duration_s() / chunks
            for index in range(chunks):
                if self.time_scale > 0:
                    self.clock.sleep(nominal_chunk * self.time_scale)
                with channel._lock:
                    channel._visible_samples = min(
                        total, ((index + 1) * total) // chunks
                    )
            with channel._lock:
                channel._visible_samples = total
            # paper §4.2: the channel disconnects automatically when the
            # acquisition finishes
            channel.state = ChannelState.FINISHED
            self.status = InstrumentStatus.IDLE
            self._emit(
                "lifecycle",
                f"channel {number} acquisition finished "
                f"({total} samples); channel disconnected",
            )

        channel._acquisition_thread = threading.Thread(
            target=acquire, name=f"sp200-ch{number}", daemon=True
        )
        channel._acquisition_thread.start()

    def _apply_bulk_electrolysis(self, trace) -> None:
        """Convert the net faradaic charge into bulk composition change.

        Q / nF moles of the dominant reduced analyte become its oxidation
        product (positive/anodic net charge), so repeated cycling slowly
        builds ferrocenium the HPLC-MS can later find in a collected
        fraction (paper §2.1: fractions go to "external chemical analysis
        on any dissolved products that form during testing").
        """
        import numpy as np

        from repro.units import FARADAY
        from repro.chemistry.species import OXIDATION_PRODUCTS

        cell = self.cell
        if cell is None or len(trace) < 2:
            return
        contents = cell.contents
        if contents is None or not contents.species:
            return
        analyte = max(contents.species, key=contents.species.get)
        product = OXIDATION_PRODUCTS.get(analyte)
        if product is None:
            return
        dt = np.diff(trace.time_s, prepend=0.0)
        net_charge = float(np.sum(trace.current_a * dt))
        if net_charge <= 0.0:
            return
        moles = net_charge / (analyte.n_electrons * FARADAY)
        cell.apply_electrolysis(analyte, product, moles)

    def stop_channel(self, number: int) -> None:
        """Abort an acquisition (waits for the worker; trace stays partial)."""
        channel = self.channel(number)
        if channel.state is ChannelState.RUNNING:
            channel.wait(timeout=30.0)
        self._emit("lifecycle", f"channel {number} stopped")

    def channel_status(self, number: int) -> dict:
        """Status record like BL_GetChannelInfos."""
        channel = self.channel(number)
        with channel._lock:
            acquired = channel._visible_samples
        return {
            "channel": number,
            "state": channel.state.value,
            "technique": (
                channel.technique.technique_id if channel.technique else None
            ),
            "samples_acquired": acquired,
            "usb_connected": self.usb_connected,
            "kernel": self.kernel.name if self.kernel else None,
        }
