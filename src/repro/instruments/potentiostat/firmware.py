"""Firmware images the SP200 loads before running techniques.

EC-Lab ships a board kernel (``kernel4.bin`` in Fig 6b) plus one ``.ecc``
firmware per technique. The simulation keeps the same two-stage loading
with integrity checking, because a wrong/corrupt image is a realistic
failure mode the workflow must surface.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import FirmwareError


@dataclass(frozen=True)
class FirmwareImage:
    """One loadable image.

    Attributes:
        name: file name, e.g. ``"kernel4.bin"``.
        kind: ``"kernel"`` or ``"technique"``.
        technique: technique id for technique firmware (``"CV"``...).
        payload: the image bytes (synthetic but checksummed).
        checksum: hex SHA-256 of the payload.
    """

    name: str
    kind: str
    payload: bytes
    technique: str = ""
    checksum: str = field(default="")

    def __post_init__(self) -> None:
        if self.kind not in ("kernel", "technique"):
            raise FirmwareError(f"unknown firmware kind {self.kind!r}")
        if self.kind == "technique" and not self.technique:
            raise FirmwareError("technique firmware must name its technique")
        digest = hashlib.sha256(self.payload).hexdigest()
        if self.checksum:
            if self.checksum != digest:
                raise FirmwareError(
                    f"{self.name}: checksum mismatch (corrupt image?)"
                )
        else:
            object.__setattr__(self, "checksum", digest)

    def verify(self) -> None:
        """Re-hash the payload; raises on corruption."""
        if hashlib.sha256(self.payload).hexdigest() != self.checksum:
            raise FirmwareError(f"{self.name}: payload corrupt")


def _image(name: str, kind: str, seed: str, technique: str = "") -> FirmwareImage:
    # Deterministic synthetic payload: enough bytes to feel like firmware,
    # fully reproducible across runs.
    payload = hashlib.sha256(seed.encode()).digest() * 64
    return FirmwareImage(name=name, kind=kind, payload=payload, technique=technique)


KERNEL4 = _image("kernel4.bin", "kernel", "sp200-kernel-v4")
CV_TECHNIQUE_ECC = _image("cv.ecc", "technique", "sp200-cv", technique="CV")
CA_TECHNIQUE_ECC = _image("ca.ecc", "technique", "sp200-ca", technique="CA")
OCV_TECHNIQUE_ECC = _image("ocv.ecc", "technique", "sp200-ocv", technique="OCV")
LSV_TECHNIQUE_ECC = _image("lsv.ecc", "technique", "sp200-lsv", technique="LSV")
DPV_TECHNIQUE_ECC = _image("dpv.ecc", "technique", "sp200-dpv", technique="DPV")

TECHNIQUE_FIRMWARE = {
    "CV": CV_TECHNIQUE_ECC,
    "CA": CA_TECHNIQUE_ECC,
    "OCV": OCV_TECHNIQUE_ECC,
    "LSV": LSV_TECHNIQUE_ECC,
    "DPV": DPV_TECHNIQUE_ECC,
}


def technique_firmware(technique_id: str) -> FirmwareImage:
    """The ``.ecc`` image for a technique id.

    Raises:
        FirmwareError: no firmware ships for that technique.
    """
    try:
        return TECHNIQUE_FIRMWARE[technique_id]
    except KeyError:
        raise FirmwareError(
            f"no technique firmware for {technique_id!r}; "
            f"available: {sorted(TECHNIQUE_FIRMWARE)}"
        ) from None
