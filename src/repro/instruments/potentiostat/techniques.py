"""Electrochemical techniques the SP200 can run.

Each technique validates its parameters the way EC-Lab does when a
technique is initialised (Fig 6a step 4), and knows how to execute
against the cell:

- **CV** — delegates to the finite-difference engine, honouring the cell's
  wetted electrode area, circuit state and temperature; an open circuit
  yields the disconnected-electrode trace the ML method must flag.
- **CA** (chronoamperometry) — Cottrell decay after a potential step plus
  exponential double-layer charging.
- **OCV** — open-circuit potential vs time: the Nernst potential of the
  cell contents with sensor noise, zero current.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import TechniqueError
from repro.units import FARADAY, GAS_CONSTANT, celsius_to_kelvin
from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.faults import FaultKind, apply_fault
from repro.chemistry.noise import NoiseModel
from repro.chemistry.species import RedoxSpecies, Solution
from repro.chemistry.voltammogram import Voltammogram


def _dominant_species(solution: Solution | None) -> RedoxSpecies | None:
    if solution is None or not solution.species:
        return None
    return max(solution.species, key=lambda s: solution.species[s])


class Technique:
    """Base class: id, ECC parameter record, validation, execution."""

    technique_id = "?"

    def ecc_params(self) -> dict[str, Any]:
        """EC-Lab-style parameter record (what load_technique sends)."""
        raise NotImplementedError

    def duration_s(self) -> float:
        """Nominal acquisition duration."""
        raise NotImplementedError

    def execute(
        self,
        cell: ElectrochemicalCell,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> Voltammogram:
        """Run against the cell, returning the measured trace."""
        raise NotImplementedError


@dataclass
class CVTechnique(Technique):
    """Cyclic voltammetry (paper §2.2).

    Attributes mirror EC-Lab's CV parameter sheet.
    """

    e_begin_v: float = 0.2
    e_vertex_v: float = 0.8
    scan_rate_v_s: float = 0.1
    n_cycles: int = 1
    e_step_v: float = 0.001
    technique_id = "CV"

    def __post_init__(self) -> None:
        try:
            self._params = CVParameters(
                e_begin_v=self.e_begin_v,
                e_vertex_v=self.e_vertex_v,
                scan_rate_v_s=self.scan_rate_v_s,
                n_cycles=self.n_cycles,
                e_step_v=self.e_step_v,
            )
        except ValueError as exc:
            raise TechniqueError(f"invalid CV parameters: {exc}") from exc
        if not -10.0 <= self.e_begin_v <= 10.0 or not -10.0 <= self.e_vertex_v <= 10.0:
            raise TechniqueError("potentials outside the SP200 +/-10 V range")

    @property
    def params(self) -> CVParameters:
        return self._params

    def ecc_params(self) -> dict[str, Any]:
        return {
            "technique": "CV",
            "Ei": self.e_begin_v,
            "E1": self.e_vertex_v,
            "dE": self.e_step_v,
            "scan_rate": self.scan_rate_v_s,
            "nc_cycles": self.n_cycles,
        }

    def duration_s(self) -> float:
        return self._params.duration_s

    def execute(
        self,
        cell: ElectrochemicalCell,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> Voltammogram:
        conditions = cell.measurement_conditions()
        engine = CVEngine.from_cell_conditions(conditions)
        wetted = conditions.get("wetted_fraction", 1.0)
        if wetted < 1.0:
            # under-filled cell: besides the smaller wetted area (already
            # in conditions["area_cm2"]), ionic contact worsens — same
            # physical model the ML training corpus uses
            engine.resistance_ohm *= 1.0 + 15.0 * (1.0 - wetted)
        trace = engine.run(self._params)
        if not conditions["circuit_closed"]:
            trace = apply_fault(
                trace, FaultKind.DISCONNECTED_ELECTRODE, severity=0.8, seed=seed
            )
        elif wetted < 1.0:
            # meniscus flutter across the partially wetted electrode
            trace = apply_fault(
                trace,
                FaultKind.LOW_VOLUME,
                severity=1.0 - wetted,
                seed=seed,
                scale_current=False,
            )
        if noise is not None:
            trace = noise.apply(trace)
        trace.metadata["cell_volume_ml"] = conditions["volume_ml"]
        return trace


@dataclass
class CATechnique(Technique):
    """Chronoamperometry: step to ``e_step_v`` and record i(t)."""

    e_step_to_v: float = 0.8
    duration: float = 10.0
    dt_s: float = 0.01
    technique_id = "CA"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise TechniqueError("CA duration must be > 0")
        if self.dt_s <= 0 or self.dt_s > self.duration:
            raise TechniqueError("CA sample interval must be in (0, duration]")

    def ecc_params(self) -> dict[str, Any]:
        return {
            "technique": "CA",
            "E_step": self.e_step_to_v,
            "duration": self.duration,
            "dt": self.dt_s,
        }

    def duration_s(self) -> float:
        return self.duration

    def execute(
        self,
        cell: ElectrochemicalCell,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> Voltammogram:
        conditions = cell.measurement_conditions()
        solution: Solution | None = conditions["solution"]
        species = _dominant_species(solution)
        time = np.arange(1, int(round(self.duration / self.dt_s)) + 1) * self.dt_s
        potential = np.full_like(time, self.e_step_to_v)
        area = conditions["area_cm2"]
        if species is None or area <= 0:
            current = np.zeros_like(time)
        else:
            concentration = solution.concentration(species)
            n = species.n_electrons
            diffusion = species.diffusion_cm2_s
            # Cottrell decay for a diffusion-limited step (oxidising a
            # reduced analyte), sign matching the CV convention.
            current = (
                n
                * FARADAY
                * area
                * concentration
                * np.sqrt(diffusion / (np.pi * time))
            )
            # double-layer transient, tau = Ru * Cdl
            if solution is not None:
                tau = max(solution.resistance_ohm * 20e-6 * area, 1e-6)
                e_span = abs(self.e_step_to_v)
                current += (
                    e_span / max(solution.resistance_ohm, 1.0)
                ) * np.exp(-time / tau)
        trace = Voltammogram(
            time_s=time,
            potential_v=potential,
            current_a=current,
            cycle_index=np.zeros(len(time), dtype=np.int64),
            metadata={
                "technique": "CA",
                "e_step_to_v": self.e_step_to_v,
                "duration_s": self.duration,
                "area_cm2": area,
            },
        )
        if not conditions["circuit_closed"]:
            trace = apply_fault(
                trace, FaultKind.DISCONNECTED_ELECTRODE, severity=0.8, seed=seed
            )
        if noise is not None:
            trace = noise.apply(trace)
        return trace


@dataclass
class OCVTechnique(Technique):
    """Open-circuit voltage vs time."""

    duration: float = 10.0
    dt_s: float = 0.1
    technique_id = "OCV"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise TechniqueError("OCV duration must be > 0")
        if self.dt_s <= 0 or self.dt_s > self.duration:
            raise TechniqueError("OCV sample interval must be in (0, duration]")

    def ecc_params(self) -> dict[str, Any]:
        return {"technique": "OCV", "duration": self.duration, "dt": self.dt_s}

    def duration_s(self) -> float:
        return self.duration

    def execute(
        self,
        cell: ElectrochemicalCell,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> Voltammogram:
        conditions = cell.measurement_conditions()
        solution: Solution | None = conditions["solution"]
        species = _dominant_species(solution)
        time = np.arange(1, int(round(self.duration / self.dt_s)) + 1) * self.dt_s
        rng = np.random.default_rng(seed)
        if species is None:
            # floating input: slow drift around zero
            potential = 0.05 * np.cumsum(rng.normal(0, 0.01, len(time)))
        else:
            # all-reduced analyte never truly reaches the formal potential;
            # a mostly-reduced mixture rests a Nernstian offset below E0'.
            rt_nf = (
                GAS_CONSTANT
                * celsius_to_kelvin(conditions["temperature_c"])
                / (species.n_electrons * FARADAY)
            )
            rest = species.formal_potential_v + rt_nf * math.log(0.01 / 0.99)
            potential = rest + rng.normal(0, 0.001, len(time))
        trace = Voltammogram(
            time_s=time,
            potential_v=potential,
            current_a=np.zeros_like(time),
            cycle_index=np.zeros(len(time), dtype=np.int64),
            metadata={"technique": "OCV", "duration_s": self.duration},
        )
        if noise is not None:
            trace = noise.apply(trace)
        return trace


@dataclass
class LSVTechnique(Technique):
    """Linear sweep voltammetry: one unidirectional ramp.

    The forward half of a CV — used for quick screens of where a wave
    sits before committing to full cycling (the window-centering campaign
    could run on this).
    """

    e_begin_v: float = 0.2
    e_end_v: float = 0.8
    scan_rate_v_s: float = 0.1
    e_step_v: float = 0.001
    technique_id = "LSV"

    def __post_init__(self) -> None:
        if self.scan_rate_v_s <= 0:
            raise TechniqueError("LSV scan rate must be > 0")
        if self.e_step_v <= 0:
            raise TechniqueError("LSV e_step must be > 0")
        if abs(self.e_end_v - self.e_begin_v) < 2 * self.e_step_v:
            raise TechniqueError("LSV window narrower than two steps")

    def ecc_params(self) -> dict[str, Any]:
        return {
            "technique": "LSV",
            "Ei": self.e_begin_v,
            "Ef": self.e_end_v,
            "dE": self.e_step_v,
            "scan_rate": self.scan_rate_v_s,
        }

    def duration_s(self) -> float:
        return abs(self.e_end_v - self.e_begin_v) / self.scan_rate_v_s

    def execute(
        self,
        cell: ElectrochemicalCell,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> Voltammogram:
        from repro.chemistry.cv_engine import CVEngine

        conditions = cell.measurement_conditions()
        engine = CVEngine.from_cell_conditions(conditions)
        direction = 1.0 if self.e_end_v >= self.e_begin_v else -1.0
        n_samples = int(round(abs(self.e_end_v - self.e_begin_v) / self.e_step_v))
        steps = np.arange(1, n_samples + 1, dtype=np.float64)
        potential = self.e_begin_v + direction * steps * self.e_step_v
        dt = self.e_step_v / self.scan_rate_v_s
        time = steps * dt
        trace = engine.run_waveform(
            time,
            potential,
            metadata={
                "technique": "LSV",
                "scan_rate_v_s": self.scan_rate_v_s,
                "e_step_v": self.e_step_v,
            },
        )
        if not conditions["circuit_closed"]:
            trace = apply_fault(
                trace, FaultKind.DISCONNECTED_ELECTRODE, severity=0.8, seed=seed
            )
        if noise is not None:
            trace = noise.apply(trace)
        return trace


@dataclass
class DPVTechnique(Technique):
    """Differential pulse voltammetry.

    A staircase base potential with a superimposed pulse each period; the
    reported signal is i(end of pulse) - i(just before pulse), which
    cancels most capacitive background and yields a peak centred near
    E1/2 - dE_pulse/2. Far better detection limits than CV — the kind of
    technique the paper's future work ("other electrochemical testing
    techniques supported by the potentiostat") points to.
    """

    e_begin_v: float = 0.2
    e_end_v: float = 0.8
    step_e_v: float = 0.005
    pulse_amplitude_v: float = 0.05
    pulse_width_s: float = 0.05
    period_s: float = 0.2
    technique_id = "DPV"

    def __post_init__(self) -> None:
        if self.step_e_v <= 0:
            raise TechniqueError("DPV staircase step must be > 0")
        if not 0 < self.pulse_width_s < self.period_s:
            raise TechniqueError("DPV pulse width must be inside the period")
        if self.pulse_amplitude_v <= 0:
            raise TechniqueError("DPV pulse amplitude must be > 0")
        if abs(self.e_end_v - self.e_begin_v) < 2 * self.step_e_v:
            raise TechniqueError("DPV window narrower than two steps")

    @property
    def n_steps(self) -> int:
        return int(round(abs(self.e_end_v - self.e_begin_v) / self.step_e_v))

    def ecc_params(self) -> dict[str, Any]:
        return {
            "technique": "DPV",
            "Ei": self.e_begin_v,
            "Ef": self.e_end_v,
            "dE_step": self.step_e_v,
            "pulse_amplitude": self.pulse_amplitude_v,
            "pulse_width": self.pulse_width_s,
            "period": self.period_s,
        }

    def duration_s(self) -> float:
        return self.n_steps * self.period_s

    def execute(
        self,
        cell: ElectrochemicalCell,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> Voltammogram:
        from repro.chemistry.cv_engine import CVEngine

        conditions = cell.measurement_conditions()
        engine = CVEngine.from_cell_conditions(conditions)
        direction = 1.0 if self.e_end_v >= self.e_begin_v else -1.0

        # internal sampling: resolve the pulse with >= 8 points
        dt = self.pulse_width_s / 8.0
        samples_per_period = max(int(round(self.period_s / dt)), 2)
        dt = self.period_s / samples_per_period
        pulse_samples = max(int(round(self.pulse_width_s / dt)), 1)
        n_steps = self.n_steps

        base = (
            self.e_begin_v
            + direction * self.step_e_v * np.arange(n_steps, dtype=np.float64)
        )
        waveform = np.repeat(base, samples_per_period)
        # pulse occupies the tail of each period
        in_pulse = (
            np.arange(samples_per_period) >= samples_per_period - pulse_samples
        )
        waveform += direction * self.pulse_amplitude_v * np.tile(in_pulse, n_steps)
        time = np.arange(1, len(waveform) + 1, dtype=np.float64) * dt

        full = engine.run_waveform(time, waveform)
        current = full.current_a.reshape(n_steps, samples_per_period)
        i_before = current[:, samples_per_period - pulse_samples - 1]
        i_pulse_end = current[:, -1]
        differential = i_pulse_end - i_before

        trace = Voltammogram(
            time_s=(np.arange(n_steps, dtype=np.float64) + 1.0) * self.period_s,
            potential_v=base,
            current_a=differential,
            cycle_index=np.zeros(n_steps, dtype=np.int64),
            metadata={
                "technique": "DPV",
                "step_e_v": self.step_e_v,
                "pulse_amplitude_v": self.pulse_amplitude_v,
                "pulse_width_s": self.pulse_width_s,
                "period_s": self.period_s,
                "area_cm2": conditions["area_cm2"],
            },
        )
        if not conditions["circuit_closed"]:
            trace = apply_fault(
                trace, FaultKind.DISCONNECTED_ELECTRODE, severity=0.8, seed=seed
            )
        if noise is not None:
            trace = noise.apply(trace)
        return trace
