"""EC-Lab-developer-package-style driver for the SP200 (paper §3.2.1).

The call sequence and its confirmations replicate the 8 steps of Fig 6a:

1. :meth:`initialize` — "Initialization is done"
2. :meth:`connect` — "Channel Connection is done"
3. :meth:`load_firmware` — "Loading firmware is done"
4. :meth:`init_cv_technique` — "CV technique is initialized"
5. :meth:`load_technique` — "Loading CV technique is done"
6. :meth:`start_channel` — "Channel is activated for probing measurements"
7. :meth:`get_measurements` — "Measurements are collected"
8. (automatic) the channel disconnects when acquisition completes.

Each method returns its confirmation string (that is what the Jupyter
cells print) and enforces ordering: calling out of sequence raises
:class:`~repro.errors.InstrumentStateError` rather than wedging the
device, which is the "more advanced capabilities" the paper added over
the primitive vendor API.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import InstrumentStateError, TechniqueError
from repro.logging_utils import EventLog
from repro.chemistry.voltammogram import Voltammogram
from repro.instruments.potentiostat.device import SP200
from repro.instruments.potentiostat.firmware import KERNEL4, FirmwareImage
from repro.instruments.potentiostat.techniques import (
    CATechnique,
    CVTechnique,
    OCVTechnique,
    Technique,
)

#: Default configuration accepted by :meth:`ECLabAPI.initialize`.
DEFAULT_CONFIG: dict[str, Any] = {
    "channel": 1,
    "firmware": "kernel4.bin",
    "timeout_s": 120.0,
    "binary_mode": "64b application",
}


class ECLabAPI:
    """High-level driver bound to one SP200.

    Args:
        device: the instrument.
        measurement_dir: directory where completed acquisitions are
            written as ``.mpt`` files (the control agent's shared folder);
            None disables file output.
        event_log: transcript log (``source="sp200.api"``).
    """

    SOURCE = "sp200.api"

    def __init__(
        self,
        device: SP200,
        measurement_dir: str | Path | None = None,
        event_log: EventLog | None = None,
    ):
        self.device = device
        self.measurement_dir = Path(measurement_dir) if measurement_dir else None
        self.log = event_log if event_log is not None else EventLog()
        self.config: dict[str, Any] | None = None
        self.technique: Technique | None = None
        self._initialized = False
        self._technique_loaded = False
        self._acquisition_count = 0
        self.last_measurement_path: Path | None = None

    # -- step 1 ----------------------------------------------------------------
    def initialize(self, config: dict[str, Any] | None = None) -> str:
        """Step 1: store system/firmware/connection parameters."""
        merged = dict(DEFAULT_CONFIG)
        if config:
            unknown = set(config) - set(DEFAULT_CONFIG)
            if unknown:
                raise InstrumentStateError(
                    f"unknown configuration keys: {sorted(unknown)}"
                )
            merged.update(config)
        if merged["channel"] not in range(1, 17):
            raise InstrumentStateError(f"bad channel {merged['channel']!r}")
        self.config = merged
        self._initialized = True
        self.log.emit(self.SOURCE, "lifecycle", f"> {merged['binary_mode']}")
        return self._confirm("Initialization is done")

    def _require_init(self) -> None:
        if not self._initialized or self.config is None:
            raise InstrumentStateError("call initialize() first (step 1)")

    @property
    def channel_number(self) -> int:
        self._require_init()
        assert self.config is not None
        return int(self.config["channel"])

    # -- step 2 -----------------------------------------------------------
    def connect(self) -> str:
        """Step 2: open the instrument session."""
        self._require_init()
        self.device.connect()
        return self._confirm("Channel Connection is done")

    # -- step 3 -----------------------------------------------------------
    def load_firmware(self, image: FirmwareImage = KERNEL4) -> str:
        """Step 3: load the board kernel."""
        self._require_init()
        self.device.load_kernel(image)
        return self._confirm("Loading firmware is done")

    # -- step 4 -----------------------------------------------------------
    def init_cv_technique(self, params: dict[str, Any] | None = None) -> str:
        """Step 4: build and validate the CV technique.

        ``params`` keys: ``e_begin_v``, ``e_vertex_v``, ``scan_rate_v_s``,
        ``n_cycles``, ``e_step_v`` (all optional).
        """
        self._require_init()
        params = params or {}
        allowed = {"e_begin_v", "e_vertex_v", "scan_rate_v_s", "n_cycles", "e_step_v"}
        unknown = set(params) - allowed
        if unknown:
            raise TechniqueError(f"unknown CV parameters: {sorted(unknown)}")
        self.technique = CVTechnique(**params)
        self._technique_loaded = False
        return self._confirm("CV technique is initialized")

    def init_ca_technique(self, params: dict[str, Any] | None = None) -> str:
        """Build a chronoamperometry technique instead of CV."""
        self._require_init()
        self.technique = CATechnique(**(params or {}))
        self._technique_loaded = False
        return self._confirm("CA technique is initialized")

    def init_ocv_technique(self, params: dict[str, Any] | None = None) -> str:
        """Build an open-circuit-voltage technique instead of CV."""
        self._require_init()
        self.technique = OCVTechnique(**(params or {}))
        self._technique_loaded = False
        return self._confirm("OCV technique is initialized")

    def init_lsv_technique(self, params: dict[str, Any] | None = None) -> str:
        """Build a linear-sweep technique instead of CV."""
        from repro.instruments.potentiostat.techniques import LSVTechnique

        self._require_init()
        self.technique = LSVTechnique(**(params or {}))
        self._technique_loaded = False
        return self._confirm("LSV technique is initialized")

    def init_dpv_technique(self, params: dict[str, Any] | None = None) -> str:
        """Build a differential-pulse technique instead of CV."""
        from repro.instruments.potentiostat.techniques import DPVTechnique

        self._require_init()
        self.technique = DPVTechnique(**(params or {}))
        self._technique_loaded = False
        return self._confirm("DPV technique is initialized")

    # -- step 5 --------------------------------------------------------------
    def load_technique(self) -> str:
        """Step 5: push technique firmware + parameters to the channel."""
        self._require_init()
        if self.technique is None:
            raise TechniqueError("no technique initialised (step 4 missing)")
        number = self.channel_number
        self.device.connect_channel(number)
        self.device.load_technique(number, self.technique)
        self._technique_loaded = True
        return self._confirm(
            f"Loading {self.technique.technique_id} technique is done"
        )

    # -- step 6 ----------------------------------------------------------------
    def start_channel(self) -> str:
        """Step 6: begin the acquisition."""
        self._require_init()
        if not self._technique_loaded:
            raise TechniqueError("technique not loaded (step 5 missing)")
        self.device.start_channel(self.channel_number)
        return self._confirm("Channel is activated for probing measurements")

    # -- step 7 -----------------------------------------------------------
    def probe_progress(self) -> dict[str, Any]:
        """Non-blocking acquisition status (samples so far, state)."""
        self._require_init()
        return self.device.channel_status(self.channel_number)

    def get_measurements(
        self,
        wait: bool = True,
        timeout_s: float | None = None,
        save_as: str | None = None,
    ) -> Voltammogram:
        """Step 7: collect the measurement trace.

        Args:
            wait: block until acquisition completes (otherwise return the
                partial trace acquired so far).
            timeout_s: wait deadline; defaults to the configured timeout.
            save_as: file stem for the ``.mpt`` written into
                ``measurement_dir`` (auto-named when None).

        Raises:
            InstrumentStateError: nothing has been started/acquired, or
                the wait deadline expired.
        """
        self._require_init()
        assert self.config is not None
        channel = self.device.channel(self.channel_number)
        if wait:
            deadline = timeout_s if timeout_s is not None else self.config["timeout_s"]
            if not channel.wait(timeout=deadline):
                raise InstrumentStateError(
                    f"acquisition did not finish within {deadline}s"
                )
            trace = channel.result
        else:
            trace = channel.visible_data()
        if trace is None:
            raise InstrumentStateError("no acquisition has produced data yet")
        self._acquisition_count += 1
        self.last_measurement_path = None
        if self.measurement_dir is not None:
            from repro.datachannel.formats import write_mpt

            stem = save_as or (
                f"{trace.metadata.get('technique', 'DATA').lower()}"
                f"_{self._acquisition_count:04d}"
            )
            self.measurement_dir.mkdir(parents=True, exist_ok=True)
            path = self.measurement_dir / f"{stem}.mpt"
            write_mpt(path, trace)
            self.last_measurement_path = path
        self._confirm("Measurements are collected")
        return trace

    # -- teardown (workflow task E) -----------------------------------------
    def disconnect(self) -> str:
        """Close the session (Fig 6 lifecycle end)."""
        self.device.disconnect()
        self._technique_loaded = False
        return self._confirm("Potentiostat disconnected")

    # -- helpers -----------------------------------------------------------
    def _confirm(self, message: str) -> str:
        self.log.emit(self.SOURCE, "lifecycle", message)
        return message
