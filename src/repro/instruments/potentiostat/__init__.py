"""The Bio-Logic SP200 potentiostat simulation (paper §3.2.1, Fig 6).

Three layers:

- :mod:`~repro.instruments.potentiostat.firmware` — kernel and technique
  firmware images with integrity checks (EC-Lab loads ``kernel4.bin`` and
  per-technique ``.ecc`` files; Fig 6b shows both loads);
- :mod:`~repro.instruments.potentiostat.techniques` — CV, CA and OCV
  technique objects that execute against the electrochemical cell;
- :mod:`~repro.instruments.potentiostat.device` — the instrument with its
  channels, connection state and progressive acquisition;
- :mod:`~repro.instruments.potentiostat.api` — the EC-Lab-developer-
  package-style driver whose call sequence is exactly the 8 steps of
  Fig 6a.
"""

from repro.instruments.potentiostat.firmware import (
    FirmwareImage,
    KERNEL4,
    CV_TECHNIQUE_ECC,
    CA_TECHNIQUE_ECC,
    OCV_TECHNIQUE_ECC,
)
from repro.instruments.potentiostat.techniques import (
    Technique,
    CVTechnique,
    CATechnique,
    OCVTechnique,
    LSVTechnique,
    DPVTechnique,
)
from repro.instruments.potentiostat.device import SP200, ChannelState
from repro.instruments.potentiostat.api import ECLabAPI

__all__ = [
    "FirmwareImage",
    "KERNEL4",
    "CV_TECHNIQUE_ECC",
    "CA_TECHNIQUE_ECC",
    "OCV_TECHNIQUE_ECC",
    "Technique",
    "CVTechnique",
    "CATechnique",
    "OCVTechnique",
    "LSVTechnique",
    "DPVTechnique",
    "SP200",
    "ChannelState",
    "ECLabAPI",
]
