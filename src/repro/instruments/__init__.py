"""Simulated laboratory instruments.

Two instrument families, mirroring the paper's workstation (Fig 2):

- :mod:`repro.instruments.jkem` — the J-Kem single-board computer and the
  fluidics/thermal devices it controls (syringe pump, peristaltic pumps,
  mass-flow controller, fraction collector, temperature controller,
  chiller, pH probe), driven over a simulated serial link by a Python
  front-end API (paper §3.2.2);
- :mod:`repro.instruments.potentiostat` — the Bio-Logic SP200 with its
  EC-Lab-style developer API and the 8-step technique lifecycle of Fig 6
  (paper §3.2.1).

Both are wired to one :class:`repro.chemistry.ElectrochemicalCell`, so
liquid handling visibly changes what the potentiostat measures.
"""

from repro.instruments.base import Instrument, InstrumentStatus

__all__ = ["Instrument", "InstrumentStatus"]
