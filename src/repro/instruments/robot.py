"""Mobile robot for inter-instrument material transfer.

Paper §5 (future work): "The integration of additional instruments and
computing platforms into ACL including mobile robots to transfer
materials between different instruments is planned." This module
implements that extension: a robot with named docking *stations*, a
single gripper, and travel times, so a workflow can move a collected
fraction vial from the electrochemistry workstation to the HPLC-MS.

State machine: the robot is at exactly one station; ``pick`` requires an
empty gripper and a vial present at the station; ``place`` requires a
held vial and a free slot. Every transition is validated and logged —
collisions with reality (picking from an empty slot) fail loudly.
"""

from __future__ import annotations

from repro.clock import Clock
from repro.errors import InstrumentCommandError, InstrumentStateError
from repro.logging_utils import EventLog
from repro.instruments.base import Instrument, InstrumentStatus
from repro.instruments.jkem.plumbing import Reservoir


class Station:
    """A docking point with one vial slot."""

    def __init__(self, name: str, vial: Reservoir | None = None):
        self.name = name
        self.vial = vial


class MobileRobot(Instrument):
    """Single-gripper transfer robot.

    Args:
        stations: names of the docking points (e.g. ``"electrochemistry"``,
            ``"hplc"``, ``"storage"``).
        travel_s: nominal seconds between any two stations.
        time_scale: simulated-time scaling for travel (0 = instant).
    """

    def __init__(
        self,
        name: str = "mobile-robot-1",
        stations: tuple[str, ...] = ("electrochemistry", "hplc", "storage"),
        travel_s: float = 30.0,
        time_scale: float = 0.0,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        if len(stations) < 2:
            raise InstrumentCommandError("a robot needs at least two stations")
        self._stations = {station: Station(station) for station in stations}
        self.travel_s = travel_s
        self.time_scale = time_scale
        self.location = stations[0]
        self.holding: Reservoir | None = None
        self.moves = 0

    # -- station access ----------------------------------------------------
    def station(self, name: str) -> Station:
        try:
            return self._stations[name]
        except KeyError:
            raise InstrumentCommandError(
                f"unknown station {name!r}; have {sorted(self._stations)}"
            ) from None

    def stage_vial(self, station: str, vial: Reservoir) -> None:
        """Place a vial at a station by hand (lab setup, not robot motion)."""
        slot = self.station(station)
        if slot.vial is not None:
            raise InstrumentStateError(
                f"station {station!r} already holds {slot.vial.name!r}"
            )
        slot.vial = vial
        self._emit("command", f"vial {vial.name!r} staged at {station}")

    def vial_at(self, station: str) -> Reservoir | None:
        return self.station(station).vial

    # -- motion --------------------------------------------------------------
    def move_to(self, station: str) -> str:
        """Drive to a station."""
        self._check_fault()
        self.station(station)  # validate
        if station == self.location:
            return "OK already-there"
        self.status = InstrumentStatus.BUSY
        try:
            if self.time_scale > 0:
                self.clock.sleep(self.travel_s * self.time_scale)
            self.location = station
            self.moves += 1
            self._emit("command", f"moved to {station}")
            return "OK"
        finally:
            self.status = (
                InstrumentStatus.ERROR if self.faulted else InstrumentStatus.IDLE
            )

    def pick(self) -> str:
        """Grip the vial at the current station."""
        self._check_fault()
        if self.holding is not None:
            raise InstrumentStateError(
                f"gripper already holds {self.holding.name!r}"
            )
        slot = self.station(self.location)
        if slot.vial is None:
            raise InstrumentStateError(f"no vial at {self.location!r} to pick")
        self.holding = slot.vial
        slot.vial = None
        self._emit("command", f"picked {self.holding.name!r} at {self.location}")
        return "OK"

    def place(self) -> str:
        """Set the held vial down at the current station."""
        self._check_fault()
        if self.holding is None:
            raise InstrumentStateError("gripper is empty")
        slot = self.station(self.location)
        if slot.vial is not None:
            raise InstrumentStateError(
                f"station {self.location!r} already holds {slot.vial.name!r}"
            )
        slot.vial = self.holding
        self.holding = None
        self._emit("command", f"placed {slot.vial.name!r} at {self.location}")
        return "OK"

    def transfer(self, source: str, destination: str) -> str:
        """Full pick-move-place between two stations."""
        self.move_to(source)
        self.pick()
        self.move_to(destination)
        self.place()
        return "OK"

    def status_summary(self) -> dict:
        return {
            "location": self.location,
            "holding": self.holding.name if self.holding else None,
            "stations": {
                name: (slot.vial.name if slot.vial else None)
                for name, slot in self._stations.items()
            },
            "moves": self.moves,
        }
