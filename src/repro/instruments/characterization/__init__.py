"""Chemical characterization instruments (paper Fig 1, "Chemical
Characterization" station; §2: ACL "comprises multiple science
instruments such as HPLC-MS, GC-MS and XRD").

The electrochemistry workflow's fraction collector exists precisely to
feed these: liquid samples drawn from the cell go to external analysis
of dissolved products. This package provides a simulated HPLC-MS with
the behavioural contract that matters for orchestration — an autosampler
queue, per-injection run time, retention-time + m/z identification — so
the extended multi-instrument workflows of the paper's future-work
section can actually run.
"""

from repro.instruments.characterization.compounds import (
    CompoundSignature,
    COMPOUND_LIBRARY,
    register_compound,
)
from repro.instruments.characterization.chromatogram import (
    Chromatogram,
    ChromatogramPeak,
)
from repro.instruments.characterization.hplc import HPLCMS

__all__ = [
    "CompoundSignature",
    "COMPOUND_LIBRARY",
    "register_compound",
    "Chromatogram",
    "ChromatogramPeak",
    "HPLCMS",
]
