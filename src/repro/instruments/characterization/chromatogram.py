"""Chromatogram data: the HPLC-MS's measurement record.

Like the voltammogram, it converts to plain data for the RPC layer and
supports the analysis the workflow needs (peak identification against
the compound library, area-based quantification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import FeatureExtractionError


@dataclass(frozen=True)
class ChromatogramPeak:
    """One identified (or unknown) peak."""

    retention_min: float
    area: float
    mz: float
    compound: str | None = None  # None = unidentified

    def to_dict(self) -> dict[str, Any]:
        return {
            "retention_min": self.retention_min,
            "area": self.area,
            "mz": self.mz,
            "compound": self.compound,
        }


@dataclass
class Chromatogram:
    """A detector trace plus its peak table.

    Attributes:
        time_min: time axis in minutes.
        signal: detector response.
        peaks: identified/unknown peaks, sorted by retention time.
        metadata: injection context (sample label, volume, method).
    """

    time_min: np.ndarray
    signal: np.ndarray
    peaks: list[ChromatogramPeak] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.time_min = np.asarray(self.time_min, dtype=np.float64)
        self.signal = np.asarray(self.signal, dtype=np.float64)
        if len(self.time_min) != len(self.signal):
            raise ValueError("time and signal lengths differ")

    def __len__(self) -> int:
        return len(self.time_min)

    def peak_for(self, compound: str) -> ChromatogramPeak | None:
        """The identified peak of ``compound`` (None if absent)."""
        for peak in self.peaks:
            if peak.compound == compound:
                return peak
        return None

    def amount_ratio(self, numerator: str, denominator: str) -> float:
        """Response-corrected area ratio of two identified compounds.

        Raises:
            FeatureExtractionError: either compound is missing.
        """
        from repro.instruments.characterization.compounds import lookup

        top = self.peak_for(numerator)
        bottom = self.peak_for(denominator)
        if top is None or bottom is None:
            missing = numerator if top is None else denominator
            raise FeatureExtractionError(
                f"compound {missing!r} not found in chromatogram"
            )
        top_sig = lookup(numerator)
        bottom_sig = lookup(denominator)
        assert top_sig is not None and bottom_sig is not None
        return (top.area / top_sig.response_factor) / (
            bottom.area / bottom_sig.response_factor
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "time_min": self.time_min,
            "signal": self.signal,
            "peaks": [peak.to_dict() for peak in self.peaks],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Chromatogram":
        return cls(
            time_min=np.asarray(data["time_min"], dtype=np.float64),
            signal=np.asarray(data["signal"], dtype=np.float64),
            peaks=[
                ChromatogramPeak(
                    retention_min=record["retention_min"],
                    area=record["area"],
                    mz=record["mz"],
                    compound=record.get("compound"),
                )
                for record in data.get("peaks", [])
            ],
            metadata=dict(data.get("metadata", {})),
        )
