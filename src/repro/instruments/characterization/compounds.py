"""Compound signatures the HPLC-MS can recognise.

A signature couples the chromatographic retention time (column-dependent,
here a generic C18 method) with the mass-spectrometric m/z of the
molecular ion. Values for the ferrocene system use the real molecular
masses; retention times are plausible for the method, which is all the
orchestration layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InstrumentCommandError


@dataclass(frozen=True)
class CompoundSignature:
    """How one compound shows up in an HPLC-MS run.

    Attributes:
        name: compound label matching the chemistry layer's species names.
        retention_min: retention time in minutes on the standard method.
        mz: m/z of the dominant ion.
        response_factor: detector response per mol (arbitrary units);
            lets different compounds give different peak areas at equal
            concentration, as real detectors do.
    """

    name: str
    retention_min: float
    mz: float
    response_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.retention_min <= 0:
            raise InstrumentCommandError("retention time must be > 0")
        if self.mz <= 0:
            raise InstrumentCommandError("m/z must be > 0")
        if self.response_factor <= 0:
            raise InstrumentCommandError("response factor must be > 0")


#: Built-in library: the paper's analyte system plus common extras.
COMPOUND_LIBRARY: dict[str, CompoundSignature] = {
    "ferrocene": CompoundSignature(
        name="ferrocene", retention_min=6.8, mz=186.04, response_factor=1.0
    ),
    "ferrocenium": CompoundSignature(
        name="ferrocenium", retention_min=2.1, mz=186.04, response_factor=0.8
    ),
    "tetrabutylammonium": CompoundSignature(
        name="tetrabutylammonium", retention_min=1.2, mz=242.28,
        response_factor=0.5,
    ),
}


def register_compound(signature: CompoundSignature) -> None:
    """Add/replace a compound in the shared library."""
    COMPOUND_LIBRARY[signature.name] = signature


def lookup(name: str) -> CompoundSignature | None:
    """Signature for a compound name, or None if unknown to the method."""
    return COMPOUND_LIBRARY.get(name)
