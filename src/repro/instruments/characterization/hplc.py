"""The HPLC-MS instrument model.

Behavioural contract (what the orchestration layer depends on):

- samples are *injected* from a vial through the autosampler; injection
  consumes the sample volume from the vial;
- a run takes the method's gradient time (scaled by ``time_scale``);
- the result is a :class:`Chromatogram` with Gaussian peaks at each
  known compound's retention time, areas proportional to injected moles
  and the compound's response factor, plus detector noise;
- compounds absent from the library elute unidentified at a generic
  retention time, so an unexpected product is *visible*, not silently
  dropped.
"""

from __future__ import annotations

import numpy as np

from repro.clock import Clock
from repro.errors import InstrumentCommandError, InstrumentStateError
from repro.logging_utils import EventLog
from repro.chemistry.species import Solution
from repro.instruments.base import Instrument, InstrumentStatus
from repro.instruments.jkem.plumbing import Reservoir
from repro.instruments.characterization.chromatogram import (
    Chromatogram,
    ChromatogramPeak,
)
from repro.instruments.characterization.compounds import lookup


class HPLCMS(Instrument):
    """A simulated HPLC with mass-spectrometric detection.

    Args:
        method_minutes: gradient length (sets run duration and time axis).
        sample_rate_hz: detector sampling (points per minute = 60 * rate).
        noise_counts: detector baseline noise (arbitrary units).
        time_scale: real/virtual seconds charged per nominal run second.
    """

    UNKNOWN_RETENTION_MIN = 9.5

    def __init__(
        self,
        name: str = "hplc-ms-1",
        method_minutes: float = 12.0,
        sample_rate_hz: float = 2.0,
        noise_counts: float = 0.5,
        time_scale: float = 0.0,
        seed: int = 0,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        if method_minutes <= 0:
            raise InstrumentCommandError("method length must be > 0")
        self.method_minutes = method_minutes
        self.sample_rate_hz = sample_rate_hz
        self.noise_counts = noise_counts
        self.time_scale = time_scale
        self._rng = np.random.default_rng(seed)
        self.injections_run = 0
        self.last_chromatogram: Chromatogram | None = None

    # ------------------------------------------------------------------
    def inject_vial(self, vial: Reservoir, volume_ml: float) -> Chromatogram:
        """Draw ``volume_ml`` from ``vial`` and run the method."""
        self._check_fault()
        if volume_ml <= 0:
            raise InstrumentCommandError("injection volume must be > 0")
        sample = vial.withdraw(volume_ml)
        return self.inject(sample, volume_ml, label=vial.name)

    def inject(
        self, sample: Solution | None, volume_ml: float, label: str = "sample"
    ) -> Chromatogram:
        """Run the method on an already-drawn sample."""
        self._check_fault()
        if sample is None:
            raise InstrumentStateError("cannot inject an empty sample")
        if volume_ml <= 0:
            raise InstrumentCommandError("injection volume must be > 0")
        self.status = InstrumentStatus.BUSY
        try:
            if self.time_scale > 0:
                self.clock.sleep(self.method_minutes * 60.0 * self.time_scale)
            chromatogram = self._simulate(sample, volume_ml, label)
            self.injections_run += 1
            self.last_chromatogram = chromatogram
            identified = [p.compound or "?" for p in chromatogram.peaks]
            self._emit(
                "command",
                f"injection #{self.injections_run} of {label!r}: "
                f"peaks = {identified}",
            )
            return chromatogram
        finally:
            self.status = (
                InstrumentStatus.ERROR if self.faulted else InstrumentStatus.IDLE
            )

    # ------------------------------------------------------------------
    def _simulate(
        self, sample: Solution, volume_ml: float, label: str
    ) -> Chromatogram:
        points = max(int(self.method_minutes * 60.0 * self.sample_rate_hz), 50)
        time_min = np.linspace(0.0, self.method_minutes, points)
        signal = self._rng.normal(0.0, self.noise_counts, points)
        signal += 2.0 * np.exp(-0.5 * ((time_min - 0.6) / 0.15) ** 2)  # solvent front

        peaks: list[ChromatogramPeak] = []
        for species, concentration in sorted(
            sample.species.items(), key=lambda item: item[0].name
        ):
            moles = concentration * volume_ml  # mol/cm^3 * mL == mmol... units
            # arbitrary detector units: scale so mM-level injections give
            # O(100) counts
            signature = lookup(species.name)
            if signature is not None:
                retention = signature.retention_min
                response = signature.response_factor
                mz = signature.mz
                compound = species.name
            else:
                retention = self.UNKNOWN_RETENTION_MIN
                response = 1.0
                mz = 0.0
                compound = None
            area = moles * 1e8 * response
            width = 0.08 + 0.01 * retention  # peaks broaden down the column
            height = area / (width * np.sqrt(2.0 * np.pi))
            signal += height * np.exp(
                -0.5 * ((time_min - retention) / width) ** 2
            )
            peaks.append(
                ChromatogramPeak(
                    retention_min=retention, area=area, mz=mz, compound=compound
                )
            )
        if sample.supporting_electrolyte is not None:
            signature = lookup("tetrabutylammonium")
            if signature is not None:
                area = sample.supporting_electrolyte.concentration_m * volume_ml * 1e4
                width = 0.08
                signal += (area / (width * np.sqrt(2 * np.pi))) * np.exp(
                    -0.5 * ((time_min - signature.retention_min) / width) ** 2
                )
                peaks.append(
                    ChromatogramPeak(
                        retention_min=signature.retention_min,
                        area=area,
                        mz=signature.mz,
                        compound=signature.name,
                    )
                )
        peaks.sort(key=lambda peak: peak.retention_min)
        return Chromatogram(
            time_min=time_min,
            signal=signal,
            peaks=peaks,
            metadata={
                "sample": label,
                "volume_ml": volume_ml,
                "method_minutes": self.method_minutes,
                "instrument": self.name,
            },
        )
