"""The J-Kem single-board computer.

Owns the fluidics/thermal devices, listens on its serial port, and
executes one command per line — replying ``OK`` (optionally with a value)
or ``ERR(code,message)``. Its event log is the console shown in paper
Fig 5b: every received command is echoed with its outcome.

The SBC runs its serve loop on a background thread so the control agent's
driver can block on responses while device operations (which may charge
simulated time) proceed.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.clock import Clock, WALL
from repro.errors import (
    InstrumentCommandError,
    InstrumentError,
    ReproError,
)
from repro.logging_utils import EventLog
from repro.serialio import SerialEndpoint
from repro.serialio.framing import LineFramer, frame_line
from repro.instruments.jkem.devices import (
    Chiller,
    FractionCollector,
    MassFlowController,
    PeristalticPump,
    PHProbe,
    SyringePump,
    TemperatureController,
)
from repro.instruments.jkem.protocol import (
    Command,
    Response,
    format_response,
    parse_command,
)


class JKemSBC:
    """Command dispatcher plus serial serve loop.

    Args:
        port: the device end of the serial cable.
        clock: time source shared with the devices.
        event_log: transcript log (``source="jkem.sbc"``).
    """

    SOURCE = "jkem.sbc"

    def __init__(
        self,
        port: SerialEndpoint | None = None,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        self.port = port
        self.clock = clock or WALL
        self.log = event_log if event_log is not None else EventLog()
        self._syringe_pumps: dict[int, SyringePump] = {}
        self._peri_pumps: dict[int, PeristalticPump] = {}
        self._mfcs: dict[int, MassFlowController] = {}
        self._collectors: dict[int, FractionCollector] = {}
        self._temp_controllers: dict[int, TemperatureController] = {}
        self._chillers: dict[int, Chiller] = {}
        self._ph_probes: dict[int, PHProbe] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.commands_handled = 0

    # -- device registry ----------------------------------------------------
    def attach_syringe_pump(self, unit: int, pump: SyringePump) -> None:
        self._syringe_pumps[unit] = pump

    def attach_peristaltic_pump(self, unit: int, pump: PeristalticPump) -> None:
        self._peri_pumps[unit] = pump

    def attach_mfc(self, unit: int, mfc: MassFlowController) -> None:
        self._mfcs[unit] = mfc

    def attach_fraction_collector(self, unit: int, collector: FractionCollector) -> None:
        self._collectors[unit] = collector

    def attach_temperature_controller(
        self, unit: int, controller: TemperatureController
    ) -> None:
        self._temp_controllers[unit] = controller

    def attach_chiller(self, unit: int, chiller: Chiller) -> None:
        self._chillers[unit] = chiller

    def attach_ph_probe(self, unit: int, probe: PHProbe) -> None:
        self._ph_probes[unit] = probe

    def _device(self, registry: dict, unit, kind: str):
        if not isinstance(unit, int):
            raise InstrumentCommandError(f"{kind} unit must be an integer, got {unit!r}")
        try:
            return registry[unit]
        except KeyError:
            raise InstrumentCommandError(f"no {kind} unit {unit}") from None

    # -- dispatch ---------------------------------------------------------------
    def execute(self, command: Command) -> Response:
        """Run one parsed command against the devices."""
        handler = self._handlers().get(command.verb)
        if handler is None:
            return Response(
                ok=False, error_code=404, error_message=f"unknown verb {command.verb}"
            )
        try:
            value = handler(command.args)
        except (InstrumentError, ReproError) as exc:
            return Response(ok=False, error_code=400, error_message=str(exc))
        except (TypeError, ValueError) as exc:
            return Response(ok=False, error_code=422, error_message=str(exc))
        return Response(ok=True, value=value)

    def _handlers(self) -> dict[str, Callable]:
        return {
            "SYRINGEPUMP_RATE": self._cmd_syringe_rate,
            "SYRINGEPUMP_PORT": self._cmd_syringe_port,
            "SYRINGEPUMP_WITHDRAW": self._cmd_syringe_withdraw,
            "SYRINGEPUMP_DISPENSE": self._cmd_syringe_dispense,
            "SYRINGEPUMP_STATUS": self._cmd_syringe_status,
            "SYRINGEPUMP_HALT": self._cmd_syringe_halt,
            "FRACTIONCOLLECTOR_VIAL": self._cmd_collector_vial,
            "PERIPUMP_RATE": self._cmd_peri_rate,
            "PERIPUMP_TRANSFER": self._cmd_peri_transfer,
            "PERIPUMP_HALT": self._cmd_peri_halt,
            "MFC_FLOW": self._cmd_mfc_flow,
            "MFC_READ": self._cmd_mfc_read,
            "TEMPCONTROLLER_SET": self._cmd_temp_set,
            "TEMPCONTROLLER_READ": self._cmd_temp_read,
            "CHILLER_START": self._cmd_chiller_start,
            "CHILLER_STOP": self._cmd_chiller_stop,
            "CHILLER_COOLANT": self._cmd_chiller_coolant,
            "PH_READ": self._cmd_ph_read,
            "STATUS": self._cmd_status,
        }

    @staticmethod
    def _need(args: tuple, count: int, verb: str) -> tuple:
        if len(args) != count:
            raise InstrumentCommandError(
                f"{verb} expects {count} argument(s), got {len(args)}"
            )
        return args

    @staticmethod
    def _as_number(value, name: str) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise InstrumentCommandError(f"{name} must be numeric, got {value!r}")
        return float(value)

    # syringe pump -----------------------------------------------------------
    def _cmd_syringe_rate(self, args: tuple) -> None:
        unit, rate = self._need(args, 2, "SYRINGEPUMP_RATE")
        pump = self._device(self._syringe_pumps, unit, "syringe pump")
        pump.set_rate(self._as_number(rate, "rate"))

    def _cmd_syringe_port(self, args: tuple) -> None:
        unit, port = self._need(args, 2, "SYRINGEPUMP_PORT")
        pump = self._device(self._syringe_pumps, unit, "syringe pump")
        if not isinstance(port, int):
            raise InstrumentCommandError(f"port must be an integer, got {port!r}")
        pump.set_port(port)

    def _cmd_syringe_withdraw(self, args: tuple) -> None:
        unit, volume = self._need(args, 2, "SYRINGEPUMP_WITHDRAW")
        pump = self._device(self._syringe_pumps, unit, "syringe pump")
        pump.withdraw(self._as_number(volume, "volume"))

    def _cmd_syringe_dispense(self, args: tuple) -> None:
        unit, volume = self._need(args, 2, "SYRINGEPUMP_DISPENSE")
        pump = self._device(self._syringe_pumps, unit, "syringe pump")
        pump.dispense(self._as_number(volume, "volume"))

    def _cmd_syringe_status(self, args: tuple) -> str:
        (unit,) = self._need(args, 1, "SYRINGEPUMP_STATUS")
        pump = self._device(self._syringe_pumps, unit, "syringe pump")
        return (
            f"held={pump.held_volume_ml:.3f} port={pump.current_port} "
            f"rate={pump.rate_ml_min:.3f} status={pump.status.value}"
        )

    def _cmd_syringe_halt(self, args: tuple) -> None:
        (unit,) = self._need(args, 1, "SYRINGEPUMP_HALT")
        self._device(self._syringe_pumps, unit, "syringe pump").halt()

    # fraction collector -----------------------------------------------------
    def _cmd_collector_vial(self, args: tuple) -> None:
        unit, position = self._need(args, 2, "FRACTIONCOLLECTOR_VIAL")
        collector = self._device(self._collectors, unit, "fraction collector")
        if not isinstance(position, str):
            raise InstrumentCommandError(
                f"vial position must be a word, got {position!r}"
            )
        collector.move_to(position)

    # peristaltic pump ------------------------------------------------------
    def _cmd_peri_rate(self, args: tuple) -> None:
        unit, rate = self._need(args, 2, "PERIPUMP_RATE")
        pump = self._device(self._peri_pumps, unit, "peristaltic pump")
        pump.set_rate(self._as_number(rate, "rate"))

    def _cmd_peri_transfer(self, args: tuple) -> None:
        unit, volume = self._need(args, 2, "PERIPUMP_TRANSFER")
        pump = self._device(self._peri_pumps, unit, "peristaltic pump")
        pump.transfer(self._as_number(volume, "volume"))

    def _cmd_peri_halt(self, args: tuple) -> None:
        (unit,) = self._need(args, 1, "PERIPUMP_HALT")
        self._device(self._peri_pumps, unit, "peristaltic pump").halt()

    # MFC ------------------------------------------------------------------
    def _cmd_mfc_flow(self, args: tuple) -> None:
        unit, sccm = self._need(args, 2, "MFC_FLOW")
        mfc = self._device(self._mfcs, unit, "MFC")
        mfc.set_flow(self._as_number(sccm, "flow"))

    def _cmd_mfc_read(self, args: tuple) -> str:
        (unit,) = self._need(args, 1, "MFC_READ")
        mfc = self._device(self._mfcs, unit, "MFC")
        return f"{mfc.actual_sccm:.3f}"

    # temperature ------------------------------------------------------------
    def _cmd_temp_set(self, args: tuple) -> None:
        unit, celsius = self._need(args, 2, "TEMPCONTROLLER_SET")
        controller = self._device(self._temp_controllers, unit, "temperature controller")
        controller.set_setpoint(self._as_number(celsius, "setpoint"))

    def _cmd_temp_read(self, args: tuple) -> str:
        (unit,) = self._need(args, 1, "TEMPCONTROLLER_READ")
        controller = self._device(self._temp_controllers, unit, "temperature controller")
        return f"{controller.read_temperature():.3f}"

    # chiller ---------------------------------------------------------------
    def _cmd_chiller_start(self, args: tuple) -> None:
        (unit,) = self._need(args, 1, "CHILLER_START")
        self._device(self._chillers, unit, "chiller").start()

    def _cmd_chiller_stop(self, args: tuple) -> None:
        (unit,) = self._need(args, 1, "CHILLER_STOP")
        self._device(self._chillers, unit, "chiller").stop()

    def _cmd_chiller_coolant(self, args: tuple) -> None:
        unit, celsius = self._need(args, 2, "CHILLER_COOLANT")
        self._device(self._chillers, unit, "chiller").set_coolant(
            self._as_number(celsius, "coolant setpoint")
        )

    # pH ---------------------------------------------------------------------
    def _cmd_ph_read(self, args: tuple) -> str:
        (unit,) = self._need(args, 1, "PH_READ")
        return f"{self._device(self._ph_probes, unit, 'pH probe').read_ph():.3f}"

    # status -----------------------------------------------------------------
    def _cmd_status(self, args: tuple) -> str:
        self._need(args, 0, "STATUS")
        counts = (
            f"syringe={len(self._syringe_pumps)} peri={len(self._peri_pumps)} "
            f"mfc={len(self._mfcs)} collector={len(self._collectors)} "
            f"temp={len(self._temp_controllers)} chiller={len(self._chillers)} "
            f"ph={len(self._ph_probes)}"
        )
        return counts

    # -- serial serve loop ----------------------------------------------------
    def start(self) -> None:
        """Begin answering commands on the serial port."""
        if self.port is None:
            raise InstrumentCommandError("SBC has no serial port attached")
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._serve, name="jkem-sbc", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the serve loop (the port stays open)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _serve(self) -> None:
        framer = LineFramer()
        while not self._stop.is_set():
            try:
                chunk = self.port.read(256, timeout=0.05)
            except ReproError:
                break
            if not chunk:
                continue
            try:
                lines = framer.feed(chunk)
            except ValueError as exc:
                self.log.emit(self.SOURCE, "error", f"framing error: {exc}")
                framer.reset()
                continue
            for raw in lines:
                self._handle_line(raw)

    def _handle_line(self, raw: bytes) -> None:
        try:
            text = raw.decode("ascii")
        except UnicodeDecodeError:
            self._reply(
                Response(ok=False, error_code=400, error_message="non-ascii command")
            )
            return
        try:
            command = parse_command(text)
        except InstrumentCommandError as exc:
            self.log.emit(self.SOURCE, "command", f"{text} ERR")
            self._reply(Response(ok=False, error_code=400, error_message=str(exc)))
            return
        response = self.execute(command)
        self.commands_handled += 1
        outcome = "OK" if response.ok else f"ERR({response.error_code})"
        # This echo is the Fig 5b console line.
        self.log.emit(self.SOURCE, "command", f"{text} {outcome}")
        self._reply(response)

    def _reply(self, response: Response) -> None:
        try:
            self.port.write(frame_line(format_response(response)))
        except ReproError:
            pass
