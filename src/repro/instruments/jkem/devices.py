"""Device models for the J-Kem setup.

Each device mutates shared liquid/thermal state (reservoirs, the cell) so
the instrument stack is physically coupled: filling the cell through the
syringe pump changes what the potentiostat measures.

Operation durations scale with ``time_scale`` (seconds of simulated
operation charged per second of nominal duration): 0 makes everything
instantaneous for unit tests, 1.0 is real time, and the facility default
(0.01) keeps workflows snappy while preserving ordering effects.
"""

from __future__ import annotations

import math
import threading

from repro.clock import Clock
from repro.errors import (
    ChemistryError,
    InstrumentCommandError,
    InstrumentStateError,
)
from repro.logging_utils import EventLog
from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.species import Solution
from repro.instruments.base import Instrument, InstrumentStatus
from repro.instruments.jkem.plumbing import PortMap, Reservoir, WASTE


class SyringePump(Instrument):
    """A syringe pump behind a distribution valve.

    Attributes:
        syringe_volume_ml: barrel capacity.
        ports: the valve plumbing.
    """

    def __init__(
        self,
        name: str = "syringe-pump-1",
        syringe_volume_ml: float = 10.0,
        ports: PortMap | None = None,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
        time_scale: float = 0.0,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        if syringe_volume_ml <= 0:
            raise InstrumentCommandError("syringe volume must be > 0")
        self.syringe_volume_ml = syringe_volume_ml
        self.ports = ports or PortMap()
        self.time_scale = time_scale
        self.rate_ml_min = 1.0
        self.current_port = 1
        self._held_volume_ml = 0.0
        self._held_solution: Solution | None = None
        self._lock = threading.Lock()

    # -- configuration ------------------------------------------------------
    def set_rate(self, rate_ml_min: float) -> None:
        """Set the plunger rate in mL/min."""
        self._check_fault()
        if not 0.001 <= rate_ml_min <= 150.0:
            raise InstrumentCommandError(
                f"rate {rate_ml_min} mL/min outside pump range 0.001-150"
            )
        self.rate_ml_min = rate_ml_min
        self._emit("command", f"rate set to {rate_ml_min:g} mL/min")

    def set_port(self, port: int) -> None:
        """Rotate the distribution valve to ``port``."""
        self._check_fault()
        if port not in self.ports:
            raise InstrumentCommandError(f"valve port {port} is not plumbed")
        self.current_port = port
        self._emit("command", f"valve moved to port {port}")

    # -- state ------------------------------------------------------------
    @property
    def held_volume_ml(self) -> float:
        with self._lock:
            return self._held_volume_ml

    @property
    def held_solution(self) -> Solution | None:
        with self._lock:
            return self._held_solution

    def _charge_time(self, volume_ml: float) -> None:
        if self.time_scale > 0:
            nominal = volume_ml / (self.rate_ml_min / 60.0)
            self.clock.sleep(nominal * self.time_scale)

    # -- liquid operations --------------------------------------------------
    def withdraw(self, volume_ml: float) -> None:
        """Pull liquid from the current port's target into the syringe."""
        self._check_fault()
        if volume_ml <= 0:
            raise InstrumentCommandError("withdraw volume must be > 0")
        with self._lock:
            if self._held_volume_ml + volume_ml > self.syringe_volume_ml + 1e-9:
                raise InstrumentStateError(
                    f"withdrawing {volume_ml:.3f} mL would overfill the "
                    f"{self.syringe_volume_ml:g} mL syringe "
                    f"(holds {self._held_volume_ml:.3f} mL)"
                )
        target = self.ports.target(self.current_port)
        self.status = InstrumentStatus.BUSY
        try:
            self._charge_time(volume_ml)
            if isinstance(target, ElectrochemicalCell):
                solution = target.contents
                target.withdraw_liquid(volume_ml)
            elif isinstance(target, Reservoir) or hasattr(target, "withdraw"):
                solution = target.withdraw(volume_ml)
            else:
                raise InstrumentCommandError(
                    f"cannot withdraw from {getattr(target, 'name', target)!r}"
                )
            with self._lock:
                self._held_volume_ml += volume_ml
                if solution is not None:
                    self._held_solution = solution
            self._emit(
                "command",
                f"withdrew {volume_ml:g} mL from port {self.current_port}",
            )
        finally:
            self.status = (
                InstrumentStatus.ERROR if self.faulted else InstrumentStatus.IDLE
            )

    def dispense(self, volume_ml: float) -> None:
        """Push liquid from the syringe to the current port's target."""
        self._check_fault()
        if volume_ml <= 0:
            raise InstrumentCommandError("dispense volume must be > 0")
        with self._lock:
            if volume_ml > self._held_volume_ml + 1e-9:
                raise InstrumentStateError(
                    f"syringe holds {self._held_volume_ml:.3f} mL, "
                    f"cannot dispense {volume_ml:.3f} mL"
                )
            solution = self._held_solution
        target = self.ports.target(self.current_port)
        self.status = InstrumentStatus.BUSY
        try:
            self._charge_time(volume_ml)
            if isinstance(target, ElectrochemicalCell):
                if solution is None:
                    raise InstrumentStateError("syringe contents unknown")
                target.add_liquid(volume_ml, solution)
            elif hasattr(target, "receive"):
                target.receive(volume_ml, solution)
            elif hasattr(target, "fill"):
                target.fill(volume_ml)
            else:
                raise InstrumentCommandError(
                    f"cannot dispense to {getattr(target, 'name', target)!r}"
                )
            with self._lock:
                self._held_volume_ml -= volume_ml
                if self._held_volume_ml <= 1e-12:
                    self._held_volume_ml = 0.0
                    self._held_solution = None
            self._emit(
                "command",
                f"dispensed {volume_ml:g} mL to port {self.current_port}",
            )
        finally:
            self.status = (
                InstrumentStatus.ERROR if self.faulted else InstrumentStatus.IDLE
            )

    def empty_to_waste(self) -> float:
        """Discard the syringe contents; returns the discarded volume."""
        self._check_fault()
        with self._lock:
            discarded = self._held_volume_ml
            self._held_volume_ml = 0.0
            self._held_solution = None
        WASTE.fill(discarded)
        self._emit("command", f"emptied {discarded:g} mL to waste")
        return discarded

    def halt(self) -> None:
        """Emergency stop: freeze the plunger where it is.

        Deliberately skips the fault check — safing must work on a
        faulted pump. Held liquid stays in the barrel for the operator.
        """
        self.status = (
            InstrumentStatus.ERROR if self.faulted else InstrumentStatus.IDLE
        )
        self._emit("halt", "syringe pump halted")


class PeristalticPump(Instrument):
    """Continuous transfer pump between two fixed liquid endpoints."""

    #: flow ranges per tubing size, mL/min (from the J-Kem GUI in Fig 5b)
    TUBING_RANGES = {"LS13": (0.06, 60.0), "LS14": (0.3, 300.0), "LS16": (2.8, 1700.0)}

    def __init__(
        self,
        name: str = "peristaltic-pump-1",
        tubing: str = "LS16",
        source=None,
        destination=None,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
        time_scale: float = 0.0,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        if tubing not in self.TUBING_RANGES:
            raise InstrumentCommandError(f"unknown tubing size {tubing!r}")
        self.tubing = tubing
        self.source = source
        self.destination = destination
        self.time_scale = time_scale
        self.rate_ml_min = self.TUBING_RANGES[tubing][0]
        self.running = False

    def set_rate(self, rate_ml_min: float) -> None:
        self._check_fault()
        low, high = self.TUBING_RANGES[self.tubing]
        if not low <= rate_ml_min <= high:
            raise InstrumentCommandError(
                f"rate {rate_ml_min} outside {self.tubing} range {low}-{high} mL/min"
            )
        self.rate_ml_min = rate_ml_min
        self._emit("command", f"rate set to {rate_ml_min:g} mL/min")

    def transfer(self, volume_ml: float) -> None:
        """Move ``volume_ml`` from source to destination."""
        self._check_fault()
        if self.source is None or self.destination is None:
            raise InstrumentStateError(f"{self.name} tubing not connected")
        if volume_ml <= 0:
            raise InstrumentCommandError("transfer volume must be > 0")
        self.status = InstrumentStatus.BUSY
        self.running = True
        try:
            if self.time_scale > 0:
                self.clock.sleep(
                    volume_ml / (self.rate_ml_min / 60.0) * self.time_scale
                )
            if isinstance(self.source, ElectrochemicalCell):
                solution = self.source.contents
                self.source.withdraw_liquid(volume_ml)
            else:
                solution = self.source.withdraw(volume_ml)
            if isinstance(self.destination, ElectrochemicalCell):
                if solution is None:
                    raise ChemistryError("transferred liquid has unknown identity")
                self.destination.add_liquid(volume_ml, solution)
            else:
                self.destination.fill(volume_ml)
            self._emit("command", f"transferred {volume_ml:g} mL")
        finally:
            self.running = False
            self.status = (
                InstrumentStatus.ERROR if self.faulted else InstrumentStatus.IDLE
            )

    def halt(self) -> None:
        """Emergency stop: stop the rollers, no fault check."""
        self.running = False
        self.status = (
            InstrumentStatus.ERROR if self.faulted else InstrumentStatus.IDLE
        )
        self._emit("halt", "peristaltic pump halted")


class MassFlowController(Instrument):
    """Gas MFC feeding the cell's purge line."""

    def __init__(
        self,
        name: str = "mfc-1",
        gas: str = "argon",
        max_sccm: float = 500.0,
        cell: ElectrochemicalCell | None = None,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        self.gas = gas
        self.max_sccm = max_sccm
        self.cell = cell
        self.setpoint_sccm = 0.0

    def set_flow(self, sccm: float) -> None:
        """Set the purge flow; 0 stops the purge."""
        self._check_fault()
        if not 0.0 <= sccm <= self.max_sccm:
            raise InstrumentCommandError(
                f"flow {sccm} sccm outside 0-{self.max_sccm}"
            )
        self.setpoint_sccm = sccm
        if self.cell is not None:
            self.cell.set_purge(self.gas if sccm > 0 else None, sccm)
        self._emit("command", f"{self.gas} flow set to {sccm:g} sccm")

    def shutoff(self) -> None:
        """Close the gas valve unconditionally (no fault check).

        Safe-state counterpart of ``set_flow(0)``: usable even when the
        controller has faulted, because venting purge gas into a cell
        nobody is watching is the thing safing exists to prevent.
        """
        self.setpoint_sccm = 0.0
        if self.cell is not None:
            self.cell.set_purge(None, 0.0)
        self._emit("halt", f"{self.gas} flow shut off")

    @property
    def actual_sccm(self) -> float:
        """Measured flow (ideal controller: equals the setpoint)."""
        return 0.0 if self.faulted else self.setpoint_sccm


class FractionCollector(Instrument):
    """Vial rack with a movable dispense/aspirate needle.

    Exposes ``withdraw``/``fill`` delegating to the vial under the needle,
    so a syringe-pump valve port can be plumbed straight to the collector
    (that is how the paper's workflow aspirates the ferrocene stock).
    """

    name_attr = "fraction-collector"

    def __init__(
        self,
        name: str = "fraction-collector-1",
        positions: tuple[str, ...] = ("TOP", "MIDDLE", "BOTTOM"),
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        if not positions:
            raise InstrumentCommandError("collector needs at least one position")
        self.positions = positions
        self._vials: dict[str, Reservoir] = {}
        self.current_position = positions[0]

    def load_vial(self, position: str, vial: Reservoir) -> None:
        """Place a vial at a rack position."""
        self._require_position(position)
        self._vials[position] = vial
        self._emit("command", f"vial {vial.name!r} loaded at {position}")

    def unload_vial(self, position: str) -> Reservoir:
        """Remove and return the vial at a rack position.

        This is the hand-off point to the transfer robot: the physical
        vial leaves the rack (subsequent needle moves to the position
        fail until a new vial is loaded).
        """
        self._require_position(position)
        try:
            vial = self._vials.pop(position)
        except KeyError:
            raise InstrumentStateError(
                f"no vial loaded at {position}"
            ) from None
        self._emit("command", f"vial {vial.name!r} unloaded from {position}")
        return vial

    def _require_position(self, position: str) -> None:
        if position not in self.positions:
            raise InstrumentCommandError(
                f"unknown rack position {position!r}; have {self.positions}"
            )

    def move_to(self, position: str) -> None:
        """Move the needle to a rack position."""
        self._check_fault()
        self._require_position(position)
        self.current_position = position
        self._emit("command", f"needle moved to {position}")

    def current_vial(self) -> Reservoir:
        try:
            return self._vials[self.current_position]
        except KeyError:
            raise InstrumentStateError(
                f"no vial loaded at {self.current_position}"
            ) from None

    # PortTarget interface: delegate to the vial under the needle.
    def withdraw(self, volume_ml: float) -> Solution:
        self._check_fault()
        return self.current_vial().withdraw(volume_ml)

    def fill(self, volume_ml: float) -> None:
        self._check_fault()
        self.current_vial().fill(volume_ml)

    def receive(self, volume_ml: float, solution: Solution | None) -> None:
        self._check_fault()
        self.current_vial().receive(volume_ml, solution)


class TemperatureController(Instrument):
    """First-order thermal control of the cell temperature."""

    def __init__(
        self,
        name: str = "temp-controller-1",
        cell: ElectrochemicalCell | None = None,
        tau_s: float = 120.0,
        min_c: float = -20.0,
        max_c: float = 150.0,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        self.cell = cell
        self.tau_s = tau_s
        self.min_c = min_c
        self.max_c = max_c
        initial = cell.temperature_c if cell is not None else 25.0
        self.setpoint_c = initial
        self._anchor_temp_c = initial
        self._anchor_time = self.clock.now()

    def set_setpoint(self, celsius: float) -> None:
        self._check_fault()
        if not self.min_c <= celsius <= self.max_c:
            raise InstrumentCommandError(
                f"setpoint {celsius} outside {self.min_c}..{self.max_c} C"
            )
        # re-anchor the exponential at the present temperature
        self._anchor_temp_c = self.read_temperature()
        self._anchor_time = self.clock.now()
        self.setpoint_c = celsius
        self._emit("command", f"setpoint {celsius:g} C")

    def read_temperature(self) -> float:
        """Current temperature following a first-order approach."""
        elapsed = self.clock.now() - self._anchor_time
        temp = self.setpoint_c + (self._anchor_temp_c - self.setpoint_c) * math.exp(
            -max(elapsed, 0.0) / self.tau_s
        )
        if self.cell is not None:
            self.cell.temperature_c = temp
        return temp


class Chiller(Instrument):
    """Recirculating chiller: coolant loop behind the temperature controller."""

    def __init__(
        self,
        name: str = "chiller-1",
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        self.coolant_setpoint_c = 20.0
        self.running = False

    def start(self) -> None:
        self._check_fault()
        self.running = True
        self._emit("command", "chiller started")

    def stop(self) -> None:
        self._check_fault()
        self.running = False
        self._emit("command", "chiller stopped")

    def set_coolant(self, celsius: float) -> None:
        self._check_fault()
        if not -30.0 <= celsius <= 40.0:
            raise InstrumentCommandError(f"coolant setpoint {celsius} out of range")
        self.coolant_setpoint_c = celsius
        self._emit("command", f"coolant setpoint {celsius:g} C")


class PHProbe(Instrument):
    """pH probe/electrode module.

    The paper's MeCN electrolyte has no aqueous pH; the probe reports a
    configured baseline with sensor noise, or the value assigned by a test.
    """

    def __init__(
        self,
        name: str = "ph-probe-1",
        baseline_ph: float = 7.0,
        noise_sigma: float = 0.02,
        seed: int = 0,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        super().__init__(name, clock=clock, event_log=event_log)
        import random

        self.baseline_ph = baseline_ph
        self.noise_sigma = noise_sigma
        self._rng = random.Random(seed)

    def read_ph(self) -> float:
        self._check_fault()
        value = self.baseline_ph + self._rng.gauss(0.0, self.noise_sigma)
        return max(0.0, min(14.0, value))
