"""The J-Kem ASCII command grammar.

Commands look exactly like the console lines in paper Fig 5b::

    SYRINGEPUMP_RATE(1,5.000000)
    SYRINGEPUMP_PORT(1,8)
    FRACTIONCOLLECTOR_VIAL(1,BOTTOM)
    SYRINGEPUMP_WITHDRAW(1,5.000000)

i.e. ``VERB(arg,arg,...)`` with integer, float, or bare-word arguments.
Responses are ``OK``, ``OK <value>``, or ``ERR(<code>,<message>)``.

Parsing is strict: anything malformed raises
:class:`~repro.errors.InstrumentCommandError` on the device side, which
reaches the driver as an ``ERR(400, ...)`` response — never a silent drop.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import InstrumentCommandError

Arg = Union[int, float, str]

_VERB_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")
_COMMAND_RE = re.compile(r"^(?P<verb>[A-Z][A-Z0-9_]*)\((?P<args>[^()]*)\)$")
_BAREWORD_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


@dataclass(frozen=True)
class Command:
    """A parsed instrument command."""

    verb: str
    args: tuple[Arg, ...] = ()

    def __post_init__(self) -> None:
        if not _VERB_RE.match(self.verb):
            raise InstrumentCommandError(f"illegal verb {self.verb!r}")


@dataclass(frozen=True)
class Response:
    """A parsed device response.

    Attributes:
        ok: command success flag.
        value: optional payload (e.g. a temperature reading).
        error_code: numeric code when ``ok`` is False.
        error_message: human-readable failure reason.
    """

    ok: bool
    value: str | None = None
    error_code: int = 0
    error_message: str = ""


def _format_arg(arg: Arg) -> str:
    if isinstance(arg, bool):
        raise InstrumentCommandError("bool is not a valid protocol argument")
    if isinstance(arg, int):
        return str(arg)
    if isinstance(arg, float):
        return f"{arg:.6f}"
    if isinstance(arg, str):
        if not _BAREWORD_RE.match(arg):
            raise InstrumentCommandError(
                f"string argument {arg!r} must be a bare word"
            )
        return arg
    raise InstrumentCommandError(f"unsupported argument type {type(arg).__name__}")


def _parse_arg(text: str) -> Arg:
    text = text.strip()
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text):
        return float(text)
    if _BAREWORD_RE.match(text):
        return text
    raise InstrumentCommandError(f"cannot parse argument {text!r}")


def format_command(command: Command) -> str:
    """Render a command to its wire line (no terminator)."""
    rendered = ",".join(_format_arg(a) for a in command.args)
    return f"{command.verb}({rendered})"


def parse_command(line: str) -> Command:
    """Parse one wire line into a :class:`Command`.

    Raises:
        InstrumentCommandError: grammar violation.
    """
    line = line.strip()
    match = _COMMAND_RE.match(line)
    if not match:
        raise InstrumentCommandError(f"malformed command line: {line!r}")
    args_text = match.group("args").strip()
    args: tuple[Arg, ...] = ()
    if args_text:
        args = tuple(_parse_arg(part) for part in args_text.split(","))
    return Command(verb=match.group("verb"), args=args)


def format_response(response: Response) -> str:
    """Render a response to its wire line (no terminator)."""
    if response.ok:
        return f"OK {response.value}" if response.value is not None else "OK"
    message = response.error_message.replace("\r", " ").replace("\n", " ")
    # commas delimit the frame; keep the message parseable
    message = message.replace(",", ";").replace("(", "[").replace(")", "]")
    return f"ERR({response.error_code},{message})"


_ERR_RE = re.compile(r"^ERR\((?P<code>\d+),(?P<message>.*)\)$")


def parse_response(line: str) -> Response:
    """Parse one response line.

    Raises:
        InstrumentCommandError: the line is neither OK nor ERR-shaped.
    """
    line = line.strip()
    if line == "OK":
        return Response(ok=True)
    if line.startswith("OK "):
        return Response(ok=True, value=line[3:])
    match = _ERR_RE.match(line)
    if match:
        return Response(
            ok=False,
            error_code=int(match.group("code")),
            error_message=match.group("message"),
        )
    raise InstrumentCommandError(f"unparseable response line: {line!r}")
