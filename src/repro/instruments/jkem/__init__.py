"""The J-Kem electrochemical setup.

Layering copies the real system (paper §2.1, §3.2.2):

- device models (:mod:`~repro.instruments.jkem.devices`) — syringe pump,
  peristaltic pump, MFC, fraction collector, temperature controller,
  chiller, pH probe — each mutating shared liquid state
  (:mod:`~repro.instruments.jkem.plumbing` + the electrochemical cell);
- the single-board computer (:mod:`~repro.instruments.jkem.sbc`) owns the
  devices and answers an ASCII command protocol over a serial link
  (:mod:`~repro.instruments.jkem.protocol`), echoing each command with
  ``OK`` exactly as Fig 5b shows;
- the Python front-end API (:mod:`~repro.instruments.jkem.api`) replaces
  the proprietary J-Kem GUI: it frames commands onto the serial port and
  parses responses, giving workflow code a programmable interface.
"""

from repro.instruments.jkem.devices import (
    SyringePump,
    PeristalticPump,
    MassFlowController,
    FractionCollector,
    TemperatureController,
    Chiller,
    PHProbe,
)
from repro.instruments.jkem.plumbing import Reservoir, PortMap, WASTE
from repro.instruments.jkem.protocol import (
    Command,
    Response,
    parse_command,
    format_command,
    parse_response,
    format_response,
)
from repro.instruments.jkem.sbc import JKemSBC
from repro.instruments.jkem.api import JKemAPI

__all__ = [
    "SyringePump",
    "PeristalticPump",
    "MassFlowController",
    "FractionCollector",
    "TemperatureController",
    "Chiller",
    "PHProbe",
    "Reservoir",
    "PortMap",
    "WASTE",
    "Command",
    "Response",
    "parse_command",
    "format_command",
    "parse_response",
    "format_response",
    "JKemSBC",
    "JKemAPI",
]
