"""Python front-end API for the J-Kem setup (paper §3.2.2).

This replaces the proprietary GUI: a programmable driver on the control
agent that frames commands onto the serial link and parses the SBC's
responses. Method names track the workflow cells of paper Fig 5a
(``Set_Rate_SyringePump`` → :meth:`set_rate_syringe_pump`, and so on).

Every method returns the SBC's textual status (``"OK"`` or ``"OK <v>"``)
on success and raises :class:`~repro.errors.InstrumentCommandError` on an
ERR response, so workflow code can both display transcripts (Fig 5a shows
the OKs) and fail fast.
"""

from __future__ import annotations

import threading

from repro.errors import InstrumentCommandError, SerialTimeoutError
from repro.logging_utils import EventLog
from repro.serialio import CRLF, SerialEndpoint
from repro.serialio.framing import frame_line
from repro.instruments.jkem.protocol import (
    Arg,
    Command,
    Response,
    format_command,
    parse_response,
)


class JKemAPI:
    """Driver over the serial link to the J-Kem single-board computer.

    Args:
        port: host end of the serial cable to the SBC.
        timeout_s: per-command response deadline. Liquid operations at
            simulated time scales can be slow; raise this accordingly.
        event_log: transcript log (``source="jkem.api"``).
    """

    SOURCE = "jkem.api"

    def __init__(
        self,
        port: SerialEndpoint,
        timeout_s: float = 30.0,
        event_log: EventLog | None = None,
    ):
        self.port = port
        self.timeout_s = timeout_s
        self.log = event_log if event_log is not None else EventLog()
        self._lock = threading.Lock()
        self._closed = False

    # -- plumbing ----------------------------------------------------------
    def _roundtrip(self, verb: str, *args: Arg) -> Response:
        if self._closed:
            raise InstrumentCommandError("J-Kem API is closed")
        command = Command(verb=verb, args=tuple(args))
        line = format_command(command)
        with self._lock:
            self.port.write(frame_line(line))
            try:
                raw = self.port.read_until(CRLF, timeout=self.timeout_s)
            except SerialTimeoutError as exc:
                raise InstrumentCommandError(
                    f"no response to {line} within {self.timeout_s}s"
                ) from exc
        response = parse_response(raw.decode("ascii"))
        status = "OK" if response.ok else f"ERR({response.error_code})"
        self.log.emit(self.SOURCE, "command", f"{line} -> {status}")
        if not response.ok:
            raise InstrumentCommandError(
                f"{verb} failed: {response.error_message} "
                f"(code {response.error_code})"
            )
        return response

    @staticmethod
    def _status_text(response: Response) -> str:
        return "OK" if response.value is None else f"OK {response.value}"

    # -- syringe pump (Fig 5a command set) -----------------------------------
    def set_rate_syringe_pump(self, unit: int, rate_ml_min: float) -> str:
        """Set plunger rate; Fig 5a's ``Set_Rate_SyringePump``."""
        return self._status_text(
            self._roundtrip("SYRINGEPUMP_RATE", unit, float(rate_ml_min))
        )

    def set_port_syringe_pump(self, unit: int, port: int) -> str:
        """Rotate the distribution valve; Fig 5a's ``Set_Port_SyringePump``."""
        return self._status_text(self._roundtrip("SYRINGEPUMP_PORT", unit, port))

    def withdraw_syringe_pump(self, unit: int, volume_ml: float) -> str:
        """Aspirate from the selected port; Fig 5a's ``Withdraw_SyringePump``."""
        return self._status_text(
            self._roundtrip("SYRINGEPUMP_WITHDRAW", unit, float(volume_ml))
        )

    def dispense_syringe_pump(self, unit: int, volume_ml: float) -> str:
        """Dispense to the selected port; Fig 5a's ``Dispense_SyringePump``."""
        return self._status_text(
            self._roundtrip("SYRINGEPUMP_DISPENSE", unit, float(volume_ml))
        )

    def status_syringe_pump(self, unit: int) -> str:
        """Raw status summary line of the pump."""
        response = self._roundtrip("SYRINGEPUMP_STATUS", unit)
        return response.value or ""

    # -- fraction collector ------------------------------------------------
    def set_vial_fraction_collector(self, unit: int, position: str) -> str:
        """Move the needle; Fig 5a's ``Set_Vial_FractionCollector``."""
        return self._status_text(
            self._roundtrip("FRACTIONCOLLECTOR_VIAL", unit, position)
        )

    # -- peristaltic pump ----------------------------------------------------
    def set_rate_peristaltic_pump(self, unit: int, rate_ml_min: float) -> str:
        return self._status_text(
            self._roundtrip("PERIPUMP_RATE", unit, float(rate_ml_min))
        )

    def transfer_peristaltic_pump(self, unit: int, volume_ml: float) -> str:
        return self._status_text(
            self._roundtrip("PERIPUMP_TRANSFER", unit, float(volume_ml))
        )

    def halt_syringe_pump(self, unit: int) -> str:
        """Emergency-stop the plunger (safe-state action)."""
        return self._status_text(self._roundtrip("SYRINGEPUMP_HALT", unit))

    def halt_peristaltic_pump(self, unit: int) -> str:
        """Emergency-stop the rollers (safe-state action)."""
        return self._status_text(self._roundtrip("PERIPUMP_HALT", unit))

    # -- mass flow controller --------------------------------------------------
    def set_flow_mfc(self, unit: int, sccm: float) -> str:
        return self._status_text(self._roundtrip("MFC_FLOW", unit, float(sccm)))

    def read_flow_mfc(self, unit: int) -> float:
        response = self._roundtrip("MFC_READ", unit)
        return float(response.value or "nan")

    # -- thermal -------------------------------------------------------------
    def set_temperature(self, unit: int, celsius: float) -> str:
        return self._status_text(
            self._roundtrip("TEMPCONTROLLER_SET", unit, float(celsius))
        )

    def read_temperature(self, unit: int) -> float:
        response = self._roundtrip("TEMPCONTROLLER_READ", unit)
        return float(response.value or "nan")

    def start_chiller(self, unit: int) -> str:
        return self._status_text(self._roundtrip("CHILLER_START", unit))

    def stop_chiller(self, unit: int) -> str:
        return self._status_text(self._roundtrip("CHILLER_STOP", unit))

    def set_coolant_chiller(self, unit: int, celsius: float) -> str:
        return self._status_text(
            self._roundtrip("CHILLER_COOLANT", unit, float(celsius))
        )

    # -- pH ----------------------------------------------------------------
    def read_ph(self, unit: int) -> float:
        response = self._roundtrip("PH_READ", unit)
        return float(response.value or "nan")

    # -- lifecycle -----------------------------------------------------------
    def status(self) -> str:
        """SBC-wide status line (device inventory)."""
        response = self._roundtrip("STATUS")
        return response.value or ""

    def exit(self) -> str:
        """Close the driver session; Fig 5a's ``call_Exit_JKem_API``.

        The serial port itself stays open (it belongs to the bench);
        :meth:`reopen` starts a new session, which is what workflow task B
        does at the top of every round.
        """
        self._closed = True
        self.log.emit(self.SOURCE, "lifecycle", "J-Kem API exit OK")
        return "J-Kem API exit OK"

    def reopen(self) -> str:
        """Start a new driver session after :meth:`exit`."""
        self._closed = False
        self.log.emit(self.SOURCE, "lifecycle", "J-Kem API session opened")
        return "J-Kem API open OK"

    @property
    def closed(self) -> bool:
        return self._closed
