"""Liquid routing: reservoirs, waste, and the syringe-pump valve map.

A syringe pump's distribution valve selects one *port*; each port is
plumbed to a reservoir, the electrochemical cell, or waste. ``PortMap``
records that plumbing so withdraw/dispense know where liquid comes from
and goes to — the paper's workflow uses port 8 for the cell line and the
fraction-collector line for the ferrocene stock.
"""

from __future__ import annotations

import threading
from typing import Union

from repro.errors import ChemistryError, InstrumentCommandError
from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.species import Solution


class Reservoir:
    """A bottle/vial holding a solution.

    Attributes:
        name: label, e.g. ``"ferrocene-stock"``.
        solution: what it contains.
        volume_ml: remaining volume.
    """

    def __init__(self, name: str, solution: Solution, volume_ml: float):
        if volume_ml < 0:
            raise ChemistryError(f"reservoir volume must be >= 0, got {volume_ml}")
        self.name = name
        self.solution = solution
        self._volume_ml = volume_ml
        self._lock = threading.Lock()

    @property
    def volume_ml(self) -> float:
        with self._lock:
            return self._volume_ml

    def withdraw(self, volume_ml: float) -> Solution:
        """Remove liquid; returns the solution withdrawn."""
        if volume_ml < 0:
            raise ChemistryError("cannot withdraw a negative volume")
        with self._lock:
            if volume_ml > self._volume_ml + 1e-9:
                raise ChemistryError(
                    f"reservoir {self.name!r} holds {self._volume_ml:.3f} mL, "
                    f"cannot withdraw {volume_ml:.3f} mL"
                )
            self._volume_ml -= volume_ml
            return self.solution

    def fill(self, volume_ml: float) -> None:
        """Top the reservoir up (e.g. returning collected liquid)."""
        if volume_ml < 0:
            raise ChemistryError("cannot fill a negative volume")
        with self._lock:
            self._volume_ml += volume_ml

    def receive(self, volume_ml: float, solution: Solution | None) -> None:
        """Accept liquid *with its identity* (what a dispense delivers).

        An empty vial adopts the incoming solution — that is how a blank
        fraction vial ends up holding what was drawn from the cell.
        Mixing into a non-empty vial keeps the existing identity
        (idealised; fraction workflows collect into empty vials).
        """
        if volume_ml < 0:
            raise ChemistryError("cannot receive a negative volume")
        with self._lock:
            if self._volume_ml <= 1e-12 and solution is not None:
                self.solution = solution
            self._volume_ml += volume_ml


class _Waste:
    """Infinite sink for discarded liquid."""

    name = "waste"

    def __init__(self) -> None:
        self.volume_ml = 0.0
        self._lock = threading.Lock()

    def fill(self, volume_ml: float) -> None:
        with self._lock:
            self.volume_ml += volume_ml


WASTE = _Waste()

PortTarget = Union[Reservoir, ElectrochemicalCell, _Waste]


class PortMap:
    """Distribution-valve plumbing: port number -> liquid endpoint."""

    def __init__(self) -> None:
        self._ports: dict[int, PortTarget] = {}

    def connect(self, port: int, target: PortTarget) -> None:
        """Plumb ``port`` to a reservoir, the cell, or waste."""
        if port < 1:
            raise InstrumentCommandError(f"port numbers start at 1, got {port}")
        self._ports[port] = target

    def target(self, port: int) -> PortTarget:
        try:
            return self._ports[port]
        except KeyError:
            raise InstrumentCommandError(f"valve port {port} is not plumbed") from None

    def ports(self) -> dict[int, str]:
        """port -> target-name map, for status displays."""
        return {
            port: getattr(target, "name", type(target).__name__)
            for port, target in self._ports.items()
        }

    def __contains__(self, port: int) -> bool:
        return port in self._ports
