"""Common instrument machinery: status, audit trail, fault injection."""

from __future__ import annotations

from enum import Enum

from repro.clock import Clock, WALL
from repro.errors import InstrumentFaultError
from repro.logging_utils import EventLog


class InstrumentStatus(Enum):
    """Coarse device state, visible to status queries."""

    OFFLINE = "offline"
    IDLE = "idle"
    BUSY = "busy"
    ERROR = "error"


class Instrument:
    """Base class: named device with a status, an event log and faults.

    Subclasses call :meth:`_check_fault` at the top of every operation so
    an injected fault fails commands the way a broken device would —
    loudly, with a specific error.
    """

    def __init__(
        self,
        name: str,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ):
        self.name = name
        self.clock = clock or WALL
        self.log = event_log if event_log is not None else EventLog()
        self.status = InstrumentStatus.IDLE
        self._fault_message: str | None = None

    def inject_fault(self, message: str) -> None:
        """Make every subsequent operation raise until cleared."""
        self._fault_message = message
        self.status = InstrumentStatus.ERROR
        self.log.emit(self.name, "fault", f"fault injected: {message}")

    def clear_fault(self) -> None:
        self._fault_message = None
        if self.status is InstrumentStatus.ERROR:
            self.status = InstrumentStatus.IDLE
        self.log.emit(self.name, "fault", "fault cleared")

    @property
    def faulted(self) -> bool:
        return self._fault_message is not None

    def _check_fault(self) -> None:
        if self._fault_message is not None:
            raise InstrumentFaultError(f"{self.name}: {self._fault_message}")

    def _emit(self, kind: str, message: str, **data) -> None:
        self.log.emit(self.name, kind, message, **data)
