"""Derived CV metrics and reversibility diagnostics.

``characterize`` condenses a voltammogram into the numbers an
electrochemist reads off Fig 7: peak potentials and currents, dEp, E1/2,
peak-current ratio. ``reversibility_checks`` applies the textbook criteria
for an electrochemically reversible couple (Bard & Faulkner §6.5):

- dEp close to 2.218 RT/nF (~59 mV at 25 C, n=1);
- |ip_a / ip_c| close to 1;
- ip proportional to sqrt(scan rate) (checked by the scan-rate study);
- E1/2 independent of scan rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import nernst_slope
from repro.chemistry.voltammogram import Voltammogram
from repro.analysis.peaks import PeakPair, find_peaks


@dataclass(frozen=True)
class CVMetrics:
    """Summary numbers for one cycle of a CV."""

    anodic_peak_v: float
    anodic_peak_a: float
    cathodic_peak_v: float
    cathodic_peak_a: float
    peak_separation_v: float
    e_half_v: float
    peak_ratio: float
    scan_rate_v_s: float

    def format_summary(self) -> str:
        """One-paragraph console rendering."""
        return (
            f"anodic peak {self.anodic_peak_a:.3e} A at {self.anodic_peak_v:.3f} V; "
            f"cathodic peak {self.cathodic_peak_a:.3e} A at "
            f"{self.cathodic_peak_v:.3f} V; dEp = {self.peak_separation_v*1e3:.1f} mV; "
            f"E1/2 = {self.e_half_v:.3f} V; |ipa/ipc| = {self.peak_ratio:.2f}"
        )


def characterize(
    voltammogram: Voltammogram, cycle: int = 0, peaks: PeakPair | None = None
) -> CVMetrics:
    """Compute :class:`CVMetrics` for one cycle.

    Raises:
        ValueError: the trace has no identifiable redox wave.
    """
    pair = peaks or find_peaks(voltammogram, cycle=cycle)
    if not pair.complete:
        raise ValueError(
            "no complete anodic/cathodic peak pair found "
            "(blank, disconnected, or featureless trace)"
        )
    assert pair.anodic is not None and pair.cathodic is not None
    return CVMetrics(
        anodic_peak_v=pair.anodic.potential_v,
        anodic_peak_a=pair.anodic.current_a,
        cathodic_peak_v=pair.cathodic.potential_v,
        cathodic_peak_a=pair.cathodic.current_a,
        peak_separation_v=pair.separation_v,
        e_half_v=pair.e_half_v,
        peak_ratio=abs(pair.anodic.current_a / pair.cathodic.current_a),
        scan_rate_v_s=float(voltammogram.metadata.get("scan_rate_v_s", float("nan"))),
    )


def reversibility_checks(
    metrics: CVMetrics,
    temperature_c: float = 25.0,
    n_electrons: int = 1,
    separation_tolerance_v: float = 0.015,
    ratio_tolerance: float = 0.35,
) -> dict[str, bool]:
    """Textbook reversibility criteria as named pass/fail flags."""
    ideal_separation = 2.218 * nernst_slope(temperature_c, n_electrons)
    return {
        "peak_separation_nernstian": (
            abs(metrics.peak_separation_v - ideal_separation)
            <= separation_tolerance_v
        ),
        "peak_ratio_unity": abs(metrics.peak_ratio - 1.0) <= ratio_tolerance,
        "peaks_ordered": metrics.anodic_peak_v > metrics.cathodic_peak_v,
    }
