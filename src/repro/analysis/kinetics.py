"""Electrode-kinetics analysis: Nicholson's method for k0.

For a quasi-reversible couple the peak separation dEp grows beyond the
reversible 2.218 RT/nF as the scan rate outruns the electron-transfer
kinetics. Nicholson (Anal. Chem. 1965) tabulated the dimensionless
kinetic parameter psi against dEp; from psi at a known scan rate,

    k0 = psi * sqrt(pi * D * n F v / (R T))

so a dEp measured at one scan rate (or better, a series) yields the
standard rate constant. This is exactly the kind of "subsequent analysis"
the paper runs on the DGX after measurements arrive (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import FARADAY, GAS_CONSTANT, celsius_to_kelvin
from repro.chemistry.voltammogram import Voltammogram
from repro.analysis.peaks import find_peaks

# Nicholson's working curve: n*dEp (mV) -> psi (alpha = 0.5, 25 C).
# Values from the 1965 paper's Table I (plus the widely used extension
# points at the reversible and fully irreversible ends).
_NICHOLSON_TABLE = (
    # n*dEp_mV, psi
    (61.0, 20.0),
    (63.0, 7.0),
    (64.0, 6.0),
    (65.0, 5.0),
    (66.0, 4.0),
    (68.0, 3.0),
    (72.0, 2.0),
    (84.0, 1.0),
    (92.0, 0.75),
    (105.0, 0.50),
    (121.0, 0.35),
    (141.0, 0.25),
    (212.0, 0.10),
)


@dataclass(frozen=True)
class KineticsEstimate:
    """Result of a Nicholson analysis.

    Attributes:
        k0_cm_s: estimated standard heterogeneous rate constant.
        psi: the dimensionless kinetic parameter used.
        separation_v: the measured peak separation.
        reversible: True when dEp is at/below the reversible limit, in
            which case only a *lower bound* on k0 can be stated and
            ``k0_cm_s`` carries that bound.
    """

    k0_cm_s: float
    psi: float
    separation_v: float
    reversible: bool


def psi_from_separation(
    separation_v: float, n_electrons: int = 1
) -> tuple[float, bool]:
    """Interpolate Nicholson's working curve.

    Returns (psi, at_reversible_limit). Separations beyond the table's
    irreversible end extrapolate with the known psi ~ 1/dEp^2 tail.
    """
    n_dep_mv = separation_v * 1e3 * n_electrons
    table_x = np.array([row[0] for row in _NICHOLSON_TABLE])
    table_psi = np.array([row[1] for row in _NICHOLSON_TABLE])
    if n_dep_mv <= table_x[0]:
        return float(table_psi[0]), True
    if n_dep_mv >= table_x[-1]:
        # tail: psi * dEp^2 approximately constant
        scale = table_psi[-1] * table_x[-1] ** 2
        return float(scale / n_dep_mv**2), False
    # log-psi is smooth in dEp: interpolate there
    log_psi = np.interp(n_dep_mv, table_x, np.log(table_psi))
    return float(np.exp(log_psi)), False


def estimate_k0(
    separation_v: float,
    scan_rate_v_s: float,
    diffusion_cm2_s: float,
    n_electrons: int = 1,
    temperature_c: float = 25.0,
) -> KineticsEstimate:
    """k0 from one (dEp, scan rate) pair.

    Raises:
        ValueError: non-positive scan rate or diffusion coefficient.
    """
    if scan_rate_v_s <= 0 or diffusion_cm2_s <= 0:
        raise ValueError("scan rate and D must be > 0")
    psi, at_limit = psi_from_separation(separation_v, n_electrons)
    f_term = (
        n_electrons
        * FARADAY
        / (GAS_CONSTANT * celsius_to_kelvin(temperature_c))
    )
    k0 = psi * np.sqrt(np.pi * diffusion_cm2_s * f_term * scan_rate_v_s)
    return KineticsEstimate(
        k0_cm_s=float(k0),
        psi=psi,
        separation_v=separation_v,
        reversible=at_limit,
    )


def estimate_k0_from_trace(
    voltammogram: Voltammogram,
    diffusion_cm2_s: float,
    n_electrons: int = 1,
    temperature_c: float = 25.0,
) -> KineticsEstimate:
    """Nicholson analysis straight off a measured CV.

    Raises:
        ValueError: trace has no complete peak pair or no scan-rate
            metadata.
    """
    pair = find_peaks(voltammogram)
    if not pair.complete:
        raise ValueError("no complete peak pair; cannot run Nicholson analysis")
    scan_rate = voltammogram.metadata.get("scan_rate_v_s")
    if not scan_rate or scan_rate <= 0:
        raise ValueError("trace metadata lacks a positive scan_rate_v_s")
    return estimate_k0(
        separation_v=pair.separation_v,
        scan_rate_v_s=float(scan_rate),
        diffusion_cm2_s=diffusion_cm2_s,
        n_electrons=n_electrons,
        temperature_c=temperature_c,
    )
