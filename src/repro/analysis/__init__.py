"""Voltammogram analysis: peaks, reversibility, Randles-Sevcik.

These are the computations the paper runs on the DGX once the measurement
file arrives: locating the anodic/cathodic peaks of the I-V profile,
deriving E1/2 and the peak separation, checking reversibility criteria,
and estimating the diffusion coefficient from a scan-rate series.
"""

from repro.analysis.peaks import find_peaks, PeakPair
from repro.analysis.metrics import (
    CVMetrics,
    characterize,
    reversibility_checks,
)
from repro.analysis.randles_sevcik import (
    randles_sevcik_current,
    estimate_diffusion_coefficient,
    ScanRateStudy,
)
from repro.analysis.kinetics import (
    KineticsEstimate,
    estimate_k0,
    estimate_k0_from_trace,
    psi_from_separation,
)

__all__ = [
    "find_peaks",
    "PeakPair",
    "CVMetrics",
    "characterize",
    "reversibility_checks",
    "randles_sevcik_current",
    "estimate_diffusion_coefficient",
    "ScanRateStudy",
    "KineticsEstimate",
    "estimate_k0",
    "estimate_k0_from_trace",
    "psi_from_separation",
]
