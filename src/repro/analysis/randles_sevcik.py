"""Randles-Sevcik analysis: peak current vs scan rate.

For a reversible couple at 25 C the peak current follows

    ip = 0.4463 n F A C sqrt(n F v D / (R T))

so ip against sqrt(v) is a line through the origin whose slope yields the
diffusion coefficient. :class:`ScanRateStudy` automates the sweep: run a
CV per scan rate (through any runner callable — local engine or the full
remote workflow), collect the anodic peaks, fit the line, and report D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.units import FARADAY, GAS_CONSTANT, celsius_to_kelvin
from repro.chemistry.voltammogram import Voltammogram
from repro.analysis.peaks import find_peaks

RANDLES_SEVCIK_COEFF = 0.4463


def randles_sevcik_current(
    n_electrons: int,
    area_cm2: float,
    concentration_mol_cm3: float,
    diffusion_cm2_s: float,
    scan_rate_v_s: float,
    temperature_c: float = 25.0,
) -> float:
    """Predicted reversible peak current (A)."""
    if min(area_cm2, concentration_mol_cm3, diffusion_cm2_s, scan_rate_v_s) < 0:
        raise ValueError("physical parameters must be non-negative")
    f_term = n_electrons * FARADAY / (
        GAS_CONSTANT * celsius_to_kelvin(temperature_c)
    )
    return (
        RANDLES_SEVCIK_COEFF
        * n_electrons
        * FARADAY
        * area_cm2
        * concentration_mol_cm3
        * np.sqrt(f_term * scan_rate_v_s * diffusion_cm2_s)
    )


def estimate_diffusion_coefficient(
    scan_rates_v_s: np.ndarray,
    peak_currents_a: np.ndarray,
    n_electrons: int,
    area_cm2: float,
    concentration_mol_cm3: float,
    temperature_c: float = 25.0,
) -> tuple[float, float]:
    """Fit ip = slope * sqrt(v); returns (D in cm^2/s, R^2 of the fit).

    Raises:
        ValueError: fewer than 2 scan rates, or non-positive inputs.
    """
    scan_rates = np.asarray(scan_rates_v_s, dtype=np.float64)
    peaks = np.asarray(peak_currents_a, dtype=np.float64)
    if len(scan_rates) != len(peaks):
        raise ValueError("scan rate and peak arrays differ in length")
    if len(scan_rates) < 2:
        raise ValueError("need at least two scan rates")
    if np.any(scan_rates <= 0):
        raise ValueError("scan rates must be > 0")
    sqrt_v = np.sqrt(scan_rates)
    # least squares through the origin: slope = <x y> / <x^2>
    slope = float(np.dot(sqrt_v, peaks) / np.dot(sqrt_v, sqrt_v))
    predicted = slope * sqrt_v
    residual = peaks - predicted
    total = peaks - peaks.mean()
    r_squared = 1.0 - float(residual @ residual) / float(total @ total + 1e-300)

    f_term = n_electrons * FARADAY / (
        GAS_CONSTANT * celsius_to_kelvin(temperature_c)
    )
    denom = (
        RANDLES_SEVCIK_COEFF
        * n_electrons
        * FARADAY
        * area_cm2
        * concentration_mol_cm3
        * np.sqrt(f_term)
    )
    diffusion = (slope / denom) ** 2
    return float(diffusion), r_squared


@dataclass
class ScanRateStudy:
    """Sweep scan rates and extract the Randles-Sevcik line.

    Args:
        runner: callable ``scan_rate -> Voltammogram`` — the local engine
            in unit tests, the full remote workflow in the examples.
        scan_rates_v_s: rates to sweep.
    """

    runner: Callable[[float], Voltammogram]
    scan_rates_v_s: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4)
    results: list[Voltammogram] = field(default_factory=list)
    peak_currents_a: list[float] = field(default_factory=list)

    def run(self) -> "ScanRateStudy":
        """Execute all sweeps, collecting anodic peak currents."""
        self.results.clear()
        self.peak_currents_a.clear()
        for rate in self.scan_rates_v_s:
            trace = self.runner(rate)
            self.results.append(trace)
            pair = find_peaks(trace)
            if pair.anodic is None:
                raise ValueError(f"no anodic peak at scan rate {rate} V/s")
            self.peak_currents_a.append(pair.anodic.current_a)
        return self

    def estimate_diffusion(
        self,
        n_electrons: int,
        area_cm2: float,
        concentration_mol_cm3: float,
        temperature_c: float = 25.0,
    ) -> tuple[float, float]:
        """(D, R^2) from the collected peaks."""
        if not self.peak_currents_a:
            raise ValueError("run() the study first")
        return estimate_diffusion_coefficient(
            np.asarray(self.scan_rates_v_s),
            np.asarray(self.peak_currents_a),
            n_electrons=n_electrons,
            area_cm2=area_cm2,
            concentration_mol_cm3=concentration_mol_cm3,
            temperature_c=temperature_c,
        )
