"""Peak location on cyclic voltammograms.

The anodic peak is sought on the forward (towards-vertex) branch, the
cathodic peak on the return branch, after a light moving-average smoothing
so bench-level noise does not masquerade as a peak. Peak *prominence*
relative to the branch baseline filters out traces with no real wave
(blank or disconnected), for which :func:`find_peaks` reports None.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.voltammogram import Voltammogram


@dataclass(frozen=True)
class Peak:
    """One located peak."""

    potential_v: float
    current_a: float
    index: int


@dataclass(frozen=True)
class PeakPair:
    """Anodic + cathodic peaks of one cycle (either may be None)."""

    anodic: Peak | None
    cathodic: Peak | None

    @property
    def complete(self) -> bool:
        return self.anodic is not None and self.cathodic is not None

    @property
    def separation_v(self) -> float:
        """Peak separation dEp (nan when incomplete)."""
        if not self.complete:
            return float("nan")
        assert self.anodic and self.cathodic
        return self.anodic.potential_v - self.cathodic.potential_v

    @property
    def e_half_v(self) -> float:
        """Half-wave potential (midpoint of the peaks; nan when incomplete)."""
        if not self.complete:
            return float("nan")
        assert self.anodic and self.cathodic
        return 0.5 * (self.anodic.potential_v + self.cathodic.potential_v)


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    if window <= 1 or len(values) < window:
        return values
    kernel = np.ones(window) / window
    return np.convolve(values, kernel, mode="same")


def find_peaks(
    voltammogram: Voltammogram,
    cycle: int = 0,
    smooth_window: int = 5,
    min_prominence_ratio: float = 0.15,
) -> PeakPair:
    """Locate the anodic and cathodic peaks of one cycle.

    Args:
        voltammogram: the trace.
        cycle: which cycle to analyse.
        smooth_window: moving-average width (samples).
        min_prominence_ratio: a peak must rise above the branch median by
            at least this fraction of the overall current range, else it
            is reported as absent.

    Returns:
        A :class:`PeakPair`; missing waves yield None entries.
    """
    trace = voltammogram.cycle(cycle) if voltammogram.n_cycles > 1 else voltammogram
    potential = trace.potential_v
    current = _smooth(trace.current_a, smooth_window)
    n = len(current)
    if n < 8:
        return PeakPair(anodic=None, cathodic=None)

    # branch split at the vertex (extremum of the potential ramp)
    start = potential[0]
    vertex_idx = (
        int(np.argmax(potential))
        if potential.max() - start >= start - potential.min()
        else int(np.argmin(potential))
    )
    vertex_idx = max(1, min(vertex_idx, n - 2))
    current_range = float(np.ptp(current))
    if current_range <= 0:
        return PeakPair(anodic=None, cathodic=None)

    # noise floor from the high-frequency residual of the *raw* trace:
    # a genuine wave towers over it; pure amplifier noise (disconnected
    # electrode) never clears k sigma even though its range-relative
    # prominence looks healthy
    raw = trace.current_a
    noise_sigma = float(np.std(np.diff(raw))) / np.sqrt(2.0) if n > 2 else 0.0
    noise_floor = 8.0 * noise_sigma

    def pick(branch: slice, mode: str) -> Peak | None:
        segment = current[branch]
        if len(segment) == 0:
            return None
        if mode == "max":
            local = int(np.argmax(segment))
            prominence = segment[local] - float(np.median(segment))
        else:
            local = int(np.argmin(segment))
            prominence = float(np.median(segment)) - segment[local]
        if prominence < max(min_prominence_ratio * current_range, noise_floor):
            return None
        index = (branch.start or 0) + local
        return Peak(
            potential_v=float(potential[index]),
            current_a=float(trace.current_a[index]),
            index=index,
        )

    forward = slice(0, vertex_idx + 1)
    backward = slice(vertex_idx, n)
    # anodic = oxidation = positive current; forward branch when sweeping up
    sweeping_up = potential[vertex_idx] >= potential[0]
    anodic = pick(forward if sweeping_up else backward, "max")
    cathodic = pick(backward if sweeping_up else forward, "min")
    return PeakPair(anodic=anodic, cathodic=cathodic)
