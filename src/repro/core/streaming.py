"""Real-time acquisition monitoring and steering (paper §1, §4.2 step 7).

The paper stresses that the ICE exists for workflows needing "remote
experiment steering and real-time analytics": measurements must be
usable *while* the potentiostat acquires, not only after the file lands.
:class:`LiveMonitor` is that capability:

- it polls ``Probe_Status_SP200`` (and optionally the partial inline
  data) while a channel runs;
- every progress sample goes to a user callback — the hook where
  real-time analytics (or an AI agent) lives;
- a *guard* predicate can abort the experiment early: the monitor stops
  waiting, and the caller can stop the channel — e.g. compliance-current
  protection, or an ML screen rejecting a run halfway through.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import WorkflowError
from repro.obs.trace import child_span


@dataclass
class ProgressSample:
    """One observation of a running acquisition."""

    elapsed_s: float
    samples_acquired: int
    state: str
    partial_max_abs_current: float | None = None


@dataclass
class MonitorOutcome:
    """What the monitoring loop saw."""

    finished: bool
    aborted: bool
    samples: list[ProgressSample] = field(default_factory=list)

    @property
    def polls(self) -> int:
        return len(self.samples)


class LiveMonitor:
    """Polls a running SP200 channel through the remote client.

    Args:
        client: an :class:`~repro.facility.client.ACLPyroClient` with the
            channel already started.
        poll_interval_s: steering-loop cadence.
        on_progress: callback per poll (real-time analytics hook).
        guard: predicate over the :class:`ProgressSample`; returning
            False aborts the wait (the monitor reports ``aborted``).
        fetch_partial_data: also pull the partial trace inline each poll
            (costs control-channel bandwidth; gives the guard the actual
            currents, enabling compliance-style protection).
        tracer: emit one ``monitor.poll`` span per probe (with
            ``samples_acquired``/``state`` attributes) on this tracer —
            and thus onto any :class:`~repro.obs.stream.TelemetryBus`
            attached to it. Without a tracer the monitor still nests
            under an ambient span when one is open, and costs nothing
            otherwise.
    """

    def __init__(
        self,
        client: Any,
        poll_interval_s: float = 0.05,
        on_progress: Callable[[ProgressSample], None] | None = None,
        guard: Callable[[ProgressSample], bool] | None = None,
        fetch_partial_data: bool = False,
        tracer: Any = None,
    ):
        if poll_interval_s <= 0:
            raise WorkflowError("poll interval must be > 0")
        self.client = client
        self.poll_interval_s = poll_interval_s
        self.on_progress = on_progress
        self.guard = guard
        self.fetch_partial_data = fetch_partial_data
        self.tracer = tracer

    def watch(self, timeout_s: float = 300.0) -> MonitorOutcome:
        """Poll until the acquisition finishes, the guard trips, or timeout.

        Raises:
            WorkflowError: the deadline expired with the channel still
                running (distinct from a guard abort, which is a normal
                steering decision).
        """
        outcome = MonitorOutcome(finished=False, aborted=False)
        start = _time.monotonic()
        deadline = start + timeout_s
        while True:
            sample = self._poll_once(start)
            outcome.samples.append(sample)
            if self.on_progress is not None:
                self.on_progress(sample)
            if self.guard is not None and not self.guard(sample):
                outcome.aborted = True
                return outcome
            if sample.state == "finished":
                outcome.finished = True
                return outcome
            if _time.monotonic() >= deadline:
                raise WorkflowError(
                    f"acquisition still {sample.state!r} after {timeout_s}s"
                )
            _time.sleep(self.poll_interval_s)

    def _poll_once(self, start: float) -> ProgressSample:
        """One probe, wrapped in a ``monitor.poll`` span."""
        if self.tracer is not None:
            with self.tracer.start_as_current_span("monitor.poll") as span:
                sample = self._probe(start)
                span.set_attribute("samples_acquired", sample.samples_acquired)
                span.set_attribute("state", sample.state)
                return sample
        with child_span("monitor.poll") as span:
            sample = self._probe(start)
            if span is not None:
                span.set_attribute("samples_acquired", sample.samples_acquired)
                span.set_attribute("state", sample.state)
            return sample

    def _probe(self, start: float) -> ProgressSample:
        status = self.client.call_Probe_Status_SP200()
        sample = ProgressSample(
            elapsed_s=_time.monotonic() - start,
            samples_acquired=int(status.get("samples_acquired", 0)),
            state=str(status.get("state", "?")),
        )
        if self.fetch_partial_data and sample.samples_acquired > 0:
            partial = self.client.call_Get_Measurements_Inline(wait=False)
            currents = partial.get("current_a")
            if currents is not None and len(currents):
                import numpy as np

                sample.partial_max_abs_current = float(
                    np.abs(np.asarray(currents)).max()
                )
        return sample


def compliance_guard(max_abs_current_a: float) -> Callable[[ProgressSample], bool]:
    """Guard factory: abort when |I| exceeds a compliance limit.

    Use with ``fetch_partial_data=True`` so the monitor sees currents.
    """

    def guard(sample: ProgressSample) -> bool:
        if sample.partial_max_abs_current is None:
            return True
        return sample.partial_max_abs_current <= max_abs_current_a

    return guard
