"""The unified entry point: ``repro.connect()``.

One call stands up (or attaches to) the cross-facility ecosystem and
hands back a :class:`Session` that exposes every surface a scientist on
the analysis host needs::

    import repro

    with repro.connect() as session:           # build a simulated ICE
        session.fill_cell(5.0)
        trace = session.run_cv()
        print(session.analyze(trace).format_summary())
        print(session.metrics.format_table())  # observability built in

    with repro.connect(ice) as session:        # attach to a running ICE
        result = session.run_workflow()        # paper tasks A-E, traced

Observability is on by default: unless a ``tracer``/``metrics`` pair is
injected, the session creates its own and wires them through the client,
the data-channel mount, the workflow engine and — when the ecosystem is
in-process — the daemons and simulated network, so a single run yields
one connected trace from workflow task down to instrument command.

``connect`` accepts three targets:

- ``None``: build a fresh simulated :class:`ElectrochemistryICE` (the
  session owns it and shuts it down on :meth:`Session.close`);
- a running :class:`ElectrochemistryICE` (caller keeps ownership);
- a ``PYRO:`` URI string for a real TCP control agent (two-machine
  mode); the data channel needs ``data_uri`` in that case.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any

from repro.core.config import (
    SessionConfig,
    TransportConfig,
    merge_legacy_kwargs,
)
from repro.errors import WorkflowError
from repro.obs import JsonlSpanExporter, MetricsRegistry, Tracer
from repro.obs.analysis import TraceIndex, TraceSampler
from repro.obs.health import HealthEngine, HealthReport
from repro.obs.health import require_healthy as _gate_healthy
from repro.obs.baseline import BaselineStore
from repro.obs.recorder import (
    FlightRecorder,
    FlightRecorderServer,
    is_daemon_side_span,
)
from repro.obs.scrape import ObsAggregator, ObservabilityServer, format_top
from repro.obs.slo import SLOEngine, default_objectives
from repro.obs.stream import SessionStream, TelemetryBus, TelemetryServer
from repro.obs.timeseries import (
    SCHEMA as TSDB_SCHEMA,
    TimeSeriesStore,
    is_daemon_side_metric,
)
from repro.chemistry.voltammogram import Voltammogram
from repro.analysis.metrics import CVMetrics, characterize
from repro.ml.normality import NormalityClassifier, NormalityReport
from repro.facility.client import ACLPyroClient
from repro.facility.ice import ElectrochemistryICE
from repro.facility.workstation import PORT_CELL, PORT_COLLECTOR


class Session:
    """Everything the remote scientist holds: client, data channel,
    workflow builder, metrics, and the notebook verbs.

    Build via :func:`connect`; attributes of note:

    Attributes:
        client: control-channel :class:`ACLPyroClient` (resilient by
            default — reconnect/retry with idempotent replay).
        datachannel: mounted measurement share
            (:class:`~repro.datachannel.mount.Mount`); ``None`` when
            connected by URI without a ``data_uri``.
        tracer: the session :class:`~repro.obs.Tracer`.
        metrics: the session :class:`~repro.obs.MetricsRegistry`.
        recorder: the client-half :class:`~repro.obs.FlightRecorder`.
        bus: the client-half :class:`~repro.obs.TelemetryBus` feeding
            :meth:`stream` (DGX-side spans, metric deltas, health
            transitions; the ACL half streams through ``Telemetry_Poll``).
        health_engine: the session :class:`~repro.obs.HealthEngine`
            behind :meth:`health`.
        trace_index: the bounded :class:`~repro.obs.analysis.TraceIndex`
            behind :meth:`traces` / :meth:`explain` (always on).
        sampler: the tail-based
            :class:`~repro.obs.analysis.TraceSampler`, or ``None``
            unless ``SessionConfig(trace_sample_budget=...)`` is set.
        flight_dir: where black-box dumps land (override per call or via
            the ``flight_dir=`` connect argument).
        ice: the in-process ecosystem, when there is one.
        lease_epoch: fencing epoch held after :meth:`reattach`; None
            until a lease is taken.
        transport_config: the :class:`~repro.core.config.TransportConfig`
            this session dialled with.
        session_config: the :class:`~repro.core.config.SessionConfig`
            governing resilience, gating, profiling and journaling
            defaults.
    """

    def __init__(
        self,
        target: ElectrochemistryICE | str | None = None,
        *,
        transport: TransportConfig | None = None,
        session: SessionConfig | None = None,
        resilient: bool | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        classifier: NormalityClassifier | None = None,
        config: Any = None,
        data_uri: str | None = None,
        cache_dir: str | Path | None = None,
        flight_dir: str | Path | None = None,
        health_window_s: float | None = None,
        breaker: Any = None,
    ):
        self.transport_config = (
            transport if transport is not None else TransportConfig()
        )
        self.session_config = merge_legacy_kwargs(
            session, resilient=resilient, health_window_s=health_window_s
        )
        self._owns_ice = False
        self.ice: ElectrochemistryICE | None = None
        self.tracer = tracer if tracer is not None else Tracer("dgx-session")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._classifier = classifier
        self._sp200_ready = False
        self._jkem_ready = False
        self._characterization = None
        self._gateway_client = None
        self.lease_epoch: int | None = None
        # client-half black box: DGX-side spans (the daemon half records
        # its own via the ICE) plus the session's metric snapshots
        self.recorder = FlightRecorder("dgx-session", clock=self.tracer.clock)
        self.recorder.attach_tracer(
            self.tracer, only=lambda s: not is_daemon_side_span(s)
        )
        self.recorder.observe_metrics(self.metrics)
        # client-half live feed: DGX-side span completions plus every
        # metric write; the daemon half streams its own spans/events and
        # session.stream() merges the two (the split mirrors the
        # recorder's, so no event ever appears on both halves)
        self.bus = TelemetryBus(
            "dgx-session", clock=self.tracer.clock, metrics=self.metrics
        )
        self.bus.attach_tracer(
            self.tracer, only=lambda s: not is_daemon_side_span(s)
        )
        self.bus.observe_metrics(self.metrics)
        # session-half time-series rollups: the DGX slice of the shared
        # registry (an in-process ICE's store takes the daemon slice),
        # scrapeable via Session.scrape() and merged by Session.top()
        self.timeseries = TimeSeriesStore(clock=self.tracer.clock)
        self.timeseries.attach(
            self.metrics, only=lambda name: not is_daemon_side_metric(name)
        )
        self.slo_engine = SLOEngine(
            self.timeseries,
            clock=self.tracer.clock,
            bus=self.bus,
            metrics=self.metrics,
        )
        for objective in default_objectives():
            self.slo_engine.add(objective)
        # tail sampling + per-trace analytics. Order matters on the single
        # exporter slot: the recorder/bus chain attached above becomes the
        # sampler's *gated* downstream (dropped traces never reach the
        # black box or live feed), while the TraceIndex attaches after the
        # sampler took the slot, so it indexes every finished span
        # regardless of verdicts — explain() must never miss a trace.
        self.sampler: TraceSampler | None = None
        if self.session_config.trace_sample_budget is not None:
            self.sampler = TraceSampler(
                budget=self.session_config.trace_sample_budget,
                slow_threshold_s=self.session_config.trace_slow_threshold_s,
                breach=lambda root: bool(self.slo_engine.active_alerts()),
                metrics=self.metrics,
            )
            self.sampler.attach(self.tracer)
            self.slo_engine.attach_sampler(self.sampler)
        self.trace_index = TraceIndex(
            clock=self.tracer.clock, metrics=self.metrics
        )
        self.trace_index.attach(self.tracer)
        self._aggregator: ObsAggregator | None = None

        self._control_uri: str | None = None
        if target is None:
            self.ice = ElectrochemistryICE.build(config)
            self._owns_ice = True
        elif isinstance(target, ElectrochemistryICE):
            self.ice = target
        elif isinstance(target, str):
            self._control_uri = target
            if config is not None:
                raise WorkflowError("config is only valid when building an ICE")
        else:
            raise WorkflowError(
                f"connect() target must be an ICE, a PYRO: URI or None, "
                f"not {target!r}"
            )

        if self.ice is not None:
            # one tracer on both "facilities": daemon dispatch spans land
            # in the same store as the client's call spans
            self.ice.attach_observability(self.tracer, self.metrics)
            self.client = self.ice.client(
                timeout=self.transport_config.timeout,
                resilient=self.session_config.resilient,
                breaker=breaker,
                tracer=self.tracer,
                metrics=self.metrics,
                max_inflight=self.transport_config.max_inflight,
                binary=self.transport_config.binary,
            )
            self._cache = Path(
                cache_dir
                if cache_dir is not None
                else tempfile.mkdtemp(prefix="session-cache-")
            )
            self.datachannel = self.ice.mount(
                cache_dir=self._cache,
                tracer=self.tracer,
                metrics=self.metrics,
                pipeline_depth=self.transport_config.pipeline_depth,
                binary=self.transport_config.binary,
            )
        else:
            from repro.resilience import RetryPolicy

            self.client = ACLPyroClient.from_uri(
                target,
                timeout=self.transport_config.timeout,
                secret=self.transport_config.secret,
                retry_policy=(
                    RetryPolicy() if self.session_config.resilient else None
                ),
                breaker=breaker,
                tracer=self.tracer,
                metrics=self.metrics,
                max_inflight=self.transport_config.max_inflight,
                binary=self.transport_config.binary,
            )
            self.datachannel = None
            if data_uri is not None:
                from repro.rpc.proxy import Proxy
                from repro.datachannel.mount import Mount

                self._cache = Path(
                    cache_dir
                    if cache_dir is not None
                    else tempfile.mkdtemp(prefix="session-cache-")
                )
                self.datachannel = Mount(
                    Proxy(
                        data_uri,
                        timeout=self.transport_config.timeout,
                        tracer=self.tracer,
                        metrics=self.metrics,
                        max_inflight=self.transport_config.pipeline_depth,
                        binary=self.transport_config.binary,
                    ),
                    cache_dir=self._cache,
                    metrics=self.metrics,
                )

        if flight_dir is not None:
            self.flight_dir = Path(flight_dir)
        elif getattr(self, "_cache", None) is not None:
            self.flight_dir = Path(self._cache) / "flight-recorder"
        else:
            self.flight_dir = Path(
                tempfile.mkdtemp(prefix="session-flightrec-")
            )
        # a breaker trip is one of the automatic black-box triggers:
        # hook on_open of whichever breaker guards the control channel
        self._hook_breaker_dump()
        # baseline the health window only after the channels are up, so
        # connection-time traffic does not count against the first verdict
        self.health_engine = HealthEngine(
            self.metrics,
            clock=self.tracer.clock,
            window_s=self.session_config.health_window_s,
            bus=self.bus,
        )
        # burn-rate alerts surface as the "slo" subsystem, so
        # require_healthy= gates and flight-recorder dumps see them
        self.slo_engine.attach_health(self.health_engine)

    def _hook_breaker_dump(self) -> None:
        from repro.resilience import ResilientProxy

        proxy = getattr(self.client, "_proxy", None)
        guard = proxy.breaker if isinstance(proxy, ResilientProxy) else None
        if guard is not None and getattr(guard, "on_open", None) is None:
            guard.on_open = lambda b: self.dump_flight(
                f"breaker-open-{b.name}"
            )

    # -- back-compat alias (RemoteSession called it ``mount``) -------------
    @property
    def mount(self):
        return self.datachannel

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Tear down both channels; shut the ICE down if this session
        built it."""
        try:
            if self._sp200_ready:
                self.client.call_Disconnect_SP200()
        finally:
            if self.sampler is not None:
                self.sampler.flush()
            self.bus.detach()
            self.timeseries.close()
            if self.datachannel is not None:
                self.datachannel.unmount()
            self.client.close()
            if self._gateway_client is not None:
                self._gateway_client.close()
            if self._characterization is not None:
                self._characterization.close()
            if self._owns_ice and self.ice is not None:
                self.ice.shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def reattach(
        self,
        resource: str = "acl-workstation",
        holder: str = "dgx-session",
    ) -> int:
        """Take over the control channel under a fresh fencing epoch.

        Acquires (bumps) the lease epoch for ``resource`` on the control
        daemon's durable :class:`~repro.durability.LeaseRegistry` and
        stamps the new token on every subsequent call this session makes.
        Any *older* session still holding the previous epoch is fenced:
        its next call fails with ``LEASE_FENCED`` before touching an
        instrument — the split-brain guard for a client that restarts
        after a crash while its predecessor might still be alive.

        Returns the epoch now held (also on :attr:`lease_epoch`).
        """
        epoch = self._acquire_lease_epoch(resource, holder)
        self.client.set_lease(resource, epoch)
        self.lease_epoch = epoch
        # instrument init state is unknown after a takeover; re-init lazily
        self._sp200_ready = False
        self._jkem_ready = False
        self.metrics.counter(
            "recovery.reattaches_total", "session lease takeovers"
        ).inc(resource=resource)
        return epoch

    def _acquire_lease_epoch(self, resource: str, holder: str) -> int:
        if self.ice is not None:
            proxy = self.ice.lease_client()
        else:
            uri = self._remote_lease_uri()
            if uri is None:
                raise WorkflowError(
                    "reattach() needs an in-process ICE or a control URI"
                )
            from repro.rpc.proxy import Proxy

            proxy = Proxy(uri, timeout=10.0)
        try:
            return int(proxy.Lease_Acquire(resource, holder))
        finally:
            proxy.close()

    def _remote_lease_uri(self) -> str | None:
        """Lease URI next to the control object (URI mode only)."""
        uri = self._control_uri
        if not uri or "@" not in uri:
            return None
        from repro.durability import LeaseServer

        return f"PYRO:{LeaseServer.OBJECT_ID}@{uri.split('@', 1)[1]}"

    # -- workflows -----------------------------------------------------------
    def workflow(
        self,
        settings: Any = None,
        classifier: NormalityClassifier | None = None,
        require_healthy: bool | None = None,
        flight_dir: str | Path | None = None,
    ):
        """Build the paper's five-task CV workflow, observability wired.

        ``require_healthy=True`` evaluates :meth:`health` first and
        raises :class:`~repro.errors.HealthGateError` on ``unhealthy``
        (the pre-flight gate); None defers to the session's
        :class:`~repro.core.config.SessionConfig`. A safe-state teardown
        of the built workflow dumps the session's flight recorder
        automatically.
        """
        from repro.core.cv_workflow import build_cv_workflow

        if self.ice is None:
            raise WorkflowError(
                "workflow() needs an in-process ICE; connect() was given a URI"
            )
        if require_healthy is None:
            require_healthy = self.session_config.require_healthy
        if require_healthy:
            _gate_healthy(self.health_engine, what="workflow")
        return build_cv_workflow(
            self.ice,
            settings=settings,
            classifier=classifier if classifier is not None else self._classifier,
            tracer=self.tracer,
            metrics=self.metrics,
            flight_recorder=self.recorder,
            flight_dir=flight_dir if flight_dir is not None else self.flight_dir,
        )

    def run_workflow(
        self,
        settings: Any = None,
        classifier=None,
        require_healthy: bool | None = None,
        flight_dir: str | Path | None = None,
        profile: bool | None = None,
    ):
        """Build + run + package the CV workflow (tasks A-E).

        ``profile=True`` attaches a
        :class:`~repro.obs.profiler.SpanProfiler` for the run; the
        ``repro-profile-1`` document lands on ``result.profile``. Both
        ``require_healthy`` and ``profile`` default (None) to the
        session's :class:`~repro.core.config.SessionConfig`.
        """
        from repro.core.cv_workflow import run_cv_workflow

        if self.ice is None:
            raise WorkflowError(
                "run_workflow() needs an in-process ICE; connect() was given a URI"
            )
        if require_healthy is None:
            require_healthy = self.session_config.require_healthy
        if profile is None:
            profile = self.session_config.profile
        if require_healthy:
            _gate_healthy(self.health_engine, what="workflow")
        return run_cv_workflow(
            self.ice,
            settings=settings,
            classifier=classifier if classifier is not None else self._classifier,
            tracer=self.tracer,
            metrics=self.metrics,
            flight_recorder=self.recorder,
            flight_dir=flight_dir if flight_dir is not None else self.flight_dir,
            profile=profile,
        )

    def campaign(self, strategy, **kwargs: Any):
        """Build a closed-loop :class:`~repro.core.campaign.Campaign`.

        The campaign inherits this session's wiring — ICE, classifier,
        health engine, flight recorder and dump directory — plus the
        :class:`~repro.core.config.SessionConfig` defaults for
        ``require_healthy``, ``profile`` and ``journal_dir``. Any
        keyword argument overrides the inherited value::

            session = repro.connect(
                session=SessionConfig(journal_dir="runs/c1")
            )
            rounds = session.campaign(scan_rate_strategy(...)).run()
        """
        from repro.core.campaign import Campaign

        if self.ice is None:
            raise WorkflowError(
                "campaign() needs an in-process ICE; connect() was given a URI"
            )
        build = dict(
            classifier=self._classifier,
            require_healthy=self.session_config.require_healthy,
            health_engine=self.health_engine,
            flight_recorder=self.recorder,
            flight_dir=self.flight_dir,
            profile=self.session_config.profile,
            journal_dir=self.session_config.journal_dir,
        )
        build.update(kwargs)
        return Campaign(ice=self.ice, strategy=strategy, **build)

    # -- multi-tenant gateway --------------------------------------------------
    def use_gateway(
        self,
        target: Any,
        tenant: str,
        api_key: str,
        *,
        timeout: float | None = None,
        secret: bytes | None = None,
    ):
        """Attach this session to a facility gateway as one tenant.

        ``target`` is a :class:`~repro.gateway.Gateway` object
        (in-process) or a ``PYRO:ACL_Gateway@host:port`` URI. After
        this, :meth:`submit_job` / :meth:`job_status` /
        :meth:`cancel_job` / :meth:`poll_jobs` go through the gateway's
        queue under this tenant's identity, quota and fair share.
        Returns the underlying :class:`~repro.gateway.GatewayClient`.
        """
        from repro.gateway.client import GatewayClient

        if self._gateway_client is not None:
            self._gateway_client.close()
        self._gateway_client = GatewayClient(
            target,
            tenant,
            api_key,
            timeout=(
                timeout if timeout is not None else self.transport_config.timeout
            ),
            secret=(
                secret if secret is not None else self.transport_config.secret
            ),
        )
        return self._gateway_client

    def _require_gateway(self):
        if self._gateway_client is None:
            raise WorkflowError(
                "no gateway attached; call session.use_gateway(...) first"
            )
        return self._gateway_client

    def submit_job(
        self,
        strategy: Any,
        max_rounds: int = 10,
        priority: int = 0,
    ) -> dict[str, Any]:
        """Queue a campaign on the attached gateway; returns the job view.

        ``strategy`` is either a strategy carrying a journalable
        ``spec`` attribute (e.g. :func:`~repro.core.campaign.
        scan_rate_strategy`) or the raw spec dict itself — the gateway
        journals the spec and rebuilds the strategy cell-side, so only
        rebuildable strategies can ride through the queue.
        """
        spec = getattr(strategy, "spec", strategy)
        if not isinstance(spec, dict):
            raise WorkflowError(
                "submit_job needs a strategy with a .spec attribute or a "
                f"spec dict, not {strategy!r}"
            )
        return self._require_gateway().submit(
            {"strategy": spec, "max_rounds": max_rounds}, priority=priority
        )

    def job_status(self, job_id: str) -> dict[str, Any]:
        """Current gateway view of one of this tenant's jobs."""
        return self._require_gateway().status(job_id)

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued job now, or a running one at its next round."""
        return self._require_gateway().cancel(job_id)

    def poll_jobs(
        self, cursor: int = 0, max_events: int = 256
    ) -> dict[str, Any]:
        """Cursor-poll this tenant's job lifecycle events
        (``repro-jobs-1``; same cursor/gap contract as telemetry)."""
        return self._require_gateway().poll(cursor=cursor, max_events=max_events)

    # -- observability ---------------------------------------------------------
    def summarize(self) -> dict[str, Any]:
        """Session-wide rollup: span timings and metric values."""
        return {"spans": self.tracer.summarize(), "metrics": self.metrics.summarize()}

    def stream(
        self, capacity: int = 1024, max_remote_events: int = 256
    ) -> SessionStream:
        """Open the merged live telemetry feed (both facility halves).

        Each :meth:`~repro.obs.stream.SessionStream.drain` call returns
        everything new since the last one — DGX-side span completions
        and metric updates from the session bus, ACL-side spans and
        instrument events cursor-polled over the control channel — in
        one time-ordered list. Pull-based: call ``drain()`` at whatever
        cadence the steering loop runs. Remote trouble degrades the feed
        (synthetic ``stream.*`` events, ``obs.stream.dropped_total``)
        instead of hanging it. Close when done (context manager).
        """
        if self.ice is not None:
            remote_fn = self.ice.telemetry_client
        else:
            uri = self._remote_telemetry_uri()
            if uri is None:
                remote_fn = None
            else:

                def remote_fn():
                    from repro.rpc.proxy import Proxy

                    return Proxy(uri, timeout=10.0)

        return SessionStream(
            self.bus,
            remote_client_fn=remote_fn,
            capacity=capacity,
            max_remote_events=max_remote_events,
        )

    def _remote_telemetry_uri(self) -> str | None:
        """Telemetry URI next to the control object (URI mode only)."""
        uri = self._control_uri
        if not uri or "@" not in uri:
            return None
        return f"PYRO:{TelemetryServer.OBJECT_ID}@{uri.split('@', 1)[1]}"

    def _remote_obs_uri(self) -> str | None:
        """Scrape URI next to the control object (URI mode only)."""
        uri = self._control_uri
        if not uri or "@" not in uri:
            return None
        return f"PYRO:{ObservabilityServer.OBJECT_ID}@{uri.split('@', 1)[1]}"

    def slo(self) -> list[dict[str, Any]]:
        """Evaluate every objective now; one status per (objective, tenant).

        Each status carries the SLI and burn rate over the fast and slow
        windows plus the firing alert windows (empty list when healthy).
        Alert *transitions* also land on the telemetry bus as ``slo``
        events and in :meth:`health` as the ``slo`` subsystem.
        """
        return self.slo_engine.evaluate()

    def scrape(
        self,
        cursor: int = 0,
        selectors: dict[str, Any] | None = None,
        max_rows: int = 512,
    ) -> dict[str, Any]:
        """Page rollup rows out of the session-half time-series store.

        Same ``repro-tsdb-1`` reply shape as the daemon's ``Obs_Scrape``
        verb (PROTOCOLS §1.9), so callers can treat the local half
        exactly like a remote facility.
        """
        rows, next_cursor, gap = self.timeseries.scrape(
            cursor, selectors, max_rows
        )
        return {
            "schema": TSDB_SCHEMA,
            "service": "dgx-session",
            "cursor": next_cursor,
            "gap": gap,
            "rows": rows,
        }

    def aggregator(self) -> ObsAggregator:
        """The session's cross-facility scrape aggregator (lazy, cached).

        Sources: the local session-half store, plus the in-process ICE's
        daemon-half store (or the remote ``ACL_Observability`` object in
        URI mode). Cursors persist across :meth:`top` calls, so each
        refresh pulls only what is new.
        """
        if self._aggregator is None:
            agg = ObsAggregator()
            agg.add_store("dgx-session", self.timeseries)
            if self.ice is not None:
                agg.add_remote("acl-daemon", self.ice.obs_client())
            else:
                uri = self._remote_obs_uri()
                if uri is not None:
                    from repro.rpc.proxy import Proxy

                    agg.add_remote("acl-daemon", Proxy(uri, timeout=10.0))
            self._aggregator = agg
        return self._aggregator

    def top(self) -> str:
        """One refresh of the tenant-keyed ops view, rendered as a table.

        Per tenant: call/error rates merged across both facility halves,
        gateway queue depth, worst burn-rate pair and firing SLO alerts.
        The string the ``repro-ice top`` subcommand prints.
        """
        agg = self.aggregator()
        agg.refresh()
        return format_top(agg.view(), self.slo_engine.evaluate())

    def record_baseline(
        self, path: str | Path | None = None, store: BaselineStore | None = None
    ) -> BaselineStore:
        """Freeze this session's span timings as a perf baseline.

        Records :meth:`tracer.summarize` into ``store`` (a fresh one by
        default), optionally saving it to ``path`` as a
        ``repro-baseline-1`` JSON document. Returns the store.
        """
        if store is None:
            store = BaselineStore(clock=self.tracer.clock)
        store.record_baseline(self.tracer.summarize())
        if path is not None:
            store.save(path)
        return store

    def track_baseline(self, store: "BaselineStore | str | Path") -> BaselineStore:
        """Judge future :meth:`health` calls against a perf baseline.

        Accepts a :class:`~repro.obs.baseline.BaselineStore` or a path
        to a saved one; registers the ``perf`` probe on the session's
        health engine and returns the store.
        """
        if not isinstance(store, BaselineStore):
            store = BaselineStore.load(store, clock=self.tracer.clock)
        self.health_engine.track_baseline(store, self.tracer)
        return store

    def health(self) -> HealthReport:
        """Evaluate the health rules now; returns the verdict report."""
        return self.health_engine.evaluate()

    def pull_remote_recorder(self) -> list[dict[str, Any]]:
        """Fetch the daemon half of the black box over the control channel.

        Best-effort by design: when the channel is partitioned (often
        exactly why a dump is happening) the client half must still be
        written, so failures return an empty list instead of raising.
        """
        try:
            if self.ice is not None:
                proxy = self.ice.recorder_client()
            else:
                uri = self._remote_recorder_uri()
                if uri is None:
                    return []
                from repro.rpc.proxy import Proxy

                proxy = Proxy(uri, timeout=10.0)
            try:
                snapshot = proxy.Recorder_Dump()
            finally:
                proxy.close()
        except Exception:  # noqa: BLE001 - dump must survive a dead channel
            return []
        return [snapshot] if isinstance(snapshot, dict) else []

    def _remote_recorder_uri(self) -> str | None:
        """Recorder URI next to the control object (URI mode only)."""
        uri = self._control_uri
        if not uri or "@" not in uri:
            return None
        return f"PYRO:{FlightRecorderServer.OBJECT_ID}@{uri.split('@', 1)[1]}"

    def dump_flight(
        self, trigger: str, directory: str | Path | None = None
    ) -> Path:
        """Write the merged client+daemon black box; returns its path."""
        return self.recorder.dump(
            directory if directory is not None else self.flight_dir,
            trigger=trigger,
            remote_snapshots=self.pull_remote_recorder(),
        )

    def export_trace(self, path: str | Path) -> int:
        """Write every finished span to ``path`` as JSONL; returns count."""
        spans = self.tracer.finished_spans()
        with JsonlSpanExporter(path) as export:
            for span in spans:
                export(span)
        return len(spans)

    def traces(self, **filters: Any) -> list[dict[str, Any]]:
        """Query the session trace index (see :meth:`TraceIndex.query`).

        Filters: ``op=`` (span-name prefix anywhere in the trace),
        ``tenant=``, ``min_duration_s=``, ``error=``, ``limit=``.
        Summaries come back newest first.
        """
        return self.trace_index.query(**filters)

    def explain(self, trace_id: str) -> dict[str, Any] | None:
        """Critical-path blame table for one indexed trace.

        Answers "why was *this* run slow": wall time attributed to the
        innermost blocking span across both facility halves (one shared
        tracer in-process, so daemon dispatch and instrument spans land
        in the same tree). Returns the :func:`~repro.obs.analysis.
        critical_path` document, or None for an unknown trace — render
        with :func:`~repro.obs.analysis.format_blame`.
        """
        return self.trace_index.explain(trace_id)

    # -- liquid handling -------------------------------------------------------
    def _ensure_jkem(self) -> None:
        if not self._jkem_ready:
            self.client.call_Connect_JKem_API()
            self._jkem_ready = True

    def fill_cell(
        self,
        volume_ml: float = 5.0,
        rate_ml_min: float = 5.0,
        vial: str = "BOTTOM",
        purge_sccm: float = 0.0,
    ) -> dict[str, Any]:
        """Tasks B+C: pump solution from the collector vial into the cell."""
        self._ensure_jkem()
        client = self.client
        client.call_Set_Rate_SyringePump(1, rate_ml_min)
        client.call_Set_Vial_FractionCollector(1, vial)
        client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
        client.call_Withdraw_SyringePump(1, volume_ml)
        client.call_Set_Port_SyringePump(1, PORT_CELL)
        client.call_Dispense_SyringePump(1, volume_ml)
        if purge_sccm > 0:
            client.call_Set_Flow_MFC(1, purge_sccm)
        return client.call_Cell_Status()

    def cell_status(self) -> dict[str, Any]:
        return self.client.call_Cell_Status()

    # -- measurement ----------------------------------------------------------
    def _ensure_sp200(self, channel: int) -> None:
        if not self._sp200_ready:
            self.client.call_Initialize_SP200_API({"channel": channel})
            self.client.call_Connect_SP200()
            self.client.call_Load_Firmware_SP200()
            self._sp200_ready = True

    def _collect(self, save_as: str | None) -> Voltammogram:
        self.client.call_Load_Technique_SP200()
        self.client.call_Start_Channel_SP200()
        result = self.client.call_Get_Tech_Path_Rslt(wait=True, save_as=save_as)
        if result["file"] is None:
            raise WorkflowError("no measurement file produced")
        if self.datachannel is None:
            raise WorkflowError(
                "no data channel mounted; pass data_uri= to connect()"
            )
        return self.datachannel.read_voltammogram(result["file"])

    def run_cv(
        self,
        e_begin_v: float = 0.2,
        e_vertex_v: float = 0.8,
        scan_rate_v_s: float = 0.1,
        n_cycles: int = 1,
        e_step_v: float = 0.001,
        channel: int = 1,
        save_as: str | None = None,
    ) -> Voltammogram:
        """Task D: the full 8-step pipeline; returns the fetched trace."""
        self._ensure_sp200(channel)
        self.client.call_Initialize_CV_Tech_SP200(
            {
                "e_begin_v": e_begin_v,
                "e_vertex_v": e_vertex_v,
                "scan_rate_v_s": scan_rate_v_s,
                "n_cycles": n_cycles,
                "e_step_v": e_step_v,
            }
        )
        return self._collect(save_as)

    def run_lsv(
        self,
        e_begin_v: float = 0.2,
        e_end_v: float = 0.8,
        scan_rate_v_s: float = 0.1,
        e_step_v: float = 0.001,
        channel: int = 1,
        save_as: str | None = None,
    ) -> Voltammogram:
        """A single linear sweep through the same remote pipeline."""
        self._ensure_sp200(channel)
        self.client.call_Initialize_LSV_Tech_SP200(
            {
                "e_begin_v": e_begin_v,
                "e_end_v": e_end_v,
                "scan_rate_v_s": scan_rate_v_s,
                "e_step_v": e_step_v,
            }
        )
        return self._collect(save_as)

    def run_dpv(
        self,
        e_begin_v: float = 0.2,
        e_end_v: float = 0.8,
        step_e_v: float = 0.005,
        pulse_amplitude_v: float = 0.05,
        channel: int = 1,
        save_as: str | None = None,
    ) -> Voltammogram:
        """Differential pulse voltammetry through the remote pipeline."""
        self._ensure_sp200(channel)
        self.client.call_Initialize_DPV_Tech_SP200(
            {
                "e_begin_v": e_begin_v,
                "e_end_v": e_end_v,
                "step_e_v": step_e_v,
                "pulse_amplitude_v": pulse_amplitude_v,
            }
        )
        return self._collect(save_as)

    # -- characterization station (fraction -> robot -> HPLC-MS) -----------
    @property
    def characterization(self):
        """Lazy client to the characterization control agent."""
        if self._characterization is None:
            if self.ice is None:
                raise WorkflowError(
                    "characterization needs an in-process ICE"
                )
            self._characterization = self.ice.characterization_client()
        return self._characterization

    def collect_fraction(
        self,
        volume_ml: float = 1.0,
        vial_position: str = "TOP",
    ) -> str:
        """Pull a fraction from the cell into a fresh collector vial."""
        self._ensure_jkem()
        reply = self.characterization.call_Load_Fraction_Vial(vial_position)
        self.client.call_Set_Vial_FractionCollector(1, vial_position)
        self.client.call_Set_Port_SyringePump(1, PORT_CELL)
        self.client.call_Withdraw_SyringePump(1, volume_ml)
        self.client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
        self.client.call_Dispense_SyringePump(1, volume_ml)
        return reply  # "OK <vial-name>"

    def analyze_fraction(
        self,
        vial_position: str = "TOP",
        injection_volume_ml: float = 0.5,
    ):
        """Robot-transfer the fraction to the HPLC-MS and inject it."""
        from repro.facility.characterization import (
            STATION_ELECTROCHEM,
            STATION_HPLC,
        )
        from repro.instruments.characterization.chromatogram import Chromatogram

        station = self.characterization
        station.call_Handoff_Fraction_To_Robot(vial_position)
        station.call_Robot_Transfer(STATION_ELECTROCHEM, STATION_HPLC)
        payload = station.call_Inject_HPLC(injection_volume_ml)
        return Chromatogram.from_dict(payload)

    # -- analysis ------------------------------------------------------------
    def analyze(self, trace: Voltammogram) -> CVMetrics:
        """Peak analysis of a fetched trace."""
        return characterize(trace)

    def check_normality(self, trace: Voltammogram) -> NormalityReport:
        """ML screen; trains the default classifier on first use."""
        if self._classifier is None:
            self._classifier = NormalityClassifier.train_default()
        return self._classifier.classify(trace)


def connect(
    target: ElectrochemistryICE | str | None = None,
    *,
    transport: TransportConfig | None = None,
    session: SessionConfig | None = None,
    resilient: bool | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    classifier: NormalityClassifier | None = None,
    config: Any = None,
    data_uri: str | None = None,
    cache_dir: str | Path | None = None,
    flight_dir: str | Path | None = None,
    health_window_s: float | None = None,
    breaker: Any = None,
) -> Session:
    """Open a :class:`Session` against an ICE, a URI, or a fresh build.

    Args:
        target: ``None`` (build a simulated ecosystem, owned by the
            session), a running :class:`ElectrochemistryICE`, or a
            ``PYRO:`` control-channel URI.
        transport: :class:`~repro.core.config.TransportConfig` — call
            timeout, control-channel pipelining window, data-channel
            read-ahead depth, binary wire negotiation policy. Defaults
            to ``TransportConfig()``.
        session: :class:`~repro.core.config.SessionConfig` — resilience,
            the pre-flight health gate, profiling, durable campaign
            journaling, the health window. Defaults to
            ``SessionConfig()``.
        resilient: deprecated; pass
            ``session=SessionConfig(resilient=...)`` instead.
        tracer: share an existing :class:`~repro.obs.Tracer`; a fresh
            one is created otherwise.
        metrics: share an existing :class:`~repro.obs.MetricsRegistry`;
            a fresh one is created otherwise.
        classifier: pre-trained normality classifier for
            :meth:`Session.check_normality` and workflows.
        config: :class:`~repro.facility.ice.ICEConfig` for the
            ``target=None`` build.
        data_uri: share URI for the data channel in URI mode.
        cache_dir: local cache for fetched measurement files.
        flight_dir: where flight-recorder black boxes are written
            (defaults to ``<cache_dir>/flight-recorder``).
        health_window_s: deprecated; pass
            ``session=SessionConfig(health_window_s=...)`` instead.
        breaker: share a :class:`~repro.resilience.CircuitBreaker` for
            the control channel; its trips dump a flight recording.
    """
    return Session(
        target,
        transport=transport,
        session=session,
        resilient=resilient,
        tracer=tracer,
        metrics=metrics,
        classifier=classifier,
        config=config,
        data_uri=data_uri,
        cache_dir=cache_dir,
        flight_dir=flight_dir,
        health_window_s=health_window_s,
        breaker=breaker,
    )
