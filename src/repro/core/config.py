"""Typed configuration objects for :func:`repro.connect`.

The session surface grew one keyword at a time — ``resilient=`` here,
``pipeline_depth=`` there, ``require_healthy=``/``profile=`` on every
workflow call — until dialling a tuned session meant threading half a
dozen loose kwargs through three layers. These two dataclasses collapse
that sprawl:

- :class:`TransportConfig` — everything about *how bytes move*: call
  timeout, control-channel pipelining window, data-channel read-ahead
  depth, binary wire-format negotiation policy, the HMAC secret;
- :class:`SessionConfig` — everything about *how the session behaves*:
  resilience, the health gate, profiling, durable campaign journaling,
  the health-rule window.

Both are frozen: a config captures a policy, not mutable state, so one
object can be shared across many ``connect()`` calls (a notebook, a
fleet of sessions, a test fixture) without aliasing surprises.

Example::

    import repro
    from repro.core.config import TransportConfig, SessionConfig

    transport = TransportConfig(pipeline_depth=8, binary="auto")
    policy = SessionConfig(resilient=True, require_healthy=True)
    with repro.connect(transport=transport, session=policy) as s:
        s.run_workflow()           # health-gated per the SessionConfig

The legacy loose kwargs (``resilient=``, ``health_window_s=``) still
work but emit :class:`DeprecationWarning`; they are mapped onto a
config object internally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import WorkflowError

_BINARY_CHOICES = (True, False, "auto")


@dataclass(frozen=True)
class TransportConfig:
    """How the session's control and data channels move bytes.

    Attributes:
        timeout: per-call deadline in seconds (both channels).
        max_inflight: control-channel pipelining window — how many
            requests the control proxy may have in flight at once
            (PROTOCOLS §1.4). 1 = classic lockstep request/reply.
        pipeline_depth: data-channel read-ahead depth — how many
            ``read_chunk`` requests a mount keeps in flight during bulk
            reads. 1 = one WAN round trip per chunk.
        binary: wire-format negotiation policy (PROTOCOLS §1.7).
            ``"auto"`` negotiates binary bulk framing with v2 peers and
            falls back to JSON against old daemons; ``False`` pins the
            JSON v1 wire; ``True`` requires v2 and raises
            :class:`~repro.errors.ProtocolError` against a JSON-only
            peer.
        secret: HMAC challenge-response secret for URI-mode connects
            (in-process ICEs supply their own from ``ICEConfig``).
    """

    timeout: float | None = 120.0
    max_inflight: int = 1
    pipeline_depth: int = 1
    binary: bool | str = "auto"
    secret: bytes | None = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise WorkflowError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.pipeline_depth < 1:
            raise WorkflowError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.binary not in _BINARY_CHOICES:
            raise WorkflowError(
                f"binary must be True, False or 'auto', got {self.binary!r}"
            )


@dataclass(frozen=True)
class SessionConfig:
    """Session behaviour: resilience, gating, profiling, durability.

    Attributes:
        resilient: route control calls through a
            :class:`~repro.resilience.ResilientProxy` (reconnect +
            retry with idempotent replay). On by default.
        require_healthy: default for the pre-flight health gate on
            :meth:`~repro.core.facade.Session.workflow`,
            :meth:`~repro.core.facade.Session.run_workflow` and
            :meth:`~repro.core.facade.Session.campaign` — individual
            calls can still override it.
        profile: default for span profiling on
            :meth:`~repro.core.facade.Session.run_workflow` and
            :meth:`~repro.core.facade.Session.campaign`.
        journal_dir: durable-execution journal directory handed to
            campaigns built via
            :meth:`~repro.core.facade.Session.campaign`; None runs
            campaigns in memory only.
        health_window_s: rolling window for the session health engine.
        trace_sample_budget: tail-based trace sampling budget — the
            per-tenant fraction of *normal* traces kept by the
            :class:`~repro.obs.analysis.TraceSampler` (error, slow and
            SLO-breaching traces are always kept). ``None`` (default)
            disables tail sampling: every finished span reaches the
            exporters, as before.
        trace_slow_threshold_s: root-span duration at which a trace
            counts as slow for the tail sampler's keep-always rule.
    """

    resilient: bool = True
    require_healthy: bool = False
    profile: bool = False
    journal_dir: str | Path | None = None
    health_window_s: float = 300.0
    trace_sample_budget: float | None = None
    trace_slow_threshold_s: float = 30.0

    def __post_init__(self) -> None:
        if self.health_window_s <= 0:
            raise WorkflowError(
                f"health_window_s must be > 0, got {self.health_window_s}"
            )
        if self.trace_sample_budget is not None and not (
            0.0 <= self.trace_sample_budget <= 1.0
        ):
            raise WorkflowError(
                "trace_sample_budget must be in [0, 1], got "
                f"{self.trace_sample_budget}"
            )
        if self.trace_slow_threshold_s <= 0:
            raise WorkflowError(
                "trace_slow_threshold_s must be > 0, got "
                f"{self.trace_slow_threshold_s}"
            )


def merge_legacy_kwargs(
    session: SessionConfig | None,
    *,
    warn: bool = True,
    **legacy: object,
) -> SessionConfig:
    """Fold deprecated loose kwargs into a :class:`SessionConfig`.

    ``connect()`` calls this with whatever legacy keywords the caller
    passed (``resilient=``, ``health_window_s=``); each one set emits a
    :class:`DeprecationWarning` naming its replacement field. Passing a
    legacy kwarg *and* an explicit ``session=`` config that disagree is
    an error — silently preferring either would hide a bug at the call
    site.
    """
    import warnings

    provided = {k: v for k, v in legacy.items() if v is not None}
    base = session if session is not None else SessionConfig()
    if not provided:
        return base
    for name in provided:
        if name not in ("resilient", "health_window_s"):
            raise TypeError(f"unknown legacy session kwarg {name!r}")
        if warn:
            warnings.warn(
                f"connect({name}=...) is deprecated; pass "
                f"session=SessionConfig({name}=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
    if session is not None:
        conflicts = [
            name
            for name, value in provided.items()
            if getattr(session, name) != value
        ]
        if conflicts:
            raise WorkflowError(
                "conflicting session configuration: "
                + ", ".join(
                    f"{n}= disagrees with session.{n}" for n in conflicts
                )
            )
        return session
    return replace(base, **provided)
