"""Workflow orchestration: the paper's primary contribution.

- :mod:`~repro.core.workflow` — a small dependency-aware task engine with
  retries and an event transcript (what the Jupyter notebook does by hand,
  made explicit and testable);
- :mod:`~repro.core.cv_workflow` — the paper's five-task cyclic-voltammetry
  workflow (A: establish Pyro communications, B: configure J-Kem, C: fill
  the cell, D: run the CV technique and collect measurements, E: tear
  down), including the post-run analysis and ML normality check;
- :mod:`~repro.core.campaign` — multi-round adaptive experiments: the
  real-time steering loop the ICE exists to enable;
- :mod:`~repro.core.facade` — the :func:`repro.connect` session facade
  (the sole notebook entry point);
- :mod:`~repro.core.config` — :class:`~repro.core.config.TransportConfig`
  and :class:`~repro.core.config.SessionConfig` for ``connect()``.
"""

from repro.core.workflow import Task, TaskResult, TaskState, Workflow, WorkflowResult
from repro.core.cv_workflow import (
    CVWorkflowSettings,
    CVWorkflowResult,
    build_cv_workflow,
    run_cv_workflow,
)
from repro.core.campaign import (
    Campaign,
    CampaignRound,
    FleetCampaign,
    FleetCellResult,
    scan_rate_strategy,
    window_centering_strategy,
    kinetics_targeting_strategy,
)
from repro.core.characterization_workflow import (
    CharacterizationSettings,
    CharacterizationResult,
    build_characterization_workflow,
    run_characterization_workflow,
)
from repro.core.config import SessionConfig, TransportConfig
from repro.core.streaming import LiveMonitor, MonitorOutcome, compliance_guard
from repro.core.provenance import (
    capture_provenance,
    verify_artifacts,
    write_provenance,
)

__all__ = [
    "Task",
    "TaskResult",
    "TaskState",
    "Workflow",
    "WorkflowResult",
    "CVWorkflowSettings",
    "CVWorkflowResult",
    "build_cv_workflow",
    "run_cv_workflow",
    "Campaign",
    "CampaignRound",
    "FleetCampaign",
    "FleetCellResult",
    "scan_rate_strategy",
    "window_centering_strategy",
    "kinetics_targeting_strategy",
    "CharacterizationSettings",
    "CharacterizationResult",
    "build_characterization_workflow",
    "run_characterization_workflow",
    "SessionConfig",
    "TransportConfig",
    "LiveMonitor",
    "MonitorOutcome",
    "compliance_guard",
    "capture_provenance",
    "write_provenance",
    "verify_artifacts",
]
