"""Notebook-style facade: what a scientist types on the DGX.

The paper composes the workflow interactively in Jupyter; this class is
that ergonomic layer over the client + mount pair, with the boilerplate
(ports, 8-step pipeline, file fetch) folded into three verbs::

    with RemoteSession(ice) as session:
        session.fill_cell(volume_ml=5.0)
        trace = session.run_cv(scan_rate_v_s=0.1)
        print(session.analyze(trace).format_summary())
        print(session.check_normality(trace))
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any

from repro.errors import WorkflowError
from repro.chemistry.voltammogram import Voltammogram
from repro.analysis.metrics import CVMetrics, characterize
from repro.ml.normality import NormalityClassifier, NormalityReport
from repro.facility.ice import ElectrochemistryICE
from repro.facility.workstation import PORT_CELL, PORT_COLLECTOR


class RemoteSession:
    """Interactive handle to a running ICE from the analysis host.

    Args:
        ice: the ecosystem.
        classifier: optional pre-trained normality classifier; one is
            trained on demand by :meth:`check_normality` otherwise.
    """

    def __init__(
        self,
        ice: ElectrochemistryICE,
        classifier: NormalityClassifier | None = None,
    ):
        self.ice = ice
        self.client = ice.client()
        self.client.call_Connect_JKem_API()
        self._cache = Path(tempfile.mkdtemp(prefix="session-cache-"))
        self.mount = ice.mount(cache_dir=self._cache)
        self._classifier = classifier
        self._sp200_ready = False
        self._characterization = None

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Tear down both channels (workflow task E)."""
        try:
            if self._sp200_ready:
                self.client.call_Disconnect_SP200()
        finally:
            self.mount.unmount()
            self.client.close()
            if self._characterization is not None:
                self._characterization.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- liquid handling -------------------------------------------------------
    def fill_cell(
        self,
        volume_ml: float = 5.0,
        rate_ml_min: float = 5.0,
        vial: str = "BOTTOM",
        purge_sccm: float = 0.0,
    ) -> dict[str, Any]:
        """Tasks B+C: pump solution from the collector vial into the cell."""
        client = self.client
        client.call_Set_Rate_SyringePump(1, rate_ml_min)
        client.call_Set_Vial_FractionCollector(1, vial)
        client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
        client.call_Withdraw_SyringePump(1, volume_ml)
        client.call_Set_Port_SyringePump(1, PORT_CELL)
        client.call_Dispense_SyringePump(1, volume_ml)
        if purge_sccm > 0:
            client.call_Set_Flow_MFC(1, purge_sccm)
        return client.call_Cell_Status()

    def cell_status(self) -> dict[str, Any]:
        return self.client.call_Cell_Status()

    # -- measurement ----------------------------------------------------------
    def _ensure_sp200(self, channel: int) -> None:
        if not self._sp200_ready:
            self.client.call_Initialize_SP200_API({"channel": channel})
            self.client.call_Connect_SP200()
            self.client.call_Load_Firmware_SP200()
            self._sp200_ready = True

    def run_cv(
        self,
        e_begin_v: float = 0.2,
        e_vertex_v: float = 0.8,
        scan_rate_v_s: float = 0.1,
        n_cycles: int = 1,
        e_step_v: float = 0.001,
        channel: int = 1,
        save_as: str | None = None,
    ) -> Voltammogram:
        """Task D: the full 8-step pipeline; returns the fetched trace."""
        self._ensure_sp200(channel)
        self.client.call_Initialize_CV_Tech_SP200(
            {
                "e_begin_v": e_begin_v,
                "e_vertex_v": e_vertex_v,
                "scan_rate_v_s": scan_rate_v_s,
                "n_cycles": n_cycles,
                "e_step_v": e_step_v,
            }
        )
        self.client.call_Load_Technique_SP200()
        self.client.call_Start_Channel_SP200()
        result = self.client.call_Get_Tech_Path_Rslt(wait=True, save_as=save_as)
        if result["file"] is None:
            raise WorkflowError("no measurement file produced")
        return self.mount.read_voltammogram(result["file"])

    def run_lsv(
        self,
        e_begin_v: float = 0.2,
        e_end_v: float = 0.8,
        scan_rate_v_s: float = 0.1,
        e_step_v: float = 0.001,
        channel: int = 1,
        save_as: str | None = None,
    ) -> Voltammogram:
        """A single linear sweep through the same remote pipeline."""
        self._ensure_sp200(channel)
        self.client.call_Initialize_LSV_Tech_SP200(
            {
                "e_begin_v": e_begin_v,
                "e_end_v": e_end_v,
                "scan_rate_v_s": scan_rate_v_s,
                "e_step_v": e_step_v,
            }
        )
        self.client.call_Load_Technique_SP200()
        self.client.call_Start_Channel_SP200()
        result = self.client.call_Get_Tech_Path_Rslt(wait=True, save_as=save_as)
        if result["file"] is None:
            raise WorkflowError("no measurement file produced")
        return self.mount.read_voltammogram(result["file"])

    def run_dpv(
        self,
        e_begin_v: float = 0.2,
        e_end_v: float = 0.8,
        step_e_v: float = 0.005,
        pulse_amplitude_v: float = 0.05,
        channel: int = 1,
        save_as: str | None = None,
    ) -> Voltammogram:
        """Differential pulse voltammetry through the remote pipeline."""
        self._ensure_sp200(channel)
        self.client.call_Initialize_DPV_Tech_SP200(
            {
                "e_begin_v": e_begin_v,
                "e_end_v": e_end_v,
                "step_e_v": step_e_v,
                "pulse_amplitude_v": pulse_amplitude_v,
            }
        )
        self.client.call_Load_Technique_SP200()
        self.client.call_Start_Channel_SP200()
        result = self.client.call_Get_Tech_Path_Rslt(wait=True, save_as=save_as)
        if result["file"] is None:
            raise WorkflowError("no measurement file produced")
        return self.mount.read_voltammogram(result["file"])

    # -- characterization station (fraction -> robot -> HPLC-MS) -----------
    @property
    def characterization(self):
        """Lazy client to the characterization control agent."""
        if self._characterization is None:
            self._characterization = self.ice.characterization_client()
        return self._characterization

    def collect_fraction(
        self,
        volume_ml: float = 1.0,
        vial_position: str = "TOP",
    ) -> str:
        """Pull a fraction from the cell into a fresh collector vial."""
        from repro.facility.workstation import PORT_CELL, PORT_COLLECTOR

        reply = self.characterization.call_Load_Fraction_Vial(vial_position)
        self.client.call_Set_Vial_FractionCollector(1, vial_position)
        self.client.call_Set_Port_SyringePump(1, PORT_CELL)
        self.client.call_Withdraw_SyringePump(1, volume_ml)
        self.client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
        self.client.call_Dispense_SyringePump(1, volume_ml)
        return reply  # "OK <vial-name>"

    def analyze_fraction(
        self,
        vial_position: str = "TOP",
        injection_volume_ml: float = 0.5,
    ):
        """Robot-transfer the fraction to the HPLC-MS and inject it."""
        from repro.facility.characterization import (
            STATION_ELECTROCHEM,
            STATION_HPLC,
        )
        from repro.instruments.characterization.chromatogram import Chromatogram

        station = self.characterization
        station.call_Handoff_Fraction_To_Robot(vial_position)
        station.call_Robot_Transfer(STATION_ELECTROCHEM, STATION_HPLC)
        payload = station.call_Inject_HPLC(injection_volume_ml)
        return Chromatogram.from_dict(payload)

    # -- analysis ------------------------------------------------------------
    def analyze(self, trace: Voltammogram) -> CVMetrics:
        """Peak analysis of a fetched trace."""
        return characterize(trace)

    def check_normality(self, trace: Voltammogram) -> NormalityReport:
        """ML screen; trains the default classifier on first use."""
        if self._classifier is None:
            self._classifier = NormalityClassifier.train_default()
        return self._classifier.classify(trace)
