"""Deprecated notebook facade — superseded by :func:`repro.connect`.

:class:`RemoteSession` predates the unified :class:`repro.core.facade.Session`
and remains as a thin shim so existing notebooks keep running::

    with RemoteSession(ice) as session:          # deprecated
        ...

    with repro.connect(ice) as session:          # the replacement
        ...

The shim preserves the historical behaviour exactly: a plain
(non-resilient) client and an eager J-Kem driver connect. Everything
else — the verbs, analysis helpers, characterization hooks — lives on
the shared :class:`~repro.core.facade.Session` base.
"""

from __future__ import annotations

import warnings

from repro.ml.normality import NormalityClassifier
from repro.facility.ice import ElectrochemistryICE
from repro.core.facade import Session


class RemoteSession(Session):
    """Deprecated alias of :class:`repro.core.facade.Session`.

    .. deprecated::
        Use ``repro.connect(ice)`` instead; it adds resilience and
        observability by default.
    """

    def __init__(
        self,
        ice: ElectrochemistryICE,
        classifier: NormalityClassifier | None = None,
    ):
        warnings.warn(
            "RemoteSession is deprecated; use repro.connect(ice) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(ice, resilient=False, classifier=classifier)
        # historical eager driver connect (Session does this lazily)
        self.client.call_Connect_JKem_API()
        self._jkem_ready = True
