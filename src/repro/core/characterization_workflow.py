"""The extended multi-instrument workflow (paper §5, future work).

"More comprehensive electrochemical workflows are planned that involve
most of ACL instruments" — this module runs one: electrochemically
convert part of the analyte, collect a liquid fraction from the cell,
have the mobile robot carry it to the HPLC-MS, and verify the oxidation
product in the chromatogram. Task names continue the paper's lettering:

    (A) establish communications (both control agents + data mount);
    (B) configure/connect J-Kem;
    (C) fill the electrochemical cell;
    (D) run the electrolysis technique (CA at an oxidising potential);
    (F) collect a fraction into a fresh vial;
    (G) robot-transfer the vial to the HPLC and inject;
    (H) verify the product peak and quantify the conversion;
    (E) tear everything down.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import WorkflowError
from repro.instruments.characterization.chromatogram import Chromatogram
from repro.facility.characterization import STATION_ELECTROCHEM, STATION_HPLC
from repro.facility.ice import ElectrochemistryICE
from repro.facility.workstation import PORT_CELL, PORT_COLLECTOR
from repro.core.workflow import Context, Workflow, WorkflowResult


@dataclass(frozen=True)
class CharacterizationSettings:
    """Knobs of the electrolysis + characterization run."""

    fill_volume_ml: float = 6.0
    pump_rate_ml_min: float = 10.0
    stock_vial: str = "BOTTOM"
    fraction_vial_position: str = "TOP"
    fraction_volume_ml: float = 1.0
    electrolysis_potential_v: float = 0.8
    electrolysis_duration_s: float = 120.0
    electrolysis_dt_s: float = 0.05
    injection_volume_ml: float = 0.5
    channel: int = 1


@dataclass
class CharacterizationResult:
    """What the extended workflow returns."""

    workflow: WorkflowResult
    chromatogram: Chromatogram | None = None
    conversion_ratio: float | None = None  # product / reactant

    @property
    def succeeded(self) -> bool:
        return self.workflow.succeeded

    def summary(self) -> str:
        if not self.succeeded:
            failed = ", ".join(t.name for t in self.workflow.failed_tasks())
            return f"characterization workflow FAILED at: {failed}"
        peaks = (
            [p.compound or "?" for p in self.chromatogram.peaks]
            if self.chromatogram
            else []
        )
        ratio = (
            f"{self.conversion_ratio:.2e}"
            if self.conversion_ratio is not None
            else "n/a"
        )
        return (
            f"fraction analysed; peaks: {peaks}; "
            f"ferrocenium/ferrocene = {ratio}"
        )


def build_characterization_workflow(
    ice: ElectrochemistryICE,
    settings: CharacterizationSettings | None = None,
) -> Workflow:
    """Assemble the extended workflow against a running ICE."""
    settings = settings or CharacterizationSettings()
    flow = Workflow("characterization-workflow", event_log=ice.event_log)

    @flow.task("A_establish_communications", retries=1)
    def task_a(ctx: Context) -> str:
        ctx.client = ice.client()
        ctx.client.ping()
        ctx.characterization = ice.characterization_client()
        ctx.characterization.ping()
        ctx.cache_dir = Path(tempfile.mkdtemp(prefix="dgx-cache-"))
        ctx.mount = ice.mount(cache_dir=ctx.cache_dir)
        return "workstation + characterization agents reachable"

    @flow.task("B_configure_jkem", depends=("A_establish_communications",))
    def task_b(ctx: Context) -> str:
        ctx.client.call_Connect_JKem_API()
        ctx.client.call_Set_Rate_SyringePump(1, settings.pump_rate_ml_min)
        return "J-Kem ready"

    @flow.task("C_fill_cell", depends=("B_configure_jkem",))
    def task_c(ctx: Context) -> dict[str, Any]:
        client = ctx.client
        client.call_Set_Vial_FractionCollector(1, settings.stock_vial)
        client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
        client.call_Withdraw_SyringePump(1, settings.fill_volume_ml)
        client.call_Set_Port_SyringePump(1, PORT_CELL)
        client.call_Dispense_SyringePump(1, settings.fill_volume_ml)
        return client.call_Cell_Status()

    @flow.task("D_electrolyze", depends=("C_fill_cell",))
    def task_d(ctx: Context) -> dict[str, Any]:
        client = ctx.client
        client.call_Initialize_SP200_API({"channel": settings.channel})
        client.call_Connect_SP200()
        client.call_Load_Firmware_SP200()
        client.call_Initialize_CA_Tech_SP200(
            {
                "e_step_to_v": settings.electrolysis_potential_v,
                "duration": settings.electrolysis_duration_s,
                "dt_s": settings.electrolysis_dt_s,
            }
        )
        client.call_Load_Technique_SP200()
        client.call_Start_Channel_SP200()
        return client.call_Get_Tech_Path_Rslt(save_as="electrolysis")

    @flow.task("F_collect_fraction", depends=("D_electrolyze",))
    def task_f(ctx: Context) -> str:
        client = ctx.client
        position = settings.fraction_vial_position
        vial_reply = ctx.characterization.call_Load_Fraction_Vial(position)
        client.call_Set_Vial_FractionCollector(1, position)
        client.call_Set_Port_SyringePump(1, PORT_CELL)
        client.call_Withdraw_SyringePump(1, settings.fraction_volume_ml)
        client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
        client.call_Dispense_SyringePump(1, settings.fraction_volume_ml)
        return vial_reply

    @flow.task("G_transfer_and_inject", depends=("F_collect_fraction",))
    def task_g(ctx: Context) -> dict[str, Any]:
        characterization = ctx.characterization
        characterization.call_Handoff_Fraction_To_Robot(
            settings.fraction_vial_position
        )
        characterization.call_Robot_Transfer(STATION_ELECTROCHEM, STATION_HPLC)
        payload = characterization.call_Inject_HPLC(settings.injection_volume_ml)
        ctx.chromatogram = Chromatogram.from_dict(payload)
        return {"peaks": [p.compound for p in ctx.chromatogram.peaks]}

    @flow.task("H_verify_product", depends=("G_transfer_and_inject",))
    def task_h(ctx: Context) -> dict[str, Any]:
        chromatogram: Chromatogram = ctx.chromatogram
        if chromatogram.peak_for("ferrocene") is None:
            raise WorkflowError("analyte missing from the fraction")
        if chromatogram.peak_for("ferrocenium") is None:
            raise WorkflowError(
                "no oxidation product detected; electrolysis ineffective?"
            )
        ctx.conversion_ratio = chromatogram.amount_ratio(
            "ferrocenium", "ferrocene"
        )
        return {"conversion_ratio": ctx.conversion_ratio}

    @flow.task("E_shutdown", depends=("H_verify_product",))
    def task_e(ctx: Context) -> str:
        ctx.client.call_Exit_JKem_API()
        ctx.client.call_Disconnect_SP200()
        ctx.mount.unmount()
        ctx.client.close()
        ctx.characterization.close()
        return "all agents disconnected"

    return flow


def run_characterization_workflow(
    ice: ElectrochemistryICE,
    settings: CharacterizationSettings | None = None,
) -> CharacterizationResult:
    """Build, run, package."""
    flow = build_characterization_workflow(ice, settings=settings)
    outcome = flow.run()
    ctx = outcome.context
    return CharacterizationResult(
        workflow=outcome,
        chromatogram=ctx.get("chromatogram"),
        conversion_ratio=ctx.get("conversion_ratio"),
    )
