"""Multi-round adaptive campaigns (paper §1: workflows that "adapt system
and instrument settings in real-time during multiple rounds of
experiments").

A :class:`Campaign` repeatedly runs the CV workflow against one ICE,
letting a *strategy* look at everything measured so far and either
propose the next round's settings or stop. Three strategies ship:

- :func:`scan_rate_strategy` — sweep a list of scan rates (feeding the
  Randles-Sevcik analysis);
- :func:`window_centering_strategy` — start with a guessed potential
  window, then re-centre it on the measured E1/2 each round until the
  window converges: a minimal but genuinely closed-loop experiment;
- :func:`kinetics_targeting_strategy` — steer the scan rate until the
  peak separation lands in Nicholson's informative window, then measure
  k0 from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import WorkflowError
from repro.ml.normality import NormalityClassifier
from repro.facility.ice import ElectrochemistryICE
from repro.core.cv_workflow import (
    CVWorkflowResult,
    CVWorkflowSettings,
    run_cv_workflow,
)


@dataclass
class CampaignRound:
    """One completed round."""

    index: int
    settings: CVWorkflowSettings
    result: CVWorkflowResult


#: A strategy inspects history and returns the next settings, or None to stop.
Strategy = Callable[[list[CampaignRound]], CVWorkflowSettings | None]


@dataclass
class Campaign:
    """Closed-loop experiment runner.

    Args:
        ice: the running ecosystem.
        strategy: proposes each round's settings (None = stop).
        classifier: optional ML screen; abnormal rounds either stop the
            campaign or are retried once with a refilled cell, depending
            on ``abort_on_abnormal``.
        max_rounds: hard bound regardless of strategy.
    """

    ice: ElectrochemistryICE
    strategy: Strategy
    classifier: NormalityClassifier | None = None
    max_rounds: int = 10
    abort_on_abnormal: bool = True
    rounds: list[CampaignRound] = field(default_factory=list)

    def run(self) -> list[CampaignRound]:
        """Run until the strategy stops, a round fails, or max_rounds."""
        if self.max_rounds < 1:
            raise WorkflowError("max_rounds must be >= 1")
        self.rounds.clear()
        while len(self.rounds) < self.max_rounds:
            settings = self.strategy(self.rounds)
            if settings is None:
                break
            # rounds after the first reuse the liquid already in the cell
            if self.rounds:
                settings = replace(settings, fill_volume_ml=0.0)
            result = run_cv_workflow(
                self.ice, settings=settings, classifier=self.classifier
            )
            record = CampaignRound(
                index=len(self.rounds), settings=settings, result=result
            )
            self.rounds.append(record)
            if not result.succeeded:
                break
            if (
                self.abort_on_abnormal
                and result.normality is not None
                and not result.normality.normal
            ):
                break
        return self.rounds

    @property
    def all_normal(self) -> bool:
        return all(
            r.result.normality is None or r.result.normality.normal
            for r in self.rounds
        )


def scan_rate_strategy(
    scan_rates_v_s: tuple[float, ...],
    base: CVWorkflowSettings | None = None,
) -> Strategy:
    """Sweep fixed scan rates, one round each."""
    base = base or CVWorkflowSettings()

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        if len(history) >= len(scan_rates_v_s):
            return None
        return replace(
            base,
            scan_rate_v_s=scan_rates_v_s[len(history)],
            measurement_stem=f"scanrate_{len(history):02d}",
        )

    return propose


def window_centering_strategy(
    base: CVWorkflowSettings | None = None,
    half_window_v: float = 0.25,
    tolerance_v: float = 0.01,
    max_adjustments: int = 5,
) -> Strategy:
    """Re-centre the sweep window on the measured E1/2 each round.

    Stops when the window centre moves by less than ``tolerance_v`` —
    i.e. the experiment has *found* the couple and framed it.
    """
    base = base or CVWorkflowSettings()

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        if len(history) >= max_adjustments:
            return None
        if not history:
            return replace(base, measurement_stem="window_00")
        last = history[-1]
        metrics = last.result.metrics
        if metrics is None:
            # no wave in window: widen and retry
            previous = last.settings
            centre = 0.5 * (previous.e_begin_v + previous.e_vertex_v)
            span = abs(previous.e_vertex_v - previous.e_begin_v) * 1.5
            return replace(
                previous,
                e_begin_v=centre - span / 2,
                e_vertex_v=centre + span / 2,
                measurement_stem=f"window_{len(history):02d}",
            )
        centre_now = 0.5 * (last.settings.e_begin_v + last.settings.e_vertex_v)
        target = metrics.e_half_v
        if abs(target - centre_now) < tolerance_v:
            return None  # converged
        return replace(
            last.settings,
            e_begin_v=target - half_window_v,
            e_vertex_v=target + half_window_v,
            measurement_stem=f"window_{len(history):02d}",
        )

    return propose


def kinetics_targeting_strategy(
    base: CVWorkflowSettings | None = None,
    target_separation_v: tuple[float, float] = (0.080, 0.160),
    max_rounds: int = 6,
    rate_bounds_v_s: tuple[float, float] = (0.01, 50.0),
) -> Strategy:
    """Steer the scan rate into the kinetically informative window.

    Nicholson's working curve is steep (insensitive) near the reversible
    limit and flat (noisy) deep in the irreversible tail; k0 is best
    measured where dEp sits in roughly 80-160 mV. This strategy measures
    dEp each round and multiplies the scan rate up (dEp too reversible)
    or down (too irreversible) until a round lands in the window — a
    small but genuine example of the "AI-driven" real-time steering the
    ICE exists for: the next instrument setting depends on analysis of
    the previous measurement.
    """
    base = base or CVWorkflowSettings()
    low, high = target_separation_v

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        from dataclasses import replace as _replace

        if len(history) >= max_rounds:
            return None
        if not history:
            return _replace(base, measurement_stem="kinetics_00")
        last = history[-1]
        metrics = last.result.metrics
        rate = last.settings.scan_rate_v_s
        if metrics is None:
            proposal = rate * 0.25  # no wave: ease off
        else:
            separation = metrics.peak_separation_v
            if low <= separation <= high:
                return None  # informative measurement achieved
            if separation < low:
                # too reversible: outrun the kinetics
                proposal = rate * 4.0
            else:
                proposal = rate * 0.5
        proposal = min(max(proposal, rate_bounds_v_s[0]), rate_bounds_v_s[1])
        if proposal == rate:
            return None  # pinned at a bound; cannot improve
        return _replace(
            base,
            scan_rate_v_s=proposal,
            measurement_stem=f"kinetics_{len(history):02d}",
        )

    return propose
