"""Multi-round adaptive campaigns (paper §1: workflows that "adapt system
and instrument settings in real-time during multiple rounds of
experiments").

A :class:`Campaign` repeatedly runs the CV workflow against one ICE,
letting a *strategy* look at everything measured so far and either
propose the next round's settings or stop. Three strategies ship:

- :func:`scan_rate_strategy` — sweep a list of scan rates (feeding the
  Randles-Sevcik analysis);
- :func:`window_centering_strategy` — start with a guessed potential
  window, then re-centre it on the measured E1/2 each round until the
  window converges: a minimal but genuinely closed-loop experiment;
- :func:`kinetics_targeting_strategy` — steer the scan rate until the
  peak separation lands in Nicholson's informative window, then measure
  k0 from it.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.errors import WorkflowError
from repro.ml.normality import NormalityClassifier
from repro.facility.ice import ElectrochemistryICE
from repro.obs.health import HealthEngine
from repro.obs.health import require_healthy as _gate_healthy
from repro.obs.profiler import SpanProfiler
from repro.obs.trace import child_span, use_span
from repro.core.cv_workflow import (
    CVWorkflowResult,
    CVWorkflowSettings,
    run_cv_workflow,
)
from repro.core.provenance import capture_provenance, write_provenance


@dataclass
class CampaignRound:
    """One completed round.

    ``retry_of`` is the index of the abnormal round this one re-ran
    (None for first attempts) — see :class:`Campaign` retry semantics.
    """

    index: int
    settings: CVWorkflowSettings
    result: CVWorkflowResult
    retry_of: int | None = None


#: A strategy inspects history and returns the next settings, or None to stop.
Strategy = Callable[[list[CampaignRound]], CVWorkflowSettings | None]


@dataclass
class Campaign:
    """Closed-loop experiment runner.

    Args:
        ice: the running ecosystem.
        strategy: proposes each round's settings (None = stop).
        classifier: optional ML screen; abnormal rounds either stop the
            campaign or are retried once with a refilled cell, depending
            on ``abort_on_abnormal``.
        max_rounds: hard bound regardless of strategy.
        require_healthy: evaluate the health rules before the first
            round and refuse to start (:class:`~repro.errors.HealthGateError`)
            when the ecosystem is ``unhealthy``. Uses ``health_engine``,
            or builds one over the ICE's metrics registry.
        health_engine: the :class:`~repro.obs.health.HealthEngine` the
            gate consults (share the session's to judge its window).
        flight_recorder: client-half flight recorder; abnormal rounds
            dump a black box, and each round's workflow dumps on
            safe-state teardown.
        flight_dir: dump directory (default
            ``<measurement_dir>/flight-recorder``).
        profile: attach one
            :class:`~repro.obs.profiler.SpanProfiler` to the ICE's
            tracer for the whole campaign; the cumulative
            ``repro-profile-1`` document lands on ``profile_doc`` (and
            each round's result carries the snapshot taken at its end).
    """

    ice: ElectrochemistryICE
    strategy: Strategy
    classifier: NormalityClassifier | None = None
    max_rounds: int = 10
    abort_on_abnormal: bool = True
    require_healthy: bool = False
    health_engine: Any = None
    flight_recorder: Any = None
    flight_dir: str | Path | None = None
    profile: bool = False
    profile_doc: dict[str, Any] | None = None
    rounds: list[CampaignRound] = field(default_factory=list)

    def run(self) -> list[CampaignRound]:
        """Run until the strategy stops, a round fails, or max_rounds.

        Abnormal rounds: with ``abort_on_abnormal=True`` the campaign
        stops at the first abnormal measurement. With it False, the
        abnormal round is retried once with a refilled cell (fresh
        liquid often clears a fouled electrode or a bubble); the retry
        is recorded as its own round with ``retry_of`` set, and the
        campaign continues only if the retry comes back normal.
        """
        if self.max_rounds < 1:
            raise WorkflowError("max_rounds must be >= 1")
        if self.require_healthy:
            if self.health_engine is None and self.ice.metrics is not None:
                self.health_engine = HealthEngine(self.ice.metrics)
            _gate_healthy(self.health_engine, what="campaign")
        self.rounds.clear()
        profiler, owns_profiler = self._attach_profiler()
        try:
            self._run_rounds()
        finally:
            if profiler is not None:
                self.profile_doc = profiler.profile()
                if owns_profiler:
                    profiler.detach()
        return self.rounds

    def _attach_profiler(self) -> tuple[Any, bool]:
        """One shared profiler across all rounds when ``profile=True``.

        Reuses a profiler someone already attached to the ICE tracer
        (leaving ownership with them); otherwise attaches its own and
        detaches it after the campaign. Without an ICE tracer, rounds
        still profile individually via their private workflow tracers.
        """
        if not self.profile:
            return None, False
        tracer = self.ice.tracer
        if tracer is None:
            return None, False
        if tracer.profiler is not None:
            return tracer.profiler, False
        profiler = SpanProfiler(clock=tracer.clock)
        return profiler, profiler.attach(tracer)

    def _run_rounds(self) -> None:
        while len(self.rounds) < self.max_rounds:
            # the strategy sees effective history: a retry supersedes the
            # abnormal round it re-ran, so sweep strategies keyed on
            # round count are not thrown off by retries
            proposed = self.strategy(self.effective_rounds)
            if proposed is None:
                break
            # rounds after the first reuse the liquid already in the cell
            settings = (
                replace(proposed, fill_volume_ml=0.0) if self.rounds else proposed
            )
            record = self._run_round(settings)
            if not record.result.succeeded:
                break
            if self._abnormal(record):
                self.dump_flight("abnormal-round")
                if self.abort_on_abnormal:
                    break
                if len(self.rounds) >= self.max_rounds:
                    break
                retry = self._run_round(
                    replace(
                        settings,
                        fill_volume_ml=proposed.fill_volume_ml,
                        measurement_stem=f"{settings.measurement_stem}_retry",
                    ),
                    retry_of=record.index,
                )
                if not retry.result.succeeded or self._abnormal(retry):
                    if self._abnormal(retry):
                        self.dump_flight("abnormal-round")
                    break

    def dump_flight(self, trigger: str) -> Path | None:
        """Write a black box now (no-op without a flight recorder).

        The daemon half is pulled over the control channel best-effort;
        a partitioned channel still yields the client half.
        """
        if self.flight_recorder is None:
            return None
        remote: list[Any] = []
        try:
            proxy = self.ice.recorder_client()
            try:
                snapshot = proxy.Recorder_Dump()
                if isinstance(snapshot, dict):
                    remote.append(snapshot)
            finally:
                proxy.close()
        except Exception:  # noqa: BLE001 - the dump must still land
            pass
        target = (
            Path(self.flight_dir)
            if self.flight_dir is not None
            else self.ice.measurement_dir / "flight-recorder"
        )
        try:
            return self.flight_recorder.dump(
                target, trigger=trigger, remote_snapshots=remote
            )
        except Exception:  # noqa: BLE001 - never fail a campaign over a dump
            return None

    def _run_round(
        self, settings: CVWorkflowSettings, retry_of: int | None = None
    ) -> CampaignRound:
        result = run_cv_workflow(
            self.ice,
            settings=settings,
            classifier=self.classifier,
            flight_recorder=self.flight_recorder,
            flight_dir=self.flight_dir,
            profile=self.profile,
        )
        record = CampaignRound(
            index=len(self.rounds),
            settings=settings,
            result=result,
            retry_of=retry_of,
        )
        self.rounds.append(record)
        return record

    @staticmethod
    def _abnormal(record: CampaignRound) -> bool:
        report = record.result.normality
        return report is not None and not report.normal

    @property
    def effective_rounds(self) -> list[CampaignRound]:
        """Rounds minus any abnormal round superseded by its retry."""
        superseded = {
            r.retry_of for r in self.rounds if r.retry_of is not None
        }
        return [r for r in self.rounds if r.index not in superseded]

    @property
    def all_normal(self) -> bool:
        return all(
            r.result.normality is None or r.result.normality.normal
            for r in self.rounds
        )


@dataclass
class FleetCellResult:
    """Outcome of one cell's campaign inside a :class:`FleetCampaign`."""

    cell: str
    rounds: list[CampaignRound]
    error: Exception | None = None
    safe_stated: bool = False

    @property
    def succeeded(self) -> bool:
        """True when the campaign ran to completion without crashing."""
        return self.error is None


class FleetCampaign:
    """Independent campaigns against multiple ICE cells, concurrently.

    The paper runs one cell per workflow; fleets of ICEs (the follow-on
    "self-driving labs" scaling) run many. Each cell's campaign executes
    in its own worker thread against its own ICE, so one slow or broken
    cell never stalls the others:

    - **failure isolation** — an exception in one cell's campaign is
      captured in that cell's :class:`FleetCellResult`; every other cell
      runs to completion;
    - **safe state** — a crashed cell's workstation is sent
      ``Safe_State`` (syringe/peri pumps halted, cell drained) before
      its result is recorded, so no hardware is left pumping;
    - **merged provenance** — :meth:`merged_provenance` folds each
      cell's per-round provenance records into one fleet-level document.

    Args:
        campaigns: cell name -> ready-to-run :class:`Campaign` (each
            with its *own* ICE).
        max_workers: concurrency bound (default: one thread per cell).
        tracer: optional tracer; cells run under ``fleet.cell`` spans
            parented to one ``fleet.run`` root.
        metrics: optional registry; receives the ``fleet.cells_total``
            counter labelled by outcome.
        require_healthy: propagate the pre-flight health gate to every
            cell's campaign — a cell whose ecosystem is ``unhealthy``
            records :class:`~repro.errors.HealthGateError` as its result
            instead of running (the other cells are unaffected).
    """

    def __init__(
        self,
        campaigns: dict[str, Campaign],
        max_workers: int | None = None,
        tracer: Any = None,
        metrics: Any = None,
        require_healthy: bool = False,
    ):
        if not campaigns:
            raise WorkflowError("a fleet needs at least one campaign")
        self.campaigns = dict(campaigns)
        self.max_workers = max_workers
        self.tracer = tracer
        self.metrics = metrics
        self.require_healthy = require_healthy
        self.results: dict[str, FleetCellResult] = {}

    def run(self) -> dict[str, FleetCellResult]:
        """Run every cell's campaign; returns cell name -> result."""
        self.results.clear()
        if self.require_healthy:
            for campaign in self.campaigns.values():
                campaign.require_healthy = True
        root = (
            self.tracer.start_span(
                "fleet.run", attributes={"cells": len(self.campaigns)}
            )
            if self.tracer is not None
            else None
        )
        workers = self.max_workers or len(self.campaigns)
        try:
            with ThreadPoolExecutor(
                max_workers=max(1, workers), thread_name_prefix="fleet"
            ) as pool:
                futures = {
                    name: pool.submit(self._run_cell, name, campaign, root)
                    for name, campaign in self.campaigns.items()
                }
                for name, future in futures.items():
                    self.results[name] = future.result()
        finally:
            if root is not None:
                failed = [r.cell for r in self.results.values() if not r.succeeded]
                root.set_attribute("cells_failed", len(failed))
                root.end("ERROR" if failed else None)
        if self.metrics is not None:
            counter = self.metrics.counter(
                "fleet.cells_total", "fleet campaign cells by outcome"
            )
            for result in self.results.values():
                counter.inc(status="ok" if result.succeeded else "error")
        return self.results

    def _run_cell(
        self, name: str, campaign: Campaign, parent: Any
    ) -> FleetCellResult:
        with use_span(parent):
            with child_span("fleet.cell", cell=name) as span:
                try:
                    rounds = campaign.run()
                except Exception as exc:  # noqa: BLE001 - isolate the cell
                    if span is not None:
                        span.record_exception(exc)
                    safe = self._safe_state(campaign)
                    campaign.dump_flight("fleet-cell-failure")
                    return FleetCellResult(
                        cell=name,
                        rounds=list(campaign.rounds),
                        error=exc,
                        safe_stated=safe,
                    )
                return FleetCellResult(cell=name, rounds=rounds)

    @staticmethod
    def _safe_state(campaign: Campaign) -> bool:
        """Best-effort hardware quiesce after a cell's campaign crashed."""
        try:
            client = campaign.ice.client()
            try:
                client.call_Safe_State()
            finally:
                client.close()
            return True
        except Exception:  # noqa: BLE001 - teardown must never re-raise
            return False

    @property
    def succeeded(self) -> bool:
        return bool(self.results) and all(
            r.succeeded for r in self.results.values()
        )

    def merged_provenance(self) -> dict[str, Any]:
        """One fleet-level provenance document spanning every cell.

        Each completed round contributes its full
        :func:`capture_provenance` record (task states, timings,
        SHA-256'd measurement artifact); crashed cells record the error
        and whether safe state was reached.
        """
        cells: dict[str, Any] = {}
        for name, result in self.results.items():
            campaign = self.campaigns[name]
            round_records = []
            for round_ in result.rounds:
                artifacts: list[Path] = []
                measurement = round_.result.measurement_file
                if measurement:
                    local = campaign.ice.measurement_dir / measurement
                    if local.exists():
                        artifacts.append(local)
                record = capture_provenance(
                    round_.result.workflow,
                    workflow_name=f"cv-campaign[{name}]#{round_.index}",
                    settings=round_.settings,
                    artifacts=artifacts,
                )
                record["round"] = round_.index
                record["retry_of"] = round_.retry_of
                round_records.append(record)
            cells[name] = {
                "rounds": round_records,
                "error": str(result.error) if result.error else None,
                "safe_stated": result.safe_stated,
            }
        return {
            "schema": "repro-fleet-provenance-1",
            "cells": cells,
            "succeeded": self.succeeded,
        }

    def write_merged_provenance(
        self, directory: str | Path, stem: str = "fleet-provenance"
    ) -> Path:
        """Write :meth:`merged_provenance` as ``<stem>.json``."""
        return write_provenance(self.merged_provenance(), directory, stem)


def scan_rate_strategy(
    scan_rates_v_s: tuple[float, ...],
    base: CVWorkflowSettings | None = None,
) -> Strategy:
    """Sweep fixed scan rates, one round each."""
    base = base or CVWorkflowSettings()

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        if len(history) >= len(scan_rates_v_s):
            return None
        return replace(
            base,
            scan_rate_v_s=scan_rates_v_s[len(history)],
            measurement_stem=f"scanrate_{len(history):02d}",
        )

    return propose


def window_centering_strategy(
    base: CVWorkflowSettings | None = None,
    half_window_v: float = 0.25,
    tolerance_v: float = 0.01,
    max_adjustments: int = 5,
) -> Strategy:
    """Re-centre the sweep window on the measured E1/2 each round.

    Stops when the window centre moves by less than ``tolerance_v`` —
    i.e. the experiment has *found* the couple and framed it.
    """
    base = base or CVWorkflowSettings()

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        if len(history) >= max_adjustments:
            return None
        if not history:
            return replace(base, measurement_stem="window_00")
        last = history[-1]
        metrics = last.result.metrics
        if metrics is None:
            # no wave in window: widen and retry
            previous = last.settings
            centre = 0.5 * (previous.e_begin_v + previous.e_vertex_v)
            span = abs(previous.e_vertex_v - previous.e_begin_v) * 1.5
            return replace(
                previous,
                e_begin_v=centre - span / 2,
                e_vertex_v=centre + span / 2,
                measurement_stem=f"window_{len(history):02d}",
            )
        centre_now = 0.5 * (last.settings.e_begin_v + last.settings.e_vertex_v)
        target = metrics.e_half_v
        if abs(target - centre_now) < tolerance_v:
            return None  # converged
        return replace(
            last.settings,
            e_begin_v=target - half_window_v,
            e_vertex_v=target + half_window_v,
            measurement_stem=f"window_{len(history):02d}",
        )

    return propose


def kinetics_targeting_strategy(
    base: CVWorkflowSettings | None = None,
    target_separation_v: tuple[float, float] = (0.080, 0.160),
    max_rounds: int = 6,
    rate_bounds_v_s: tuple[float, float] = (0.01, 50.0),
) -> Strategy:
    """Steer the scan rate into the kinetically informative window.

    Nicholson's working curve is steep (insensitive) near the reversible
    limit and flat (noisy) deep in the irreversible tail; k0 is best
    measured where dEp sits in roughly 80-160 mV. This strategy measures
    dEp each round and multiplies the scan rate up (dEp too reversible)
    or down (too irreversible) until a round lands in the window — a
    small but genuine example of the "AI-driven" real-time steering the
    ICE exists for: the next instrument setting depends on analysis of
    the previous measurement.
    """
    base = base or CVWorkflowSettings()
    low, high = target_separation_v

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        from dataclasses import replace as _replace

        if len(history) >= max_rounds:
            return None
        if not history:
            return _replace(base, measurement_stem="kinetics_00")
        last = history[-1]
        metrics = last.result.metrics
        rate = last.settings.scan_rate_v_s
        if metrics is None:
            proposal = rate * 0.25  # no wave: ease off
        else:
            separation = metrics.peak_separation_v
            if low <= separation <= high:
                return None  # informative measurement achieved
            if separation < low:
                # too reversible: outrun the kinetics
                proposal = rate * 4.0
            else:
                proposal = rate * 0.5
        proposal = min(max(proposal, rate_bounds_v_s[0]), rate_bounds_v_s[1])
        if proposal == rate:
            return None  # pinned at a bound; cannot improve
        return _replace(
            base,
            scan_rate_v_s=proposal,
            measurement_stem=f"kinetics_{len(history):02d}",
        )

    return propose
